"""Design-space exploration across devices and memory systems.

Uses the analytic model to answer the questions a designer asks before
synthesis: how do V and p trade off, when does a design go memory-bound,
what does the U280's HBM buy over DDR4, and how would the DDR-only U250
fare? (Section V-A: "our model significantly narrows the design space".)

Run:  python examples/design_space_exploration.py
"""

from repro.apps.jacobi3d import jacobi3d_app
from repro.arch.device import ALVEO_U250, ALVEO_U280
from repro.model.design import DesignPoint, DesignSpace, Workload
from repro.model.runtime import RuntimePredictor
from repro.util.tables import TextTable
from repro.util.units import GB


def main() -> None:
    app = jacobi3d_app((200, 200, 200))
    program = app.program_on((200, 200, 200))
    workload = Workload(program.mesh, niter=2900)

    # -- V / p sweep on the U280 ------------------------------------------------
    table = TextTable(
        ["V", "p", "clock MHz", "runtime (s)", "DSP util", "mem util", "bound"],
        title="Jacobi 200^3 x 2900 iters on the U280 (HBM)",
    )
    space = DesignSpace(program, ALVEO_U280)
    for design in space.candidates(workload, memories=("HBM",)):
        metrics = RuntimePredictor(program, ALVEO_U280, design).predict(workload)
        table.add_row(
            [
                design.V,
                design.p,
                f"{design.clock_mhz:.0f}",
                metrics.seconds,
                f"{metrics.resources.dsp_utilization:.2f}",
                f"{metrics.resources.mem_utilization:.2f}",
                "memory" if metrics.memory_bound else "compute",
            ]
        )
    print(table.render())

    # -- cross-device comparison -----------------------------------------------
    print("\nBest design per device/memory:")
    for device in (ALVEO_U280, ALVEO_U250):
        for memory in device.memory_targets:
            space = DesignSpace(program, device)
            best = None
            for design in space.candidates(workload, memories=(memory,)):
                metrics = RuntimePredictor(program, device, design).predict(workload)
                if best is None or metrics.seconds < best[1].seconds:
                    best = (design, metrics)
            if best is None:
                print(f"  {device.name:24s} {memory}: no feasible design")
                continue
            design, metrics = best
            print(
                f"  {device.name:24s} {memory:4s}: V={design.V:<3} p={design.p:<3} "
                f"-> {metrics.seconds:6.3f} s, "
                f"{metrics.logical_bandwidth / GB:6.1f} GB/s logical"
            )


if __name__ == "__main__":
    main()
