"""Design-space exploration across devices and memory systems.

Uses the :mod:`repro.dse` engine to answer the questions a designer asks
before synthesis: how do V and p trade off, when does a design go
memory-bound, what does the U280's HBM buy over DDR4, and what do the
runtime/energy Pareto fronts look like?  (Section V-A: "our model
significantly narrows the design space".)

Run:  python examples/design_space_exploration.py
"""

from repro.apps.jacobi3d import jacobi3d_app
from repro.arch.device import ALVEO_U250, ALVEO_U280
from repro.dse import (
    DSP_HEADROOM,
    ENERGY,
    MEM_HEADROOM,
    RUNTIME,
    Evaluator,
    ExhaustiveSearch,
    Study,
    model_space,
)
from repro.model.design import Workload
from repro.util.tables import TextTable
from repro.util.units import GB


def explore(device, memory, program, workload):
    """One exhaustive study of (V, p) on a single device/memory target."""
    space = model_space(program, device, workload, memories=(memory,))
    evaluator = Evaluator(
        program,
        device,
        workload,
        objectives=(RUNTIME, ENERGY, DSP_HEADROOM, MEM_HEADROOM),
    )
    return Study(space, evaluator).run(ExhaustiveSearch())


def main() -> None:
    app = jacobi3d_app((200, 200, 200))
    program = app.program_on((200, 200, 200))
    workload = Workload(program.mesh, niter=2900)

    # -- V / p sweep on the U280 ------------------------------------------------
    table = TextTable(
        ["V", "p", "clock MHz", "runtime (s)", "DSP util", "mem util", "bound"],
        title="Jacobi 200^3 x 2900 iters on the U280 (HBM)",
    )
    u280_hbm = explore(ALVEO_U280, "HBM", program, workload)
    for trial in u280_hbm.feasible_trials():
        design = trial.result.design
        table.add_row(
            [
                design.V,
                design.p,
                f"{design.clock_mhz:.0f}",
                trial.value("runtime"),
                f"{1.0 - trial.value('dsp_headroom'):.2f}",
                f"{1.0 - trial.value('mem_headroom'):.2f}",
                "memory" if trial.result.memory_bound else "compute",
            ]
        )
    print(table.render())

    # -- cross-device comparison -----------------------------------------------
    print("\nBest design per device/memory:")
    for device in (ALVEO_U280, ALVEO_U250):
        for memory in device.memory_targets:
            if device is ALVEO_U280 and memory == "HBM":
                best = u280_hbm.best()
            else:
                best = explore(device, memory, program, workload).best()
            if best is None:
                print(f"  {device.name:24s} {memory}: no feasible design")
                continue
            design = best.result.design
            predicted = app.predictor((200, 200, 200), design, device).predict(workload)
            print(
                f"  {device.name:24s} {memory:4s}: V={design.V:<3} p={design.p:<3} "
                f"-> {best.value('runtime'):6.3f} s, "
                f"{predicted.logical_bandwidth / GB:6.1f} GB/s logical"
            )

    # -- Pareto front: runtime vs energy on the U280 -----------------------------
    print("\nRuntime/energy Pareto front (U280, HBM):")
    for member in u280_hbm.pareto_front((RUNTIME, ENERGY)):
        design = member.payload.result.design
        print(
            f"  V={design.V:<3} p={design.p:<3} "
            f"-> {member.values['runtime']:.3f} s, {member.values['energy']:.1f} J"
        )


if __name__ == "__main__":
    main()
