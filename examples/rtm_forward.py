"""RTM forward pass: the paper's largest application end to end.

Builds the Algorithm 1 program (RK4 over a 25-point 8th-order stencil on
6-component elements), checks the design constraints the paper reports
(G_dsp = 2444, p_dsp = 3, one fused module per SLR, 64^2 plane limit), runs
a functional simulation and reproduces the Fig 5(a) baseline series.

Run:  python examples/rtm_forward.py
"""

import numpy as np

from repro.apps.rtm import build_rtm_program, rtm_app
from repro.arch.device import ALVEO_U280
from repro.arch.floorplan import SLRFloorplan
from repro.model.resources import gdsp_program, module_mem_bytes, p_dsp
from repro.stencil.numpy_eval import run_program
from repro.util.tables import TextTable


def main() -> None:
    # -- design constraints -------------------------------------------------
    program = build_rtm_program((64, 64, 32))
    gdsp = gdsp_program(program)
    print(f"RTM G_dsp = {gdsp} (paper: 2444)")
    print(f"p_dsp at V=1: {p_dsp(ALVEO_U280, 1, gdsp)} (paper: 3)")
    plan = SLRFloorplan(
        ALVEO_U280, modules=3, module_dsp=gdsp, module_mem_bytes=module_mem_bytes(program)
    )
    print(
        f"Fused module fits one SLR: {plan.module_fits_one_slr}; "
        f"chain occupies {plan.slrs_used} SLRs"
    )

    # -- functional simulation ----------------------------------------------
    app = rtm_app((16, 16, 12))
    fields = app.fields((16, 16, 12), seed=7)
    result, report = app.accelerator((16, 16, 12)).run(fields, 6)
    golden = run_program(app.program_on((16, 16, 12)), fields, 6, engine="interpreter")
    print(
        "\nFunctional 16x16x12 run (6 RK4 iterations): "
        f"bit-identical to golden: {np.array_equal(result['Y'].data, golden['Y'].data)}"
    )

    # -- Fig 5(a) series -------------------------------------------------------
    table = TextTable(
        ["mesh", "FPGA sim (s)", "GPU model (s)", "FPGA/GPU"],
        title="RTM baseline, 1800 iterations (paper Fig 5a)",
    )
    for mesh in ((32, 32, 32), (50, 50, 16), (50, 50, 50), (50, 50, 200), (50, 50, 400)):
        scaled = rtm_app(mesh)
        w = scaled.workload(mesh, 1800)
        fpga = scaled.accelerator(mesh).estimate(w)
        gpu = scaled.gpu_model().predict(w)
        table.add_row(
            ["x".join(map(str, mesh)), fpga.seconds, gpu.seconds, fpga.seconds / gpu.seconds]
        )
    print("\n" + table.render())

    # -- the energy headline ----------------------------------------------------
    app50 = rtm_app((50, 50, 32))
    w = app50.workload((50, 50, 32), 180, batch=40)
    fpga = app50.accelerator((50, 50, 32)).estimate(w)
    gpu = app50.gpu_model().predict(w)
    print(
        f"\n40-batch 50x50x32: FPGA {fpga.energy_j / 1e3:.3f} kJ vs "
        f"GPU {gpu.energy_j / 1e3:.3f} kJ "
        f"({gpu.energy_j / fpga.energy_j:.2f}x energy saving)"
    )


if __name__ == "__main__":
    main()
