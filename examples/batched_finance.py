"""Batched small-mesh solves: the financial-computing workload.

The paper motivates batching (Section IV-B) with financial applications
that solve thousands of small independent PDE problems — e.g. pricing a
book of options, one small 2D mesh each. Solving one mesh at a time leaves
the pipeline idle (eq. 5); stacking them amortizes the fill latency to
nothing (eq. 15).

This example prices a synthetic "book" of 1000 problems on 200x100 meshes
and reports per-problem throughput for batch sizes 1, 10, 100 and 1000,
plus the GPU comparison — reproducing the Fig 3(b) effect.

Run:  python examples/batched_finance.py
"""

import numpy as np

from repro.apps.poisson2d import poisson2d_app
from repro.stencil.numpy_eval import run_program
from repro.util.tables import TextTable


def main() -> None:
    mesh_shape = (200, 100)
    niter = 60000  # paper Fig 3(b)
    book_size = 1000

    app = poisson2d_app(mesh_shape)

    table = TextTable(
        ["batch", "FPGA s/problem", "GPU s/problem", "FPGA speedup"],
        title=f"Batched solves, {mesh_shape[0]}x{mesh_shape[1]} x {niter} iters",
    )
    for batch in (1, 10, 100, 1000):
        workload = app.workload(mesh_shape, niter, batch)
        fpga = app.accelerator(mesh_shape).estimate(workload)
        gpu = app.gpu_model().predict(workload)
        table.add_row(
            [batch, fpga.seconds / batch, gpu.seconds / batch, gpu.seconds / fpga.seconds]
        )
    print(table.render())
    print(
        f"\nFull book of {book_size} problems at 1000B: "
        f"{app.accelerator(mesh_shape).estimate(app.workload(mesh_shape, niter, book_size)).seconds:.1f} s on the FPGA"
    )

    # functional spot-check on a scaled-down batch: every problem in the
    # batch must match its independent golden solve exactly
    small = poisson2d_app((24, 16))
    acc = small.accelerator((24, 16), small.design(p=4, V=2))
    batch_fields = [small.fields((24, 16), seed=s) for s in range(5)]
    results, _ = acc.run_batch(batch_fields, 12)
    for env, res in zip(batch_fields, results):
        golden = run_program(small.program_on((24, 16)), env, 12, engine="interpreter")
        assert np.array_equal(res["U"].data, golden["U"].data)
    print("Functional batch check: 5/5 problems bit-identical to golden.")


if __name__ == "__main__":
    main()
