"""Batched small-mesh solves: the financial-computing workload.

The paper motivates batching (Section IV-B) with financial applications
that solve thousands of small independent PDE problems — e.g. pricing a
book of options, one small 2D mesh each. Solving one mesh at a time leaves
the pipeline idle (eq. 5); stacking them amortizes the fill latency to
nothing (eq. 15).

A real book is not one mesh shape, though: it is a *workload mix* — coarse
and fine grids, short- and long-dated contracts with differing iteration
counts. This example prices such a mix end to end:

1. the classic Fig 3(b) batching sweep on one problem shape;
2. a DSE study that picks **one** design for the whole mix (predicted mix
   runtime = weighted sum over the specs, every spec feasibility-checked);
3. a functional run of a scaled-down mix through the chunked stacked
   scheduler, validated bit-identically against the golden interpreter.

Run:  python examples/batched_finance.py
"""

from repro.apps.poisson2d import poisson2d_app
from repro.arch.device import ALVEO_U280
from repro.dataflow.scheduler import MixScheduler
from repro.dse import ENERGY, RUNTIME, Evaluator, Study, strategy_by_name
from repro.dse.space import mix_space
from repro.util.tables import TextTable
from repro.workload import WorkloadMix


def batching_sweep() -> None:
    """The Fig 3(b) effect: throughput vs batch size on one problem shape."""
    mesh_shape = (200, 100)
    niter = 60000  # paper Fig 3(b)
    app = poisson2d_app(mesh_shape)

    table = TextTable(
        ["batch", "FPGA s/problem", "GPU s/problem", "FPGA speedup"],
        title=f"Batched solves, {mesh_shape[0]}x{mesh_shape[1]} x {niter} iters",
    )
    for batch in (1, 10, 100, 1000):
        workload = app.workload(mesh_shape, niter, batch)
        fpga = app.accelerator(mesh_shape).estimate(workload)
        gpu = app.gpu_model().predict(workload)
        table.add_row(
            [batch, fpga.seconds / batch, gpu.seconds / batch, gpu.seconds / fpga.seconds]
        )
    print(table.render())


def design_for_the_book() -> None:
    """One design serving the whole weighted book (a DSE mix study)."""
    # three tranches: fine long-dated grids dominate the load (weight 5),
    # plus mid and coarse short-dated contracts
    mix = WorkloadMix.parse(
        "poisson2d:200x100:60000x100@5,"
        "poisson2d:160x80:60000x100@3,"
        "poisson2d:100x50:30000x100@2"
    )
    evaluator = Evaluator(
        poisson2d_app((200, 100)).program_on((200, 100)),
        ALVEO_U280,
        workloads=mix,
        objectives=(RUNTIME, ENERGY),
    )
    study = Study(mix_space(mix, ALVEO_U280), evaluator)
    study.run(strategy_by_name("greedy", seed=0), 40)
    best = study.best()
    design = best.result.design
    print(f"book mix: {mix.describe()}")
    print(
        f"best single design for the whole book: V={design.V} p={design.p} "
        f"{design.memory} @ {design.clock_mhz:.0f} MHz"
    )
    print(
        f"predicted mix runtime (weighted sum over tranches): "
        f"{best.value('runtime'):.3f} s, energy {best.value('energy'):.1f} J"
    )


def functional_mix_check() -> None:
    """A scaled-down book scheduled chunked-stacked, validated vs golden."""
    mix = WorkloadMix.parse(
        "poisson2d:24x16:12x5,poisson2d:20x12:8x4,poisson2d:32x20:12x3"
    )
    run = MixScheduler().run(mix, validate=True)
    for group in run.groups:
        print(
            f"  {group.spec.describe()}: {group.meshes} meshes in "
            f"{group.dispatches} stacked dispatch(es), chunks {list(group.chunks)}"
        )
    print(
        f"Functional mix check: {run.meshes} problems solved in "
        f"{run.dispatches} tape dispatches, all bit-identical to golden."
    )


def main() -> None:
    batching_sweep()
    print()
    design_for_the_book()
    print()
    functional_mix_check()


if __name__ == "__main__":
    main()
