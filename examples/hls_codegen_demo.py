"""Generate the Vivado HLS project for each paper application.

Writes kernel.cpp / host.cpp / connectivity.cfg / Makefile — the sources a
user would hand to Vitis — into ``generated_hls/<app>/`` and prints a short
inventory of the architectural features each kernel contains.

Run:  python examples/hls_codegen_demo.py
"""

from pathlib import Path

from repro.apps.jacobi3d import jacobi3d_app
from repro.apps.poisson2d import poisson2d_app
from repro.apps.rtm import rtm_app
from repro.hls.project import HLSProject


def main() -> None:
    out_root = Path("generated_hls")
    apps = {
        "poisson2d": poisson2d_app((4096, 4096)),
        "jacobi3d": jacobi3d_app((128, 128, 128)),
        "rtm": rtm_app((64, 64, 64)),
    }
    for name, app in apps.items():
        project = HLSProject(app.program, app.design())
        target = out_root / name
        files = project.write_to(target)
        kernel = (target / "kernel.cpp").read_text()
        print(f"== {name}: wrote {len(files)} files to {target}/")
        print(f"   design: V={app.design().V}, p={app.design().p}, "
              f"{app.design().clock_mhz:.0f} MHz, {app.design().memory}")
        print(f"   kernel.cpp: {len(kernel.splitlines())} lines, "
              f"{kernel.count('#pragma HLS')} HLS pragmas, "
              f"{kernel.count('compute_module(')} module instantiations, "
              f"{kernel.count('hls::stream')} stream declarations")
    print("\nInspect e.g. generated_hls/rtm/kernel.cpp for the fused "
          "four-loop RTM pipeline with its 6-float element struct.")


if __name__ == "__main__":
    main()
