"""Spatial blocking: solving meshes far beyond the on-chip buffer bound.

A 20000^2 Poisson mesh needs 20000-element line buffers; eq. (7) caps the
un-tiled unroll depth well below profitability, so the design streams
overlapping 2D blocks from DDR4 (Section IV-A). This example reproduces the
Fig 3(c) tile-size sweep, shows the eq. (11)/(12) guidance, and validates
tiled numerics on a scaled-down mesh.

Run:  python examples/tiled_large_mesh.py
"""

import numpy as np

from repro.apps.poisson2d import poisson2d_app
from repro.arch.device import ALVEO_U280
from repro.model.tiling import optimal_tile_m, p_max_for_tile, valid_ratio
from repro.stencil.numpy_eval import run_program
from repro.util.tables import TextTable


def main() -> None:
    app = poisson2d_app()
    mesh = (20000, 20000)
    niter = 6000

    # model guidance (eqs. 11 and 12)
    mem = ALVEO_U280.usable_on_chip_bytes()
    m_opt = mem // (app.p * 4 * 2)  # 2D: budget / (p * k * D)
    print(f"eq. (7)-style 2D block bound at p={app.p}: M <= {m_opt}")
    print(f"eq. (12) optimal p for M=8192: {p_max_for_tile(8192, 2)} (deep unrolls")
    print("  remain profitable in 2D because the halo is one-dimensional)\n")

    table = TextTable(
        ["tile M", "valid ratio", "FPGA sim (s)", "GPU model (s)"],
        title=f"Poisson {mesh[0]}x{mesh[1]}, {niter} iterations (paper Fig 3c)",
    )
    w = app.workload(mesh, niter)
    gpu = app.gpu_model().predict(w)
    for tile in (512, 1024, 2048, 4096, 8000):
        design = app.design(tile=(tile,))
        sim = app.accelerator(mesh, design).estimate(w)
        table.add_row([tile, valid_ratio(tile, None, app.p, 2), sim.seconds, gpu.seconds])
    print(table.render())

    # functional validation of the tiled path on a small mesh
    small_mesh = (96, 20)
    small = poisson2d_app(small_mesh)
    design = small.design(tile=(40,), p=4, V=2)
    fields = small.fields(small_mesh, seed=3)
    result, _ = small.accelerator(small_mesh, design).run(fields, 12)
    golden = run_program(small.program_on(small_mesh), fields, 12, engine="interpreter")
    print(
        "\nTiled functional check (96x20, tile 40, p=4): bit-identical: "
        f"{np.array_equal(result['U'].data, golden['U'].data)}"
    )


if __name__ == "__main__":
    main()
