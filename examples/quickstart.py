"""Quickstart: describe a stencil, design an accelerator, predict and simulate.

This walks the paper's whole workflow on the Poisson-5pt-2D solver:

1. describe the stencil kernel as an expression tree;
2. let the analytic model pick V (eq. 4) and p (eqs. 6/7);
3. predict runtime/bandwidth/energy (the paper's "FPGA - Pred");
4. run the dataflow simulator and check the numerics against the golden
   NumPy model;
5. compare with the V100 GPU baseline.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.apps.poisson2d import poisson2d_app
from repro.arch.device import ALVEO_U280
from repro.model.design import Workload, explore_designs
from repro.stencil.numpy_eval import run_program
from repro.util.units import GB


def main() -> None:
    mesh_shape = (400, 400)
    niter = 6000

    app = poisson2d_app(mesh_shape)
    program = app.program_on(mesh_shape)
    print(f"Program: {program.name} on {program.mesh}")
    kernel = next(iter(program.kernels()))
    print(f"Kernel ops: {kernel.op_counts()}  (G_dsp = 14, Table II)")

    # -- 2. design-space exploration -------------------------------------------
    workload = Workload(program.mesh, niter)
    ranked = explore_designs(program, ALVEO_U280, workload, top_k=3)
    print("\nTop design points (model-ranked):")
    for design, metrics in ranked:
        print(
            f"  V={design.V:<3} p={design.p:<3} {design.clock_mhz:.0f} MHz "
            f"{design.memory:<5} -> {metrics.seconds * 1e3:8.2f} ms, "
            f"{metrics.logical_bandwidth / GB:6.1f} GB/s, {metrics.power_w:5.1f} W"
        )

    # -- 3. the paper's validated design ----------------------------------------
    design = app.design()
    predicted = app.predictor(mesh_shape, design).predict(workload)
    print(
        f"\nPaper design V={design.V}, p={design.p} @ {design.clock_mhz:.0f} MHz: "
        f"predicted {predicted.seconds * 1e3:.2f} ms"
    )

    # -- 4. simulate (numerics-preserving) --------------------------------------
    fields = app.fields(mesh_shape, seed=42)
    accelerator = app.accelerator(mesh_shape, design)
    result, report = accelerator.run(fields, niter)
    golden = run_program(program, fields, niter, engine="interpreter")
    exact = np.array_equal(result["U"].data, golden["U"].data)
    print(
        f"Simulated: {report.seconds * 1e3:.2f} ms "
        f"({report.cycles:.3g} cycles, {report.logical_bandwidth / GB:.1f} GB/s "
        f"logical) — results bit-identical to golden: {exact}"
    )

    # -- 5. GPU baseline ---------------------------------------------------------
    gpu = app.gpu_model().predict(workload)
    print(
        f"V100 baseline: {gpu.seconds * 1e3:.2f} ms at {gpu.power_w:.0f} W "
        f"-> FPGA speedup {gpu.seconds / report.seconds:.2f}x, "
        f"energy ratio {gpu.energy_j / report.energy_j:.2f}x"
    )


if __name__ == "__main__":
    main()
