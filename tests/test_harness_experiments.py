"""Harness tests: registry completeness and report generation."""

import pytest

from repro.harness.experiments import all_experiments, experiment_by_id
from repro.harness.report import result_markdown
from repro.util.errors import ValidationError


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        ids = {e.id for e in all_experiments()}
        expected = {
            "table2", "table3", "table4", "table5", "table6",
            "fig3a", "fig3b", "fig3c", "fig4a", "fig4b", "fig4c",
            "fig5a", "fig5b", "dse-convergence", "dse-multifpga",
            "mix-throughput",
        }
        assert ids == expected

    def test_lookup(self):
        assert experiment_by_id("fig3a").kind == "figure"
        assert experiment_by_id("table2").kind == "table"

    def test_unknown_id(self):
        with pytest.raises(ValidationError):
            experiment_by_id("fig9z")


class TestExecution:
    @pytest.mark.parametrize(
        "exp_id", ["table2", "table3", "fig3a", "mix-throughput"]
    )
    def test_experiments_run_and_render(self, exp_id):
        result = experiment_by_id(exp_id).run()
        text = result.render()
        assert result.experiment_id == exp_id
        assert result.records
        assert len(text.splitlines()) >= 3

    def test_markdown_section(self):
        result = experiment_by_id("table2").run()
        md = result_markdown(result)
        assert md.startswith("## ")
        assert "```" in md


class TestMixThroughput:
    def test_dispatch_win_and_validation(self):
        result = experiment_by_id("mix-throughput").run()
        totals = [r for r in result.records if r["group"] == "total"]
        assert len(totals) == 1
        total = totals[0]
        # chunked stacked scheduling must beat one-dispatch-per-mesh
        assert total["dispatches"] < total["per_mesh_dispatches"]
        assert total["per_mesh_dispatches"] == total["meshes"]
        assert "bit-identical" in result.notes
