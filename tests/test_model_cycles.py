"""Unit tests for the cycle models (paper eqs. 2, 3, 5, 15)."""

import pytest

from repro.model.cycles import (
    baseline_cycles_2d,
    baseline_cycles_3d,
    batched_cycles_2d,
    batched_cycles_3d,
    batched_cycles_per_mesh_2d,
    cycles_per_cell_2d,
    pipeline_cycles,
    pipeline_fill_rows,
)
from repro.util.errors import ValidationError


class TestEq2Baseline2D:
    def test_paper_poisson_200x100(self):
        # 60000 iters, V=8, p=60, D=2: 1000 * 25 * 160 cycles
        assert baseline_cycles_2d(200, 100, 60000, 8, 60, 2) == 4_000_000

    def test_row_padding_ceil(self):
        # m=201 at V=8 streams 26 vectors per row
        assert baseline_cycles_2d(201, 100, 60, 8, 60, 2) == 26 * 160

    def test_p1_no_unroll(self):
        assert baseline_cycles_2d(16, 10, 4, 4, 1, 2) == 4 * 4 * 11

    def test_rejects_odd_order(self):
        with pytest.raises(ValidationError):
            baseline_cycles_2d(16, 10, 4, 4, 1, 3)


class TestEq3Baseline3D:
    def test_paper_jacobi_250cubed(self):
        # 29000 iters, V=8, p=29, D=2 at 246 MHz -> 9.07 s
        clks = baseline_cycles_3d(250, 250, 250, 29000, 8, 29, 2)
        assert clks == 1000 * 32 * 250 * 279
        assert abs(clks / 246e6 - 9.07) < 0.01

    def test_fill_planes_scale_with_p(self):
        base = baseline_cycles_3d(64, 64, 64, 8, 8, 1, 2)
        deep = baseline_cycles_3d(64, 64, 64, 8, 8, 8, 2)
        assert deep < base  # fewer passes despite longer fill


class TestEq5CellCycles:
    def test_ideal_limit(self):
        # wide meshes approach 1/V
        assert cycles_per_cell_2d(10**6, 8, 60, 2) == pytest.approx(1 / 8, rel=1e-3)

    def test_narrow_mesh_idles(self):
        narrow = cycles_per_cell_2d(100, 8, 60, 2)
        wide = cycles_per_cell_2d(10000, 8, 60, 2)
        assert narrow > wide

    def test_formula(self):
        assert cycles_per_cell_2d(100, 8, 60, 2) == pytest.approx(
            1 / 8 + (60 * 2) / (2 * 100 * 8)
        )


class TestEq15Batching:
    def test_total_cycles_shares_fill(self):
        single = baseline_cycles_2d(200, 100, 60, 8, 60, 2)
        batched = batched_cycles_2d(200, 100, 10, 60, 8, 60, 2)
        # 10 meshes batched cost less than 10 separate solves
        assert batched < 10 * single

    def test_per_mesh_formula(self):
        per_mesh = batched_cycles_per_mesh_2d(200, 100, 1000, 8, 60, 2)
        assert per_mesh == pytest.approx(25 * (100 + 60 * 2 / (2 * 1000)))

    def test_per_mesh_approaches_fill_free_limit(self):
        huge_batch = batched_cycles_per_mesh_2d(200, 100, 10**6, 8, 60, 2)
        assert huge_batch == pytest.approx(25 * 100, rel=1e-3)

    def test_3d_batched(self):
        one = batched_cycles_3d(50, 50, 50, 1, 29, 8, 29, 2)
        fifty = batched_cycles_3d(50, 50, 50, 50, 29, 8, 29, 2)
        assert fifty < 50 * one


class TestFillRows:
    def test_single_stage(self):
        assert pipeline_fill_rows([2], 60) == 60

    def test_rtm_four_stages(self):
        # 4 fused 8th-order stages: p * 16 planes
        assert pipeline_fill_rows([8, 8, 8, 8], 3) == 48

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            pipeline_fill_rows([], 1)

    def test_rejects_odd(self):
        with pytest.raises(ValidationError):
            pipeline_fill_rows([3], 1)


class TestGeneralizedPipeline:
    def test_matches_eq2_for_single_stage(self):
        assert pipeline_cycles((200, 100), 60000, 8, 60, [2]) == baseline_cycles_2d(
            200, 100, 60000, 8, 60, 2
        )

    def test_matches_eq3_for_single_stage(self):
        assert pipeline_cycles((50, 50, 50), 29, 8, 29, [2]) == baseline_cycles_3d(
            50, 50, 50, 29, 8, 29, 2
        )

    def test_ii_scales_stream_term_only(self):
        base = pipeline_cycles((64, 64, 64), 3, 1, 3, [8, 8, 8, 8], ii=1.0)
        scaled = pipeline_cycles((64, 64, 64), 3, 1, 3, [8, 8, 8, 8], ii=1.6)
        fill = 48
        expected = (scaled - base) / (64 * 64)
        assert expected == pytest.approx(64 * 0.6)
        del fill

    def test_rejects_ii_below_one(self):
        with pytest.raises(ValidationError):
            pipeline_cycles((4, 4), 1, 1, 1, [2], ii=0.5)

    def test_rejects_bad_rank(self):
        with pytest.raises(ValidationError):
            pipeline_cycles((4,), 1, 1, 1, [2])
