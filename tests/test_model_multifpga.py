"""Unit tests for the multi-FPGA scaling model."""

import pytest

from repro.model.design import DesignPoint, Workload
from repro.model.multifpga import (
    MultiFPGAConfig,
    scaling_efficiency,
    spatial_scaling_seconds,
    temporal_scaling_seconds,
)
from repro.util.errors import ValidationError


@pytest.fixture
def design():
    return DesignPoint(8, 10, 250.0)


@pytest.fixture
def workload(jacobi_app):
    return jacobi_app.workload((100, 100, 400), 400)


class TestTemporalScaling:
    def test_single_board_matches_baseline(self, jacobi_app, design, workload):
        program = jacobi_app.program_on((100, 100, 400))
        t1 = temporal_scaling_seconds(program, design, workload, MultiFPGAConfig(1))
        pred = jacobi_app.predictor((100, 100, 400), design).compute_cycles(workload)
        assert t1 == pytest.approx(pred / design.clock_hz)

    def test_chaining_reduces_passes(self, jacobi_app, design, workload):
        program = jacobi_app.program_on((100, 100, 400))
        t1 = temporal_scaling_seconds(program, design, workload, MultiFPGAConfig(1))
        t4 = temporal_scaling_seconds(program, design, workload, MultiFPGAConfig(4))
        assert t4 < t1
        assert t4 > t1 / 4.5  # never super-linear

    def test_slow_link_becomes_bottleneck(self, jacobi_app, design, workload):
        program = jacobi_app.program_on((100, 100, 400))
        fast = temporal_scaling_seconds(program, design, workload, MultiFPGAConfig(4))
        slow = temporal_scaling_seconds(
            program, design, workload, MultiFPGAConfig(4, link_bandwidth=1e8)
        )
        assert slow > fast

    def test_niter_divisibility(self, jacobi_app, design, workload):
        program = jacobi_app.program_on((100, 100, 400))
        with pytest.raises(ValidationError, match="multiple"):
            temporal_scaling_seconds(program, design, workload, MultiFPGAConfig(3))


class TestSpatialScaling:
    def test_slabs_scale_near_linearly(self, jacobi_app, design, workload):
        program = jacobi_app.program_on((100, 100, 400))
        t1 = spatial_scaling_seconds(program, design, workload, MultiFPGAConfig(1))
        t4 = spatial_scaling_seconds(program, design, workload, MultiFPGAConfig(4))
        assert t1 / 5 < t4 < t1 / 2.5

    def test_halo_exchange_costs_show_at_many_boards(self, jacobi_app, design, workload):
        program = jacobi_app.program_on((100, 100, 400))
        eff2 = scaling_efficiency(program, design, workload, 2, "spatial")
        eff16 = scaling_efficiency(program, design, workload, 16, "spatial")
        assert eff16 < eff2 <= 1.05

    def test_cannot_split_tiny_meshes(self, jacobi_app, design):
        program = jacobi_app.program_on((100, 100, 4))
        w = jacobi_app.workload((100, 100, 4), 400)
        with pytest.raises(ValidationError, match="split"):
            spatial_scaling_seconds(program, design, w, MultiFPGAConfig(8))


class TestEfficiency:
    def test_bounded_by_one_plus_ceil_slack(self, jacobi_app, design, workload):
        program = jacobi_app.program_on((100, 100, 400))
        for boards in (2, 4, 8):
            eff = scaling_efficiency(program, design, workload, boards, "spatial")
            assert 0.0 < eff <= 1.1

    def test_unknown_strategy(self, jacobi_app, design, workload):
        program = jacobi_app.program_on((100, 100, 400))
        with pytest.raises(ValidationError):
            scaling_efficiency(program, design, workload, 2, "diagonal")
