"""Application tests: Jacobi-7pt-3D."""

import numpy as np
import pytest

from repro.apps.jacobi3d import jacobi3d_app
from repro.stencil.numpy_eval import run_program


class TestPreset:
    def test_table2_parameters(self):
        app = jacobi3d_app()
        assert app.V == 8 and app.p == 29
        assert app.paper_clock_mhz == 246.0

    def test_table3_tiled_parameters(self):
        app = jacobi3d_app()
        design = app.design(tile=(768, 768))
        assert design.V == 64 and design.p == 3
        assert design.memory == "HBM"

    def test_program_order(self):
        assert jacobi3d_app().program.order == 2


class TestNumerics:
    def test_coefficient_sum_preserves_constants(self):
        app = jacobi3d_app((10, 10, 8))
        from repro.mesh.mesh import Field, MeshSpec

        spec = MeshSpec((10, 10, 8))
        fields = {"U": Field.full("U", spec, 5.0)}
        out = run_program(app.program_on((10, 10, 8)), fields, 4)
        assert np.allclose(out["U"].data, 5.0)

    def test_accelerator_equals_golden(self):
        app = jacobi3d_app((12, 10, 8))
        fields = app.fields((12, 10, 8), seed=3)
        design = app.design(p=4, V=2)
        res, _ = app.accelerator((12, 10, 8), design).run(fields, 8)
        gold = run_program(app.program_on((12, 10, 8)), fields, 8)
        assert np.array_equal(res["U"].data, gold["U"].data)


class TestPaperShape:
    def test_gpu_overtakes_fpga_at_scale(self):
        # Fig 4(a): FPGA wins at 50^3, the GPU wins from ~150^3 up
        app = jacobi3d_app()
        small = app.workload((50, 50, 50), 29000)
        large = app.workload((250, 250, 250), 29000)
        f_small = app.accelerator((50, 50, 50)).estimate(small)
        g_small = app.gpu_model().predict(small)
        f_large = app.accelerator((250, 250, 250)).estimate(large)
        g_large = app.gpu_model().predict(large)
        assert f_small.seconds < g_small.seconds
        assert g_large.seconds < f_large.seconds

    def test_crossover_location(self):
        # the paper's crossover sits near 100^3 (FPGA 0.77 vs GPU 0.76)
        app = jacobi3d_app()
        w = app.workload((100, 100, 100), 29000)
        f = app.accelerator((100, 100, 100)).estimate(w)
        g = app.gpu_model().predict(w)
        assert abs(f.seconds - g.seconds) / f.seconds < 0.25

    def test_fpga_more_energy_efficient_at_50_batch(self):
        # Table V: 50B on 200^3 -> FPGA ~2x more energy efficient
        app = jacobi3d_app()
        w = app.workload((200, 200, 200), 2900, batch=50)
        f = app.accelerator((200, 200, 200)).estimate(w)
        g = app.gpu_model().predict(w)
        assert g.energy_j / f.energy_j > 1.5

    def test_tiled_fpga_slower_than_gpu(self):
        # Section V-B: the 640^2-tile design was ~40% slower than the GPU
        app = jacobi3d_app()
        w = app.workload((600, 600, 600), 120)
        design = app.design(tile=(640, 640))
        f = app.accelerator((600, 600, 600), design).estimate(w)
        g = app.gpu_model().predict(w)
        assert f.seconds > g.seconds

    def test_baseline_mesh_size_limited_by_eq7(self):
        # 600^3 cannot run un-tiled: plane buffers exceed on-chip memory
        from repro.arch.device import ALVEO_U280
        from repro.model.design import DesignSpace

        app = jacobi3d_app()
        program = app.program_on((600, 600, 600))
        space = DesignSpace(program, ALVEO_U280)
        w = app.workload((600, 600, 600), 120)
        assert not space.is_feasible(app.design(), w)
