"""Unit tests for stencil access-pattern analysis."""

import pytest

from repro.stencil.expr import Coef, FieldAccess
from repro.stencil.spec import AccessPattern, StencilSpec
from repro.util.errors import ValidationError


class TestAccessPattern:
    def test_canonical_sorted_unique(self):
        p = AccessPattern("U", ((1, 0), (0, 0), (1, 0)))
        assert p.offsets == ((0, 0), (1, 0))
        assert p.points == 2

    def test_radius_per_axis(self):
        p = AccessPattern("U", ((-2, 0), (0, 1), (0, 0)))
        assert p.radius == (2, 1)

    def test_order_is_twice_max_radius(self):
        # 5-point star: D=2; RTM 25-pt star: D=8
        star5 = AccessPattern("U", ((0, 0), (1, 0), (-1, 0), (0, 1), (0, -1)))
        assert star5.order == 2
        rtm = AccessPattern("Y", tuple((d, 0, 0) for d in range(-4, 5)))
        assert rtm.order == 8

    def test_self_stencil(self):
        assert AccessPattern("rho", ((0, 0, 0),)).is_self_stencil
        assert AccessPattern("rho", ((0, 0, 0),)).order == 0

    def test_span_elements_2d_row_rule(self):
        # paper: a 2D D-order star spans D rows of m elements
        m = 100
        star5 = AccessPattern("U", ((0, 0), (1, 0), (-1, 0), (0, 1), (0, -1)))
        assert star5.span_elements((m, 50)) == 2 * m

    def test_span_elements_3d_plane_rule(self):
        m, n = 64, 64
        star7 = AccessPattern(
            "U",
            ((0, 0, 0), (1, 0, 0), (-1, 0, 0), (0, 1, 0), (0, -1, 0), (0, 0, 1), (0, 0, -1)),
        )
        assert star7.span_elements((m, n, 32)) == 2 * m * n

    def test_span_rejects_rank_mismatch(self):
        p = AccessPattern("U", ((0, 0),))
        with pytest.raises(ValidationError):
            p.span_elements((4, 4, 4))

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            AccessPattern("U", ())

    def test_rejects_mixed_rank(self):
        with pytest.raises(ValidationError):
            AccessPattern("U", ((0, 0), (0, 0, 0)))


class TestStencilSpec:
    def _spec(self):
        exprs = [
            Coef("a") * FieldAccess("U", (-1, 0))
            + FieldAccess("U", (1, 0))
            + FieldAccess("rho", (0, 0))
        ]
        return StencilSpec.from_exprs(exprs)

    def test_fields_sorted(self):
        assert self._spec().fields == ("U", "rho")

    def test_order_is_max_over_fields(self):
        assert self._spec().order == 2

    def test_radius_elementwise_max(self):
        assert self._spec().radius == (1, 0)

    def test_pattern_lookup(self):
        spec = self._spec()
        assert spec.pattern("rho").is_self_stencil
        with pytest.raises(ValidationError):
            spec.pattern("mu")

    def test_buffered_fields_excludes_self_stencils(self):
        spec = self._spec()
        assert [p.field for p in spec.buffered_fields()] == ["U"]

    def test_window_elements(self):
        spec = self._spec()
        win = spec.window_elements((10, 5))
        assert win == {"U": 2}  # span between (-1,0) and (1,0)

    def test_points_total(self):
        assert self._spec().points == 3

    def test_from_exprs_rejects_no_fields(self):
        with pytest.raises(ValidationError):
            StencilSpec.from_exprs([Coef("a") * 2.0])
