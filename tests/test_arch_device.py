"""Unit tests for FPGA device models (Table I inventory)."""

import pytest

from repro.arch.device import ALVEO_U250, ALVEO_U280, FPGADevice, MemoryBank, device_by_name
from repro.util.errors import ValidationError
from repro.util.units import GB, MIB


class TestU280TableI:
    def test_dsp_blocks(self):
        assert ALVEO_U280.dsp_blocks == 8490

    def test_bram_capacity_6_6_mb(self):
        # Table I: 6.6 MB in 1487 blocks of 36 Kb
        assert ALVEO_U280.bram_blocks == 1487
        assert abs(ALVEO_U280.bram_bytes / MIB - 6.53) < 0.1

    def test_uram_capacity_34_5_mb(self):
        assert ALVEO_U280.uram_blocks == 960
        assert abs(ALVEO_U280.uram_bytes / MIB - 33.75) < 0.1

    def test_hbm(self):
        hbm = ALVEO_U280.hbm
        assert hbm.capacity_bytes == 8 * GB
        assert hbm.total_bandwidth == 460 * GB
        assert hbm.channels == 32
        assert abs(hbm.channel_bandwidth - 14.375 * GB) < 1e6

    def test_ddr4(self):
        ddr = ALVEO_U280.ddr4
        assert ddr.capacity_bytes == 32 * GB
        assert ddr.total_bandwidth == 38.4 * GB
        assert ddr.channels == 2

    def test_three_slrs(self):
        assert ALVEO_U280.slr_count == 3

    def test_axi_bus_512_bits(self):
        assert ALVEO_U280.axi_bus_bytes == 64

    def test_usable_dsp_90_percent(self):
        # the paper assumes a 90% DSP budget: 7641 usable
        assert ALVEO_U280.usable_dsp() == 7641

    def test_usable_memory_within_bounds(self):
        assert 0 < ALVEO_U280.usable_on_chip_bytes() < ALVEO_U280.on_chip_bytes


class TestDeviceAPI:
    def test_memory_lookup(self):
        assert ALVEO_U280.memory("HBM").kind == "HBM"
        assert ALVEO_U280.memory("DDR4").kind == "DDR4"

    def test_memory_lookup_unknown(self):
        with pytest.raises(ValidationError):
            ALVEO_U280.memory("SRAM")

    def test_u250_has_no_hbm(self):
        assert ALVEO_U250.hbm is None
        with pytest.raises(ValidationError):
            ALVEO_U250.memory("HBM")

    def test_memory_targets(self):
        assert ALVEO_U280.memory_targets == ("HBM", "DDR4")
        assert ALVEO_U250.memory_targets == ("DDR4",)

    def test_per_slr_resources(self):
        assert ALVEO_U280.dsp_per_slr == 8490 // 3
        assert ALVEO_U280.on_chip_bytes_per_slr == ALVEO_U280.on_chip_bytes // 3

    def test_by_name(self):
        assert device_by_name("U280") is ALVEO_U280
        assert device_by_name("Xilinx Alveo U250") is ALVEO_U250
        with pytest.raises(ValidationError):
            device_by_name("U999")

    def test_device_requires_memory(self):
        with pytest.raises(ValidationError):
            FPGADevice("x", 100, 100, 100, 1, None, None)

    def test_memory_bank_validation(self):
        with pytest.raises(ValidationError):
            MemoryBank("FLASH", 1, 1.0, 1)
