"""Application tests: RTM forward pass (Algorithm 1)."""

import numpy as np
import pytest

from repro.apps.rtm import (
    RTM_COMPONENTS,
    RTM_II,
    RTM_MAX_PLANE_EDGE,
    build_rtm_program,
    rtm_app,
)
from repro.model.resources import gdsp_program
from repro.stencil.numpy_eval import run_program
from repro.util.errors import ValidationError


class TestProgramStructure:
    def test_gdsp_matches_table2(self):
        assert gdsp_program(build_rtm_program((8, 8, 8))) == 2444

    def test_six_components(self):
        prog = build_rtm_program((8, 8, 8))
        assert prog.mesh.components == RTM_COMPONENTS

    def test_25pt_8th_order_stencil(self):
        prog = build_rtm_program((8, 8, 8))
        stage1 = prog.groups[0].kernels[0]
        assert stage1.order == 8
        pattern = stage1.spec().pattern("Y")
        # 25-point star: the paper's fpml footprint
        assert pattern.points == 25

    def test_rho_mu_self_stencils(self):
        prog = build_rtm_program((8, 8, 8))
        stage1 = prog.groups[0].kernels[0]
        assert stage1.spec().pattern("rho").is_self_stencil
        assert stage1.spec().pattern("mu").is_self_stencil

    def test_rk4_combination_weights(self):
        # final Y update reads K1..K4 with 1/6,1/3,1/3,1/6
        prog = build_rtm_program((8, 8, 8))
        stage4 = prog.groups[0].kernels[3]
        y_out = stage4.output("Y")
        text = str(y_out.exprs[0])
        for k in ("K1", "K2", "K3", "K4"):
            assert k in text

    def test_plane_limit(self):
        build_rtm_program((RTM_MAX_PLANE_EDGE, RTM_MAX_PLANE_EDGE, 8))
        with pytest.raises(ValidationError):
            build_rtm_program((RTM_MAX_PLANE_EDGE + 1, 8, 8))


class TestNumerics:
    def test_rk4_stability_small_dt(self):
        app = rtm_app((12, 12, 10))
        fields = app.fields((12, 12, 10), seed=7)
        out = run_program(app.program_on((12, 12, 10)), fields, 20)
        assert np.all(np.isfinite(out["Y"].data))
        # with dt=1e-3 and bounded coefficients the field stays bounded
        assert np.abs(out["Y"].data).max() < 10.0

    def test_accelerator_equals_golden(self):
        app = rtm_app((12, 12, 10))
        fields = app.fields((12, 12, 10), seed=8)
        res, _ = app.accelerator((12, 12, 10)).run(fields, 6)
        gold = run_program(app.program_on((12, 12, 10)), fields, 6)
        assert np.array_equal(res["Y"].data, gold["Y"].data)

    def test_constants_unchanged(self):
        app = rtm_app((12, 12, 10))
        fields = app.fields((12, 12, 10), seed=9)
        res, _ = app.accelerator((12, 12, 10)).run(fields, 3)
        assert np.array_equal(res["rho"].data, fields["rho"].data)
        assert np.array_equal(res["mu"].data, fields["mu"].data)


class TestDesign:
    def test_v1_p3_preset(self):
        app = rtm_app()
        d = app.design()
        assert d.V == 1 and d.p == 3
        assert d.initiation_interval == RTM_II

    def test_module_fits_one_slr(self):
        from repro.arch.device import ALVEO_U280
        from repro.arch.floorplan import SLRFloorplan
        from repro.model.resources import module_mem_bytes

        app = rtm_app((64, 64, 32))
        plan = SLRFloorplan(
            ALVEO_U280,
            modules=3,
            module_dsp=2444,
            module_mem_bytes=module_mem_bytes(app.program),
        )
        assert plan.module_fits_one_slr
        assert plan.slrs_used == 3

    def test_paper_runtime_band(self):
        # Fig 5(a): 50^3 at 1800 iterations measured 0.76 s
        app = rtm_app((50, 50, 50))
        w = app.workload((50, 50, 50), 1800)
        sim = app.accelerator((50, 50, 50)).estimate(w)
        assert abs(sim.seconds - 0.76) / 0.76 < 0.15

    def test_fpga_competitive_with_gpu(self):
        # Fig 5(a): FPGA and GPU within ~25% of each other at 50^3
        app = rtm_app((50, 50, 50))
        w = app.workload((50, 50, 50), 1800)
        f = app.accelerator((50, 50, 50)).estimate(w)
        g = app.gpu_model().predict(w)
        assert 0.5 < f.seconds / g.seconds < 1.5
