"""Unit tests for resource estimation (paper eqs. 6, 7, Table II)."""

import pytest

from repro.apps.rtm import build_rtm_program
from repro.arch.device import ALVEO_U280
from repro.mesh.mesh import MeshSpec
from repro.model.resources import (
    DEFAULT_DSP_COSTS,
    DSPCostModel,
    bram_blocks_for_buffer,
    gdsp_kernel,
    gdsp_program,
    max_unroll,
    module_mem_bytes,
    p_dsp,
    p_mem,
    resource_report,
    uram_blocks_for_buffer,
)
from repro.stencil.builders import jacobi2d_5pt, jacobi3d_7pt
from repro.stencil.program import single_kernel_program
from repro.util.errors import ValidationError


class TestGdspTable2:
    def test_poisson_14(self):
        assert gdsp_kernel(jacobi2d_5pt()) == 14

    def test_jacobi_33(self):
        assert gdsp_kernel(jacobi3d_7pt()) == 33

    def test_rtm_2444(self):
        assert gdsp_program(build_rtm_program((8, 8, 8))) == 2444

    def test_custom_cost_model(self):
        costs = DSPCostModel(add=1, mul=1, div=1)
        assert gdsp_kernel(jacobi2d_5pt(), costs) == 6

    def test_costs_validated(self):
        with pytest.raises(ValidationError):
            DSPCostModel(add=-1)


class TestPdspEq6:
    def test_poisson_68(self):
        assert p_dsp(ALVEO_U280, 8, 14) == 68

    def test_jacobi_28(self):
        assert p_dsp(ALVEO_U280, 8, 33) == 28

    def test_rtm_3(self):
        assert p_dsp(ALVEO_U280, 1, 2444) == 3

    def test_scales_inverse_with_v(self):
        assert p_dsp(ALVEO_U280, 16, 14) == p_dsp(ALVEO_U280, 8, 14) // 2


class TestModuleMemEq7:
    def test_2d_is_k_d_m(self, poisson_program):
        # one 2nd-order scalar stencil on a 12-wide mesh: 2 rows of 12 * 4B
        assert module_mem_bytes(poisson_program) == 2 * 12 * 4

    def test_3d_is_k_d_m_n(self, jacobi_program):
        assert module_mem_bytes(jacobi_program) == 2 * 8 * 7 * 4

    def test_shape_override(self, poisson_program):
        assert module_mem_bytes(poisson_program, (8192, 100)) == 2 * 8192 * 4

    def test_rtm_includes_bypass_buffers(self):
        prog = build_rtm_program((64, 64, 16))
        plane = 64 * 64
        # 4 stages x 8 planes x 24B windows
        windows = 4 * 8 * plane * 24
        mem = module_mem_bytes(prog)
        assert mem > windows  # bypass FIFOs for rho/mu/Y add more

    def test_p_mem_bound(self, jacobi_program):
        module = module_mem_bytes(jacobi_program, (250, 250, 250))
        bound = p_mem(ALVEO_U280, module)
        # 250^3 plane buffers: 500 KB/module -> ~70 modules fit
        assert 30 <= bound <= 120

    def test_max_unroll_min_of_bounds(self, jacobi_program):
        module = module_mem_bytes(jacobi_program, (250, 250, 250))
        assert max_unroll(ALVEO_U280, 8, 33, module) == min(
            p_dsp(ALVEO_U280, 8, 33), p_mem(ALVEO_U280, module)
        )

    def test_rtm_plane_limit_comes_from_memory(self):
        # at 64^2 planes, p=3 modules fit; at 128^2 they cannot
        prog64 = build_rtm_program((64, 64, 16))
        assert p_mem(ALVEO_U280, module_mem_bytes(prog64)) >= 3
        mem128 = module_mem_bytes(prog64, (128, 128, 16))
        assert p_mem(ALVEO_U280, mem128) < 3


class TestBufferQuantization:
    def test_uram_block_depth_4096(self):
        # one URAM column holds 4096 x 72b
        assert uram_blocks_for_buffer(4096, 72) == 1
        assert uram_blocks_for_buffer(4097, 72) == 2

    def test_wide_elements_need_columns(self):
        # an RTM 6-float element (192b) needs 3 URAM columns
        assert uram_blocks_for_buffer(100, 192) == 3

    def test_bram_blocks(self):
        assert bram_blocks_for_buffer(512, 72) == 1

    def test_validation(self):
        with pytest.raises(ValidationError):
            uram_blocks_for_buffer(0, 72)


class TestResourceReport:
    def test_poisson_utilization(self, poisson_program):
        report = resource_report(poisson_program, ALVEO_U280, 8, 60, (200, 100))
        assert report.dsp_used == 8 * 60 * 14
        assert 0.7 < report.dsp_utilization < 0.9
        assert report.binding_utilization >= report.mem_utilization

    def test_mem_scales_with_p(self, jacobi_program):
        small = resource_report(jacobi_program, ALVEO_U280, 8, 1, (100, 100, 100))
        big = resource_report(jacobi_program, ALVEO_U280, 8, 20, (100, 100, 100))
        assert big.mem_used_bytes == 20 * small.mem_used_bytes

    def test_uram_blocks_positive(self, jacobi_program):
        report = resource_report(jacobi_program, ALVEO_U280, 8, 4, (100, 100, 100))
        assert report.uram_blocks > 0
