"""Unit tests for the achievable-clock model."""

import pytest

from repro.arch.clocking import DEFAULT_CLOCK_MODEL, ClockModel
from repro.util.errors import ValidationError


class TestClockModel:
    def test_low_utilization_full_speed(self):
        assert DEFAULT_CLOCK_MODEL.estimate_mhz(0.2) == 300.0

    def test_derates_above_knee(self):
        high = DEFAULT_CLOCK_MODEL.estimate_mhz(0.95)
        low = DEFAULT_CLOCK_MODEL.estimate_mhz(0.60)
        assert high < low < 300.0 or low == 300.0

    def test_paper_band_for_big_designs(self):
        # the three paper designs closed timing at 246-261 MHz with
        # utilizations in the 0.8-0.95 range
        for util in (0.80, 0.85, 0.90, 0.95):
            mhz = DEFAULT_CLOCK_MODEL.estimate_mhz(util, slr_crossings=2)
            assert 230.0 <= mhz <= 275.0

    def test_slr_penalty(self):
        base = DEFAULT_CLOCK_MODEL.estimate_mhz(0.9, 0)
        crossed = DEFAULT_CLOCK_MODEL.estimate_mhz(0.9, 2)
        assert crossed == base - 2 * DEFAULT_CLOCK_MODEL.slr_penalty_mhz

    def test_floor(self):
        model = ClockModel(floor_mhz=200.0, derate=10.0)
        assert model.estimate_mhz(1.0, 10) == 200.0

    def test_never_exceeds_target(self):
        assert DEFAULT_CLOCK_MODEL.estimate_mhz(0.0) <= 300.0

    def test_utilization_validated(self):
        with pytest.raises(ValidationError):
            DEFAULT_CLOCK_MODEL.estimate_mhz(1.5)
        with pytest.raises(ValidationError):
            DEFAULT_CLOCK_MODEL.estimate_mhz(0.5, -1)

    def test_model_validation(self):
        with pytest.raises(ValidationError):
            ClockModel(target_mhz=-1)
        with pytest.raises(ValidationError):
            ClockModel(utilization_knee=2.0)
