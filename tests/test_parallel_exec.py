"""The parallel engine: bit-identity, degenerate paths, failure handling.

The contract: ``run_program_parallel`` produces per-mesh results
bit-identical (``np.array_equal``, no tolerance) to the serial chunked
``run_program_stacked`` — and therefore to the golden interpreter — on
every registered application and on random programs, for both worker
backends, with identical chunk-schedule accounting; worker failures
surface as :class:`ParallelExecutionError` and never poison the shared
pool for later dispatches.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.registry import all_apps
from repro.mesh.mesh import Field, MeshSpec
from repro.parallel.executor import (
    ParallelExecutionError,
    plan_token_for,
    run_program_parallel,
    submit_stacked,
)
from repro.parallel.pool import WorkerPool, shutdown_shared_pools
from repro.parallel.worker import CRASH_ENV, bind_instance, instance_cache_size
from repro.resilience import ExecutionCancelled
from repro.stencil.builders import jacobi2d_5pt
from repro.stencil.compiled import CompiledPlanCache, run_program_stacked
from repro.stencil.numpy_eval import run_program
from repro.stencil.program import single_kernel_program
from repro.util.errors import ValidationError

#: small-but-representative functional meshes per registered app
APP_MESHES = {
    "poisson2d": (20, 16),
    "jacobi3d": (14, 12, 8),
    "rtm": (12, 12, 10),
}


@pytest.fixture(scope="module", autouse=True)
def _drain_pools():
    yield
    shutdown_shared_pools()


def _assert_env_equal(gold, got):
    assert set(gold) == set(got)
    for name in gold:
        assert np.array_equal(gold[name].data, got[name].data), name


class TestBitIdentity:
    @pytest.mark.parametrize("app_key", ["poisson2d", "jacobi3d", "rtm"])
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_apps_match_serial_and_interpreter(self, app_key, backend):
        app = all_apps()[app_key]
        shape = APP_MESHES[app_key]
        program = app.program_on(shape)
        envs = [app.fields(shape, seed=60 + s) for s in range(5)]
        niter = 4
        cache = CompiledPlanCache()
        limit = cache.plan_for(program, envs[0]).nbytes * 2  # chunks of 2+2+1
        stats: dict = {}
        parallel = run_program_parallel(
            program, envs, niter, cache=cache, max_stack_bytes=limit,
            stats=stats, max_workers=2, backend=backend,
        )
        assert stats["backend"] == backend
        assert stats["workers"] == 2
        serial_stats: dict = {}
        serial = run_program_stacked(
            program, envs, niter, cache=cache, max_stack_bytes=limit,
            stats=serial_stats,
        )
        # identical chunk schedule, identical accounting
        assert stats["chunks"] == serial_stats["chunks"] == [2, 2, 1]
        assert stats["dispatches"] == serial_stats["dispatches"]
        for env, par, ser in zip(envs, parallel, serial):
            _assert_env_equal(ser, par)
            gold = run_program(program, env, niter, engine="interpreter")
            _assert_env_equal(gold, par)

    def test_single_mesh_batch(self):
        app = all_apps()["poisson2d"]
        shape = APP_MESHES["poisson2d"]
        program = app.program_on(shape)
        env = app.fields(shape, seed=3)
        got = run_program_parallel(
            program, [env], 3, max_workers=2, backend="thread"
        )
        gold = run_program(program, env, 3, engine="interpreter")
        _assert_env_equal(gold, got[0])


class TestDegeneratePaths:
    def test_niter_zero_returns_inputs_without_dispatch(self):
        app = all_apps()["jacobi3d"]
        shape = APP_MESHES["jacobi3d"]
        program = app.program_on(shape)
        envs = [app.fields(shape, seed=s) for s in range(3)]
        stats: dict = {}
        got = run_program_parallel(
            program, envs, 0, stats=stats, max_workers=2
        )
        assert stats == {
            "chunks": [], "dispatches": 0, "stacked_meshes": 0,
            "backend": "serial", "workers": 1, "chunk_seconds": [],
        }
        for env, res in zip(envs, got):
            assert set(res) == set(env)
            for name in env:
                assert np.array_equal(res[name].data, env[name].data)

    def test_negative_niter_and_empty_batch_raise(self):
        app = all_apps()["jacobi3d"]
        shape = APP_MESHES["jacobi3d"]
        program = app.program_on(shape)
        env = app.fields(shape, seed=0)
        with pytest.raises(ValidationError):
            run_program_parallel(program, [env], -1)
        with pytest.raises(ValidationError):
            run_program_parallel(program, [], 2)

    def test_mixed_dtype_falls_back_to_interpreter(self):
        app = all_apps()["rtm"]
        shape = APP_MESHES["rtm"]
        program = app.program_on(shape)
        envs = []
        for s in range(3):
            env = dict(app.fields(shape, seed=s))
            # retype one constant field: the binding no longer shares one
            # dtype, which the serial engine hands to the interpreter
            name = next(n for n in env if n != "U")
            f = env[name]
            spec64 = MeshSpec(f.spec.shape, f.spec.components, np.float64)
            env[name] = Field(name, spec64, f.data.astype(np.float64))
            envs.append(env)
        stats: dict = {}
        got = run_program_parallel(
            program, envs, 2, stats=stats, max_workers=2, backend="thread"
        )
        assert stats["backend"] == "serial"
        assert stats["dispatches"] == len(envs)
        for env, res in zip(envs, got):
            gold = run_program(program, env, 2, engine="interpreter")
            _assert_env_equal(gold, res)

    def test_single_worker_degrades_to_serial_in_process(self):
        app = all_apps()["poisson2d"]
        shape = APP_MESHES["poisson2d"]
        program = app.program_on(shape)
        envs = [app.fields(shape, seed=s) for s in range(4)]
        stats: dict = {}
        got = run_program_parallel(
            program, envs, 3, stats=stats, max_workers=1
        )
        assert stats["backend"] == "serial"
        assert stats["workers"] == 1
        serial = run_program_stacked(program, envs, 3)
        for par, ser in zip(got, serial):
            _assert_env_equal(ser, par)

    def test_auto_backend_picks_threads_for_tiny_chunks(self):
        app = all_apps()["poisson2d"]
        shape = APP_MESHES["poisson2d"]
        program = app.program_on(shape)
        envs = [app.fields(shape, seed=s) for s in range(3)]
        stats: dict = {}
        run_program_parallel(program, envs, 2, stats=stats, max_workers=2)
        # ~5 KB per mesh is far below PROCESS_BACKEND_MIN_BYTES
        assert stats["backend"] == "thread"


class TestFailureHandling:
    def test_thread_worker_exception_names_the_chunk(self, monkeypatch):
        app = all_apps()["poisson2d"]
        shape = APP_MESHES["poisson2d"]
        program = app.program_on(shape)
        envs = [app.fields(shape, seed=s) for s in range(4)]
        monkeypatch.setenv(CRASH_ENV, "1")
        with pytest.raises(ParallelExecutionError, match=r"chunk 1/"):
            run_program_parallel(
                program, envs, 2, max_workers=2, backend="thread"
            )
        monkeypatch.delenv(CRASH_ENV)
        # the same shared pool serves later dispatches untouched
        got = run_program_parallel(
            program, envs, 2, max_workers=2, backend="thread"
        )
        gold = run_program(program, envs[0], 2, engine="interpreter")
        _assert_env_equal(gold, got[0])

    def test_process_worker_death_surfaces_and_pool_recovers(self, monkeypatch):
        app = all_apps()["jacobi3d"]
        shape = APP_MESHES["jacobi3d"]
        program = app.program_on(shape)
        envs = [app.fields(shape, seed=s) for s in range(4)]
        # a dedicated pool: the crash breaks the process executor and the
        # recovery path must replace it on the next submit
        with WorkerPool(max_workers=2, backend="process") as pool:
            monkeypatch.setenv(CRASH_ENV, "1")
            with pytest.raises(ParallelExecutionError):
                run_program_parallel(
                    program, envs, 2, max_workers=2, backend="process",
                    pool=pool,
                )
            monkeypatch.delenv(CRASH_ENV)
            got = run_program_parallel(
                program, envs, 2, max_workers=2, backend="process", pool=pool
            )
            serial = run_program_stacked(program, envs, 2)
            for par, ser in zip(got, serial):
                _assert_env_equal(ser, par)


class TestPlanTokens:
    def test_equal_bindings_share_a_token(self):
        app = all_apps()["jacobi3d"]
        shape = APP_MESHES["jacobi3d"]
        env = app.fields(shape, seed=0)
        a = plan_token_for(app.program_on(shape), env)
        b = plan_token_for(app.program_on(shape), env)
        assert a == b

    def test_distinct_bindings_get_distinct_tokens(self):
        app = all_apps()["jacobi3d"]
        base = plan_token_for(
            app.program_on((14, 12, 8)), app.fields((14, 12, 8), seed=0)
        )
        other_shape = plan_token_for(
            app.program_on((12, 10, 8)), app.fields((12, 10, 8), seed=0)
        )
        other_coeffs = plan_token_for(
            app.program_on((14, 12, 8)),
            app.fields((14, 12, 8), seed=0),
            {"k1": 0.5},
        )
        assert len({base, other_shape, other_coeffs}) == 3

    def test_worker_instance_cache_reuses_bound_plans(self):
        app = all_apps()["poisson2d"]
        shape = APP_MESHES["poisson2d"]
        program = app.program_on(shape)
        env = app.fields(shape, seed=0)
        cache = CompiledPlanCache()
        plan = cache.plan_for(program, env)
        before = instance_cache_size()
        first = bind_instance("tok-a", plan, 2)
        again = bind_instance("tok-a", plan, 2)
        other = bind_instance("tok-a", plan, 3)
        assert first is again
        assert first is not other
        assert instance_cache_size() == before + 2


class TestPendingBatches:
    def test_groups_overlap_and_collect_in_order(self):
        apps = all_apps()
        cache = CompiledPlanCache()
        pending = []
        for app_key in ("poisson2d", "jacobi3d"):
            app = apps[app_key]
            shape = APP_MESHES[app_key]
            program = app.program_on(shape)
            envs = [app.fields(shape, seed=s) for s in range(3)]
            pending.append(
                (program, envs,
                 submit_stacked(program, envs, 3, cache=cache,
                                max_workers=2, backend="thread"))
            )
        for program, envs, batch in pending:
            results = batch.result()
            assert results is batch.result()  # idempotent
            for env, res in zip(envs, results):
                gold = run_program(program, env, 3, engine="interpreter")
                _assert_env_equal(gold, res)

    def test_close_abandons_cleanly(self):
        app = all_apps()["jacobi3d"]
        shape = APP_MESHES["jacobi3d"]
        program = app.program_on(shape)
        envs = [app.fields(shape, seed=s) for s in range(4)]
        batch = submit_stacked(
            program, envs, 3, max_workers=2, backend="process",
            max_stack_bytes=0,  # per-mesh chunks: several segments in flight
        )
        batch.close()
        assert batch.result() == []


class TestPropertyParallelEquivalence:
    @settings(max_examples=15, deadline=None)
    @given(
        mesh_shape=st.tuples(
            st.integers(min_value=9, max_value=13),
            st.integers(min_value=7, max_value=11),
        ),
        batch=st.integers(min_value=1, max_value=5),
        niter=st.integers(min_value=0, max_value=3),
        seed=st.integers(min_value=0, max_value=3),
        backend=st.sampled_from(["thread", "process"]),
    )
    def test_random_workloads_bit_identical(
        self, mesh_shape, batch, niter, seed, backend
    ):
        mesh = MeshSpec(mesh_shape)
        program = single_kernel_program("par_prop", mesh, jacobi2d_5pt())
        envs = [
            {"U": Field.random("U", mesh, seed=seed + b, lo=-1.0, hi=1.0)}
            for b in range(batch)
        ]
        cache = CompiledPlanCache()
        limit = cache.plan_for(program, envs[0]).nbytes  # per-mesh-ish chunks
        got = run_program_parallel(
            program, envs, niter, cache=cache, max_stack_bytes=limit,
            max_workers=2, backend=backend,
        )
        for env, res in zip(envs, got):
            gold = run_program(program, env, niter, engine="interpreter")
            _assert_env_equal(gold, res)


class TestCooperativeCancellation:
    """PendingBatch.cancel: immediate slot release, clean ExecutionCancelled."""

    @pytest.fixture(autouse=True)
    def _quiesce(self):
        # earlier tests' abandoned chunks release their segments when the
        # worker task resolves; drain the pools so the baseline is empty
        import time

        from repro.parallel.shm import live_segments

        shutdown_shared_pools()
        deadline = time.monotonic() + 5.0
        while live_segments() and time.monotonic() < deadline:
            time.sleep(0.01)
        assert live_segments() == ()
        yield

    def _submit_many_chunks(self, batch=6, niter=120):
        from repro.parallel.shm import live_segments

        app = all_apps()["jacobi3d"]
        shape = APP_MESHES["jacobi3d"]
        program = app.program_on(shape)
        envs = [app.fields(shape, seed=s) for s in range(batch)]
        pending = submit_stacked(
            program, envs, niter, max_workers=2, backend="process",
            max_stack_bytes=0,  # per-mesh chunks: one segment each
        )
        assert len(live_segments()) == batch
        return pending

    def test_cancel_releases_pending_chunk_segments(self):
        """The satellite regression: cancelling a batch reclaims the shm
        slots of never-started chunks immediately — not at pool reset."""
        from repro.parallel.shm import live_segments

        pending = self._submit_many_chunks()
        pending.cancel("test teardown")
        # at most the worker width (+1 eagerly queued task) can be past
        # cancellation; everything else must already be reclaimed here
        assert len(live_segments()) <= 3
        with pytest.raises(ExecutionCancelled):
            pending.result()
        assert live_segments() == ()

    def test_result_after_cancel_is_sticky(self):
        pending = self._submit_many_chunks(batch=3, niter=20)
        pending.cancel()
        for _ in range(2):  # the cancelled outcome is stable across calls
            with pytest.raises(ExecutionCancelled):
                pending.result()
        assert live_segments_empty()

    def test_cancel_after_results_is_a_noop(self):
        app = all_apps()["poisson2d"]
        shape = APP_MESHES["poisson2d"]
        program = app.program_on(shape)
        envs = [app.fields(shape, seed=s) for s in range(2)]
        pending = submit_stacked(
            program, envs, 4, max_workers=2, backend="thread"
        )
        results = pending.result()
        pending.cancel("too late")
        assert pending.result() is results
        for env, res in zip(envs, results):
            gold = run_program(program, env, 4, engine="interpreter")
            _assert_env_equal(gold, res)

    def test_pre_set_token_refuses_submit(self):
        from repro.resilience import CancelToken

        app = all_apps()["poisson2d"]
        shape = APP_MESHES["poisson2d"]
        program = app.program_on(shape)
        envs = [app.fields(shape, seed=0)]
        token = CancelToken()
        token.set("called off before dispatch")
        with pytest.raises(ExecutionCancelled):
            submit_stacked(
                program, envs, 4, max_workers=2, backend="thread",
                cancel=token,
            )
        assert live_segments_empty()

    def test_serial_stacked_polls_token_at_chunk_boundaries(self):
        from repro.resilience import CancelToken

        app = all_apps()["poisson2d"]
        shape = APP_MESHES["poisson2d"]
        program = app.program_on(shape)
        envs = [app.fields(shape, seed=s) for s in range(3)]
        token = CancelToken()
        token.set("stop before the first chunk")
        with pytest.raises(ExecutionCancelled):
            run_program_stacked(
                program, envs, 4, max_stack_bytes=0, cancel=token
            )


def live_segments_empty() -> bool:
    from repro.parallel.shm import live_segments

    return live_segments() == ()
