"""MixScheduler: grouping, chunked dispatch accounting, golden validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataflow.scheduler import MixScheduler
from repro.mesh.mesh import MeshSpec
from repro.stencil.compiled import CompiledPlanCache
from repro.stencil.numpy_eval import run_program
from repro.util.errors import ValidationError
from repro.workload import WorkloadMix, WorkloadSpec

#: a three-app mix with duplicate job shapes to exercise merging
MIX = WorkloadMix.parse(
    "poisson2d:24x16:8x2,jacobi3d:16x14x10:6x3,poisson2d:24x16:8x2@2,"
    "rtm:12x12x10:4x2"
)


class TestScheduling:
    def test_groups_merge_and_results_match_interpreter(self):
        run = MixScheduler().run(MIX, validate=True)
        assert run.validated
        # poisson entries merge into one 4-mesh group
        by_app = {g.spec.app: g for g in run.groups}
        assert set(by_app) == {"poisson2d", "jacobi3d", "rtm"}
        assert by_app["poisson2d"].meshes == 4
        assert run.meshes == 9
        assert sum(g.dispatches for g in run.groups) == run.dispatches
        # independent golden check (validate=True already asserted inside)
        for group in run.groups:
            program = group.spec.program()
            state = program.state_fields[0]
            for index, result in enumerate(group.results):
                env = group.spec.fields(seed=index)
                gold = run_program(
                    program, env, group.spec.niter, engine="interpreter"
                )
                assert np.array_equal(gold[state].data, result[state].data)

    def test_chunked_vs_per_mesh_dispatch_counts(self):
        chunked = MixScheduler().run(MIX)
        per_mesh = MixScheduler(stacked_bytes_limit=0).run(MIX)
        assert per_mesh.dispatches == per_mesh.meshes == chunked.meshes
        assert chunked.dispatches < per_mesh.dispatches
        # results agree between scheduling policies, bitwise
        for a, b in zip(chunked.groups, per_mesh.groups):
            assert a.spec == b.spec
            for ra, rb in zip(a.results, b.results):
                for name in ra:
                    assert np.array_equal(ra[name].data, rb[name].data)

    def test_interpreter_engine_is_per_mesh(self):
        run = MixScheduler(engine="interpreter").run(MIX)
        assert run.dispatches == run.meshes
        assert all(set(g.chunks) == {1} for g in run.groups)

    def test_group_for_lookup(self):
        run = MixScheduler().run(MIX)
        spec = WorkloadSpec.parse("poisson2d:24x16:8")
        assert run.group_for(spec).meshes == 4
        with pytest.raises(ValidationError):
            run.group_for(WorkloadSpec.parse("poisson2d:100x80:8"))

    def test_shared_plan_cache_reused_across_runs(self):
        cache = CompiledPlanCache()
        scheduler = MixScheduler(plan_cache=cache)
        scheduler.run(MIX)
        misses = cache.misses
        scheduler.run(MIX)
        assert cache.misses == misses  # second run fully warm

    def test_custom_fields_and_program(self):
        """App-less specs schedule with caller-supplied resolvers."""
        from repro.apps.poisson2d import poisson2d_app

        app = poisson2d_app((20, 16))
        program = app.program_on((20, 16))
        spec = WorkloadSpec(MeshSpec((20, 16)), niter=4, batch=3)

        def fields_for(s, i):
            return app.fields(s.mesh.shape, seed=100 + i)

        run = MixScheduler(
            program_for=lambda s: program, fields_for=fields_for
        ).run(spec, validate=True)
        assert run.meshes == 3
        state = program.state_fields[0]
        gold = run_program(
            program, fields_for(spec, 0), 4, engine="interpreter"
        )
        assert np.array_equal(
            gold[state].data, run.groups[0].results[0][state].data
        )

    def test_appless_spec_without_resolvers_fails(self):
        spec = WorkloadSpec(MeshSpec((20, 16)), niter=4)
        with pytest.raises(ValidationError):
            MixScheduler().run(spec)

    def test_bad_engine_rejected(self):
        with pytest.raises(ValidationError):
            MixScheduler(engine="verilog")

    def test_validation_catches_divergence(self, monkeypatch):
        """A corrupted engine result must raise, not pass silently."""
        import repro.dataflow.scheduler as scheduler_mod

        spec = WorkloadSpec.parse("poisson2d:20x16:4x2")
        real = scheduler_mod.run_program_stacked

        def corrupted(*args, **kwargs):
            results = real(*args, **kwargs)
            state = next(iter(results[0]))
            results[0][state].data[1, 1, 0] += 1.0
            return results

        monkeypatch.setattr(scheduler_mod, "run_program_stacked", corrupted)
        with pytest.raises(ValidationError, match="diverges"):
            MixScheduler().run(spec, validate=True)


class TestParallelScheduling:
    """The parallel engine behind the scheduler: order, accounting, errors."""

    @pytest.fixture(autouse=True, scope="class")
    def _drain_pools(self):
        from repro.parallel.pool import shutdown_shared_pools

        yield
        shutdown_shared_pools()

    def test_parallel_matches_compiled_bitwise(self):
        serial = MixScheduler().run(MIX, validate=True)
        parallel = MixScheduler(max_workers=2, engine="parallel").run(
            MIX, validate=True
        )
        assert parallel.validated
        # identical group order, membership and dispatch accounting —
        # chunks are scheduled at submit time, so out-of-order completion
        # cannot perturb any of it
        assert [g.spec for g in parallel.groups] == [g.spec for g in serial.groups]
        assert [g.chunks for g in parallel.groups] == [g.chunks for g in serial.groups]
        assert parallel.dispatches == serial.dispatches
        for gp, gs in zip(parallel.groups, serial.groups):
            for rp, rs in zip(gp.results, gs.results):
                for name in rs:
                    assert np.array_equal(rp[name].data, rs[name].data)

    def test_single_worker_parallel_degrades_but_stays_correct(self):
        serial = MixScheduler().run(MIX)
        degraded = MixScheduler(max_workers=1, engine="parallel").run(MIX)
        assert degraded.dispatches == serial.dispatches
        for gp, gs in zip(degraded.groups, serial.groups):
            for rp, rs in zip(gp.results, gs.results):
                for name in rs:
                    assert np.array_equal(rp[name].data, rs[name].data)

    def test_worker_failure_names_the_workload(self, monkeypatch):
        from repro.parallel.executor import ParallelExecutionError
        from repro.parallel.worker import CRASH_ENV

        monkeypatch.setenv(CRASH_ENV, "1")
        spec = WorkloadSpec.parse("poisson2d:24x16:8x2")
        with pytest.raises(ParallelExecutionError, match=spec.describe()):
            MixScheduler(max_workers=2, engine="parallel").run(spec)


class TestCancellation:
    """A cancel token threads through the scheduler and is never isolated."""

    def test_pre_set_token_raises_before_any_work(self):
        from repro.resilience import CancelToken, ExecutionCancelled

        token = CancelToken()
        token.set("called off")
        for engine in ("compiled", "parallel", "interpreter"):
            scheduler = MixScheduler(engine=engine, max_workers=2)
            with pytest.raises(ExecutionCancelled):
                scheduler.run(MIX, cancel=token)

    def test_cancellation_is_not_isolated_under_non_strict(self):
        """strict=False isolates workload *failures*; a cancel is a caller
        decision and must abort the whole mix, not skip one group."""
        from repro.resilience import CancelToken, ExecutionCancelled

        token = CancelToken()
        token.set("called off")
        scheduler = MixScheduler(engine="compiled", strict=False)
        with pytest.raises(ExecutionCancelled):
            scheduler.run(MIX, cancel=token)
