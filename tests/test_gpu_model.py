"""Unit tests for the V100 GPU baseline model."""

import pytest

from repro.arch.gpu import NVIDIA_V100
from repro.gpubaseline.model import GPUPerformanceModel
from repro.gpubaseline.traffic import JACOBI_TRAFFIC, POISSON_TRAFFIC, RTM_TRAFFIC


class TestBandwidthCurve:
    def test_monotone_in_cells(self):
        model = GPUPerformanceModel(POISSON_TRAFFIC)
        bws = [model.achievable_bandwidth(c) for c in (10**4, 10**5, 10**6, 10**8)]
        assert all(a < b for a, b in zip(bws, bws[1:]))

    def test_saturates_below_peak_efficiency(self):
        model = GPUPerformanceModel(JACOBI_TRAFFIC)
        peak = NVIDIA_V100.peak_bandwidth * JACOBI_TRAFFIC.peak_efficiency
        assert model.achievable_bandwidth(10**10) < peak
        assert model.achievable_bandwidth(10**10) > 0.99 * peak


class TestPaperRuntimes:
    def test_poisson_baseline_launch_bound(self, poisson_app):
        # small 2D meshes are launch-latency bound: ~0.43-0.62 s for 60000
        # iterations regardless of size (paper Fig 3a)
        model = poisson_app.gpu_model()
        for mesh in ((200, 100), (400, 400)):
            w = poisson_app.workload(mesh, 60000)
            assert 0.4 < model.predict(w).seconds < 0.7

    def test_jacobi_large_meshes_bandwidth_bound(self, jacobi_app):
        model = jacobi_app.gpu_model()
        w = jacobi_app.workload((250, 250, 250), 29000)
        m = model.predict(w)
        assert abs(m.seconds - 6.04) / 6.04 < 0.15  # paper Fig 4(a)

    def test_rtm_chain_runtime(self, rtm_small_app):
        model = rtm_small_app.gpu_model()
        w = rtm_small_app.workload((50, 50, 400), 1800)
        m = model.predict(w)
        assert abs(m.seconds - 3.56) / 3.56 < 0.2  # paper Fig 5(a)

    def test_batching_amortizes_launches(self, poisson_app):
        model = poisson_app.gpu_model()
        solo = model.predict(poisson_app.workload((200, 100), 60000))
        batched = model.predict(poisson_app.workload((200, 100), 60000, batch=100))
        assert batched.seconds < 100 * solo.seconds
        # per-mesh time improves by >5x through batching (paper Fig 3b)
        assert batched.seconds / 100 < solo.seconds / 5


class TestPowerModel:
    def test_idle_floor_small_workload(self, poisson_app):
        m = poisson_app.gpu_model().predict(poisson_app.workload((200, 100), 100))
        assert m.power_w < 110  # paper: ~40 W for single small meshes

    def test_saturated_power_near_paper(self, poisson_app):
        m = poisson_app.gpu_model().predict(
            poisson_app.workload((200, 200), 60000, batch=1000)
        )
        assert 180 <= m.power_w <= 240  # paper: ~210 W on 1000B runs

    def test_energy_consistency(self, jacobi_app):
        m = jacobi_app.gpu_model().predict(jacobi_app.workload((100, 100, 100), 2900))
        assert m.energy_j == pytest.approx(m.power_w * m.seconds)


class TestLogicalBandwidth:
    def test_poisson_logical_equals_physical(self, poisson_app):
        m = poisson_app.gpu_model().predict(poisson_app.workload((400, 400), 60000))
        assert m.logical_bytes == 8.0 * 400 * 400 * 60000

    def test_rtm_chain_traffic(self, rtm_small_app):
        w = rtm_small_app.workload((50, 50, 50), 1800)
        m = rtm_small_app.gpu_model().predict(w)
        assert m.logical_bytes == 440.0 * 125000 * 1800

    def test_fpga_vs_gpu_energy_ratio_rtm(self, rtm_small_app):
        # the headline claim: significant energy savings on batched RTM
        # (paper: >2x from measured powers; our GPU power model is
        # conservative ~150 W where the paper's measured energies imply
        # near-TDP draw, so we assert a 1.4x floor on the modelled ratio)
        w = rtm_small_app.workload((50, 50, 32), 180, batch=40)
        gpu = rtm_small_app.gpu_model().predict(w)
        fpga = rtm_small_app.accelerator((50, 50, 32)).estimate(w)
        assert gpu.energy_j / fpga.energy_j > 1.4
