"""Trace spans, cross-process adoption, and the structured event log."""

from __future__ import annotations

import json
import pickle
import threading

from repro.observability.events import (
    SCHEMA_VERSION,
    EventLog,
    FileSink,
    RingSink,
    read_events,
)
from repro.observability.export import render_trace_table
from repro.observability.tracing import SpanRecord, TraceContext, Tracer


class TestSpans:
    def test_nesting_builds_a_tree(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("sibling"):
                pass
        roots = tracer.tree()
        assert len(roots) == 1
        outer, children = roots[0]
        assert outer.name == "outer"
        assert [c[0].name for c in children] == ["inner", "sibling"]

    def test_duration_is_non_negative(self):
        tracer = Tracer()
        with tracer.span("t"):
            pass
        (record,) = tracer.records()
        assert record.duration >= 0.0
        assert record.end >= record.start

    def test_attrs_recorded(self):
        tracer = Tracer()
        with tracer.span("s", program="jacobi", batch=4):
            pass
        (record,) = tracer.records()
        assert record.attrs == {"program": "jacobi", "batch": 4}

    def test_threads_grow_independent_branches(self):
        tracer = Tracer()
        done = threading.Event()

        def worker():
            with tracer.span("thread-root"):
                done.set()

        with tracer.span("main-root"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        names = {r.name: r.parent_id for r in tracer.records()}
        # the thread's span is NOT a child of the main thread's open span
        assert names["thread-root"] is None

    def test_on_finish_called_per_span(self):
        seen: list[str] = []
        tracer = Tracer(on_finish=lambda r: seen.append(r.name))
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        assert seen == ["b", "a"]  # completion order

    def test_clear(self):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        tracer.clear()
        assert tracer.records() == []


class TestTraceContext:
    def test_context_captures_open_span(self):
        tracer = Tracer()
        with tracer.span("open") as record:
            ctx = tracer.context()
            assert ctx.trace_id == tracer.trace_id
            assert ctx.parent_id == record.span_id
        assert tracer.context().parent_id is None

    def test_picklable(self):
        ctx = TraceContext("abc123", "s7")
        assert pickle.loads(pickle.dumps(ctx)) == ctx

    def test_round_trip_dict(self):
        record = SpanRecord("n", "s1", None, "t", 1.0, 2.0, {"k": "v"})
        again = SpanRecord.from_dict(record.to_dict())
        assert again == record


def _worker(ctx, prefix="w."):
    """A worker-side throwaway tracer, as repro.parallel.worker builds it."""
    return Tracer(
        trace_id=ctx.trace_id, root_parent=ctx.parent_id, id_prefix=prefix
    )


class TestAdoption:
    def test_worker_spans_reattach_under_shipped_parent(self):
        parent = Tracer()
        with parent.span("submit") as submit:
            ctx = parent.context()
        worker = _worker(ctx)
        with worker.span("chunk"):
            pass
        parent.adopt([r.to_dict() for r in worker.records()])
        roots = parent.tree()
        assert len(roots) == 1
        top, children = roots[0]
        assert top.span_id == submit.span_id
        assert [c[0].name for c in children] == ["chunk"]

    def test_colliding_ids_from_sibling_workers_are_remapped(self):
        parent = Tracer()
        with parent.span("submit"):
            ctx = parent.context()
        batches = []
        for _ in range(2):  # two tasks in one worker process both mint w.1
            w = _worker(ctx)
            with w.span("chunk"):
                pass
            batches.append([r.to_dict() for r in w.records()])
        assert batches[0][0]["span_id"] == batches[1][0]["span_id"]
        for batch in batches:
            parent.adopt(batch)
        ids = [r.span_id for r in parent.records()]
        assert len(ids) == len(set(ids))

    def test_adoption_while_local_parent_still_open(self):
        # the local root span is open (not yet in the ledger) while the
        # worker batch arrives; adoption must neither duplicate ids nor
        # cycle the rendered tree
        parent = Tracer()
        with parent.span("root"):  # local s1, still open
            ctx = parent.context()
            worker = _worker(ctx)
            with worker.span("chunk"):
                pass
            parent.adopt([r.to_dict() for r in worker.records()])
        ids = [r.span_id for r in parent.records()]
        assert len(ids) == len(set(ids))
        # and the chunk hangs off the (now closed) local root
        roots = parent.tree()
        assert len(roots) == 1
        assert [c[0].name for c in roots[0][1]] == ["chunk"]
        assert "chunk" in render_trace_table(parent)

    def test_worker_prefix_disjoint_from_parent_ids(self):
        # the executor ships the parent span id by value; a worker tracer
        # with the parent's own prefix would make that reference ambiguous
        from repro.observability.tracing import TraceContext as TC
        from repro.parallel.worker import _worker_tracer

        tracer = _worker_tracer(TC("t", "s1"))
        with tracer.span("chunk"):
            pass
        (record,) = tracer.records()
        assert not record.span_id.startswith("s")
        assert record.parent_id == "s1"

    def test_intra_batch_parent_links_follow_remap(self):
        parent = Tracer()
        with parent.span("submit"):
            ctx = parent.context()
        worker = _worker(ctx)
        with worker.span("outer"):
            with worker.span("inner"):
                pass
        parent.adopt([r.to_dict() for r in worker.records()])
        by_name = {r.name: r for r in parent.records()}
        assert by_name["inner"].parent_id == by_name["outer"].span_id


class TestRenderTraceTable:
    def test_indented_rows(self):
        tracer = Tracer()
        with tracer.span("outer", k=1):
            with tracer.span("inner"):
                pass
        text = render_trace_table(tracer)
        lines = text.splitlines()
        assert lines[0].startswith("span")
        assert any(line.startswith("outer") for line in lines)
        assert any(line.startswith("  inner") for line in lines)
        assert "k=1" in text

    def test_empty(self):
        assert "no spans" in render_trace_table(Tracer())


class TestEventLog:
    def test_ring_keeps_last_n(self):
        ring = RingSink(capacity=2)
        log = EventLog(ring)
        for i in range(4):
            log.emit("tick", i=i)
        assert [r["i"] for r in ring.records] == [2, 3]
        assert ring.kinds() == ["tick", "tick"]

    def test_records_are_stamped(self):
        ring = RingSink()
        log = EventLog(ring)
        log.emit("compile", program="jacobi")
        (record,) = ring.records
        assert record["v"] == SCHEMA_VERSION
        assert record["seq"] == 1
        assert record["kind"] == "compile"
        assert record["program"] == "jacobi"
        assert record["ts"] > 0

    def test_of_kind_filters(self):
        ring = RingSink()
        log = EventLog(ring)
        log.emit("a")
        log.emit("b")
        log.emit("a")
        assert len(ring.of_kind("a")) == 2

    def test_file_sink_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(FileSink(path))
        log.emit("one", x=1)
        log.emit("two", y=[1, 2])
        log.close()
        records = list(read_events(path))
        assert [r["kind"] for r in records] == ["one", "two"]
        assert records[1]["y"] == [1, 2]

    def test_read_events_skips_corrupt_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        good = json.dumps({"v": 1, "kind": "ok"})
        path.write_text(f"{good}\nnot json\n42\n{good}\n")
        assert len(list(read_events(path))) == 2

    def test_file_sink_survives_write_failure(self, tmp_path):
        sink = FileSink(tmp_path / "dir-not-file")
        (tmp_path / "dir-not-file").mkdir()  # open() will fail
        log = EventLog(sink)
        log.emit("doomed")  # must not raise
        assert sink._dead
