"""Unit tests for unit constants and formatting."""

from repro.util.units import (
    GB,
    GIB,
    KIB,
    MIB,
    bytes_to_gib,
    bytes_to_mib,
    fmt_bandwidth,
    fmt_bytes,
    fmt_seconds,
)


class TestConstants:
    def test_binary_sizes(self):
        assert KIB == 1024
        assert MIB == 1024**2
        assert GIB == 1024**3

    def test_decimal_gb(self):
        assert GB == 10**9


class TestConversions:
    def test_bytes_to_mib(self):
        assert bytes_to_mib(MIB) == 1.0

    def test_bytes_to_gib(self):
        assert bytes_to_gib(2 * GIB) == 2.0


class TestFormatting:
    def test_fmt_bytes_small(self):
        assert fmt_bytes(512) == "512 B"

    def test_fmt_bytes_mib(self):
        assert "MiB" in fmt_bytes(34.5 * MIB)

    def test_fmt_seconds_seconds(self):
        assert fmt_seconds(2.5) == "2.5 s"

    def test_fmt_seconds_millis(self):
        assert "ms" in fmt_seconds(0.005)

    def test_fmt_seconds_micros(self):
        assert "us" in fmt_seconds(5e-6)

    def test_fmt_bandwidth_paper_convention(self):
        # the paper reports decimal GB/s
        assert fmt_bandwidth(460 * GB) == "460.0 GB/s"
