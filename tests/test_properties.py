"""Property-based tests (hypothesis) on core invariants.

These cover the properties the whole reproduction rests on:

* window-buffer streaming == vectorized golden evaluation, for arbitrary
  star stencils, mesh shapes and data;
* overlapped tiling == un-tiled execution, for arbitrary tile/halo splits;
* the cycle models' structural identities (batching monotonicity, eq. (15)
  limits, plan coverage).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.dataflow.tiler import SpatialTiler, plan_blocks
from repro.dataflow.window import stream_iterate_2d
from repro.mesh.mesh import Field, MeshSpec
from repro.model.cycles import (
    batched_cycles_2d,
    batched_cycles_per_mesh_2d,
    baseline_cycles_2d,
)
from repro.model.design import DesignPoint
from repro.model.tiling import TileDesign, valid_ratio
from repro.stencil.builders import star_offsets, weighted_star_kernel
from repro.stencil.numpy_eval import apply_kernel, run_program
from repro.stencil.program import single_kernel_program


# --------------------------------------------------------------------------- #
# strategies
# --------------------------------------------------------------------------- #
def star_kernel_strategy(draw, radius: int):
    offsets = star_offsets(2, radius)
    weights = {}
    for off in offsets:
        weights[tuple(off)] = draw(
            st.floats(min_value=-1.0, max_value=1.0, allow_nan=False, width=32)
        )
    return weighted_star_kernel(f"star_r{radius}", "U", 2, radius, weights=weights)


@st.composite
def mesh_and_kernel(draw):
    radius = draw(st.integers(min_value=1, max_value=3))
    m = draw(st.integers(min_value=2 * radius + 1, max_value=24))
    n = draw(st.integers(min_value=2 * radius + 1, max_value=20))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    kernel = star_kernel_strategy(draw, radius)
    return m, n, seed, kernel


# --------------------------------------------------------------------------- #
# streaming equivalence
# --------------------------------------------------------------------------- #
@given(mesh_and_kernel())
@settings(max_examples=40, deadline=None)
def test_stream_equals_golden_for_arbitrary_stars(case):
    m, n, seed, kernel = case
    field = Field.random("U", MeshSpec((m, n)), seed=seed)
    golden = apply_kernel(kernel, {"U": field})["U"]
    streamed = stream_iterate_2d(kernel, {"U": field})["U"]
    assert np.array_equal(golden.data, streamed.data)


# --------------------------------------------------------------------------- #
# tiling equivalence
# --------------------------------------------------------------------------- #
@given(
    m=st.integers(min_value=12, max_value=48),
    n=st.integers(min_value=5, max_value=16),
    tile=st.integers(min_value=6, max_value=32),
    p=st.integers(min_value=1, max_value=3),
    passes=st.integers(min_value=1, max_value=3),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=30, deadline=None)
def test_tiled_equals_untiled_2d(m, n, tile, p, passes, seed):
    from repro.stencil.builders import jacobi2d_5pt

    if tile <= 2 * p:  # halo would consume the tile
        tile = 2 * p + 2
    spec = MeshSpec((m, n))
    prog = single_kernel_program("p", spec, jacobi2d_5pt())
    field = Field.random("U", spec, seed=seed)
    design = DesignPoint(1, p, 250.0, "DDR4", TileDesign((tile,)))
    tiler = SpatialTiler(prog, design, None)
    niter = p * passes
    ours = tiler.run({"U": field}, niter)
    gold = run_program(prog, {"U": field}, niter, engine="interpreter")
    assert np.array_equal(ours["U"].data, gold["U"].data)


# --------------------------------------------------------------------------- #
# block planning
# --------------------------------------------------------------------------- #
@given(
    extent=st.integers(min_value=1, max_value=4000),
    block=st.integers(min_value=1, max_value=512),
    halo=st.integers(min_value=0, max_value=24),
)
@settings(max_examples=200, deadline=None)
def test_plan_blocks_covers_axis_exactly(extent, block, halo):
    if block <= 2 * halo and block < extent:
        block = 2 * halo + 1
    plans = plan_blocks(extent, block, halo)
    # valid regions partition [0, extent)
    assert plans[0].valid_start == 0
    assert plans[-1].valid_end == extent
    for a, b in zip(plans, plans[1:]):
        assert a.valid_end == b.valid_start
    for p in plans:
        # valid region is inside the block and blocks stay in bounds
        assert 0 <= p.start <= p.valid_start < p.valid_end <= p.end <= extent
        assert p.extent <= block


@given(
    extent=st.integers(min_value=50, max_value=4000),
    block=st.integers(min_value=30, max_value=512),
    halo=st.integers(min_value=1, max_value=12),
)
@settings(max_examples=100, deadline=None)
def test_plan_blocks_interior_halo_guarantee(extent, block, halo):
    if block <= 2 * halo:
        block = 2 * halo + 4
    plans = plan_blocks(extent, block, halo)
    for i, p in enumerate(plans):
        if p.start > 0:
            assert p.valid_start - p.start >= halo
        if p.end < extent:
            assert p.end - p.valid_end >= halo


# --------------------------------------------------------------------------- #
# cycle-model identities
# --------------------------------------------------------------------------- #
@given(
    m=st.integers(min_value=1, max_value=512),
    n=st.integers(min_value=1, max_value=512),
    V=st.sampled_from([1, 2, 4, 8, 16]),
    p=st.integers(min_value=1, max_value=64),
    batch=st.integers(min_value=1, max_value=64),
)
@settings(max_examples=200, deadline=None)
def test_batching_never_worse_than_sequential(m, n, V, p, batch):
    niter = p  # one pass
    batched = batched_cycles_2d(m, n, batch, niter, V, p, 2)
    sequential = batch * baseline_cycles_2d(m, n, niter, V, p, 2)
    assert batched <= sequential


@given(
    m=st.integers(min_value=1, max_value=512),
    n=st.integers(min_value=1, max_value=512),
    V=st.sampled_from([1, 2, 4, 8]),
    p=st.integers(min_value=1, max_value=64),
)
@settings(max_examples=200, deadline=None)
def test_eq15_per_mesh_decreasing_in_batch(m, n, V, p):
    values = [
        batched_cycles_per_mesh_2d(m, n, b, V, p, 2) for b in (1, 2, 8, 64, 1024)
    ]
    assert all(a >= b for a, b in zip(values, values[1:]))


@given(
    M=st.integers(min_value=16, max_value=8192),
    p=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=100, deadline=None)
def test_valid_ratio_bounds(M, p):
    D = 2
    if M <= p * D:
        M = p * D + 1
    r = valid_ratio(M, None, p, D)
    assert 0.0 < r < 1.0
    # larger blocks always waste less
    r2 = valid_ratio(2 * M, None, p, D)
    assert r2 > r


@given(
    m=st.integers(min_value=1, max_value=300),
    V=st.sampled_from([1, 2, 4, 8, 16]),
)
@settings(max_examples=100, deadline=None)
def test_vector_padding_never_loses_cells(m, V):
    from repro.mesh.padding import padded_row_length

    padded = padded_row_length(m, V)
    assert padded >= m
    assert padded % V == 0
    assert padded - m < V


# --------------------------------------------------------------------------- #
# Pareto-dominance invariants (repro.dse)
# --------------------------------------------------------------------------- #
def _value_points(draw, n_objectives: int):
    n_points = draw(st.integers(min_value=1, max_value=40))
    return [
        tuple(
            draw(st.floats(min_value=0.0, max_value=10.0, allow_nan=False))
            for _ in range(n_objectives)
        )
        for _ in range(n_points)
    ]


@st.composite
def pareto_case(draw):
    from repro.dse.objectives import Objective

    n_objectives = draw(st.integers(min_value=1, max_value=4))
    directions = [
        draw(st.sampled_from(["min", "max"])) for _ in range(n_objectives)
    ]
    objectives = tuple(
        Objective(f"o{i}", d, lambda c: 0.0) for i, d in enumerate(directions)
    )
    points = _value_points(draw, n_objectives)
    return objectives, points


@given(pareto_case())
@settings(max_examples=100, deadline=None)
def test_pareto_front_members_mutually_nondominated(case):
    from repro.dse.pareto import ParetoFront, dominates

    objectives, points = case
    front = ParetoFront(objectives)
    for point in points:
        front.add({o.name: v for o, v in zip(objectives, point)})
    vectors = [m.vector for m in front]
    for a in vectors:
        for b in vectors:
            assert not dominates(a, b)


@given(pareto_case())
@settings(max_examples=100, deadline=None)
def test_pareto_rejections_are_justified_and_counted(case):
    from repro.dse.pareto import ParetoFront, dominates

    objectives, points = case
    front = ParetoFront(objectives)
    for point in points:
        values = {o.name: v for o, v in zip(objectives, point)}
        vec = front.vector_of(values)
        before = [m.vector for m in front]
        added = front.add(values)
        if not added:
            # every rejection is witnessed by a dominating (or equal) member
            assert any(dominates(b, vec) or b == vec for b in before)
    # accounting identity: every candidate is added or rejected, and every
    # added member either survives or was evicted later
    assert front.considered == len(points)
    assert len(front) == front.considered - front.rejected - front.evicted


@given(pareto_case())
@settings(max_examples=100, deadline=None)
def test_pareto_front_is_insertion_order_invariant(case):
    from repro.dse.pareto import ParetoFront

    objectives, points = case
    forward, backward = ParetoFront(objectives), ParetoFront(objectives)
    for point in points:
        forward.add({o.name: v for o, v in zip(objectives, point)})
    for point in reversed(points):
        backward.add({o.name: v for o, v in zip(objectives, point)})
    assert sorted(m.vector for m in forward) == sorted(m.vector for m in backward)


# --------------------------------------------------------------------------- #
# parameter-space identities (repro.dse)
# --------------------------------------------------------------------------- #
@st.composite
def toy_space(draw):
    from repro.dse.space import Parameter, ParameterSpace

    n_axes = draw(st.integers(min_value=1, max_value=4))
    params = []
    for i in range(n_axes):
        size = draw(st.integers(min_value=1, max_value=5))
        params.append(Parameter(f"axis{i}", tuple(range(size))))
    return ParameterSpace(params)


@given(toy_space(), st.integers(min_value=0, max_value=2**16))
@settings(max_examples=100, deadline=None)
def test_space_index_config_roundtrip(space, raw_index):
    index = raw_index % space.size
    config = space.config_at(index)
    assert space.index_of(config) == index


@given(toy_space(), st.integers(min_value=0, max_value=2**16))
@settings(max_examples=100, deadline=None)
def test_space_neighbor_stays_on_grid_and_moves_one_axis(space, seed):
    import random

    rng = random.Random(seed)
    config = space.sample(rng)
    moved = space.neighbor(config, rng)
    space.validate(moved)
    diffs = [k for k in config if config[k] != moved[k]]
    assert len(diffs) <= 1
