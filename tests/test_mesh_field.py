"""Unit tests for Field storage and views."""

import numpy as np
import pytest

from repro.mesh.mesh import Field, MeshSpec
from repro.util.errors import ValidationError


class TestConstruction:
    def test_zeros_default(self, spec2d):
        f = Field.zeros("U", spec2d)
        assert f.data.shape == spec2d.storage_shape
        assert not f.data.any()

    def test_full(self, spec2d):
        f = Field.full("U", spec2d, 2.5)
        assert np.all(f.data == np.float32(2.5))

    def test_random_reproducible(self, spec2d):
        a = Field.random("U", spec2d, seed=3)
        b = Field.random("U", spec2d, seed=3)
        assert np.array_equal(a.data, b.data)

    def test_random_seed_changes(self, spec2d):
        a = Field.random("U", spec2d, seed=3)
        b = Field.random("U", spec2d, seed=4)
        assert not np.array_equal(a.data, b.data)

    def test_scalar_array_promoted_to_component_axis(self, spec2d):
        raw = np.ones(tuple(reversed(spec2d.shape)), dtype=np.float32)
        f = Field("U", spec2d, raw)
        assert f.data.shape == spec2d.storage_shape

    def test_rejects_wrong_shape(self, spec2d):
        with pytest.raises(ValidationError):
            Field("U", spec2d, np.ones((3, 3, 1), dtype=np.float32))

    def test_dtype_cast(self, spec2d):
        raw = np.ones(spec2d.storage_shape, dtype=np.float64)
        f = Field("U", spec2d, raw)
        assert f.data.dtype == np.float32


class TestFromFunction:
    def test_coordinates_in_paper_order(self):
        spec = MeshSpec((4, 3))
        f = Field.from_function("U", spec, lambda x, y: x + 10 * y)
        # paper point (x=2, y=1) -> storage [y=1, x=2]
        assert f.at(2, 1) == 12.0

    def test_3d(self):
        spec = MeshSpec((3, 4, 5))
        f = Field.from_function("U", spec, lambda x, y, z: x + 10 * y + 100 * z)
        assert f.at(1, 2, 3) == 321.0


class TestViews:
    def test_values_squeezes_scalar(self, field2d):
        assert field2d.values().ndim == 2

    def test_values_keeps_vector(self):
        spec = MeshSpec((4, 4), components=6)
        f = Field.zeros("Y", spec)
        assert f.values().ndim == 3

    def test_interior_shape(self, field2d):
        inner = field2d.interior((1, 1))
        n, m, _ = field2d.spec.storage_shape
        assert inner.shape == (n - 2, m - 2, 1)

    def test_at_component(self):
        spec = MeshSpec((4, 4), components=2)
        f = Field.zeros("Y", spec)
        f.data[1, 2, 1] = 7.0
        assert f.at(2, 1, component=1) == 7.0

    def test_at_rejects_wrong_rank(self, field2d):
        with pytest.raises(ValidationError):
            field2d.at(1, 2, 3)

    def test_rows_streaming_order(self):
        spec = MeshSpec((3, 2))
        f = Field.from_function("U", spec, lambda x, y: x + 10 * y)
        rows = list(f.rows())
        assert len(rows) == 2
        assert rows[0][:, 0].tolist() == [0.0, 1.0, 2.0]
        assert rows[1][:, 0].tolist() == [10.0, 11.0, 12.0]


class TestCopyCompare:
    def test_copy_is_deep(self, field2d):
        c = field2d.copy()
        c.data[0, 0, 0] += 1.0
        assert field2d.data[0, 0, 0] != c.data[0, 0, 0]

    def test_copy_rename(self, field2d):
        assert field2d.copy("V").name == "V"

    def test_allclose_exact_default(self, field2d):
        c = field2d.copy()
        assert field2d.allclose(c)
        c.data[0, 0, 0] += 1e-3
        assert not field2d.allclose(c)

    def test_allclose_different_spec(self, field2d, field3d):
        assert not field2d.allclose(field3d)
