"""Unit tests for study persistence, budgets and resume."""

import json

import pytest

from repro.arch.device import ALVEO_U280
from repro.dse.evaluate import Evaluator
from repro.dse.objectives import ENERGY, RUNTIME
from repro.dse.space import model_space
from repro.dse.strategies import ExhaustiveSearch, RandomSearch
from repro.dse.study import BudgetExhausted, Study
from repro.model.design import Workload


@pytest.fixture
def problem(jacobi_app):
    program = jacobi_app.program_on((64, 64, 64))
    workload = Workload(program.mesh, 100)
    space = model_space(program, ALVEO_U280, workload)

    def evaluator():
        return Evaluator(
            program, ALVEO_U280, workload, objectives=(RUNTIME, ENERGY)
        )

    return space, evaluator


class TestBudget:
    def test_ask_raises_when_spent(self, problem):
        space, evaluator = problem
        study = Study(space, evaluator())
        study._budget = 1
        study.ask(space.config_at(0))
        with pytest.raises(BudgetExhausted):
            study.ask(space.config_at(1))

    def test_seen_configs_are_free(self, problem):
        space, evaluator = problem
        study = Study(space, evaluator())
        study._budget = 1
        config = space.config_at(0)
        study.ask(config)
        study.ask(config)  # duplicate: no BudgetExhausted
        assert len(study.trials) == 1

    def test_ask_many_truncates_to_budget(self, problem):
        space, evaluator = problem
        study = Study(space, evaluator())
        study._budget = 3
        study.ask_many([space.config_at(i) for i in range(10)])
        assert len(study.trials) == 3


class TestQueries:
    def test_best_and_top_ordering(self, problem):
        space, evaluator = problem
        study = Study(space, evaluator()).run(RandomSearch(seed=0), trials=30)
        top = study.top(5)
        assert top[0].number == study.best().number
        scores = [t.score for t in top]
        assert scores == sorted(scores)

    def test_pareto_front_payloads_are_trials(self, problem):
        space, evaluator = problem
        study = Study(space, evaluator()).run(RandomSearch(seed=0), trials=30)
        front = study.pareto_front()
        assert len(front) >= 1
        for member in front:
            assert member.payload in study.trials

    def test_empty_study(self, problem):
        space, evaluator = problem
        study = Study(space, evaluator())
        assert study.best() is None
        assert study.top(3) == []
        assert len(study.pareto_front()) == 0


class TestJournal:
    def test_every_trial_is_one_json_line(self, problem, tmp_path):
        space, evaluator = problem
        path = tmp_path / "study.jsonl"
        study = Study(space, evaluator(), path=path)
        study.run(RandomSearch(seed=2), trials=12)
        header, *lines = path.read_text().splitlines()
        assert json.loads(header)["study"] == study.fingerprint()
        assert len(lines) == 12
        for line in lines:
            obj = json.loads(line)
            assert {"number", "config", "feasible", "values", "design"} <= set(obj)

    def test_resume_replays_without_reevaluating(self, problem, tmp_path):
        space, evaluator = problem
        path = tmp_path / "study.jsonl"
        Study(space, evaluator(), path=path).run(ExhaustiveSearch(), trials=25)

        ev = evaluator()
        resumed = Study(space, ev, path=path, resume=True)
        assert resumed.replayed == 25
        resumed.run(ExhaustiveSearch(), trials=25)
        # the exhaustive replay revisits the same grid prefix: all free
        assert ev.evaluations == 25  # only the NEW trials hit the model
        assert len(resumed.trials) == 50
        assert len(path.read_text().splitlines()) == 51  # header + 50 trials

    def test_resumed_scores_match_fresh_evaluation(self, problem, tmp_path):
        space, evaluator = problem
        path = tmp_path / "study.jsonl"
        first = Study(space, evaluator(), path=path)
        first.run(RandomSearch(seed=3), trials=10)

        resumed = Study(space, evaluator(), path=path, resume=True)
        fresh = Study(space, evaluator())
        for trial in resumed.trials:
            again = fresh.ask(trial.config)
            assert again.feasible == trial.feasible
            if trial.feasible:
                assert again.values == pytest.approx(trial.result.values)
                assert again.design == trial.result.design

    def test_fresh_study_rotates_stale_journal(self, problem, tmp_path):
        space, evaluator = problem
        path = tmp_path / "study.jsonl"
        Study(space, evaluator(), path=path).run(RandomSearch(seed=1), trials=5)
        old_contents = path.read_text()
        study = Study(space, evaluator(), path=path)  # resume NOT requested
        assert study.trials == []
        assert not path.exists()
        # the old trials are preserved, not destroyed
        assert (tmp_path / "study.jsonl.bak").read_text() == old_contents

    def test_journal_in_new_directory_is_created(self, problem, tmp_path):
        space, evaluator = problem
        path = tmp_path / "a" / "b" / "study.jsonl"
        study = Study(space, evaluator(), path=path)
        study.run(RandomSearch(seed=1), trials=2)
        assert len(path.read_text().splitlines()) == 3  # header + 2 trials

    def test_truncated_last_line_is_tolerated(self, problem, tmp_path):
        space, evaluator = problem
        path = tmp_path / "study.jsonl"
        Study(space, evaluator(), path=path).run(RandomSearch(seed=1), trials=5)
        with path.open("a") as fh:
            fh.write('{"number": 5, "config": {"mem')  # killed mid-write
        resumed = Study(space, evaluator(), path=path, resume=True)
        assert resumed.replayed == 5

    def test_missing_journal_resume_starts_empty(self, problem, tmp_path):
        space, evaluator = problem
        study = Study(space, evaluator(), path=tmp_path / "nope.jsonl", resume=True)
        assert study.trials == []

    def test_resume_refuses_a_different_workload(self, problem, tmp_path, jacobi_app):
        from repro.util.errors import ValidationError

        space, evaluator = problem
        path = tmp_path / "study.jsonl"
        Study(space, evaluator(), path=path).run(RandomSearch(seed=1), trials=3)

        program = jacobi_app.program_on((32, 32, 32))  # not the journal's mesh
        other = Workload(program.mesh, 10)
        other_eval = Evaluator(program, ALVEO_U280, other, objectives=(RUNTIME, ENERGY))
        other_space = model_space(program, ALVEO_U280, other)
        with pytest.raises(ValidationError):
            Study(other_space, other_eval, path=path, resume=True)
