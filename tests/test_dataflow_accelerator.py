"""Unit tests for the top-level simulated accelerator."""

import numpy as np
import pytest

from repro.dataflow.accelerator import FPGAAccelerator, HostModel
from repro.mesh.mesh import Field, MeshSpec
from repro.model.design import DesignPoint
from repro.model.tiling import TileDesign
from repro.stencil.numpy_eval import run_program
from repro.util.errors import ValidationError


class TestRun:
    def test_results_match_golden(self, poisson_program, field2d):
        acc = FPGAAccelerator(poisson_program, DesignPoint(2, 3, 250.0))
        result, report = acc.run({"U": field2d}, 6)
        gold = run_program(poisson_program, {"U": field2d}, 6, engine="interpreter")
        assert np.array_equal(result["U"].data, gold["U"].data)
        assert report.cycles > 0

    def test_report_includes_host_overhead(self, poisson_program, field2d):
        host = HostModel(invocation_s=0.5, per_pass_s=0.0)
        acc = FPGAAccelerator(poisson_program, DesignPoint(2, 3, 250.0), host=host)
        _, report = acc.run({"U": field2d}, 6)
        assert report.seconds == pytest.approx(report.kernel_seconds + 0.5)

    def test_report_passes(self, poisson_program, field2d):
        acc = FPGAAccelerator(poisson_program, DesignPoint(2, 3, 250.0))
        _, report = acc.run({"U": field2d}, 9)
        assert report.passes == 3

    def test_bandwidth_and_energy_derived(self, poisson_program, field2d):
        acc = FPGAAccelerator(poisson_program, DesignPoint(2, 3, 250.0))
        _, report = acc.run({"U": field2d}, 6)
        assert report.logical_bandwidth == pytest.approx(
            report.logical_bytes / report.seconds
        )
        assert report.energy_j == pytest.approx(report.power_w * report.seconds)

    def test_tiled_run(self):
        spec = MeshSpec((48, 10))
        from repro.stencil.builders import jacobi2d_5pt
        from repro.stencil.program import single_kernel_program

        prog = single_kernel_program("p", spec, jacobi2d_5pt())
        f = Field.random("U", spec, seed=41)
        design = DesignPoint(2, 2, 250.0, "DDR4", TileDesign((16,)))
        acc = FPGAAccelerator(prog, design)
        result, report = acc.run({"U": f}, 4)
        gold = run_program(prog, {"U": f}, 4, engine="interpreter")
        assert np.array_equal(result["U"].data, gold["U"].data)
        assert report.cycles > 0


class TestRunBatch:
    def test_batch_results(self, poisson_program, spec2d):
        acc = FPGAAccelerator(poisson_program, DesignPoint(2, 3, 250.0))
        batch = [{"U": Field.random("U", spec2d, seed=i)} for i in range(3)]
        results, report = acc.run_batch(batch, 6)
        assert len(results) == 3
        assert report.cycles > 0

    def test_batch_rejected_on_tiled_design(self, poisson_program, spec2d):
        design = DesignPoint(2, 2, 250.0, "DDR4", TileDesign((8,)))
        acc = FPGAAccelerator(poisson_program, design)
        with pytest.raises(ValidationError, match="batched"):
            acc.run_batch([{"U": Field.random("U", spec2d, seed=0)}], 2)


class TestEstimate:
    def test_estimate_matches_run_report(self, poisson_program, field2d, poisson_app):
        acc = FPGAAccelerator(poisson_program, DesignPoint(2, 3, 250.0))
        _, run_report = acc.run({"U": field2d}, 6)
        w = poisson_app.workload(field2d.spec.shape, 6)
        est = acc.estimate(w)
        assert est.cycles == run_report.cycles
        assert est.seconds == run_report.seconds

    def test_estimate_paper_scale_without_numerics(self, poisson_app):
        # 20000^2 at 6000 iterations would be infeasible functionally;
        # the estimate path answers instantly
        design = poisson_app.design(tile=(8000,))
        acc = poisson_app.accelerator((20000, 20000), design)
        est = acc.estimate(poisson_app.workload((20000, 20000), 6000))
        assert 15.0 < est.seconds < 30.0  # paper-derived ~21 s

    def test_memory_bound_designs_slower(self, poisson_app):
        # V=16 needs 32 GB/s; two HBM channels supply ~28.75 GB/s, so the
        # streaming rate, not the pipeline, limits a hypothetical V=16 run
        w = poisson_app.workload((400, 400), 600)
        fast = poisson_app.accelerator((400, 400), DesignPoint(8, 10, 250.0)).estimate(w)
        # same pipeline at double V: fewer compute cycles, same traffic
        wide = poisson_app.accelerator((400, 400), DesignPoint(16, 10, 250.0)).estimate(w)
        assert wide.seconds <= fast.seconds  # still no slower overall
