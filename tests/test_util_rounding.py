"""Unit tests for integer rounding helpers."""

import pytest

from repro.util.errors import ValidationError
from repro.util.rounding import ceil_div, is_power_of_two, round_down, round_up


class TestCeilDiv:
    def test_exact_division(self):
        assert ceil_div(12, 4) == 3

    def test_rounds_up(self):
        assert ceil_div(13, 4) == 4

    def test_zero_numerator(self):
        assert ceil_div(0, 5) == 0

    def test_one(self):
        assert ceil_div(1, 100) == 1

    def test_rejects_zero_divisor(self):
        with pytest.raises(ValidationError):
            ceil_div(10, 0)

    def test_rejects_negative_numerator(self):
        with pytest.raises(ValidationError):
            ceil_div(-1, 3)

    def test_large_values(self):
        assert ceil_div(10**12 + 1, 10**6) == 10**6 + 1


class TestRoundUp:
    def test_already_multiple(self):
        assert round_up(16, 8) == 16

    def test_rounds_up(self):
        assert round_up(17, 8) == 24

    def test_zero(self):
        assert round_up(0, 8) == 0

    def test_paper_row_padding(self):
        # a 200-wide row at V=8 stays 200; 201 pads to 208
        assert round_up(200, 8) == 200
        assert round_up(201, 8) == 208


class TestRoundDown:
    def test_already_multiple(self):
        assert round_down(16, 8) == 16

    def test_rounds_down(self):
        assert round_down(17, 8) == 16

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            round_down(-8, 8)


class TestIsPowerOfTwo:
    @pytest.mark.parametrize("v", [1, 2, 4, 8, 64, 1024])
    def test_powers(self, v):
        assert is_power_of_two(v)

    @pytest.mark.parametrize("v", [0, -2, 3, 6, 1023])
    def test_non_powers(self, v):
        assert not is_power_of_two(v)
