"""Unit tests for compute units, modules and the iterative pipeline."""

import numpy as np
import pytest

from repro.dataflow.compute import ComputeUnit
from repro.dataflow.module import StencilModule
from repro.dataflow.pipeline import IterativePipeline
from repro.stencil.builders import jacobi2d_5pt
from repro.stencil.numpy_eval import run_program
from repro.util.errors import ValidationError


class TestComputeUnit:
    def test_stream_cycles_vectorized(self):
        cu = ComputeUnit(jacobi2d_5pt(), V=8)
        assert cu.stream_cycles((200, 100)) == 25 * 100

    def test_stream_cycles_padding(self):
        cu = ComputeUnit(jacobi2d_5pt(), V=8)
        assert cu.stream_cycles((201, 100)) == 26 * 100

    def test_fill_lines_is_half_order(self):
        assert ComputeUnit(jacobi2d_5pt(), 1).fill_lines() == 1

    def test_flops(self):
        assert ComputeUnit(jacobi2d_5pt(), 1).flops_per_cell == 6

    def test_process_matches_golden(self, field2d):
        from repro.stencil.numpy_eval import apply_kernel

        cu = ComputeUnit(jacobi2d_5pt(), 4)
        out = cu.process({"U": field2d})["U"]
        gold = apply_kernel(jacobi2d_5pt(), {"U": field2d})["U"]
        assert np.array_equal(out.data, gold.data)


class TestStencilModule:
    def test_fill_sums_stages(self, rtm_small_app):
        module = StencilModule(rtm_small_app.program, V=1)
        assert module.fill_lines() == 16  # 4 stages x D/2=4

    def test_single_stage_fill(self, poisson_program):
        assert StencilModule(poisson_program, 8).fill_lines() == 1

    def test_dsp_cost(self, poisson_program):
        assert StencilModule(poisson_program, 8).dsp_cost == 8 * 14


class TestIterativePipeline:
    def test_run_equals_golden(self, poisson_program, field2d):
        pipe = IterativePipeline(poisson_program, V=2, p=4)
        out = pipe.run({"U": field2d}, 8)
        gold = run_program(poisson_program, {"U": field2d}, 8, engine="interpreter")
        assert np.array_equal(out["U"].data, gold["U"].data)

    def test_rejects_non_multiple_niter(self, poisson_program, field2d):
        pipe = IterativePipeline(poisson_program, V=2, p=4)
        with pytest.raises(ValidationError, match="multiple"):
            pipe.run({"U": field2d}, 6)

    def test_pass_cycles_matches_eq2(self, poisson_program):
        from repro.model.cycles import baseline_cycles_2d

        pipe = IterativePipeline(poisson_program, V=8, p=60)
        per_pass = pipe.pass_cycles((200, 100))
        total = pipe.total_cycles((200, 100), 60000)
        assert total == 1000 * per_pass
        assert total == baseline_cycles_2d(200, 100, 60000, 8, 60, 2)

    def test_pass_cycles_matches_eq3(self, jacobi_program):
        from repro.model.cycles import baseline_cycles_3d

        pipe = IterativePipeline(jacobi_program, V=8, p=29)
        assert pipe.total_cycles((250, 250, 250), 29000) == baseline_cycles_3d(
            250, 250, 250, 29000, 8, 29, 2
        )

    def test_batched_cycles_share_fill(self, poisson_program):
        pipe = IterativePipeline(poisson_program, V=8, p=60)
        one = pipe.pass_cycles((200, 100), batch=1)
        ten = pipe.pass_cycles((200, 100), batch=10)
        assert ten < 10 * one

    def test_ii_scaling(self, rtm_small_app):
        pipe = IterativePipeline(rtm_small_app.program, V=1, p=3)
        base = pipe.pass_cycles((64, 64, 32), ii=1.0)
        slow = pipe.pass_cycles((64, 64, 32), ii=1.6)
        assert slow > base
