"""Unit tests for the NumPy golden evaluator."""

import numpy as np
import pytest

from repro.mesh.mesh import Field, MeshSpec
from repro.stencil.builders import jacobi2d_5pt, jacobi3d_7pt
from repro.stencil.expr import Coef, Const, FieldAccess
from repro.stencil.kernel import KernelOutput, StencilKernel, single_output_kernel
from repro.stencil.numpy_eval import apply_kernel, run_program
from repro.stencil.program import single_kernel_program
from repro.util.errors import SimulationError, ValidationError


class TestApplyKernel2D:
    def test_matches_manual_stencil(self, spec2d, field2d):
        out = apply_kernel(jacobi2d_5pt(), {"U": field2d})["U"]
        u = field2d.values()
        x, y = 4, 3
        expected = np.float32(0.125) * (
            u[y, x - 1] + u[y, x + 1] + u[y - 1, x] + u[y + 1, x]
        ) + np.float32(0.5) * u[y, x]
        assert out.values()[y, x] == expected

    def test_boundary_carried_from_init(self, field2d):
        out = apply_kernel(jacobi2d_5pt(), {"U": field2d})["U"]
        u = field2d.values()
        assert np.array_equal(out.values()[0, :], u[0, :])
        assert np.array_equal(out.values()[:, -1], u[:, -1])

    def test_float32_arithmetic(self, field2d):
        out = apply_kernel(jacobi2d_5pt(), {"U": field2d})["U"]
        assert out.data.dtype == np.float32

    def test_coefficient_override(self, field3d):
        k = jacobi3d_7pt()
        base = apply_kernel(k, {"U": field3d})["U"]
        scaled = apply_kernel(k, {"U": field3d}, coefficients={"k4": 0.0})["U"]
        assert not np.array_equal(base.data, scaled.data)

    def test_missing_field_rejected(self):
        with pytest.raises(ValidationError, match="needs field"):
            apply_kernel(jacobi2d_5pt(), {})

    def test_missing_coefficient_value(self, field2d):
        k = single_output_kernel("k", "U", Coef("a") * FieldAccess("U", (0, 0)), {"a": 1.0})
        # strip the default to force the error path
        object.__setattr__(k, "coefficients", {})
        with pytest.raises(SimulationError, match="coefficient"):
            apply_kernel(k, {"U": field2d})


class TestMultiOutput:
    def _kernel(self):
        k_expr = Const(2.0) * FieldAccess("U", (1, 0))
        t_expr = FieldAccess("U", (0, 0)) + FieldAccess("K", (0, 0))
        return StencilKernel(
            "fused",
            (KernelOutput("K", (k_expr,)), KernelOutput("T", (t_expr,), init_from="U")),
        )

    def test_later_output_sees_fresh_value(self, field2d):
        outs = apply_kernel(self._kernel(), {"U": field2d})
        u = field2d.values()
        x, y = 3, 4
        k_val = np.float32(2.0) * u[y, x + 1]
        assert outs["K"].values()[y, x] == k_val
        assert outs["T"].values()[y, x] == u[y, x] + k_val

    def test_fresh_output_boundary_zero(self, field2d):
        # the kernel's radius is (1, 0): only the x-boundary columns are
        # outside the interior and stay at the zero initialisation
        outs = apply_kernel(self._kernel(), {"U": field2d})
        assert np.all(outs["K"].values()[:, 0] == 0.0)
        assert np.all(outs["K"].values()[:, -1] == 0.0)

    def test_init_from_missing_rejected(self, field2d):
        k = StencilKernel(
            "bad",
            (KernelOutput("K", (FieldAccess("U", (1, 0)),), init_from="Z"),),
        )
        with pytest.raises(ValidationError, match="init_from"):
            apply_kernel(k, {"U": field2d})


class TestRunProgram:
    def test_zero_iterations_identity(self, poisson_program, field2d):
        env = run_program(poisson_program, {"U": field2d}, 0)
        assert np.array_equal(env["U"].data, field2d.data)

    def test_iterations_compose(self, poisson_program, field2d):
        two = run_program(poisson_program, {"U": field2d}, 2)
        one = run_program(poisson_program, {"U": field2d}, 1)
        one_more = run_program(poisson_program, one, 1)
        assert np.array_equal(two["U"].data, one_more["U"].data)

    def test_negative_niter_rejected(self, poisson_program, field2d):
        with pytest.raises(ValidationError):
            run_program(poisson_program, {"U": field2d}, -1)

    def test_missing_binding_rejected(self, poisson_program):
        with pytest.raises(ValidationError, match="needs field"):
            run_program(poisson_program, {}, 1)

    def test_poisson_converges_toward_smoothness(self, spec2d):
        # the 5-pt kernel is an averaging operator: variance must not grow
        f = Field.random("U", spec2d, seed=5)
        env = run_program(single_kernel_program("p", spec2d, jacobi2d_5pt()), {"U": f}, 50)
        assert np.var(env["U"].interior(1)) <= np.var(f.interior(1)) + 1e-6

    def test_constant_field_is_fixed_point(self, spec2d):
        # coefficients of eq. (16) sum to 1: constant input is invariant
        f = Field.full("U", spec2d, 3.0)
        env = run_program(single_kernel_program("p", spec2d, jacobi2d_5pt()), {"U": f}, 3)
        assert np.allclose(env["U"].data, 3.0)
