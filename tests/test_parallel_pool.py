"""Worker pools and shared-memory stacks: the parallel engine's plumbing."""

from __future__ import annotations

import os
import time
from concurrent.futures import BrokenExecutor, CancelledError

import numpy as np
import pytest

from repro.parallel.pool import (
    BACKENDS,
    WorkerPool,
    check_backend,
    default_workers,
    shared_pool,
    shutdown_shared_pools,
)
from repro.parallel.shm import SharedStack, live_segments
from repro.util.errors import ValidationError


def _square(x):
    return x * x


def _die():  # pragma: no cover - runs in a sacrificial worker process
    os._exit(13)


def _sleep_return(x):  # pragma: no cover - runs in a worker process
    time.sleep(0.4)
    return x


class TestWorkerPool:
    def test_backend_validation(self):
        assert check_backend("process") == "process"
        assert check_backend("thread") == "thread"
        with pytest.raises(ValidationError):
            check_backend("fiber")
        with pytest.raises(ValidationError):
            WorkerPool(backend="fiber")

    def test_max_workers_validation(self):
        with pytest.raises(ValidationError):
            WorkerPool(max_workers=0)
        assert WorkerPool(max_workers=3).max_workers == 3
        assert WorkerPool().max_workers == default_workers()
        assert default_workers() >= 1

    def test_lazy_start_submit_and_shutdown(self):
        with WorkerPool(max_workers=2, backend="thread") as pool:
            assert not pool.started
            assert pool.submit(_square, 7).result() == 49
            assert pool.started
        assert not pool.started  # context exit shut it down
        # pools restart lazily after shutdown
        assert pool.submit(_square, 3).result() == 9
        pool.shutdown()

    def test_process_backend_crosses_the_boundary(self):
        with WorkerPool(max_workers=2, backend="process") as pool:
            futures = [pool.submit(_square, n) for n in range(5)]
            assert [f.result() for f in futures] == [0, 1, 4, 9, 16]

    def test_broken_process_pool_recovers_on_next_submit(self):
        with WorkerPool(max_workers=1, backend="process") as pool:
            with pytest.raises(BaseException):
                pool.submit(_die).result()
            # the executor is now broken; the pool must replace it
            assert pool.submit(_square, 6).result() == 36

    def test_shared_pools_are_singletons_per_key(self):
        try:
            a = shared_pool("thread", 2)
            b = shared_pool("thread", 2)
            c = shared_pool("thread", 3)
            assert a is b
            assert a is not c
            assert c.max_workers == 3
        finally:
            shutdown_shared_pools()
        # a fresh singleton appears after a global shutdown
        try:
            assert shared_pool("thread", 2) is not a
        finally:
            shutdown_shared_pools()

    def test_shared_pool_validates_backend(self):
        with pytest.raises(ValidationError):
            shared_pool("fiber")


class TestPoolFutureResilience:
    """In-flight futures survive a sibling task breaking the pool."""

    def test_inflight_future_resubmits_after_sibling_crash(self):
        with WorkerPool(max_workers=2, backend="process") as pool:
            innocent = pool.submit(_sleep_return, 5)
            doomed = pool.submit(_die)
            # the crash breaks the pool; the innocent bystander's future
            # resubmits on the replacement executor instead of surfacing
            # a BrokenExecutor it did not cause
            with pytest.raises(BrokenExecutor):
                doomed.result()
            assert innocent.result(timeout=30) == 5

    def test_task_that_breaks_the_pool_twice_propagates(self):
        with WorkerPool(max_workers=1, backend="process") as pool:
            future = pool.submit(_die)
            # one resubmit is granted; a task that kills its replacement
            # executor too is the problem itself
            with pytest.raises(BrokenExecutor):
                future.result()
            assert pool.submit(_square, 4).result() == 16

    def test_cancelled_future_never_resubmits(self):
        with WorkerPool(max_workers=1, backend="process") as pool:
            running = pool.submit(_sleep_return, 1)
            queued = pool.submit(_square, 2)
            assert queued.cancel()  # still queued: cancellable
            with pytest.raises(CancelledError):
                queued.result()
            # an abandoned-but-running future surfaces the break raw
            assert not running.cancel()
            pool.reset(kill=True)
            with pytest.raises((BrokenExecutor, CancelledError)):
                running.result(timeout=30)

    def test_exception_and_done_mirror_future_api(self):
        with WorkerPool(max_workers=1, backend="thread") as pool:
            future = pool.submit(_square, 3)
            assert future.result() == 9
            assert future.done()
            assert future.exception() is None

    def test_reset_leaves_the_pool_restartable(self):
        with WorkerPool(max_workers=1, backend="process") as pool:
            assert pool.submit(_square, 5).result() == 25
            pool.reset(kill=True)
            assert not pool.started
            assert pool.submit(_square, 6).result() == 36
        # resetting a never-started pool is a no-op
        fresh = WorkerPool(max_workers=1, backend="thread")
        fresh.reset()
        assert not fresh.started


class TestSharedStack:
    LAYOUT = {
        "i:U": ((3, 6, 5), np.dtype(np.float32)),
        "o:U": ((3, 6, 5), np.dtype(np.float32)),
        "small": ((2,), np.dtype(np.float64)),
    }

    def test_roundtrip_through_handle(self):
        with SharedStack.allocate(self.LAYOUT) as stack:
            stack.array("i:U")[:] = 2.5
            stack.array("small")[:] = [1.0, -1.0]
            peer = SharedStack.attach(stack.handle)
            try:
                assert np.all(peer.array("i:U") == 2.5)
                # writes travel the other way too: same pages
                peer.array("o:U")[:] = 7.0
                assert np.all(stack.array("o:U") == 7.0)
                assert peer.names() == stack.names() == ("i:U", "o:U", "small")
            finally:
                peer.close()

    def test_alignment_and_sizing(self):
        with SharedStack.allocate(self.LAYOUT) as stack:
            offsets = [off for _, _, _, off in stack.handle[1]]
            assert all(off % 64 == 0 for off in offsets)
            payload = sum(
                int(np.prod(shape)) * dtype.itemsize
                for shape, dtype in self.LAYOUT.values()
            )
            assert stack.nbytes >= payload

    def test_unknown_array_and_empty_layout(self):
        with pytest.raises(ValidationError):
            SharedStack.allocate({})
        with SharedStack.allocate(self.LAYOUT) as stack:
            with pytest.raises(ValidationError, match="no array"):
                stack.array("missing")

    def test_lifecycle_is_idempotent(self):
        stack = SharedStack.allocate(self.LAYOUT)
        name = stack.handle[0]
        stack.close()
        stack.close()  # second close is a no-op
        stack.unlink()
        stack.unlink()  # second unlink is a no-op
        # the segment is gone: attaching must fail
        with pytest.raises(FileNotFoundError):
            SharedStack.attach((name, stack.handle[1]))

    def test_live_segments_tracks_owned_stacks(self):
        assert live_segments() == ()
        stack = SharedStack.allocate(self.LAYOUT)
        try:
            assert stack.handle[0] in live_segments()
            # attachments are not ownership: the peer never registers
            with SharedStack.attach(stack.handle) as peer:
                assert live_segments() == (stack.handle[0],)
                del peer
        finally:
            stack.unlink()
        assert live_segments() == ()

    def test_injected_attach_failure_raises_cleanly(self):
        with SharedStack.allocate(self.LAYOUT) as stack:
            with pytest.raises(OSError, match="injected shm attach failure"):
                SharedStack.attach(stack.handle, fail=True)
            # the segment is intact and attachable afterwards
            SharedStack.attach(stack.handle).close()

    def test_failed_construction_leaks_nothing(self, monkeypatch):
        bad = dict(self.LAYOUT)

        calls = {"n": 0}
        real = np.ndarray

        def exploding_ndarray(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] >= 2:  # fail on the second slot
                raise ValueError("injected construction failure")
            return real(*args, **kwargs)

        before = live_segments()
        monkeypatch.setattr("repro.parallel.shm.np.ndarray", exploding_ndarray)
        with pytest.raises(ValueError, match="injected construction"):
            SharedStack.allocate(bad)
        monkeypatch.undo()
        # the half-built segment was closed and unlinked, not leaked
        assert live_segments() == before

    def test_non_owner_exit_does_not_unlink(self):
        owner = SharedStack.allocate(self.LAYOUT)
        try:
            owner.array("small")[:] = 3.0
            with SharedStack.attach(owner.handle) as peer:
                assert np.all(peer.array("small") == 3.0)
            # the peer's context exit closed but did not destroy the segment
            again = SharedStack.attach(owner.handle)
            assert np.all(again.array("small") == 3.0)
            again.close()
        finally:
            owner.unlink()


def _wait_on(event):  # pragma: no cover - trivial thread-backend task
    event.wait(5.0)
    return True


class TestInflightAccounting:
    """The pool's live task count: submits up, every resolution down."""

    def _settle(self, pool, want, timeout=2.0):
        deadline = time.monotonic() + timeout
        while pool.inflight != want and time.monotonic() < deadline:
            time.sleep(0.005)  # done callbacks fire asynchronously
        assert pool.inflight == want

    def test_completion_releases_slots(self):
        import threading

        gate = threading.Event()
        with WorkerPool(max_workers=2, backend="thread") as pool:
            assert pool.inflight == 0
            futures = [pool.submit(_wait_on, gate) for _ in range(3)]
            assert pool.inflight == 3
            gate.set()
            assert all(f.result() for f in futures)
            self._settle(pool, 0)

    def test_cancelled_queued_task_releases_its_slot(self):
        import threading

        gate = threading.Event()
        with WorkerPool(max_workers=1, backend="thread") as pool:
            blocker = pool.submit(_wait_on, gate)
            queued = pool.submit(_square, 5)
            assert pool.inflight == 2
            assert queued.cancel()
            # the cancelled task never ran, yet its slot is free now —
            # not at the next pool reset
            self._settle(pool, 1)
            gate.set()
            assert blocker.result() is True
            self._settle(pool, 0)

    def test_failed_task_releases_its_slot(self):
        with WorkerPool(max_workers=1, backend="process") as pool:
            with pytest.raises(BaseException):
                pool.submit(_die).result()
            self._settle(pool, 0)


class TestAtexitDrain:
    """The interpreter-exit hook drains the shared singleton pools."""

    def test_drain_hook_shuts_down_every_shared_pool(self):
        from repro.parallel.pool import _drain_shared_pools_at_exit

        try:
            a = shared_pool("thread", 2)
            assert a.submit(_square, 4).result() == 16
            assert a.started
            _drain_shared_pools_at_exit()
            assert not a.started
            # the singleton table was cleared: next lookup is a fresh pool
            assert shared_pool("thread", 2) is not a
        finally:
            shutdown_shared_pools()

    def test_drain_hook_waits_for_running_work(self):
        from repro.parallel.pool import _drain_shared_pools_at_exit

        try:
            pool = shared_pool("thread", 1)
            future = pool.submit(_sleep_return, 11)
            _drain_shared_pools_at_exit()  # must wait the task out
            assert future.result(timeout=0) == 11
        finally:
            shutdown_shared_pools()
