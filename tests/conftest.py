"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.apps.jacobi3d import jacobi3d_app
from repro.apps.poisson2d import poisson2d_app
from repro.apps.rtm import rtm_app
from repro.mesh.mesh import Field, MeshSpec
from repro.stencil.builders import jacobi2d_5pt, jacobi3d_7pt
from repro.stencil.program import single_kernel_program


@pytest.fixture
def spec2d() -> MeshSpec:
    return MeshSpec((12, 10))


@pytest.fixture
def spec3d() -> MeshSpec:
    return MeshSpec((8, 7, 6))


@pytest.fixture
def field2d(spec2d) -> Field:
    return Field.random("U", spec2d, seed=11)


@pytest.fixture
def field3d(spec3d) -> Field:
    return Field.random("U", spec3d, seed=12)


@pytest.fixture
def poisson_kernel():
    return jacobi2d_5pt()


@pytest.fixture
def jacobi_kernel():
    return jacobi3d_7pt()


@pytest.fixture
def poisson_program(spec2d, poisson_kernel):
    return single_kernel_program("poisson", spec2d, poisson_kernel)


@pytest.fixture
def jacobi_program(spec3d, jacobi_kernel):
    return single_kernel_program("jacobi", spec3d, jacobi_kernel)


@pytest.fixture
def poisson_app():
    return poisson2d_app()


@pytest.fixture
def jacobi_app():
    return jacobi3d_app()


@pytest.fixture
def rtm_small_app():
    return rtm_app((12, 12, 10))
