"""Unit tests for batched execution."""

import numpy as np
import pytest

from repro.dataflow.batcher import BatchRunner
from repro.mesh.mesh import Field, MeshSpec
from repro.model.design import DesignPoint
from repro.stencil.numpy_eval import run_program
from repro.util.errors import ValidationError


class TestBatchRunner:
    def _runner(self, program, V=2, p=3):
        return BatchRunner(program, DesignPoint(V, p, 250.0))

    def test_each_mesh_solved_independently(self, poisson_program, spec2d):
        runner = self._runner(poisson_program)
        batch = [{"U": Field.random("U", spec2d, seed=i)} for i in range(5)]
        results = runner.run(batch, 6)
        for env, res in zip(batch, results):
            gold = run_program(poisson_program, env, 6, engine="interpreter")
            assert np.array_equal(res["U"].data, gold["U"].data)

    def test_no_cross_mesh_contamination(self, poisson_program, spec2d):
        runner = self._runner(poisson_program)
        a = {"U": Field.full("U", spec2d, 1.0)}
        b = {"U": Field.full("U", spec2d, 100.0)}
        res_pair = runner.run([a, b], 3)
        res_solo = runner.run([a], 3)
        assert np.array_equal(res_pair[0]["U"].data, res_solo[0]["U"].data)

    def test_rejects_empty_batch(self, poisson_program):
        with pytest.raises(ValidationError):
            self._runner(poisson_program).run([], 3)

    def test_rejects_mixed_specs(self, poisson_program, spec2d):
        other = MeshSpec((6, 6))
        batch = [
            {"U": Field.random("U", spec2d, seed=1)},
            {"U": Field.random("U", other, seed=2)},
        ]
        with pytest.raises(ValidationError, match="same spec"):
            self._runner(poisson_program).run(batch, 3)

    def test_rejects_missing_field(self, poisson_program):
        with pytest.raises(ValidationError, match="missing field"):
            self._runner(poisson_program).run([{}], 3)

    def test_cycles_match_batched_model(self, poisson_program):
        from repro.model.cycles import batched_cycles_2d

        runner = self._runner(poisson_program, V=8, p=60)
        cycles = runner.total_cycles(60000, 1000, (200, 100))
        assert cycles == batched_cycles_2d(200, 100, 1000, 60000, 8, 60, 2)

    def test_batched_cheaper_than_sequential(self, poisson_program):
        runner = self._runner(poisson_program, V=8, p=60)
        batched = runner.total_cycles(60, 100, (200, 100))
        sequential = 100 * runner.total_cycles(60, 1, (200, 100))
        assert batched < sequential


class TestStackedBatchPath:
    def test_compiled_batch_runs_one_stacked_plan(self, poisson_program, spec2d):
        """The compiled engine advances the whole batch on one plan.

        One cache entry (the batch-major plan), not one per mesh — and the
        per-mesh results still match the golden interpreter bitwise.
        """
        from repro.stencil.compiled import CompiledPlanCache

        cache = CompiledPlanCache()
        runner = BatchRunner(
            poisson_program, DesignPoint(2, 3, 250.0), plan_cache=cache
        )
        batch = [{"U": Field.random("U", spec2d, seed=i)} for i in range(6)]
        results = runner.run(batch, 6)
        # one bound instance: the stacked batch-major plan that served all
        # six meshes (the footprint heuristic reads the memoized unbound
        # plan, which binds no buffers and counts no miss)
        assert cache.misses == 1
        for env, res in zip(batch, results):
            gold = run_program(poisson_program, env, 6, engine="interpreter")
            assert np.array_equal(res["U"].data, gold["U"].data)

    def test_interpreter_engine_still_replays_per_mesh(
        self, poisson_program, spec2d
    ):
        runner = BatchRunner(
            poisson_program, DesignPoint(2, 3, 250.0), engine="interpreter"
        )
        assert runner.engine == "interpreter"
        batch = [{"U": Field.random("U", spec2d, seed=i)} for i in range(3)]
        results = runner.run(batch, 3)
        for env, res in zip(batch, results):
            gold = run_program(poisson_program, env, 3, engine="interpreter")
            assert np.array_equal(res["U"].data, gold["U"].data)

    def test_engines_agree_bitwise(self, jacobi_program, spec3d):
        design = DesignPoint(2, 2, 250.0)
        batch = [{"U": Field.random("U", spec3d, seed=i)} for i in range(4)]
        compiled = BatchRunner(jacobi_program, design).run(batch, 4)
        interp = BatchRunner(jacobi_program, design, engine="interpreter").run(
            batch, 4
        )
        for c, i in zip(compiled, interp):
            assert np.array_equal(c["U"].data, i["U"].data)

    def test_accelerator_run_batch_rides_the_stacked_tape(self, spec2d):
        from repro.apps.poisson2d import poisson2d_app
        from repro.stencil.compiled import CompiledPlanCache
        from repro.dataflow.accelerator import FPGAAccelerator

        app = poisson2d_app((20, 16))
        cache = CompiledPlanCache()
        acc = FPGAAccelerator(
            app.program_on((20, 16)), app.design(p=4, V=2), plan_cache=cache
        )
        batch = [app.fields((20, 16), seed=s) for s in range(5)]
        results, report = acc.run_batch(batch, 8)
        assert cache.misses == 1  # one stacked plan; no per-mesh compiles
        assert len(results) == 5 and report.passes == 2
