"""Unit tests for the tiling theory (paper eqs. 8-14, Table III)."""

import pytest

from repro.arch.device import ALVEO_U280
from repro.model.tiling import (
    TileDesign,
    block_cycles,
    block_valid_points,
    optimal_tile_m,
    p_max_for_tile,
    plan_blocks,
    throughput_full_dsp_2d,
    throughput_full_dsp_3d,
    tile_throughput,
    valid_ratio,
)
from repro.util.errors import ValidationError


class TestEq8ValidPoints:
    def test_3d(self):
        assert block_valid_points(768, 768, 100, 3, 2) == 762 * 762 * 100

    def test_2d(self):
        assert block_valid_points(8192, None, 100, 60, 2) == 8072 * 100

    def test_rejects_block_consumed_by_halo(self):
        with pytest.raises(ValidationError):
            block_valid_points(100, None, 10, 60, 2)


class TestEq9BlockCycles:
    def test_3d_formula(self):
        c = block_cycles(768, 768, 100, 64, 3, 2)
        assert c == pytest.approx(12 * 768 * (100 + 3) / 3)

    def test_2d_formula(self):
        c = block_cycles(8192, None, 100, 8, 60, 2)
        assert c == pytest.approx(1024 * (100 + 60) / 60)


class TestEq10TableIII:
    def test_poisson_throughput_472(self):
        t = tile_throughput(8192, None, 10**6, 8, 60, 2)
        assert t == pytest.approx(472, abs=2)

    def test_jacobi_throughput_189(self):
        t = tile_throughput(768, 768, 10**9, 64, 3, 2)
        assert t == pytest.approx(189, abs=1)

    def test_poisson_valid_ratio(self):
        assert valid_ratio(8192, None, 60, 2) == pytest.approx(0.985, abs=0.001)

    def test_jacobi_valid_ratio(self):
        assert valid_ratio(768, 768, 3, 2) == pytest.approx(0.984, abs=0.001)

    def test_throughput_bounded_by_pv(self):
        # T can never exceed p*V valid cells per cycle
        assert tile_throughput(768, 768, 10**9, 64, 3, 2) <= 3 * 64


class TestEq11OptimalM:
    def test_formula(self):
        mem = ALVEO_U280.usable_on_chip_bytes()
        m = optimal_tile_m(mem, 4, 3, 2)
        assert m == int((mem / (4 * 3 * 2)) ** 0.5)

    def test_paper_rtm_tile_96(self):
        # Section V-C derives M=96 by inverting eq. (12) at p=4, D=8
        assert p_max_for_tile(96, 8) == 4
        assert 3 * 8 * 4 == 96

    def test_eq11_grows_with_memory(self):
        mem = ALVEO_U280.usable_on_chip_bytes()
        assert optimal_tile_m(2 * mem, 4, 3, 2) > optimal_tile_m(mem, 4, 3, 2)


class TestEq12PMax:
    def test_formula(self):
        assert p_max_for_tile(768, 2) == 128
        assert p_max_for_tile(96, 8) == 4  # the paper's RTM value

    def test_minimum_one(self):
        assert p_max_for_tile(2, 8) == 1


class TestEq13Eq14:
    def test_eq10_peaks_at_eq12_p_for_fixed_v(self):
        # eq. (12) maximizes the fixed-V throughput of eq. (10) at p = M/3D
        M, D, V, l = 768, 2, 8, 10**9
        p_star = p_max_for_tile(M, D)
        t_star = tile_throughput(M, M, l, V, p_star, D)
        for p in (p_star // 2, p_star + 40):
            assert tile_throughput(M, M, l, V, p, D) <= t_star + 1e-6

    def test_eq13_decreases_with_p_at_full_dsp(self):
        # substituting p*V = FPGA_dsp/G_dsp makes shallower pipelines better
        fpga_dsp, gdsp, M, D, l = 7641, 33, 768, 2, 10**6
        t8 = throughput_full_dsp_3d(M, 8, D, fpga_dsp, gdsp, l)
        t64 = throughput_full_dsp_3d(M, 64, D, fpga_dsp, gdsp, l)
        assert t8 > t64

    def test_2d_monotone_in_m(self):
        ts = [
            throughput_full_dsp_2d(M, 60, 2, 7641, 14, 10**5)
            for M in (256, 1024, 8192)
        ]
        assert ts[0] < ts[1] < ts[2]


class TestTileDesign:
    def test_2d_tile(self):
        t = TileDesign((8192,))
        assert t.M == 8192 and t.N is None

    def test_3d_tile(self):
        t = TileDesign((768, 768))
        assert t.N == 768

    def test_rejects_bad_rank(self):
        with pytest.raises(ValidationError):
            TileDesign((1, 2, 3))

    def test_num_blocks_2d(self):
        t = TileDesign((8000,))
        assert t.num_blocks((15000, 15000), 60, 2) == 2

    def test_num_blocks_3d(self):
        t = TileDesign((640, 640))
        assert t.num_blocks((600, 600, 600), 3, 2) == 1


class TestPlanBlocks:
    def test_valid_regions_tile_axis(self):
        plans = plan_blocks(600, 512, 3)
        assert plans[0].valid_start == 0
        assert plans[-1].valid_end == 600
        for a, b in zip(plans, plans[1:]):
            assert a.valid_end == b.valid_start

    def test_edge_blocks_shrink(self):
        # variable-sized tiling: the last block is cut, not full-size
        plans = plan_blocks(600, 512, 3)
        assert plans[0].extent == 512
        assert plans[-1].extent < 512

    def test_single_block_when_tile_covers(self):
        plans = plan_blocks(600, 640, 3)
        assert len(plans) == 1
        assert plans[0].extent == 600

    def test_halo_respected_interior(self):
        plans = plan_blocks(1000, 300, 10)
        for plan in plans[:-1]:
            assert plan.valid_end == plan.end - 10
        for plan in plans[1:]:
            assert plan.valid_start - plan.start >= 10

    def test_no_progress_rejected(self):
        with pytest.raises(ValidationError):
            plan_blocks(100, 20, 10)
