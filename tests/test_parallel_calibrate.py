"""Per-host stacking-budget calibration: probe, disk cache, overrides."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.parallel import calibrate
from repro.stencil.compiled import STACKED_BYTES_LIMIT


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv(calibrate.ENV_CACHE, str(tmp_path / "calibration.json"))
    monkeypatch.delenv(calibrate.ENV_OVERRIDE, raising=False)
    calibrate.forget_memo()
    yield
    calibrate.forget_memo()


def _fake_probe(counter, best=12345):
    def probe(dtype=np.float32, budgets=calibrate.DEFAULT_BUDGETS):
        counter.append(np.dtype(dtype).str)
        return {"best": best, "timings": {"0": 0.5, str(best): 0.1}}

    return probe


class TestCalibratedBytesLimit:
    def test_probe_once_then_serve_from_disk(self, monkeypatch):
        probes: list[str] = []
        monkeypatch.setattr(calibrate, "run_probe", _fake_probe(probes))
        assert calibrate.calibrated_bytes_limit() == 12345
        assert probes == ["<f4"]
        # a new process (memo dropped) reads the file, not the probe
        calibrate.forget_memo()
        assert calibrate.calibrated_bytes_limit() == 12345
        assert probes == ["<f4"]
        # and the in-process memo short-circuits even the file read
        assert calibrate.calibrated_bytes_limit() == 12345
        assert probes == ["<f4"]

    def test_cache_file_shape(self, monkeypatch):
        monkeypatch.setattr(calibrate, "run_probe", _fake_probe([]))
        calibrate.calibrated_bytes_limit()
        data = json.loads(calibrate.cache_path().read_text())
        assert data["version"] == 1
        entry = data["entries"][calibrate.host_key()]
        assert entry["stacked_bytes_limit"] == 12345
        assert "timings" in entry and "probed_at" in entry
        assert calibrate.cached_entry() == entry

    def test_dtype_gets_its_own_entry(self, monkeypatch):
        probes: list[str] = []
        monkeypatch.setattr(calibrate, "run_probe", _fake_probe(probes))
        calibrate.calibrated_bytes_limit(np.float32)
        calibrate.calibrated_bytes_limit(np.float64)
        assert probes == ["<f4", "<f8"]
        assert calibrate.host_key(np.float32) != calibrate.host_key(np.float64)

    def test_force_reprobes_despite_cache(self, monkeypatch):
        probes: list[str] = []
        monkeypatch.setattr(calibrate, "run_probe", _fake_probe(probes))
        calibrate.calibrated_bytes_limit()
        calibrate.calibrated_bytes_limit(force=True)
        assert probes == ["<f4", "<f4"]

    def test_env_override_wins_without_probing(self, monkeypatch):
        def exploding_probe(*a, **k):  # pragma: no cover - must not run
            raise AssertionError("probe ran despite override")

        monkeypatch.setattr(calibrate, "run_probe", exploding_probe)
        monkeypatch.setenv(calibrate.ENV_OVERRIDE, "65536")
        assert calibrate.calibrated_bytes_limit() == 65536

    def test_probe_failure_falls_back_to_static_default(self, monkeypatch):
        def broken_probe(*a, **k):
            raise RuntimeError("no clock on this host")

        monkeypatch.setattr(calibrate, "run_probe", broken_probe)
        assert calibrate.calibrated_bytes_limit() == STACKED_BYTES_LIMIT

    def test_corrupt_cache_is_ignored(self, monkeypatch):
        path = calibrate.cache_path()
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("not json {")
        probes: list[str] = []
        monkeypatch.setattr(calibrate, "run_probe", _fake_probe(probes))
        assert calibrate.calibrated_bytes_limit() == 12345
        assert probes == ["<f4"]  # probed, then rewrote the file cleanly
        assert json.loads(path.read_text())["version"] == 1

    @pytest.mark.parametrize(
        "payload",
        [
            '{"version": 999, "entries": {}}',  # future version
            '{"version": 1, "entries": []}',  # entries is not a mapping
            '{"version": 1}',  # entries missing entirely
            '[1, 2, 3]',  # top level is not an object
            '{"version": 1, "entries"',  # truncated mid-write
            "",  # zero-byte file (crashed writer)
        ],
    )
    def test_malformed_cache_variants_trigger_reprobe(
        self, monkeypatch, payload
    ):
        path = calibrate.cache_path()
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(payload)
        probes: list[str] = []
        monkeypatch.setattr(calibrate, "run_probe", _fake_probe(probes))
        assert calibrate.calibrated_bytes_limit() == 12345
        assert probes == ["<f4"]

    def test_garbage_entry_values_fall_back_to_probe(self, monkeypatch):
        path = calibrate.cache_path()
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps({
            "version": 1,
            "entries": {calibrate.host_key(): {"stacked_bytes_limit": "lots"}},
        }))
        probes: list[str] = []
        monkeypatch.setattr(calibrate, "run_probe", _fake_probe(probes))
        assert calibrate.calibrated_bytes_limit() == 12345
        assert probes == ["<f4"]

    def test_store_is_atomic_and_leaves_no_temp_files(self, monkeypatch):
        monkeypatch.setattr(calibrate, "run_probe", _fake_probe([]))
        calibrate.calibrated_bytes_limit()
        path = calibrate.cache_path()
        siblings = [p.name for p in path.parent.iterdir()]
        assert siblings == [path.name]  # no .tmp orphans
        assert json.loads(path.read_text())["version"] == 1

    def test_store_preserves_foreign_entries(self, monkeypatch):
        path = calibrate.cache_path()
        path.parent.mkdir(parents=True, exist_ok=True)
        foreign = {"stacked_bytes_limit": 777, "timings": {}}
        path.write_text(json.dumps({
            "version": 1, "entries": {"other-host": foreign},
        }))
        monkeypatch.setattr(calibrate, "run_probe", _fake_probe([]))
        calibrate.calibrated_bytes_limit()
        data = json.loads(path.read_text())
        assert data["entries"]["other-host"] == foreign
        assert calibrate.host_key() in data["entries"]

    def test_unwritable_cache_dir_still_calibrates(self, monkeypatch, tmp_path):
        # a path whose parent is a *file*: every write attempt is an OSError
        blocker = tmp_path / "blocker"
        blocker.write_text("")
        monkeypatch.setenv(
            calibrate.ENV_CACHE, str(blocker / "calibration.json")
        )
        calibrate.forget_memo()
        probes: list[str] = []
        monkeypatch.setattr(calibrate, "run_probe", _fake_probe(probes))
        assert calibrate.calibrated_bytes_limit() == 12345
        assert probes == ["<f4"]


class TestRealProbe:
    def test_probe_returns_a_sane_ladder(self):
        probe = calibrate.run_probe(budgets=(0, 1 << 20))
        assert set(probe["timings"]) == {"0", str(1 << 20)}
        assert probe["best"] in (0, 1 << 20)
        assert all(t > 0 for t in probe["timings"].values())
