"""Tests for the bounded per-tenant fair queue (repro.serve.queue)."""

from __future__ import annotations

import asyncio

import pytest

from repro.serve.queue import FairQueue
from repro.util.errors import ValidationError
from repro.workload import WorkloadSpec


def _job(tenant="default", priority=0, seq=0, batch=1, deadline=None):
    """A minimal Job stand-in: the queue only touches these fields."""
    from repro.serve.server import Job

    loop = asyncio.new_event_loop()
    try:
        future = loop.create_future()
    finally:
        loop.close()
    spec = WorkloadSpec.of("jacobi3d", (8, 8, 6), 5, batch)
    return Job(spec, tenant, priority, deadline, seq, future)


class TestAdmission:
    def test_bounded_per_tenant(self):
        q = FairQueue(depth=2)
        assert q.offer(_job(seq=1))
        assert q.offer(_job(seq=2))
        assert not q.offer(_job(seq=3))  # tenant at capacity
        assert q.offer(_job(tenant="other", seq=4))  # other tenants unaffected
        assert q.full("default") and not q.full("other")

    def test_depth_must_be_positive(self):
        with pytest.raises(ValidationError):
            FairQueue(depth=0)

    def test_weights_must_be_positive(self):
        with pytest.raises(ValidationError):
            FairQueue(depth=4, weights={"t": 0.0})


class TestOrdering:
    def test_priority_then_fifo_within_tenant(self):
        q = FairQueue(depth=8)
        low = _job(priority=0, seq=1)
        late_high = _job(priority=5, seq=3)
        early_high = _job(priority=5, seq=2)
        for job in (low, early_high, late_high):
            q.offer(job)
        assert q.pop() is early_high  # priority first, FIFO within it
        assert q.pop() is late_high
        assert q.pop() is low
        assert q.pop() is None

    def test_weighted_fair_interleave(self):
        q = FairQueue(depth=32, weights={"heavy": 2.0, "light": 1.0})
        for seq in range(12):
            q.offer(_job(tenant="heavy", seq=seq))
            q.offer(_job(tenant="light", seq=100 + seq))
        served = [q.pop().tenant for _ in range(9)]
        # weight 2 tenant is served twice as often over any busy window
        assert served.count("heavy") == 6
        assert served.count("light") == 3

    def test_resolved_jobs_are_skipped(self):
        q = FairQueue(depth=8)
        dead = _job(seq=1)
        alive = _job(seq=2)
        q.offer(dead)
        q.offer(alive)
        dead.future.cancel()
        assert q.pop() is alive

    def test_idle_tenant_accrues_no_credit(self):
        q = FairQueue(depth=32, weights={"a": 1.0, "b": 1.0})
        # tenant a runs alone for a while...
        for seq in range(6):
            q.offer(_job(tenant="a", seq=seq))
        for _ in range(6):
            q.pop()
        # ...then b becomes busy: it must not monopolize on stale credit
        for seq in range(4):
            q.offer(_job(tenant="a", seq=10 + seq))
            q.offer(_job(tenant="b", seq=20 + seq))
        served = [q.pop().tenant for _ in range(4)]
        assert served.count("a") == 2
        assert served.count("b") == 2


class TestShed:
    def test_shed_removes_matching_jobs(self):
        q = FairQueue(depth=8)
        doomed = _job(seq=1, deadline=1.0)
        kept = _job(seq=2)
        q.offer(doomed)
        q.offer(kept)
        removed = q.shed(lambda j: j.deadline is not None)
        assert removed == [doomed]
        assert len(q) == 1
        assert q.pop() is kept

    def test_shed_drops_resolved_jobs_silently(self):
        q = FairQueue(depth=8)
        dead = _job(seq=1)
        q.offer(dead)
        dead.future.cancel()
        assert q.shed(lambda j: True) == []
        assert len(q) == 0

    def test_depths_snapshot(self):
        q = FairQueue(depth=8)
        q.offer(_job(tenant="a", seq=1))
        q.offer(_job(tenant="a", seq=2))
        q.offer(_job(tenant="b", seq=3))
        assert q.depths() == {"a": 2, "b": 1}
        assert len(q) == 3
