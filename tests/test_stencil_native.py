"""``engine="native"``: bit-identity, backend ladder, caching, copy fast path.

The contract mirrors the compiled engine's: the generated steady-loop code
(numba / cc / fused-NumPy, whichever bound) must be bit-identical
(``tobytes`` equality, no tolerance) to the golden interpreter on every
registered application — across niter, batch, dtype, the mixed-radius
``init_from`` and flat-mode lowering corners, and with every JIT backend
disabled (``REPRO_NO_NUMBA=1`` / ``REPRO_NATIVE_JIT=python``).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.registry import all_apps, app_by_name
from repro.mesh.mesh import Field, MeshSpec
from repro.stencil.compiled import (
    CompiledPlanCache,
    CompiledProgram,
    run_program_compiled,
    run_program_stacked,
)
from repro.stencil.expr import Const, FieldAccess
from repro.stencil.kernel import KernelOutput, StencilKernel
from repro.stencil.native import NativeProgram, _backend_order
from repro.stencil.numpy_eval import run_program
from repro.stencil.program import FusedGroup, StencilLoop, StencilProgram

#: small-but-representative functional meshes per registered app
APP_MESHES = {
    "poisson2d": (24, 18),
    "jacobi3d": (16, 14, 8),
    "rtm": (12, 12, 10),
}

#: module-local cache so native instances built here never collide with
#: (or warm) the process-wide DEFAULT_CACHE other test modules rely on
CACHE = CompiledPlanCache()


def _assert_env_equal(gold, got):
    assert set(gold) == set(got)
    for name in gold:
        assert gold[name].data.tobytes() == got[name].data.tobytes(), name


def _cast_env(env, dtype):
    dt = np.dtype(dtype)
    return {
        name: Field(
            name, MeshSpec(f.spec.shape, f.spec.components, dt),
            f.data.astype(dt),
        )
        for name, f in env.items()
    }


# --------------------------------------------------------------------------- #
# property: native == interpreter on every app x niter x batch x dtype
# --------------------------------------------------------------------------- #
@st.composite
def native_case(draw):
    name = draw(st.sampled_from(sorted(APP_MESHES)))
    grow = draw(st.integers(min_value=0, max_value=2))
    mesh = tuple(d + grow for d in APP_MESHES[name])
    niter = draw(st.integers(min_value=1, max_value=8))
    batch = draw(st.integers(min_value=1, max_value=3))
    dtype = draw(st.sampled_from([np.float32, np.float64]))
    seed = draw(st.integers(min_value=0, max_value=999))
    return name, mesh, niter, batch, dtype, seed


@given(native_case())
@settings(max_examples=25, deadline=None)
def test_native_bit_identical_to_interpreter(case):
    name, mesh, niter, batch, dtype, seed = case
    app = app_by_name(name)
    dt = np.dtype(dtype)
    program = app.program.with_mesh(
        MeshSpec(mesh, app.program.mesh.components, dt)
    )
    envs = [
        _cast_env(app.fields(mesh, seed=seed + b), dt) for b in range(batch)
    ]
    gold = [
        run_program(program, env, niter, engine="interpreter") for env in envs
    ]
    # the stacked entry covers both the single-mesh path (batch == 1) and
    # the batch-major NativeProgram binding
    got = run_program_stacked(program, envs, niter, cache=CACHE, engine="native")
    for g, o in zip(gold, got):
        _assert_env_equal(g, o)


def test_native_chunked_stacked_dispatch():
    """A stack budget below the batch footprint still runs native chunks."""
    app = app_by_name("jacobi3d")
    mesh = APP_MESHES["jacobi3d"]
    program = app.program_on(mesh)
    envs = [app.fields(mesh, seed=s) for s in range(5)]
    stats: dict = {}
    plan = CACHE.plan_for(program, envs[0])
    got = run_program_stacked(
        program, envs, 4, cache=CACHE, engine="native",
        max_stack_bytes=plan.nbytes * 2, stats=stats,
    )
    assert stats["dispatches"] > 1  # genuinely chunked
    for env, o in zip(envs, got):
        _assert_env_equal(run_program(program, env, 4, engine="interpreter"), o)


def test_native_parallel_workers_bit_identical():
    """Workers bind NativeProgram instances and stay bit-identical."""
    from repro.parallel.executor import run_program_parallel

    app = app_by_name("poisson2d")
    mesh = APP_MESHES["poisson2d"]
    program = app.program_on(mesh)
    envs = [app.fields(mesh, seed=s) for s in range(4)]
    got = run_program_parallel(
        program, envs, 5, cache=CACHE, max_workers=2, backend="thread",
        native=True,
    )
    for env, o in zip(envs, got):
        _assert_env_equal(run_program(program, env, 5, engine="interpreter"), o)


# --------------------------------------------------------------------------- #
# lowering corners that bit PR 3: mixed-radius init_from, flat mode
# --------------------------------------------------------------------------- #
def _mixed_radius_program():
    mesh = MeshSpec((12, 10))
    U = lambda dx, dy: FieldAccess("U", (dx, dy))
    G = lambda dx, dy: FieldAccess("G", (dx, dy))
    k1 = StencilKernel(
        "mk_g",
        (
            KernelOutput(
                "G", (Const(0.25) * (U(-1, 0) + U(1, 0) + U(0, -1) + U(0, 1)),)
            ),
        ),
    )
    k2 = StencilKernel(
        "mk_u",
        (
            KernelOutput(
                "U",
                (Const(0.25) * (G(-2, 0) + G(2, 0) + G(0, -2) + G(0, 2)),),
                init_from="G",
            ),
        ),
    )
    return StencilProgram(
        "mixed_radius",
        mesh,
        (FusedGroup((StencilLoop(k1), StencilLoop(k2))),),
        state_fields=("U",),
    )


def test_mixed_radius_init_from_native_bit_identical():
    """The never-settling boundary ring survives the native lowering."""
    program = _mixed_radius_program()
    fields = {"U": Field.random("U", program.mesh, seed=1)}
    for niter in range(1, 10):
        gold = run_program(program, fields, niter, engine="interpreter")
        got = run_program_compiled(
            program, fields, niter, cache=CACHE, engine="native"
        )
        _assert_env_equal(gold, got)


def test_flat_mode_vector_kernel_native_bit_identical():
    """Multi-component flat-mode lanes (RTM-style lowering) stay identical."""
    mesh = MeshSpec((14, 12), components=3)

    def stencil(c):
        U = lambda dx, dy: FieldAccess("U", (dx, dy), c)
        return (
            Const(0.2) * (U(-1, 0) + U(1, 0) + U(0, -1) + U(0, 1))
            + Const(0.1) * U(0, 0)
        ) * FieldAccess("G", (0, 0), 0)

    kernel = StencilKernel(
        "vec_smooth",
        (
            KernelOutput("W", tuple(stencil(c) for c in range(3))),
            KernelOutput(
                "U",
                tuple(
                    FieldAccess("U", (0, 0), c)
                    + Const(0.5) * FieldAccess("W", (0, 0), c)
                    for c in range(3)
                ),
                init_from="U",
            ),
        ),
    )
    program = StencilProgram(
        "vec_smooth",
        mesh,
        (FusedGroup((StencilLoop(kernel),)),),
        state_fields=("U",),
        constant_fields=("G",),
    )
    fields = {
        "U": Field.random("U", mesh, seed=4, lo=-1.0, hi=1.0),
        "G": Field.random("G", MeshSpec(mesh.shape, 1), seed=5),
    }
    for niter in (1, 2, 5, 6):
        gold = run_program(program, fields, niter, engine="interpreter")
        got = run_program_compiled(
            program, fields, niter, cache=CACHE, engine="native"
        )
        _assert_env_equal(gold, got)


# --------------------------------------------------------------------------- #
# backend ladder and the numba-optional story
# --------------------------------------------------------------------------- #
def _fresh_instance(batch=1):
    app = app_by_name("jacobi3d")
    mesh = (10, 10, 6)
    program = app.program_on(mesh)
    env = app.fields(mesh, seed=0)
    plan = CACHE.plan_for(program, env)
    return NativeProgram(plan, batch=batch), program, env


def test_backend_order_no_numba(monkeypatch):
    monkeypatch.setenv("REPRO_NO_NUMBA", "1")
    assert "numba" not in _backend_order()
    monkeypatch.setenv("REPRO_NATIVE_JIT", "numba")
    # a numba pin with numba disabled degrades to the always-there rung
    assert _backend_order() == ("python",)


def test_no_numba_run_is_fully_supported(monkeypatch):
    """REPRO_NO_NUMBA=1 binds a non-numba backend and stays bit-identical."""
    monkeypatch.setenv("REPRO_NO_NUMBA", "1")
    inst, program, env = _fresh_instance()
    assert inst.native_backend in ("cc", "python")
    gold = run_program(program, env, 6, engine="interpreter")
    _assert_env_equal(gold, inst.run(env, 6))


def test_python_fallback_exercised(monkeypatch):
    """The fused-NumPy rung runs and matches when every JIT is pinned off."""
    monkeypatch.setenv("REPRO_NATIVE_JIT", "python")
    inst, program, env = _fresh_instance()
    assert inst.native_backend == "python"
    assert inst._steady_runner is not None
    gold = run_program(program, env, 7, engine="interpreter")
    _assert_env_equal(gold, inst.run(env, 7))


def test_verify_gate_rejects_wrong_runner():
    """A runner that computes nothing must fail the bind-time self-check."""
    inst, _, _ = _fresh_instance()
    assert inst._verify(lambda k0, n: None) is False


def test_unsupported_dtype_degrades_to_tape():
    """Non-float dtypes decline lowering but still run via tape replay."""
    mesh = MeshSpec((8, 8), dtype=np.dtype(np.int32))
    U = lambda dx, dy: FieldAccess("U", (dx, dy))
    kernel = StencilKernel(
        "intsum",
        (KernelOutput("U", (U(-1, 0) + U(1, 0) + U(0, 0),), init_from="U"),),
    )
    program = StencilProgram(
        "intsum", mesh, (FusedGroup((StencilLoop(kernel),)),),
        state_fields=("U",),
    )
    env = {
        "U": Field(
            "U", mesh,
            np.arange(64, dtype=np.int32).reshape(8, 8) % 7,
        )
    }
    plan = CACHE.plan_for(program, env)
    inst = NativeProgram(plan)
    assert inst.native_backend in ("tape", "python")
    gold = run_program(program, env, 4, engine="interpreter")
    _assert_env_equal(gold, inst.run(env, 4))


def test_iterations_split_across_calls_keeps_parity():
    """run_iterations in ragged chunks matches a one-shot run exactly."""
    inst, program, env = _fresh_instance()
    one_shot = inst.run(env, 7)
    inst.load(env)
    for step in (1, 2, 3, 1):
        inst.run_iterations(step)
    _assert_env_equal(one_shot, inst.result(env))


# --------------------------------------------------------------------------- #
# cache keying and the copy fast path
# --------------------------------------------------------------------------- #
def test_cache_keys_native_separately():
    cache = CompiledPlanCache()
    app = app_by_name("poisson2d")
    mesh = (12, 10)
    program = app.program_on(mesh)
    env = app.fields(mesh, seed=0)
    plain = cache.get(program, env)
    native = cache.get(program, env, native=True)
    assert type(plain) is CompiledProgram
    assert isinstance(native, NativeProgram)
    assert plain is not native
    # repeat gets are cache hits, not new bindings
    assert cache.get(program, env, native=True) is native
    assert cache.get(program, env) is plain


def test_result_copy_false_aliases_buffers():
    inst, program, env = _fresh_instance()
    inst.load(env)
    inst.run_iterations(3)
    copied = inst.result(env)
    aliased = inst.result(env, copy=False)
    _assert_env_equal(copied, aliased)
    # aliased results share memory with the live buffers; copies do not
    for name, slot in inst.plan.final_env(inst._iterations_done).items():
        buf = inst._buffers[slot]
        assert aliased[name].data is buf
        assert copied[name].data is not buf


def test_result_stacked_copy_false_views():
    inst, program, _ = _fresh_instance(batch=2)
    app = app_by_name("jacobi3d")
    envs = [app.fields((10, 10, 6), seed=s) for s in range(2)]
    inst.load_stacked(envs)
    inst.run_iterations(3)
    copied = inst.result_stacked(envs)
    aliased = inst.result_stacked(envs, copy=False)
    for c, a in zip(copied, aliased):
        _assert_env_equal(c, a)
    for name in inst.plan.final_env(inst._iterations_done):
        assert aliased[0][name].data.base is not None  # a view, not a copy


def test_run_copy_false_matches_copy_true():
    inst, program, env = _fresh_instance()
    gold = inst.run(env, 5)
    fast = inst.run(env, 5, copy=False)
    _assert_env_equal(gold, fast)


# --------------------------------------------------------------------------- #
# every registered app through the one-call native entry
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("name", sorted(all_apps()))
def test_every_app_native_entry(name):
    app = app_by_name(name)
    mesh = APP_MESHES[name]
    program = app.program_on(mesh)
    env = app.fields(mesh, seed=11)
    gold = run_program(program, env, 5, engine="interpreter")
    got = run_program(program, env, 5, engine="native")
    _assert_env_equal(gold, got)
