"""Unit tests for mesh batching (stacking along the outer dimension)."""

import numpy as np
import pytest

from repro.mesh.batch import (
    batched_spec,
    split_batch_major,
    split_field,
    stack_batch_major,
    stack_fields,
)
from repro.mesh.mesh import Field, MeshSpec
from repro.util.errors import ValidationError


class TestBatchedSpec:
    def test_2d_extends_n(self):
        spec = MeshSpec((200, 100))
        assert batched_spec(spec, 10).shape == (200, 1000)

    def test_3d_extends_l(self):
        spec = MeshSpec((50, 50, 50))
        assert batched_spec(spec, 4).shape == (50, 50, 200)

    def test_preserves_components(self):
        spec = MeshSpec((8, 8, 8), components=6)
        assert batched_spec(spec, 2).components == 6


class TestStackSplit:
    def test_roundtrip(self):
        spec = MeshSpec((6, 4))
        fields = [Field.random("U", spec, seed=i) for i in range(3)]
        stacked = stack_fields(fields)
        assert stacked.spec.shape == (6, 12)
        parts = split_field(stacked, 3)
        for orig, part in zip(fields, parts):
            assert np.array_equal(orig.data, part.data)

    def test_stack_order_is_contiguous_segments(self):
        spec = MeshSpec((2, 2))
        a = Field.full("U", spec, 1.0)
        b = Field.full("U", spec, 2.0)
        stacked = stack_fields([a, b])
        assert np.all(stacked.data[:2] == 1.0)
        assert np.all(stacked.data[2:] == 2.0)

    def test_stack_rejects_mixed_specs(self):
        a = Field.zeros("U", MeshSpec((4, 4)))
        b = Field.zeros("U", MeshSpec((4, 5)))
        with pytest.raises(ValidationError):
            stack_fields([a, b])

    def test_stack_rejects_empty(self):
        with pytest.raises(ValidationError):
            stack_fields([])

    def test_split_rejects_indivisible(self):
        f = Field.zeros("U", MeshSpec((4, 9)))
        with pytest.raises(ValidationError):
            split_field(f, 2)

    def test_split_names(self):
        f = Field.zeros("U", MeshSpec((4, 8)))
        parts = split_field(f, 2)
        assert [p.name for p in parts] == ["U[0]", "U[1]"]

    def test_spec_and_data_axes_agree_on_asymmetric_3d_mesh(self):
        """``axis=0`` concatenation is exactly the ``shape[-1]`` extension.

        Paper-order shapes reverse into storage order, so the outermost
        paper dimension (``spec.shape[-1]``, the one ``batched_spec``
        multiplies) *is* storage axis 0 (the one ``stack_fields``
        concatenates). The asymmetric extents make any axis mix-up change
        the storage shape and fail loudly.
        """
        spec = MeshSpec((5, 7, 3), components=2)
        fields = [Field.random("U", spec, seed=i) for i in range(4)]
        stacked = stack_fields(fields)
        assert stacked.spec == batched_spec(spec, 4)
        assert stacked.spec.shape == (5, 7, 12)  # only l extends
        assert stacked.data.shape == (12, 7, 5, 2)  # storage axis 0 extends
        # full round-trip: stack -> batched_spec storage -> split
        parts = split_field(stacked, 4)
        for orig, part in zip(fields, parts):
            assert part.spec == spec
            assert np.array_equal(orig.data, part.data)
        # and each mesh is a contiguous segment of the stream, in order
        for i, orig in enumerate(fields):
            assert np.array_equal(stacked.data[3 * i : 3 * (i + 1)], orig.data)


class TestBatchMajor:
    def test_roundtrip(self):
        spec = MeshSpec((5, 7, 3), components=2)
        fields = [Field.random("U", spec, seed=i) for i in range(3)]
        stacked = stack_batch_major(fields)
        assert stacked.shape == (3,) + spec.storage_shape
        parts = split_batch_major("U", spec, stacked)
        assert [p.name for p in parts] == ["U[0]", "U[1]", "U[2]"]
        for orig, part in zip(fields, parts):
            assert np.array_equal(orig.data, part.data)

    def test_rejects_empty_and_mixed_specs(self):
        with pytest.raises(ValidationError):
            stack_batch_major([])
        a = Field.zeros("U", MeshSpec((4, 4)))
        b = Field.zeros("U", MeshSpec((4, 5)))
        with pytest.raises(ValidationError):
            stack_batch_major([a, b])

    def test_split_rejects_wrong_storage_shape(self):
        spec = MeshSpec((4, 4))
        with pytest.raises(ValidationError):
            split_batch_major("U", spec, np.zeros((2, 4, 5, 1), np.float32))
