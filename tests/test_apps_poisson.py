"""Application tests: Poisson-5pt-2D."""

import numpy as np
import pytest

from repro.apps.poisson2d import POISSON_P, POISSON_V, poisson2d_app
from repro.stencil.numpy_eval import run_program


class TestPreset:
    def test_table2_parameters(self):
        app = poisson2d_app()
        assert app.V == 8 and app.p == 60
        assert app.paper_clock_mhz == 250.0
        assert app.initiation_interval == 1.0

    def test_design_point(self):
        design = poisson2d_app().design()
        assert (design.V, design.p) == (POISSON_V, POISSON_P)
        assert design.memory == "HBM"

    def test_tiled_design_uses_ddr4(self):
        design = poisson2d_app().design(tile=(8000,))
        assert design.memory == "DDR4"
        assert design.tile.M == 8000

    def test_fields(self):
        app = poisson2d_app()
        fields = app.fields((16, 12), seed=9)
        assert set(fields) == {"U"}
        assert fields["U"].spec.shape == (16, 12)


class TestNumerics:
    def test_solver_is_smoothing(self):
        app = poisson2d_app((24, 24))
        fields = app.fields((24, 24), seed=1)
        out = run_program(app.program_on((24, 24)), fields, 100)
        # repeated application of the averaging stencil contracts the range
        inner0 = fields["U"].interior(1)
        inner1 = out["U"].interior(1)
        assert inner1.max() - inner1.min() < inner0.max() - inner0.min()

    def test_accelerator_equals_golden_many_iters(self):
        app = poisson2d_app((20, 14))
        fields = app.fields((20, 14), seed=2)
        design = app.design(p=5, V=2)
        acc = app.accelerator((20, 14), design)
        res, _ = acc.run(fields, 20)
        gold = run_program(app.program_on((20, 14)), fields, 20)
        assert np.array_equal(res["U"].data, gold["U"].data)


class TestModelAgreement:
    def test_predictor_and_simulator_agree_within_paper_band(self):
        # the paper validates its model to +-15% of measured; our simulator
        # plays 'measured', so model vs simulator must sit in that band
        app = poisson2d_app()
        for mesh in ((200, 100), (400, 400)):
            w = app.workload(mesh, 60000)
            pred = app.predictor(mesh).predict(w)
            sim = app.accelerator(mesh).estimate(w)
            assert abs(pred.seconds - sim.seconds) / sim.seconds < 0.5

    def test_fpga_beats_gpu_on_baseline(self):
        # Fig 3(a): the un-batched GPU is launch-bound; FPGA wins by >4x
        app = poisson2d_app()
        for mesh in ((200, 100), (400, 400)):
            w = app.workload(mesh, 60000)
            fpga = app.accelerator(mesh).estimate(w)
            gpu = app.gpu_model().predict(w)
            assert gpu.seconds / fpga.seconds > 4.0

    def test_batched_gap_narrows(self):
        # Fig 3(b): batching brings the GPU within ~2x of the FPGA
        app = poisson2d_app()
        w = app.workload((200, 200), 60000, batch=1000)
        fpga = app.accelerator((200, 200)).estimate(w)
        gpu = app.gpu_model().predict(w)
        assert 1.0 < gpu.seconds / fpga.seconds < 2.5
