"""Unit tests for StencilKernel semantics."""

import pytest

from repro.stencil.expr import Coef, Const, FieldAccess
from repro.stencil.kernel import KernelOutput, StencilKernel, single_output_kernel
from repro.util.errors import ValidationError


def U(dx, dy):
    return FieldAccess("U", (dx, dy))


class TestSingleOutput:
    def test_ping_pong_init_from_defaults_to_self(self):
        k = single_output_kernel("k", "U", U(-1, 0) + U(1, 0))
        assert k.outputs[0].init_from == "U"

    def test_fresh_output_no_init(self):
        k = single_output_kernel("k", "W", U(-1, 0) + U(1, 0))
        assert k.outputs[0].init_from is None

    def test_read_fields_includes_own_name_for_ping_pong(self):
        k = single_output_kernel("k", "U", U(-1, 0))
        assert k.read_fields() == ("U",)

    def test_radius_and_order(self):
        k = single_output_kernel("k", "U", U(-2, 0) + U(0, 1))
        assert k.radius == (2, 1)
        assert k.order == 4


class TestMultiOutput:
    def _rk_kernel(self):
        """K = a*U_stencil;  T = U + 0.5*K (the RTM fused-loop shape)."""
        k_expr = Coef("a") * (U(-1, 0) + U(1, 0))
        t_expr = U(0, 0) + Const(0.5) * FieldAccess("K", (0, 0))
        return StencilKernel(
            "fused",
            (
                KernelOutput("K", (k_expr,)),
                KernelOutput("T", (t_expr,), init_from="U"),
            ),
            {"a": 0.5},
        )

    def test_output_order_and_fields(self):
        k = self._rk_kernel()
        assert k.output_fields == ("K", "T")
        assert k.output("T").init_from == "U"

    def test_local_wire_not_external(self):
        k = self._rk_kernel()
        assert k.read_fields() == ("U",)

    def test_local_wire_must_be_centre(self):
        k_expr = Coef("a") * U(1, 0)
        bad_t = FieldAccess("K", (1, 0))
        with pytest.raises(ValidationError, match="non-zero"):
            StencilKernel(
                "bad",
                (KernelOutput("K", (k_expr,)), KernelOutput("T", (bad_t,))),
                {"a": 1.0},
            )

    def test_spec_excludes_locals(self):
        k = self._rk_kernel()
        assert k.spec().fields == ("U",)

    def test_op_counts_sum_all_outputs(self):
        k = self._rk_kernel()
        ops = k.op_counts()
        assert ops.adds == 2  # one in K, one in T
        assert ops.muls == 2


class TestValidation:
    def test_missing_coefficient_default(self):
        with pytest.raises(ValidationError, match="coefficients"):
            single_output_kernel("k", "U", Coef("missing") * U(0, 0))

    def test_rank_mismatch_between_accesses(self):
        with pytest.raises(ValidationError):
            StencilKernel(
                "bad",
                (KernelOutput("U", (U(0, 0) + FieldAccess("V", (0, 0, 0)),)),),
            )

    def test_requires_outputs(self):
        with pytest.raises(ValidationError):
            StencilKernel("k", ())

    def test_output_requires_exprs(self):
        with pytest.raises(ValidationError):
            KernelOutput("U", ())

    def test_ndim_requires_field_access(self):
        with pytest.raises(ValidationError):
            StencilKernel("k", (KernelOutput("U", (Const(1.0),)),)).ndim


class TestCoefficients:
    def test_with_coefficients_replaces_default(self):
        k = single_output_kernel("k", "U", Coef("a") * U(0, 0), {"a": 1.0})
        k2 = k.with_coefficients(a=2.0)
        assert k2.coefficients["a"] == 2.0
        assert k.coefficients["a"] == 1.0  # original untouched

    def test_with_coefficients_rejects_unknown(self):
        k = single_output_kernel("k", "U", Coef("a") * U(0, 0), {"a": 1.0})
        with pytest.raises(ValidationError):
            k.with_coefficients(b=2.0)

    def test_coefficient_names(self):
        k = single_output_kernel(
            "k", "U", Coef("a") * U(0, 0) + Coef("b") * U(1, 0), {"a": 1.0, "b": 2.0}
        )
        assert k.coefficient_names() == {"a", "b"}
