"""Unit tests for the FPGA power/energy model."""

import pytest

from repro.arch.device import ALVEO_U280
from repro.model.energy import DEFAULT_FPGA_POWER, FPGAPowerModel
from repro.util.errors import ValidationError


class TestPaperCalibration:
    def test_poisson_near_70w(self):
        # p=60, V=8, Gdsp=14 at 250 MHz with tiny line buffers
        w = DEFAULT_FPGA_POWER.watts(
            ALVEO_U280, dsp_used=6720, mem_used_bytes=200_000, clock_hz=250e6
        )
        assert 60 <= w <= 80

    def test_jacobi_near_90w(self):
        # p=29, V=8, Gdsp=33 at 246 MHz with ~14.5 MB of plane buffers
        w = DEFAULT_FPGA_POWER.watts(
            ALVEO_U280, dsp_used=7656, mem_used_bytes=14_500_000, clock_hz=246e6
        )
        assert 80 <= w <= 100

    def test_static_floor(self):
        w = DEFAULT_FPGA_POWER.watts(ALVEO_U280, 0, 0, 100e6, channels_active=0)
        assert w == pytest.approx(DEFAULT_FPGA_POWER.static_watts)

    def test_capped_at_board_limit(self):
        model = FPGAPowerModel(dsp_coef=1.0)
        w = model.watts(ALVEO_U280, 8000, 0, 300e6)
        assert w == model.max_watts


class TestEnergy:
    def test_energy_is_power_times_time(self):
        e = DEFAULT_FPGA_POWER.energy_joules(
            ALVEO_U280, 6720, 200_000, 250e6, seconds=10.0
        )
        w = DEFAULT_FPGA_POWER.watts(ALVEO_U280, 6720, 200_000, 250e6)
        assert e == pytest.approx(10.0 * w)

    def test_zero_time_zero_energy(self):
        assert DEFAULT_FPGA_POWER.energy_joules(ALVEO_U280, 100, 100, 250e6, 0.0) == 0.0

    def test_negative_time_rejected(self):
        with pytest.raises(ValidationError):
            DEFAULT_FPGA_POWER.energy_joules(ALVEO_U280, 100, 100, 250e6, -1.0)


class TestValidation:
    def test_model_fields(self):
        with pytest.raises(ValidationError):
            FPGAPowerModel(static_watts=0)
        with pytest.raises(ValidationError):
            FPGAPowerModel(dsp_coef=-1)

    def test_watts_inputs(self):
        with pytest.raises(ValidationError):
            DEFAULT_FPGA_POWER.watts(ALVEO_U280, -1, 0, 250e6)
        with pytest.raises(ValidationError):
            DEFAULT_FPGA_POWER.watts(ALVEO_U280, 0, 0, 0)
