"""Tests for the serving circuit breaker (repro.serve.breaker)."""

from __future__ import annotations

import pytest

from repro import observability as obs
from repro.serve.breaker import CircuitBreaker
from repro.util.errors import ValidationError


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def _breaker(threshold=3, timeout=1.0):
    clock = FakeClock()
    return CircuitBreaker(threshold, timeout, clock=clock), clock


class TestValidation:
    def test_threshold_must_be_at_least_one(self):
        with pytest.raises(ValidationError):
            CircuitBreaker(failure_threshold=0)

    def test_reset_timeout_must_be_positive(self):
        with pytest.raises(ValidationError):
            CircuitBreaker(reset_timeout=0.0)


class TestStateMachine:
    def test_starts_closed_and_allows(self):
        breaker, _ = _breaker()
        assert breaker.state == "closed"
        assert breaker.allow()
        assert breaker.trips == 0

    def test_consecutive_failures_trip(self):
        breaker, _ = _breaker(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"  # below threshold
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.trips == 1

    def test_success_resets_the_failure_run(self):
        breaker, _ = _breaker(threshold=2)
        breaker.record_failure()
        breaker.record_success()  # interrupts the run
        breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"

    def test_half_opens_after_reset_timeout(self):
        breaker, clock = _breaker(threshold=1, timeout=2.0)
        breaker.record_failure()
        assert breaker.state == "open"
        clock.advance(1.9)
        assert breaker.state == "open"
        clock.advance(0.2)
        assert breaker.state == "half_open"
        assert not breaker.allow()  # only the probe holder may dispatch

    def test_probe_success_closes(self):
        breaker, clock = _breaker(threshold=1, timeout=1.0)
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.begin_probe()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()
        assert breaker.trips == 1

    def test_probe_failure_reopens_and_restarts_timer(self):
        breaker, clock = _breaker(threshold=1, timeout=1.0)
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.begin_probe()
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.trips == 2
        clock.advance(0.5)
        assert breaker.state == "open"  # timer restarted at the re-trip
        clock.advance(0.5)
        assert breaker.state == "half_open"

    def test_single_probe_slot(self):
        breaker, clock = _breaker(threshold=1, timeout=1.0)
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.begin_probe()
        assert not breaker.begin_probe()  # second claimant loses
        breaker.record_success()
        assert not breaker.begin_probe()  # closed: probes are meaningless

    def test_abort_probe_releases_slot_without_judging(self):
        """A probe whose dispatch ended without a verdict (cancelled
        mid-flight) must free the slot, not wedge half-open forever."""
        breaker, clock = _breaker(threshold=1, timeout=1.0)
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.begin_probe()
        assert not breaker.begin_probe()
        breaker.abort_probe()
        assert breaker.state == "half_open"  # state unjudged, unchanged
        assert breaker.trips == 1
        assert breaker.begin_probe()  # the slot is claimable again
        breaker.record_success()
        assert breaker.state == "closed"

    def test_abort_probe_is_harmless_when_not_probing(self):
        breaker, clock = _breaker(threshold=1, timeout=1.0)
        breaker.abort_probe()
        assert breaker.state == "closed"
        breaker.record_failure()
        breaker.abort_probe()
        assert breaker.state == "open"
        assert breaker.trips == 1

    def test_trips_counter_accumulates(self):
        breaker, clock = _breaker(threshold=1, timeout=1.0)
        for expected in (1, 2, 3):
            breaker.record_failure()
            assert breaker.trips == expected
            clock.advance(1.0)
            assert breaker.state == "half_open"


class TestObservability:
    def test_full_cycle_emits_breaker_events(self):
        obs.enable()
        try:
            breaker, clock = _breaker(threshold=1, timeout=1.0)
            breaker.record_failure()  # -> open
            clock.advance(1.0)
            assert breaker.begin_probe()  # state read half-opens
            breaker.record_success()  # -> closed
            kinds = [
                k for k in obs.ring_sink().kinds()
                if k.startswith("serve.breaker")
            ]
            assert kinds == [
                "serve.breaker_open",
                "serve.breaker_half_open",
                "serve.breaker_closed",
            ]
        finally:
            obs.disable()
