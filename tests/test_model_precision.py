"""Unit tests for alternative numerical representations (future-work module)."""

import numpy as np
import pytest

from repro.arch.device import ALVEO_U280
from repro.model.precision import (
    ALL_PRECISIONS,
    DOUBLE,
    FIXED16,
    FIXED32,
    FLOAT,
    HALF,
    gdsp_at_precision,
    max_vectorization_at_precision,
    precision_by_name,
    precision_error,
    quantization_step,
    quantize_fixed,
)
from repro.model.resources import p_dsp
from repro.util.errors import ValidationError
from repro.util.units import MHZ


class TestCostScaling:
    def test_float_matches_paper_baseline(self, poisson_program):
        assert gdsp_at_precision(poisson_program, FLOAT) == 14

    def test_half_cheaper_than_float(self, poisson_program):
        assert gdsp_at_precision(poisson_program, HALF) < 14

    def test_double_far_more_expensive(self, jacobi_program):
        assert gdsp_at_precision(jacobi_program, DOUBLE) > 2 * 33

    def test_fixed_point_multiplier_only(self, poisson_program):
        # fixed16: adds are free, 2 multiplies cost 1 DSP each
        assert gdsp_at_precision(poisson_program, FIXED16) == 2

    def test_unroll_depth_gain_half(self, poisson_program):
        g_half = gdsp_at_precision(poisson_program, HALF)
        g_float = gdsp_at_precision(poisson_program, FLOAT)
        assert p_dsp(ALVEO_U280, 8, g_half) > p_dsp(ALVEO_U280, 8, g_float)


class TestBandwidthScaling:
    def test_half_doubles_v(self):
        channel = ALVEO_U280.ddr4.channel_bandwidth
        v_float = max_vectorization_at_precision(channel, 300 * MHZ, FLOAT)
        v_half = max_vectorization_at_precision(channel, 300 * MHZ, HALF)
        assert v_half == 2 * v_float

    def test_double_halves_v(self):
        channel = ALVEO_U280.ddr4.channel_bandwidth
        v_float = max_vectorization_at_precision(channel, 300 * MHZ, FLOAT)
        v_double = max_vectorization_at_precision(channel, 300 * MHZ, DOUBLE)
        assert v_double == v_float // 2

    def test_vector_components_scale(self):
        channel = ALVEO_U280.hbm.channel_bandwidth
        v1 = max_vectorization_at_precision(channel, 300 * MHZ, FLOAT, components=1)
        v6 = max_vectorization_at_precision(channel, 300 * MHZ, FLOAT, components=6)
        assert v6 <= v1 // 6 + 1


class TestQuantization:
    def test_quantize_grid(self):
        x = np.array([0.1, 0.26, -0.3])
        q = quantize_fixed(x, 2)  # quarter steps
        assert np.allclose(q, [0.0, 0.25, -0.25])

    def test_quantize_idempotent(self):
        x = np.linspace(-1, 1, 17)
        q = quantize_fixed(x, 8)
        assert np.array_equal(q, quantize_fixed(q, 8))

    def test_step_sizes_ordered(self):
        assert quantization_step(HALF) > quantization_step(FLOAT) > quantization_step(DOUBLE)
        assert quantization_step(FIXED16) == 2.0**-8
        assert quantization_step(FIXED32) == 2.0**-16

    def test_registry(self):
        assert precision_by_name("fixed32") is FIXED32
        with pytest.raises(ValidationError):
            precision_by_name("bfloat16")
        assert len(ALL_PRECISIONS) == 5


class TestErrorHarness:
    def test_float_error_small(self, poisson_program, field2d):
        err = precision_error(poisson_program, {"U": field2d}, 5, FLOAT)
        assert err < 1e-5

    def test_half_error_larger_than_float(self, poisson_program, field2d):
        err_half = precision_error(poisson_program, {"U": field2d}, 5, HALF)
        err_float = precision_error(poisson_program, {"U": field2d}, 5, FLOAT)
        assert err_half > err_float

    def test_fixed16_error_tracks_lsb(self, poisson_program, field2d):
        err = precision_error(poisson_program, {"U": field2d}, 5, FIXED16)
        assert 0 < err < 50 * quantization_step(FIXED16)

    def test_fixed32_much_tighter_than_fixed16(self, poisson_program, field2d):
        e16 = precision_error(poisson_program, {"U": field2d}, 5, FIXED16)
        e32 = precision_error(poisson_program, {"U": field2d}, 5, FIXED32)
        assert e32 < e16 / 10
