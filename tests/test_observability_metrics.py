"""The metrics layer: counters, gauges, histograms, registry, rendering."""

from __future__ import annotations

import math
import threading

import pytest

from repro.observability.export import render_prometheus
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    percentiles,
)
from repro.util.errors import ValidationError


class TestPercentiles:
    def test_exact_interpolation(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        got = percentiles(values)
        assert got["p50"] == 3.0
        assert got["p95"] == pytest.approx(4.8)
        assert got["p99"] == pytest.approx(4.96)

    def test_single_sample_is_every_percentile(self):
        got = percentiles([7.0])
        assert got == {"p50": 7.0, "p95": 7.0, "p99": 7.0}

    def test_empty_is_nan(self):
        got = percentiles([])
        assert all(math.isnan(v) for v in got.values())

    def test_order_independent(self):
        assert percentiles([3.0, 1.0, 2.0]) == percentiles([1.0, 2.0, 3.0])


class TestCounter:
    def test_accumulates(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            Counter().inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge()
        g.set(10.0)
        g.inc(2.0)
        g.dec(5.0)
        assert g.value == 7.0


class TestHistogram:
    def test_counts_land_in_buckets(self):
        h = Histogram(bounds=(1.0, 10.0, 100.0))
        for v in (0.5, 5.0, 50.0, 500.0):
            h.observe(v)
        assert h.count == 4
        assert h.total == pytest.approx(555.5)
        assert list(h.counts) == [1, 1, 1, 1]

    def test_percentile_clamped_to_observed_range(self):
        h = Histogram(bounds=(1.0, 10.0, 100.0))
        h.observe(5.0)
        # one sample: every percentile collapses onto it, never a bucket edge
        assert h.percentile(50) == pytest.approx(5.0)
        assert h.percentile(99) == pytest.approx(5.0)

    def test_percentile_of_empty_is_nan(self):
        assert math.isnan(Histogram(bounds=(1.0,)).percentile(50))

    def test_rejects_unsorted_bounds(self):
        with pytest.raises(ValidationError):
            Histogram(bounds=(2.0, 1.0))

    def test_summary_has_quantiles(self):
        h = Histogram()
        for v in (0.001, 0.002, 0.004):
            h.observe(v)
        summary = h.summary()
        assert summary["count"] == 3
        assert summary["p50"] <= summary["p95"] <= summary["p99"]


class TestRegistry:
    def test_same_name_and_labels_share_a_metric(self):
        reg = MetricsRegistry()
        reg.counter("hits", backend="a").inc()
        reg.counter("hits", backend="a").inc()
        reg.counter("hits", backend="b").inc()
        assert reg.value("hits", backend="a") == 2
        assert reg.value("hits", backend="b") == 1

    def test_label_order_is_canonical(self):
        reg = MetricsRegistry()
        reg.counter("x", a=1, b=2).inc()
        reg.counter("x", b=2, a=1).inc()
        assert reg.value("x", a=1, b=2) == 2

    def test_one_kind_per_name(self):
        reg = MetricsRegistry()
        reg.counter("m").inc()
        with pytest.raises(ValidationError):
            reg.gauge("m")

    def test_items_sorted_snapshot(self):
        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.counter("a").inc()
        names = [name for name, _, _ in reg.items()]
        assert names == sorted(names)

    def test_clear(self):
        reg = MetricsRegistry()
        reg.counter("n").inc()
        reg.clear()
        assert list(reg.items()) == []

    def test_thread_safe_counting(self):
        reg = MetricsRegistry()

        def work():
            for _ in range(500):
                reg.counter("races").inc()

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.value("races") == 2000


class TestPrometheusRender:
    def test_counter_and_gauge_lines(self):
        reg = MetricsRegistry()
        reg.counter("plan.cache_hits").inc(3)
        reg.gauge("pool.width", backend="process").set(4)
        text = render_prometheus(reg)
        assert "# TYPE repro_plan_cache_hits counter" in text
        assert "repro_plan_cache_hits 3" in text
        assert 'repro_pool_width{backend="process"} 4' in text

    def test_histogram_series(self):
        reg = MetricsRegistry()
        h = reg.histogram("chunk.seconds", buckets=(0.01, 0.1))
        h.observe(0.005)
        h.observe(0.05)
        text = render_prometheus(reg)
        assert 'repro_chunk_seconds_bucket{le="0.01"} 1' in text
        assert 'repro_chunk_seconds_bucket{le="0.1"} 2' in text
        assert 'repro_chunk_seconds_bucket{le="+Inf"} 2' in text
        assert "repro_chunk_seconds_count 2" in text
        assert "repro_chunk_seconds_p50" in text

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""
