"""Unit tests for the command-line interface."""

import pytest

from repro.cli import _parse_mesh, main
from repro.util.errors import ReproError


class TestParseMesh:
    def test_2d(self):
        assert _parse_mesh("400x400") == (400, 400)

    def test_3d_uppercase(self):
        assert _parse_mesh("50X50X200") == (50, 50, 200)

    def test_rejects_1d(self):
        with pytest.raises(ReproError):
            _parse_mesh("400")

    def test_rejects_garbage(self):
        with pytest.raises(ReproError):
            _parse_mesh("4ax3")


class TestCommands:
    def test_apps(self, capsys):
        assert main(["apps"]) == 0
        out = capsys.readouterr().out
        assert "poisson2d" in out and "rtm" in out
        assert "2444" in out  # RTM Gdsp in the listing

    def test_experiments_single(self, capsys):
        assert main(["experiments", "--id", "table2"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out

    def test_explore(self, capsys):
        assert main(["explore", "poisson2d", "--mesh", "200x100", "--niter", "100"]) == 0
        out = capsys.readouterr().out
        assert "runtime" in out

    def test_explore_tiled(self, capsys):
        code = main(
            ["explore", "poisson2d", "--mesh", "15000x15000", "--niter", "60", "--tiled"]
        )
        assert code == 0
        assert "tile" in capsys.readouterr().out

    def test_explore_unknown_app(self, capsys):
        assert main(["explore", "navier"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_codegen(self, tmp_path, capsys):
        assert main(["codegen", "poisson2d", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "kernel.cpp").exists()

    def test_report(self, tmp_path, capsys):
        out_file = tmp_path / "EXP.md"
        assert main(["report", "--output", str(out_file)]) == 0
        assert out_file.exists()
        assert "Table II" in out_file.read_text()

    def test_bad_mesh_via_cli(self, capsys):
        assert main(["explore", "poisson2d", "--mesh", "bogus"]) == 2


class TestDseCommand:
    ARGS = ["dse", "jacobi3d", "--mesh", "64x64x64", "--niter", "100"]

    def test_annealing_run(self, capsys):
        assert main(self.ARGS + ["--strategy", "annealing", "--trials", "15"]) == 0
        out = capsys.readouterr().out
        assert "pareto front" in out
        assert "15 evaluated this run" in out

    def test_every_strategy_runs(self, capsys):
        for strategy in ("exhaustive", "random", "greedy"):
            code = main(self.ARGS + ["--strategy", strategy, "--trials", "8"])
            assert code == 0, strategy

    def test_objectives_flag(self, capsys):
        code = main(
            self.ARGS
            + ["--trials", "10", "--objectives", "energy,runtime", "--top", "2"]
        )
        assert code == 0
        assert "primary objective 'energy'" in capsys.readouterr().out

    def test_unknown_strategy_errors(self, capsys):
        assert main(self.ARGS + ["--strategy", "bayesian"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_objective_errors(self, capsys):
        assert main(self.ARGS + ["--objectives", "speed"]) == 2

    def test_resume_requires_study(self, capsys):
        assert main(self.ARGS + ["--resume"]) == 2
        assert "--study" in capsys.readouterr().err

    def test_study_journal_and_resume(self, tmp_path, capsys):
        journal = str(tmp_path / "study.jsonl")
        args = self.ARGS + ["--strategy", "exhaustive", "--study", journal]
        assert main(args + ["--trials", "10"]) == 0
        capsys.readouterr()
        assert main(args + ["--trials", "10", "--resume"]) == 0
        out = capsys.readouterr().out
        assert "10 replayed from journal" in out
        # header + 10 trials from each run
        assert len((tmp_path / "study.jsonl").read_text().splitlines()) == 21

    def test_resume_refuses_mismatched_workload(self, tmp_path, capsys):
        journal = str(tmp_path / "study.jsonl")
        assert main(self.ARGS + ["--trials", "5", "--study", journal]) == 0
        capsys.readouterr()
        code = main(
            ["dse", "jacobi3d", "--mesh", "32x32x32", "--niter", "10",
             "--trials", "5", "--study", journal, "--resume"]
        )
        assert code == 2
        assert "different study" in capsys.readouterr().err


class TestWorkloadMixCLI:
    MIX = "jacobi3d:16x14x10:12x3,rtm:12x12x10:6x2,poisson2d:24x16:20x4@2"

    def test_dse_workloads_runs_without_app(self, capsys):
        assert main([
            "dse", "--workloads", self.MIX,
            "--strategy", "greedy", "--trials", "20",
        ]) == 0
        out = capsys.readouterr().out
        assert "mix jacobi3d:16x14x10:12x3" in out
        assert "pareto front" in out

    def test_dse_workloads_validate_mix(self, capsys):
        assert main([
            "dse", "--workloads", self.MIX,
            "--strategy", "greedy", "--trials", "20", "--validate-mix",
        ]) == 0
        out = capsys.readouterr().out
        assert "bit-identical to the golden interpreter" in out
        assert "9 meshes" in out  # 3 + 2 + 4

    def test_dse_needs_app_or_workloads(self, capsys):
        assert main(["dse"]) == 2
        assert "APP" in capsys.readouterr().err

    def test_dse_rejects_bad_workload_spec(self, capsys):
        assert main(["dse", "--workloads", "jacobi3d:16x14x10"]) == 2
        assert "app:MESH:NITER" in capsys.readouterr().err

    def test_dse_workloads_journal_resume(self, tmp_path, capsys):
        journal = tmp_path / "mix.jsonl"
        args = [
            "dse", "--workloads", self.MIX, "--strategy", "greedy",
            "--trials", "12", "--study", str(journal),
        ]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "replayed from journal" in out

    def test_resume_refuses_different_mix(self, tmp_path, capsys):
        journal = tmp_path / "mix.jsonl"
        base = ["dse", "--strategy", "greedy", "--trials", "8",
                "--study", str(journal)]
        assert main(base + ["--workloads", self.MIX]) == 0
        capsys.readouterr()
        other = "jacobi3d:16x14x10:12x3"
        assert main(base + ["--workloads", other, "--resume"]) == 2
        assert "different study" in capsys.readouterr().err

    def test_dse_workloads_rejects_single_workload_flags(self, capsys):
        assert main([
            "dse", "jacobi3d", "--mesh", "400x400x10", "--niter", "50",
            "--workloads", "rtm:12x12x10:6",
        ]) == 2
        err = capsys.readouterr().err
        assert "drop APP, --mesh, --niter" in err

    def test_validate_mix_requires_workloads(self, capsys):
        assert main([
            "dse", "jacobi3d", "--trials", "5", "--validate-mix",
        ]) == 2
        assert "--validate-mix needs --workloads" in capsys.readouterr().err


class TestServeCommand:
    MIX = "poisson2d:16x12:10,jacobi3d:10x10x6:8"

    def test_serve_bench_compiled(self, capsys):
        assert main([
            "serve", self.MIX, "--bench", "--engine", "compiled",
            "--clients", "2", "--requests", "2", "--batch-window", "0.002",
        ]) == 0
        out = capsys.readouterr().out
        assert "serve bench: 2 clients x 2 requests" in out
        assert "p50 ms" in out
        assert "health: state=running, breaker=closed" in out
        assert "shared-memory segments: all reclaimed" in out

    def test_serve_bench_validate_and_trace(self, tmp_path, capsys):
        trace = tmp_path / "serve-events.jsonl"
        assert main([
            "serve", "poisson2d:14x12:8", "--bench", "--engine", "compiled",
            "--clients", "2", "--requests", "2", "--validate",
            "--trace", str(trace),
        ]) == 0
        out = capsys.readouterr().out
        assert "validated: every served mesh bit-identical" in out
        text = trace.read_text()
        assert "serve.job_admitted" in text
        assert "serve.job_completed" in text
        assert "serve.closed" in text

    def test_serve_breaker_cycle_under_fault_plan(self, capsys):
        assert main([
            "serve", "poisson2d:16x12:10x2", "--bench",
            "--engine", "parallel", "--max-workers", "2",
            "--clients", "1", "--requests", "3",
            "--fail-fast", "--failure-threshold", "1",
            "--reset-timeout", "0.1", "--fault-plan", "crash@0",
        ]) == 0
        out = capsys.readouterr().out
        assert "1 trips" in out
        assert "degraded dispatches" in out
        # every request still served through the serial fallback
        assert "failed 0" in out

    def test_serve_rejects_bad_spec(self, capsys):
        assert main(["serve", "nonsense"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_metrics_serve_dumps_serve_counters(self, capsys):
        assert main([
            "metrics", "poisson2d:14x12:8", "--engine", "compiled", "--serve",
        ]) == 0
        out = capsys.readouterr().out
        assert "repro_serve_admitted" in out
        assert "repro_serve_completed" in out
        assert "repro_serve_latency_seconds" in out
