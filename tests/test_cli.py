"""Unit tests for the command-line interface."""

import pytest

from repro.cli import _parse_mesh, main
from repro.util.errors import ReproError


class TestParseMesh:
    def test_2d(self):
        assert _parse_mesh("400x400") == (400, 400)

    def test_3d_uppercase(self):
        assert _parse_mesh("50X50X200") == (50, 50, 200)

    def test_rejects_1d(self):
        with pytest.raises(ReproError):
            _parse_mesh("400")

    def test_rejects_garbage(self):
        with pytest.raises(ReproError):
            _parse_mesh("4ax3")


class TestCommands:
    def test_apps(self, capsys):
        assert main(["apps"]) == 0
        out = capsys.readouterr().out
        assert "poisson2d" in out and "rtm" in out
        assert "2444" in out  # RTM Gdsp in the listing

    def test_experiments_single(self, capsys):
        assert main(["experiments", "--id", "table2"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out

    def test_explore(self, capsys):
        assert main(["explore", "poisson2d", "--mesh", "200x100", "--niter", "100"]) == 0
        out = capsys.readouterr().out
        assert "runtime" in out

    def test_explore_tiled(self, capsys):
        code = main(
            ["explore", "poisson2d", "--mesh", "15000x15000", "--niter", "60", "--tiled"]
        )
        assert code == 0
        assert "tile" in capsys.readouterr().out

    def test_explore_unknown_app(self, capsys):
        assert main(["explore", "navier"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_codegen(self, tmp_path, capsys):
        assert main(["codegen", "poisson2d", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "kernel.cpp").exists()

    def test_report(self, tmp_path, capsys):
        out_file = tmp_path / "EXP.md"
        assert main(["report", "--output", str(out_file)]) == 0
        assert out_file.exists()
        assert "Table II" in out_file.read_text()

    def test_bad_mesh_via_cli(self, capsys):
        assert main(["explore", "poisson2d", "--mesh", "bogus"]) == 2
