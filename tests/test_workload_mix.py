"""Workload layer: specs, mixes, grammar, serialization, grouping."""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mesh.mesh import MeshSpec
from repro.model.design import Workload
from repro.util.errors import ValidationError
from repro.workload import MixEntry, WorkloadMix, WorkloadSpec, as_mix


class TestWorkloadSpec:
    def test_alias_subsumes_model_design_workload(self):
        """``model.design.Workload`` is the workload layer's spec now."""
        assert Workload is WorkloadSpec
        w = Workload(MeshSpec((64, 64, 64)), 100, 4)
        assert w.total_points == 64**3 * 4
        assert w.footprint_bytes == 64**3 * 4 * 4
        assert w.app is None

    def test_of_resolves_components_and_dtype_from_app(self):
        spec = WorkloadSpec.of("rtm", (16, 16, 12), niter=6, batch=2)
        assert spec.mesh.components == 6
        assert spec.dtype == np.dtype(np.float32)
        assert spec.app == "rtm"

    def test_parse_round_trips_describe(self):
        for text in ("jacobi3d:96x96x96:100x4", "poisson2d:200x100:500",
                     "rtm:64x64x64:36x2"):
            spec = WorkloadSpec.parse(text)
            assert spec.describe() == text
            assert WorkloadSpec.parse(spec.describe()) == spec

    def test_parse_defaults_batch_to_one(self):
        assert WorkloadSpec.parse("jacobi3d:20x20x20:50").batch == 1

    @pytest.mark.parametrize(
        "bad",
        ["jacobi3d", "jacobi3d:96x96x96", "jacobi3d:96:100",
         "jacobi3d:96x96x96:ax4", "jacobi3d:96x96x96:100x4x2",
         "nosuchapp:96x96x96:100"],
    )
    def test_parse_rejects_garbage(self, bad):
        with pytest.raises(ValidationError):
            WorkloadSpec.parse(bad)

    def test_dict_round_trip(self):
        spec = WorkloadSpec.of("rtm", (16, 16, 12), 6, 3)
        again = WorkloadSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert again == spec

    def test_program_and_fields_resolve_via_registry(self):
        spec = WorkloadSpec.parse("poisson2d:24x16:8")
        program = spec.program()
        assert program.mesh.shape == (24, 16)
        env = spec.fields(seed=3)
        for name in program.external_reads():
            assert name in env

    def test_appless_spec_cannot_resolve(self):
        spec = Workload(MeshSpec((8, 8)), 4)
        with pytest.raises(ValidationError):
            spec.program()
        with pytest.raises(ValidationError):
            spec.fields()

    def test_job_key_ignores_batch(self):
        a = WorkloadSpec.parse("jacobi3d:20x20x20:50x2")
        b = WorkloadSpec.parse("jacobi3d:20x20x20:50x7")
        assert a.job_key == b.job_key
        assert a.solo() == b.solo()
        assert a.with_batch(7) == b

    def test_hashable_for_memo_keys(self):
        a = WorkloadSpec.parse("jacobi3d:20x20x20:50x2")
        b = WorkloadSpec.parse("jacobi3d:20x20x20:50x2")
        assert len({a, b}) == 1

    def test_validation(self):
        with pytest.raises(ValidationError):
            Workload(MeshSpec((8, 8)), 0)
        with pytest.raises(ValidationError):
            Workload(MeshSpec((8, 8)), 1, 0)
        with pytest.raises(ValidationError):
            WorkloadSpec(MeshSpec((8, 8)), 1, 1, app="bad:name")


class TestWorkloadMix:
    MIX = "jacobi3d:96x96x96:100x4,rtm:64x64x64:36x2,jacobi3d:96x96x96:100x4@2"

    def test_parse_describe_round_trip(self):
        mix = WorkloadMix.parse(self.MIX)
        assert WorkloadMix.parse(mix.describe()) == mix
        assert len(mix) == 3
        assert mix.entries[2].weight == 2.0

    def test_dict_round_trip(self):
        mix = WorkloadMix.parse(self.MIX)
        again = WorkloadMix.from_dict(json.loads(json.dumps(mix.to_dict())))
        assert again == mix

    def test_token_is_order_independent_and_stable(self):
        mix = WorkloadMix.parse(self.MIX)
        reordered = WorkloadMix(tuple(reversed(mix.entries)))
        assert mix.token() == reordered.token()
        different = WorkloadMix.parse("jacobi3d:96x96x96:100x4")
        assert mix.token() != different.token()

    def test_group_by_spec_merges_identical_specs(self):
        mix = WorkloadMix.parse(self.MIX)
        groups = mix.group_by_spec()
        assert len(groups) == 2  # the two jacobi entries are identical specs
        jac = WorkloadSpec.parse("jacobi3d:96x96x96:100x4")
        assert groups[jac] == 3.0  # weights 1 + 2

    def test_job_groups_merge_batches(self):
        mix = WorkloadMix.parse(
            "jacobi3d:20x20x20:50x2,jacobi3d:20x20x20:50x3,rtm:64x64x64:36x2"
        )
        groups = mix.job_groups()
        assert len(groups) == 2
        jac = WorkloadSpec.parse("jacobi3d:20x20x20:50").job_key
        assert groups[jac].batch == 5

    def test_heaviest_by_footprint(self):
        mix = WorkloadMix.parse("jacobi3d:96x96x96:100x4,rtm:32x32x32:36x2")
        assert mix.heaviest().app == "jacobi3d"

    def test_scaled_multiplies_batches(self):
        mix = WorkloadMix.parse("jacobi3d:20x20x20:50x2,rtm:64x64x64:36")
        scaled = mix.scaled(4)
        assert [e.spec.batch for e in scaled] == [8, 4]
        assert [e.weight for e in scaled] == [e.weight for e in mix]
        assert mix.scaled(1) is mix

    def test_as_mix_coercions(self):
        spec = WorkloadSpec.parse("jacobi3d:20x20x20:50")
        assert as_mix(spec).specs == (spec,)
        assert as_mix([spec, (spec, 2.0)]).total_weight == 3.0
        mix = WorkloadMix.of(spec)
        assert as_mix(mix) is mix
        with pytest.raises(ValidationError):
            as_mix("jacobi3d:20x20x20:50")

    def test_validation(self):
        spec = WorkloadSpec.parse("jacobi3d:20x20x20:50")
        with pytest.raises(ValidationError):
            WorkloadMix(())
        with pytest.raises(ValidationError):
            MixEntry(spec, 0.0)
        with pytest.raises(ValidationError):
            MixEntry(spec, float("inf"))
        with pytest.raises(ValidationError):
            WorkloadMix.parse(" , ")


# --------------------------------------------------------------------------- #
# property: grouping partitions losslessly
# --------------------------------------------------------------------------- #
_SPEC_POOL = (
    "jacobi3d:20x20x20:50", "jacobi3d:20x20x20:50x3", "jacobi3d:16x16x16:50",
    "poisson2d:24x16:8", "poisson2d:24x16:8x5", "rtm:12x12x10:6x2",
)

_entry = st.tuples(
    st.sampled_from(_SPEC_POOL),
    st.floats(min_value=0.25, max_value=8.0, allow_nan=False),
)


@settings(max_examples=40, deadline=None)
@given(st.lists(_entry, min_size=1, max_size=8))
def test_group_by_spec_partitions_losslessly(raw_entries):
    """Grouping preserves per-spec weight mass and every total, and a mix
    rebuilt from its groups is the same population (same token)."""
    mix = WorkloadMix.of(
        *((WorkloadSpec.parse(text), weight) for text, weight in raw_entries)
    )
    groups = mix.group_by_spec()
    # weight mass per distinct spec is exactly the sum of matching entries
    for spec, weight in groups.items():
        assert weight == pytest.approx(
            sum(e.weight for e in mix if e.spec == spec)
        )
    rebuilt = WorkloadMix.from_groups(groups)
    assert rebuilt.total_weight == pytest.approx(mix.total_weight)
    assert rebuilt.total_cells == pytest.approx(mix.total_cells)
    assert rebuilt.total_cell_iterations == pytest.approx(
        mix.total_cell_iterations
    )
    assert rebuilt.token() == mix.token()
    # job groups preserve the total mesh count per job shape
    total_meshes = sum(e.spec.batch for e in mix)
    assert sum(s.batch for s in mix.job_groups().values()) == total_meshes


class TestMalformedEntries:
    def test_bad_entries_raise_validation_error(self):
        spec = WorkloadSpec.parse("jacobi3d:20x20x20:50")
        with pytest.raises(ValidationError):
            WorkloadMix.of(spec, 2.0)  # stray number is not an entry
        with pytest.raises(ValidationError):
            MixEntry(spec, None)
        with pytest.raises(ValidationError):
            MixEntry("jacobi3d:20x20x20:50", 1.0)  # string is not a spec

    def test_as_mix_reads_a_bare_pair_as_one_weighted_entry(self):
        spec = WorkloadSpec.parse("jacobi3d:20x20x20:50")
        mix = as_mix((spec, 2.0))
        assert len(mix) == 1
        assert mix.entries[0].weight == 2.0
