"""Unit tests for the runtime predictor (the paper's 'FPGA - Pred' series)."""

import pytest

from repro.arch.device import ALVEO_U280
from repro.model.design import DesignPoint, Workload
from repro.model.runtime import RuntimePredictor
from repro.model.tiling import TileDesign
from repro.util.errors import ValidationError
from repro.util.units import GB


class TestBaselinePrediction:
    def test_poisson_fig3a_shape(self, poisson_app):
        # model runtimes for Fig 3(a) meshes must be within 2x of paper's
        # measured values and strictly increasing with mesh size
        meshes = [(200, 100), (200, 200), (300, 300), (400, 400)]
        paper = [0.03, 0.04, 0.06, 0.10]
        times = []
        for mesh, expect in zip(meshes, paper):
            p = poisson_app.predictor(mesh).predict(poisson_app.workload(mesh, 60000))
            times.append(p.seconds)
            assert 0.4 * expect < p.seconds < 1.5 * expect
        assert times == sorted(times)

    def test_jacobi_250_within_paper_band(self, jacobi_app):
        w = jacobi_app.workload((250, 250, 250), 29000)
        p = jacobi_app.predictor((250, 250, 250)).predict(w)
        # paper: measured 9.28 s, model within +-15%
        assert abs(p.seconds - 9.28) / 9.28 < 0.15

    def test_energy_positive_and_consistent(self, poisson_app):
        w = poisson_app.workload((200, 100), 60000)
        p = poisson_app.predictor((200, 100)).predict(w)
        assert p.energy_j == pytest.approx(p.power_w * p.seconds)
        assert 40 < p.power_w < 120  # paper observed ~70 W

    def test_logical_vs_physical_traffic_ratio_is_p(self, poisson_app):
        w = poisson_app.workload((400, 400), 60000)
        pred = poisson_app.predictor((400, 400))
        logical = pred.logical_bytes(w)
        physical = pred.physical_bytes(w)
        assert logical / physical == pytest.approx(60, rel=0.01)

    def test_batching_improves_small_mesh_throughput(self, poisson_app):
        single = poisson_app.predictor((200, 100)).predict(
            poisson_app.workload((200, 100), 60000)
        )
        batched = poisson_app.predictor((200, 100)).predict(
            poisson_app.workload((200, 100), 60000, batch=100)
        )
        assert batched.seconds < 100 * single.seconds

    def test_rank_mismatch_rejected(self, poisson_app, jacobi_app):
        w3 = jacobi_app.workload((8, 8, 8), 10)
        with pytest.raises(ValidationError):
            poisson_app.predictor((8, 8)).predict(w3)


class TestTiledPrediction:
    def test_poisson_tiled_matches_bw_derived_paper(self, poisson_app):
        w = poisson_app.workload((15000, 15000), 6000)
        design = poisson_app.design(tile=(8000,))
        p = poisson_app.predictor((15000, 15000), design).predict(w)
        paper_runtime = 6000 * 8 * 15000**2 / (905 * GB)
        assert abs(p.seconds - paper_runtime) / paper_runtime < 0.15

    def test_larger_tiles_fewer_redundant_cycles(self, poisson_app):
        w = poisson_app.workload((15000, 15000), 6000)
        t_small = poisson_app.predictor((15000, 15000), poisson_app.design(tile=(512,))).predict(w)
        t_big = poisson_app.predictor((15000, 15000), poisson_app.design(tile=(8000,))).predict(w)
        assert t_big.seconds < t_small.seconds

    def test_tiled_physical_traffic_includes_redundancy(self, poisson_app):
        w = poisson_app.workload((15000, 15000), 6000)
        pred = poisson_app.predictor((15000, 15000), poisson_app.design(tile=(1024,)))
        base = 6000 / 60 * 8 * 15000**2  # passes * rw * cells
        assert pred.physical_bytes(w) > base

    def test_jacobi_tiled_runtime_band(self, jacobi_app):
        w = jacobi_app.workload((600, 600, 600), 120)
        design = jacobi_app.design(tile=(640, 640))
        p = jacobi_app.predictor((600, 600, 600), design).predict(w)
        paper_runtime = 120 * 8 * 600**3 / (292 * GB)
        assert abs(p.seconds - paper_runtime) / paper_runtime < 0.3


class TestIIScaling:
    def test_ii_slows_stream(self, rtm_small_app):
        app = rtm_small_app
        w = app.workload((12, 12, 10), 30)
        fast = RuntimePredictor(
            app.program_on((12, 12, 10)), ALVEO_U280, DesignPoint(1, 3, 261.0)
        ).predict(w)
        slow = RuntimePredictor(
            app.program_on((12, 12, 10)),
            ALVEO_U280,
            DesignPoint(1, 3, 261.0, initiation_interval=1.6),
        ).predict(w)
        assert slow.seconds > fast.seconds
