"""Unit tests for the AXI burst/latency model (paper Section IV-A)."""

import pytest

from repro.arch.memory import (
    AXIPort,
    burst_cycles,
    effective_bandwidth,
    stream_cycles,
    strided_transfer_efficiency,
)
from repro.util.errors import ValidationError


class TestPaperCalibration:
    def test_1024_bytes_takes_16_beats_plus_14_latency(self):
        # paper: "16 clock cycles to transfer 1024 bytes via the 512-bit
        # bus, but the latency of the transfer is about 14 clock cycles"
        port = AXIPort()
        assert burst_cycles(port, 1024) == 16 + 14

    def test_4k_single_burst(self):
        port = AXIPort()
        assert burst_cycles(port, 4096) == 64 + 14

    def test_large_transfer_splits_into_4k_bursts(self):
        port = AXIPort()
        assert burst_cycles(port, 8192) == 2 * (64 + 14)


class TestStreamCycles:
    def test_latency_hidden_with_outstanding_requests(self):
        port = AXIPort()
        # 1000 chunks of 1 KB: per-chunk cost approaches the 16 beats
        cycles = stream_cycles(port, 1024, 1000)
        assert cycles < 1000 * (16 + 14)
        assert cycles >= 1000 * 16

    def test_tiny_chunks_pay_issue_interval(self):
        port = AXIPort(max_outstanding=2)
        # 64-byte chunks: 1 beat each but latency/2 = 7 cycle issue interval
        cycles = stream_cycles(port, 64, 100)
        assert cycles >= 100 * 7

    def test_validation(self):
        port = AXIPort()
        with pytest.raises(ValidationError):
            stream_cycles(port, 0, 1)
        with pytest.raises(ValidationError):
            burst_cycles(port, -1)


class TestEffectiveBandwidth:
    def test_4k_reaches_near_bus_limit(self):
        port = AXIPort()
        clock = 300e6
        bw = effective_bandwidth(port, clock, 4096)
        bus_peak = 64 * clock
        assert bw > 0.95 * bus_peak

    def test_small_transfers_lose_bandwidth(self):
        port = AXIPort(max_outstanding=1)
        clock = 300e6
        assert effective_bandwidth(port, clock, 64) < effective_bandwidth(
            port, clock, 4096
        )


class TestStridedEfficiency:
    def test_long_runs_efficient(self):
        port = AXIPort()
        assert strided_transfer_efficiency(port, 32768) > 0.9

    def test_unaligned_run_wastes_alignment(self):
        port = AXIPort()
        # a 36-byte run occupies a full 64-byte bus word
        eff = strided_transfer_efficiency(port, 36)
        assert eff <= 36 / 64 + 1e-9

    def test_monotone_in_run_length_for_aligned(self):
        port = AXIPort()
        effs = [strided_transfer_efficiency(port, 64 * k) for k in (1, 4, 16, 64)]
        assert all(a <= b + 1e-9 for a, b in zip(effs, effs[1:]))


class TestPortValidation:
    def test_bus_bits_multiple_of_8(self):
        with pytest.raises(ValidationError):
            AXIPort(bus_bits=100)

    def test_bus_bytes(self):
        assert AXIPort(bus_bits=512).bus_bytes == 64
