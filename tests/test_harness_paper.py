"""Harness tests: exact Table II/III reproduction and accuracy bands.

These are the headline reproduction assertions: the model parameters are
recovered exactly, and our runtime estimators sit within defined bands of
the paper's reported numbers for every figure.
"""

import math

import pytest

from repro.harness.runner import (
    run_fig3a,
    run_fig3b,
    run_fig4a,
    run_fig4c,
    run_fig5a,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
    run_table6,
)


def _gmean(ratios):
    return math.exp(sum(math.log(r) for r in ratios) / len(ratios))


class TestTable2Exact:
    def test_gdsp_exact_for_all_apps(self):
        for rec in run_table2().records:
            assert rec["gdsp_ours"] == rec["gdsp_paper"], rec["app"]

    def test_pdsp_exact_for_all_apps(self):
        for rec in run_table2().records:
            assert rec["pdsp_ours"] == rec["pdsp_paper"], rec["app"]


class TestTable3Exact:
    def test_throughput_within_half_percent(self):
        for rec in run_table3().records:
            rel = abs(rec["throughput_ours"] - rec["throughput_paper"]) / rec[
                "throughput_paper"
            ]
            assert rel < 0.005, rec["app"]

    def test_valid_ratio_exact_to_3dp(self):
        for rec in run_table3().records:
            assert abs(rec["valid_ours"] - rec["valid_paper"]) < 5e-4, rec["app"]


class TestBaselineFigures:
    @pytest.mark.parametrize("runner", [run_fig3a, run_fig4a, run_fig5a])
    def test_sim_within_35pct_of_paper_fpga(self, runner):
        for rec in runner().records:
            ratio = rec["fpga_sim"] / rec["fpga_paper"]
            assert 0.65 < ratio < 1.35, rec

    @pytest.mark.parametrize("runner", [run_fig3a, run_fig4a, run_fig5a])
    def test_gmean_close_to_one(self, runner):
        records = runner().records
        ratios = [r["fpga_sim"] / r["fpga_paper"] for r in records]
        assert 0.8 < _gmean(ratios) < 1.2

    @pytest.mark.parametrize("runner", [run_fig3a, run_fig4a, run_fig5a])
    def test_gpu_model_within_40pct(self, runner):
        for rec in runner().records:
            ratio = rec["gpu_model"] / rec["gpu_paper"]
            assert 0.6 < ratio < 1.4, rec

    def test_model_within_paper_15pct_claim_vs_sim(self):
        # the paper's model is accurate to +-15% of measured; our pred vs
        # sim relationship mirrors that (sim includes host overhead)
        for runner in (run_fig3a, run_fig4a, run_fig5a):
            for rec in runner().records:
                rel = abs(rec["fpga_pred"] - rec["fpga_sim"]) / rec["fpga_sim"]
                assert rel < 0.45, rec


class TestShapeClaims:
    def test_fig3a_fpga_always_beats_gpu(self):
        for rec in run_fig3a().records:
            assert rec["fpga_sim"] < rec["gpu_model"]
            assert rec["fpga_paper"] < rec["gpu_paper"]

    def test_fig4a_crossover_exists(self):
        records = run_fig4a().records
        fpga_wins = [r["fpga_sim"] < r["gpu_model"] for r in records]
        assert fpga_wins[0] is True  # 50^3
        assert fpga_wins[-1] is False  # 250^3

    def test_fig5a_fpga_within_25pct_of_gpu(self):
        for rec in run_fig5a().records:
            assert 0.4 < rec["fpga_sim"] / rec["gpu_model"] < 1.6

    def test_fig3b_batching_helps_both(self):
        records = run_fig3b().records
        # runtime per mesh in the 1000-batch below the 100-batch
        by_mesh = {}
        for r in records:
            by_mesh.setdefault(r["mesh"], {})[r["batch"]] = r["fpga_sim"]
        for mesh, values in by_mesh.items():
            if 100 in values and 1000 in values:
                assert values[1000] / 1000 < values[100] / 100

    def test_fig4c_gpu_wins_tiled_jacobi(self):
        for rec in run_fig4c().records:
            assert rec["gpu_model"] < rec["fpga_sim"]


class TestEnergyClaims:
    def test_fpga_more_efficient_every_measured_row(self):
        for runner in (run_table4, run_table5, run_table6):
            for rec in runner().records:
                if rec["fpga_kj_ours"] is None:
                    continue
                assert rec["fpga_kj_ours"] < rec["gpu_kj_ours"], rec

    def test_paper_energy_within_40pct(self):
        for runner in (run_table4, run_table5, run_table6):
            for rec in runner().records:
                if rec["fpga_kj_ours"] is None:
                    continue
                ratio = rec["fpga_kj_ours"] / rec["fpga_kj_paper"]
                assert 0.6 < ratio < 1.4, rec

    def test_bandwidth_convention_matches_paper(self):
        # FPGA logical bandwidth within 25% across Tables IV-VI
        for runner in (run_table4, run_table5, run_table6):
            records = runner().records
            ratios = [r["fpga_bw_ours"] / r["fpga_bw_paper"] for r in records]
            assert 0.8 < _gmean(ratios) < 1.25
