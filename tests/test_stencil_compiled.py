"""Compiled execution engine: interpreter equivalence, cache, allocation.

The contract under test is the one the whole PR rests on: the plan-compiled
tape is bit-identical (``np.array_equal``, no tolerance) to the tree-walking
golden interpreter for every registered application, on the pipeline, tiled
and batched execution paths, and its steady-state loop allocates nothing.
"""

from __future__ import annotations

import tracemalloc
import warnings

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.jacobi3d import jacobi3d_app
from repro.apps.poisson2d import poisson2d_app
from repro.apps.registry import all_apps
from repro.apps.rtm import rtm_app
from repro.dataflow.accelerator import FPGAAccelerator
from repro.mesh.mesh import Field, MeshSpec
from repro.stencil.compiled import (
    CompiledPlanCache,
    check_engine,
    run_program_compiled,
)
from repro.stencil.expr import Coef, Const, FieldAccess
from repro.stencil.kernel import KernelOutput, StencilKernel
from repro.stencil.numpy_eval import run_program
from repro.stencil.plan import (
    _boundary_settle_iteration,
    lower_program,
    program_token,
)
from repro.stencil.program import (
    FusedGroup,
    StencilLoop,
    StencilProgram,
    single_kernel_program,
)
from repro.util.errors import ValidationError

#: small-but-representative functional meshes per registered app
APP_MESHES = {
    "poisson2d": (24, 18),
    "jacobi3d": (16, 14, 8),
    "rtm": (12, 12, 10),
}


def _assert_env_equal(gold, got):
    assert set(gold) == set(got)
    for name in gold:
        assert np.array_equal(gold[name].data, got[name].data), name


# --------------------------------------------------------------------------- #
# equivalence on every registered app
# --------------------------------------------------------------------------- #
class TestInterpreterEquivalence:
    @pytest.mark.parametrize("name", sorted(APP_MESHES))
    @pytest.mark.parametrize("niter", [0, 1, 2, 3, 6])
    def test_run_program_bit_identical(self, name, niter):
        app = all_apps()[name]
        shape = APP_MESHES[name]
        program = app.program_on(shape)
        fields = app.fields(shape, seed=7)
        gold = run_program(program, fields, niter, engine="interpreter")
        got = run_program(program, fields, niter, engine="compiled")
        _assert_env_equal(gold, got)

    @pytest.mark.parametrize("name", sorted(APP_MESHES))
    def test_coefficient_overrides(self, name):
        app = all_apps()[name]
        shape = APP_MESHES[name]
        program = app.program_on(shape)
        fields = app.fields(shape, seed=3)
        coefficients = program.coefficient_values()
        if not coefficients:
            pytest.skip(f"app '{name}' has no runtime coefficients")
        cname = next(iter(coefficients))
        overrides = {cname: 0.07}
        gold = run_program(program, fields, 3, overrides, engine="interpreter")
        got = run_program(program, fields, 3, overrides, engine="compiled")
        _assert_env_equal(gold, got)
        # and the override genuinely changes the answer
        base = run_program(program, fields, 3, engine="compiled")
        state = program.state_fields[0]
        assert not np.array_equal(base[state].data, got[state].data)


class TestExecutionPaths:
    def test_pipeline_path(self):
        app = poisson2d_app((40, 30))
        fields = app.fields((40, 30), seed=1)
        compiled = app.accelerator((40, 30), app.design(p=5, V=4))
        interp = FPGAAccelerator(
            app.program_on((40, 30)),
            app.design(p=5, V=4),
            engine="interpreter",
            logical_bytes_per_cell_iter=app.gpu_traffic.logical_bytes_per_cell_iter,
        )
        got, report_c = compiled.run(fields, 15)
        gold, report_i = interp.run(fields, 15)
        assert np.array_equal(gold["U"].data, got["U"].data)
        assert report_c == report_i

    def test_tiled_path(self):
        app = jacobi3d_app((24, 20, 8))
        fields = app.fields((24, 20, 8), seed=2)
        design = app.design(tile=(12, 10), p=2, V=2)
        compiled = app.accelerator((24, 20, 8), design)
        interp = FPGAAccelerator(
            app.program_on((24, 20, 8)), design, engine="interpreter"
        )
        got, _ = compiled.run(fields, 4)
        gold, _ = interp.run(fields, 4)
        assert np.array_equal(gold["U"].data, got["U"].data)

    def test_batched_path(self):
        app = poisson2d_app((20, 16))
        design = app.design(p=4, V=2)
        batch = [app.fields((20, 16), seed=s) for s in range(5)]
        compiled = app.accelerator((20, 16), design)
        interp = FPGAAccelerator(
            app.program_on((20, 16)), design, engine="interpreter"
        )
        got, _ = compiled.run_batch(batch, 8)
        gold, _ = interp.run_batch(batch, 8)
        for g, c in zip(gold, got):
            assert np.array_equal(g["U"].data, c["U"].data)

    def test_rtm_multi_output_fused_groups(self):
        """RTM: four fused multi-output kernels, init_from carries, FIFOs."""
        app = rtm_app((12, 12, 10))
        fields = app.fields((12, 12, 10), seed=5)
        got, _ = app.accelerator((12, 12, 10)).run(fields, 3)
        gold = run_program(
            app.program_on((12, 12, 10)), fields, 3, engine="interpreter"
        )
        for name in ("Y",):
            assert np.array_equal(gold[name].data, got[name].data)

    def test_undeclared_read_field_matches_interpreter(self):
        """Reads outside the declared external contract still resolve.

        The interpreter evaluates against whatever the caller bound; the
        compiled plan must bind the same required set, not just
        ``external_reads()``.
        """
        mesh = MeshSpec((12, 10))
        U = lambda dx, dy: FieldAccess("U", (dx, dy))
        kernel = StencilKernel(
            "leaky",
            (
                KernelOutput(
                    "U",
                    (
                        Const(0.25) * (U(-1, 0) + U(1, 0))
                        + FieldAccess("F", (0, 0)),
                    ),
                    init_from="U",
                ),
            ),
        )
        program = StencilProgram(
            "leaky", mesh, (FusedGroup((StencilLoop(kernel),)),), ("U",)
        )
        fields = {
            "U": Field.random("U", mesh, seed=1),
            "F": Field.random("F", mesh, seed=2),
        }
        gold = run_program(program, fields, 3, engine="interpreter")
        got = run_program(program, fields, 3, engine="compiled")
        _assert_env_equal(gold, got)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValidationError):
            check_engine("jit")
        app = poisson2d_app((12, 10))
        with pytest.raises(ValidationError):
            run_program(
                app.program_on((12, 10)), app.fields((12, 10)), 1, engine="jit"
            )


# --------------------------------------------------------------------------- #
# component merging and init_from corners
# --------------------------------------------------------------------------- #
def _vector_program(shape=(14, 12)):
    """A 2D multi-output kernel exercising merge + fixed-component reads."""
    mesh = MeshSpec(shape, components=3)

    def stencil(c):
        U = lambda dx, dy: FieldAccess("U", (dx, dy), c)
        # components share structure (mergeable) but read the scalar gate
        # field at a fixed component (broadcast operand)
        return (
            Coef("a") * (U(-1, 0) + U(1, 0) + U(0, -1) + U(0, 1))
            + Coef("b") * U(0, 0)
        ) * FieldAccess("G", (0, 0), 0)

    kernel = StencilKernel(
        "vec_smooth",
        (
            KernelOutput("W", tuple(stencil(c) for c in range(3))),
            KernelOutput(
                "U",
                tuple(
                    FieldAccess("U", (0, 0), c)
                    + Const(0.5) * FieldAccess("W", (0, 0), c)
                    for c in range(3)
                ),
                init_from="U",
            ),
        ),
        {"a": 0.2, "b": 0.1},
    )
    return StencilProgram(
        "vec_smooth",
        mesh,
        (FusedGroup((StencilLoop(kernel),)),),
        state_fields=("U",),
        constant_fields=("G",),
    )


class TestComponentMerging:
    def test_merged_vector_kernel_bit_identical(self):
        program = _vector_program()
        fields = {
            "U": Field.random("U", program.mesh, seed=4, lo=-1.0, hi=1.0),
            "G": Field.random("G", MeshSpec(program.mesh.shape, 1), seed=5),
        }
        for niter in (1, 2, 5):
            gold = run_program(program, fields, niter, engine="interpreter")
            got = run_program(program, fields, niter, engine="compiled")
            _assert_env_equal(gold, got)

    def test_merging_shortens_tape(self):
        program = _vector_program()
        specs = {
            "U": program.mesh,
            "G": MeshSpec(program.mesh.shape, 1),
        }
        merged = lower_program(program, program.mesh, specs)
        # all three components collapse into one flat-mode run per output:
        # W lowers to 7 merged lane ops + 1 interior bridge copy, U to 2 + 1,
        # and steady tapes carry no boundary ops
        assert len(merged.steady_odd) == 11
        assert sum(1 for op in merged.steady_odd if op.flat) == 9
        # the fixed-component G read rides a load-time broadcast expansion
        assert merged.expansions == {"inx:G:0x3": ("G", 0)}

    def test_deep_init_from_chain_boundary_transient(self):
        """Boundary transients drain one iteration per chain link.

        Kernels A (F init_from G), B (G init_from H), C (H init_from None),
        where every init_from source is produced by a *later* kernel: F's
        boundary is in:G at iteration 0, in:H at iteration 1 and zero only
        from iteration 2 — the warm-up tapes must cover the whole transient
        (regression: a fixed 3-iteration warm-up baked the stale in:H
        boundary into one rotation parity forever).
        """
        mesh = MeshSpec((10, 8))
        U = lambda f, dx, dy: FieldAccess(f, (dx, dy))

        def smooth(name, src, init_from):
            expr = Const(0.25) * (
                U(src, -1, 0) + U(src, 1, 0) + U(src, 0, -1) + U(src, 0, 1)
            )
            return StencilKernel(name, (KernelOutput(name[-1].upper(), (expr,), init_from),))

        a = smooth("k_f", "G", "G")
        b = smooth("k_g", "H", "H")
        c = smooth("k_h", "F", None)
        program = StencilProgram(
            "chain",
            mesh,
            (FusedGroup((StencilLoop(a), StencilLoop(b), StencilLoop(c))),),
            state_fields=("F", "G", "H"),
        )
        fields = {
            "F": Field.random("F", mesh, seed=1),
            "G": Field.random("G", mesh, seed=2),
            "H": Field.random("H", mesh, seed=3),
        }
        for niter in range(0, 12):
            gold = run_program(program, fields, niter, engine="interpreter")
            got = run_program(program, fields, niter, engine="compiled")
            _assert_env_equal(gold, got)

    def test_mixed_radius_init_from_bit_identical(self):
        """A boundary ring wider than its init_from source never settles.

        Kernel 1 produces G at radius 1; kernel 2 produces U at radius 2
        with ``init_from="G"`` — U's boundary ring overlaps G's *interior*,
        which is recomputed every iteration, so the steady tapes must keep
        their boundary copy ops (regression: the settle analysis ignored
        radii and silently dropped them, diverging from iteration 3 on).
        """
        mesh = MeshSpec((12, 10))
        U = lambda dx, dy: FieldAccess("U", (dx, dy))
        G = lambda dx, dy: FieldAccess("G", (dx, dy))
        k1 = StencilKernel(
            "mk_g",
            (
                KernelOutput(
                    "G",
                    (Const(0.25) * (U(-1, 0) + U(1, 0) + U(0, -1) + U(0, 1)),),
                ),
            ),
        )
        k2 = StencilKernel(
            "mk_u",
            (
                KernelOutput(
                    "U",
                    (Const(0.25) * (G(-2, 0) + G(2, 0) + G(0, -2) + G(0, 2)),),
                    init_from="G",
                ),
            ),
        )
        program = StencilProgram(
            "mixed_radius",
            mesh,
            (FusedGroup((StencilLoop(k1), StencilLoop(k2))),),
            state_fields=("U",),
        )
        assert _boundary_settle_iteration(program) is None
        fields = {"U": Field.random("U", mesh, seed=1)}
        for niter in range(0, 10):
            gold = run_program(program, fields, niter, engine="interpreter")
            got = run_program(program, fields, niter, engine="compiled")
            _assert_env_equal(gold, got)

    def test_equal_radius_init_from_still_settles(self):
        """Matching radii keep the settle optimization: no steady boundary ops."""
        program = _vector_program()
        assert _boundary_settle_iteration(program) is not None

    def test_zero_boundary_intermediate(self):
        """init_from=None intermediates keep a zero boundary ring."""
        program = _vector_program()
        fields = {
            "U": Field.random("U", program.mesh, seed=4),
            "G": Field.random("G", MeshSpec(program.mesh.shape, 1), seed=5),
        }
        got = run_program(program, fields, 4, engine="compiled")
        w = got["W"].data
        assert np.all(w[0, :, :] == 0) and np.all(w[:, 0, :] == 0)
        assert np.all(w[-1, :, :] == 0) and np.all(w[:, -1, :] == 0)


# --------------------------------------------------------------------------- #
# lowering corners
# --------------------------------------------------------------------------- #
class TestLoweringCorners:
    def test_field_reproduced_with_different_components(self):
        """Rotation buffers must not collide across storage shapes.

        T is produced with two components, consumed, then re-produced with
        one component inside the same program — each storage shape needs
        its own rotation pair (regression: the slot name omitted the shape,
        so the 1-component registration overwrote the 2-component buffer
        and binding crashed with an IndexError).
        """
        mesh = MeshSpec((10, 8))
        U = lambda dx, dy: FieldAccess("U", (dx, dy))
        mk_t = StencilKernel(
            "mk_t",
            (
                KernelOutput(
                    "T",
                    (
                        Const(0.5) * (U(-1, 0) + U(1, 0)),
                        Const(0.5) * (U(0, -1) + U(0, 1)),
                    ),
                ),
            ),
        )
        use_t = StencilKernel(
            "use_t",
            (
                KernelOutput(
                    "V",
                    (
                        FieldAccess("T", (0, 0), 0)
                        + Const(2.0) * FieldAccess("T", (0, 0), 1),
                    ),
                ),
            ),
        )
        re_t = StencilKernel(
            "re_t",
            (KernelOutput("T", (Const(0.25) * FieldAccess("V", (0, 0), 0),)),),
        )
        step = StencilKernel(
            "step",
            (
                KernelOutput(
                    "U",
                    (
                        Const(0.9) * FieldAccess("U", (0, 0))
                        + FieldAccess("T", (0, 0), 0),
                    ),
                    init_from="U",
                ),
            ),
        )
        program = StencilProgram(
            "reshape_t",
            mesh,
            (
                FusedGroup(
                    (
                        StencilLoop(mk_t),
                        StencilLoop(use_t),
                        StencilLoop(re_t),
                        StencilLoop(step),
                    )
                ),
            ),
            state_fields=("U",),
        )
        fields = {"U": Field.random("U", mesh, seed=6, lo=-1.0, hi=1.0)}
        for niter in (1, 2, 3, 5):
            gold = run_program(program, fields, niter, engine="interpreter")
            got = run_program(program, fields, niter, engine="compiled")
            _assert_env_equal(gold, got)

    def test_field_produced_multiple_times_keeps_steady_boundary(self):
        """Multi-production per iteration disables the settle optimization.

        C is produced three times per iteration with different boundary
        rings (zero, the U ring, zero). Three writes advance the rotation
        counter by three per iteration, so each producer alternates slots —
        a slot's ring alternates between different values forever even
        though every producer's own ring is constant (regression: the
        per-field settle model declared it settled and the steady tapes
        dropped the boundary ops).
        """
        mesh = MeshSpec((10, 8))
        U = lambda dx, dy: FieldAccess("U", (dx, dy))
        C = lambda dx, dy: FieldAccess("C", (dx, dy))
        k1 = StencilKernel(
            "c_a", (KernelOutput("C", (Const(0.5) * (U(-1, 0) + U(1, 0)),)),)
        )
        k2 = StencilKernel(
            "c_b",
            (
                KernelOutput(
                    "C", (Const(0.5) * (C(0, -1) + C(0, 1)),), init_from="U"
                ),
            ),
        )
        k3 = StencilKernel(
            "c_c", (KernelOutput("C", (C(0, 0) * Const(0.5) + U(0, 0),)),)
        )
        k4 = StencilKernel(
            "step",
            (
                KernelOutput(
                    "U",
                    (Const(0.9) * U(0, 0) + Const(0.1) * C(0, 0),),
                    init_from="U",
                ),
            ),
        )
        program = StencilProgram(
            "multi_prod",
            mesh,
            (
                FusedGroup(
                    (
                        StencilLoop(k1),
                        StencilLoop(k2),
                        StencilLoop(k3),
                        StencilLoop(k4),
                    )
                ),
            ),
            state_fields=("U",),
        )
        assert _boundary_settle_iteration(program) is None
        fields = {"U": Field.random("U", mesh, seed=3)}
        for niter in range(0, 9):
            gold = run_program(program, fields, niter, engine="interpreter")
            got = run_program(program, fields, niter, engine="compiled")
            _assert_env_equal(gold, got)

    def test_same_kernel_init_from_resolves_at_kernel_entry(self):
        """init_from of an earlier same-kernel output uses the *entry* value.

        One kernel produces U (zero ring) then A with ``init_from="U"``:
        A's ring at iteration i is U's ring from iteration i-1 (the
        caller's random ring at i=0, zero only from i=1), exactly as the
        interpreter resolves it (regression: the settle model used the
        fresh this-iteration U, computing the warm-up one iteration short
        and baking the caller's ring into one rotation parity forever).
        """
        mesh = MeshSpec((10, 8))
        U = lambda dx, dy: FieldAccess("U", (dx, dy))
        kernel = StencilKernel(
            "du",
            (
                KernelOutput(
                    "U",
                    (Const(0.25) * (U(-1, 0) + U(1, 0) + U(0, -1) + U(0, 1)),),
                ),
                KernelOutput("A", (U(0, 0) * Const(0.5),), init_from="U"),
            ),
        )
        program = StencilProgram(
            "entry_env",
            mesh,
            (FusedGroup((StencilLoop(kernel),)),),
            state_fields=("U",),
        )
        fields = {"U": Field.random("U", mesh, seed=8)}
        for niter in range(0, 7):
            gold = run_program(program, fields, niter, engine="interpreter")
            got = run_program(program, fields, niter, engine="compiled")
            _assert_env_equal(gold, got)

    def test_same_kernel_init_from_source_is_required_input(self):
        """An earlier same-kernel output does not satisfy init_from.

        The interpreter resolves ``init_from`` against the kernel-entry
        environment, so B's ``init_from="A"`` needs the *caller's* A even
        though this kernel produces A first (regression: required_inputs
        marked A as satisfied, no input buffer was bound, and lowering
        raised ValidationError on a program the interpreter runs).
        """
        from repro.stencil.plan import required_inputs

        mesh = MeshSpec((10, 8))
        U = lambda dx, dy: FieldAccess("U", (dx, dy))
        kernel = StencilKernel(
            "ab",
            (
                KernelOutput("A", (U(0, 0) * Const(2.0),)),
                KernelOutput("B", (U(0, 0) + Const(1.0),), init_from="A"),
            ),
        )
        step = StencilKernel(
            "step",
            (
                KernelOutput(
                    "U",
                    (
                        Const(0.25) * (U(-1, 0) + U(1, 0) + U(0, -1) + U(0, 1))
                        + FieldAccess("B", (0, 0)),
                    ),
                    init_from="U",
                ),
            ),
        )
        program = StencilProgram(
            "need_a",
            mesh,
            (FusedGroup((StencilLoop(kernel), StencilLoop(step))),),
            state_fields=("U",),
        )
        assert "A" in required_inputs(program)
        fields = {
            "U": Field.random("U", mesh, seed=1),
            "A": Field.random("A", mesh, seed=2),
        }
        for niter in (1, 2, 3, 4):
            gold = run_program(program, fields, niter, engine="interpreter")
            got = run_program(program, fields, niter, engine="compiled")
            _assert_env_equal(gold, got)

    def test_nan_constant_lowers_and_matches(self):
        """NaN constants must not trip the periodicity check.

        Folded scalars are NumPy scalars; comparing steady tapes with
        ``==`` follows IEEE-754 (``nan != nan``), which rejected valid
        plans. Results are compared bit for bit (``array_equal`` treats
        NaN as unequal, so compare the raw bytes).
        """
        mesh = MeshSpec((10, 8))
        U = lambda dx, dy: FieldAccess("U", (dx, dy))
        expr = Const(0.25) * (U(-1, 0) + U(1, 0)) + Const(float("nan")) * U(0, 0)
        kernel = StencilKernel("nan_k", (KernelOutput("U", (expr,), init_from="U"),))
        program = single_kernel_program("nan_prog", mesh, kernel)
        fields = {"U": Field.random("U", mesh, seed=2)}
        gold = run_program(program, fields, 4, engine="interpreter")
        got = run_program(program, fields, 4, engine="compiled")
        assert gold["U"].data.tobytes() == got["U"].data.tobytes()


# --------------------------------------------------------------------------- #
# dtype handling
# --------------------------------------------------------------------------- #
def _mixed_dtype_setup():
    """A float32 state relaxed against a float64 constant field."""
    mesh = MeshSpec((14, 10))
    U = lambda dx, dy: FieldAccess("U", (dx, dy))
    kernel = StencilKernel(
        "relax",
        (
            KernelOutput(
                "U",
                (
                    Const(0.25) * (U(-1, 0) + U(1, 0) + U(0, -1) + U(0, 1))
                    + FieldAccess("Z", (0, 0)),
                ),
                init_from="U",
            ),
        ),
    )
    program = StencilProgram(
        "mixed_dtype",
        mesh,
        (FusedGroup((StencilLoop(kernel),)),),
        state_fields=("U",),
        constant_fields=("Z",),
    )
    spec64 = MeshSpec(mesh.shape, 1, np.float64)
    fields = {
        "U": Field.random("U", mesh, seed=1),
        "Z": Field(
            "Z", spec64, Field.random("Z", mesh, seed=2).data.astype(np.float64)
        ),
    }
    return program, fields


class TestMixedDtypeBindings:
    def test_mixed_dtype_falls_back_to_interpreter(self):
        """Non-uniform input dtypes run on the interpreter, bit-identically.

        The interpreter computes with NumPy promotion on the fields' native
        dtypes (float64 here, rounded to float32 on assignment); a plan
        casting inputs to one dtype up front would round *before* computing
        (regression: ``load()`` silently cast via ``np.copyto``).
        """
        program, fields = _mixed_dtype_setup()
        cache = CompiledPlanCache()
        gold = run_program(program, fields, 4, engine="interpreter")
        got = run_program_compiled(program, fields, 4, cache=cache)
        _assert_env_equal(gold, got)
        assert len(cache) == 0  # no plan was compiled: pure fallback

    def test_load_rejects_dtype_mismatch(self):
        """The step-wise API refuses to cast rather than silently diverge."""
        program, fields = _mixed_dtype_setup()
        uniform = dict(fields)
        uniform["Z"] = Field.random("Z", MeshSpec((14, 10), 1), seed=2)
        compiled = CompiledPlanCache().get(program, uniform)
        with pytest.raises(ValidationError, match="dtype"):
            compiled.load(fields)


# --------------------------------------------------------------------------- #
# flat-mode ghost-lane warning suppression
# --------------------------------------------------------------------------- #
class TestFlatModeWarnings:
    def test_ghost_lanes_do_not_leak_fp_warnings(self):
        """Flat-mode ghost lanes must not emit warnings or trip errstate.

        The huge values sit on the x=0 boundary two rows apart: no interior
        cell ever multiplies them together, so the interpreter is silent —
        but the flat lane window wraps rows, and the ghost lane between the
        two cells computes ``1e30 * 1e30`` every iteration. The zero-weight
        x-term only widens the kernel radius so the huge column stays on
        the boundary.
        """
        mesh = MeshSpec((12, 10))
        U = lambda dx, dy: FieldAccess("U", (dx, dy))
        expr = Const(0.5) * (U(0, -1) * U(0, 1)) + Const(0.0) * U(1, 0)
        kernel = StencilKernel("vmul", (KernelOutput("U", (expr,), init_from="U"),))
        program = single_kernel_program("ghost_warn", mesh, kernel)
        plan = lower_program(program, mesh, {"U": mesh})
        assert any(op.flat for op in plan.steady[0])  # flat mode engaged
        data = np.ones(mesh.storage_shape, dtype=np.float32)
        data[3, 0, 0] = 1e30
        data[5, 0, 0] = 1e30
        fields = {"U": Field("U", mesh, data)}
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            gold = run_program(program, fields, 5, engine="interpreter")
            with np.errstate(all="raise"):
                got = run_program(program, fields, 5, engine="compiled")
        _assert_env_equal(gold, got)


# --------------------------------------------------------------------------- #
# plan cache
# --------------------------------------------------------------------------- #
class TestCompiledPlanCache:
    def test_compile_once_per_binding(self):
        cache = CompiledPlanCache()
        app = poisson2d_app((20, 16))
        program = app.program_on((20, 16))
        fields = app.fields((20, 16), seed=0)
        first = cache.get(program, fields)
        again = cache.get(program, fields)
        assert first is again
        assert cache.misses == 1 and cache.hits == 1

    def test_structurally_equal_programs_share_plans(self):
        cache = CompiledPlanCache()
        app = poisson2d_app((20, 16))
        fields = app.fields((20, 16), seed=0)
        a = cache.get(app.program_on((20, 16)), fields)
        b = cache.get(app.program_on((20, 16)), fields)  # fresh object
        assert a is b
        assert program_token(app.program_on((20, 16))) is program_token(
            app.program_on((20, 16))
        )

    def test_distinct_bindings_get_distinct_plans(self):
        cache = CompiledPlanCache()
        app = poisson2d_app((20, 16))
        fields_a = app.fields((20, 16), seed=0)
        fields_b = app.fields((24, 18), seed=0)
        a = cache.get(app.program_on((20, 16)), fields_a)
        b = cache.get(app.program_on((24, 18)), fields_b)
        c = cache.get(app.program_on((20, 16)), fields_a, {"__nope": 1.0})
        d = cache.get(app.program_on((20, 16)), fields_a, None)
        assert a is not b
        assert c is a  # unknown coefficient names do not fragment the cache
        assert d is a
        assert len(cache) == 2

    def test_niter_zero_does_not_compile(self):
        """niter=0 returns the bindings untouched without building a plan."""
        app = poisson2d_app((20, 16))
        program = app.program_on((20, 16))
        fields = app.fields((20, 16), seed=0)
        cache = CompiledPlanCache()
        result = run_program_compiled(program, fields, 0, cache=cache)
        assert result == dict(fields)
        assert len(cache) == 0 and cache.misses == 0
        with pytest.raises(ValidationError):  # field validation still applies
            run_program_compiled(program, {}, 0, cache=cache)

    def test_capacity_eviction(self):
        cache = CompiledPlanCache(capacity=2)
        app = poisson2d_app((20, 16))
        for m in (16, 18, 20):
            shape = (m, 14)
            cache.get(app.program_on(shape), app.fields(shape, seed=0))
        assert len(cache) == 2
        with pytest.raises(ValidationError):
            CompiledPlanCache(capacity=0)

    def test_interned_tokens_pruned_with_programs(self):
        """Token interning must not retain expression trees forever.

        Each structurally distinct program tokenized adds one intern entry;
        entries are refcounted by live programs and pruned when the last
        dies — a long sweep of generated programs stays bounded.
        """
        import gc

        from repro.stencil import plan as plan_mod

        from repro.stencil.builders import jacobi2d_5pt

        mesh = MeshSpec((12, 10))
        before = len(plan_mod._INTERNED)
        # distinct names -> structurally distinct tokens
        programs = [
            single_kernel_program(f"tok_{i}", mesh, jacobi2d_5pt())
            for i in range(5)
        ]
        for program in programs:
            program_token(program)
        assert len(plan_mod._INTERNED) == before + 5
        del programs, program  # the loop variable pins the last program
        gc.collect()
        assert len(plan_mod._INTERNED) == before

    def test_byte_budget_eviction(self):
        app = poisson2d_app((20, 16))
        one = CompiledPlanCache().get(
            app.program_on((20, 16)), app.fields((20, 16), seed=0)
        )
        # budget fits roughly one plan: a second distinct shape evicts the
        # first, but a single over-budget plan is still kept and usable
        cache = CompiledPlanCache(max_bytes=int(one.nbytes * 1.5))
        cache.get(app.program_on((20, 16)), app.fields((20, 16), seed=0))
        cache.get(app.program_on((24, 18)), app.fields((24, 18), seed=0))
        assert len(cache) == 1
        tiny = CompiledPlanCache(max_bytes=1)
        kept = tiny.get(app.program_on((20, 16)), app.fields((20, 16), seed=0))
        assert len(tiny) == 1
        result = kept.run(app.fields((20, 16), seed=0), 2)
        assert "U" in result

    def test_concurrent_access_is_race_free(self):
        """Hammering one cache from many threads must never duplicate or
        corrupt entries — the parallel engine shares DEFAULT_CACHE across
        submitting threads, so a racing compile must keep one incumbent."""
        import threading

        cache = CompiledPlanCache()
        app = poisson2d_app((20, 16))
        fields_by_shape = {
            shape: app.fields(shape, seed=0)
            for shape in ((20, 16), (24, 18), (18, 14))
        }
        results: dict[tuple, list] = {shape: [] for shape in fields_by_shape}
        errors: list[BaseException] = []
        barrier = threading.Barrier(6)

        def worker(shape):
            try:
                barrier.wait()
                program = app.program_on(shape)
                for _ in range(10):
                    compiled = cache.get(program, fields_by_shape[shape])
                    plan = cache.plan_for(program, fields_by_shape[shape])
                    assert compiled.plan is plan
                    results[shape].append(compiled)
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(shape,))
            for shape in fields_by_shape for _ in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        for shape, seen in results.items():
            # every lookup of one binding resolved to one shared instance
            assert len({id(c) for c in seen}) == 1
        assert len(cache) == len(fields_by_shape)
        assert cache.hits + cache.misses == 60
        assert cache.misses >= len(fields_by_shape)

    def test_tiled_blocks_reuse_plans_across_passes(self):
        from repro.stencil.compiled import CompiledPlanCache as Cache

        cache = Cache()
        app = jacobi3d_app((24, 20, 8))
        design = app.design(tile=(12, 10), p=2, V=2)
        acc = FPGAAccelerator(
            app.program_on((24, 20, 8)), design, plan_cache=cache
        )
        fields = app.fields((24, 20, 8), seed=2)
        acc.run(fields, 4)
        compiled_after_first = cache.misses
        acc.run(fields, 8)
        assert cache.misses == compiled_after_first  # all block shapes warm
        assert cache.hits > 0


# --------------------------------------------------------------------------- #
# allocation behaviour of the steady-state loop
# --------------------------------------------------------------------------- #
class TestSteadyStateAllocation:
    @pytest.mark.parametrize("maker,shape", [
        (jacobi3d_app, (24, 20, 10)),
        (rtm_app, (12, 12, 10)),
    ])
    def test_zero_heap_allocation(self, maker, shape):
        app = maker(shape)
        program = app.program_on(shape)
        fields = app.fields(shape, seed=1)
        compiled = CompiledPlanCache().get(program, fields)
        compiled.load(fields)
        compiled.run_iterations(4)  # past warm-up, into the steady tapes
        tracemalloc.start()
        # first traced rounds absorb one-time ufunc-config/contextvar cache
        # warm-up behind the flat-mode errstate suppression
        compiled.run_iterations(30)
        compiled.run_iterations(30)
        base_cur, base_peak = tracemalloc.get_traced_memory()
        compiled.run_iterations(30)
        cur, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        # numpy's errstate toggling around flat-mode runs churns a few tens
        # of bytes of contextvar bookkeeping; an array on this mesh is tens
        # of kilobytes, so even a single 0-d scalar wrapper per iteration
        # (~112 B x 30 iterations) would blow through this bound
        assert cur - base_cur < 512, "steady-state loop leaked allocations"
        # one field of this mesh is tens of kilobytes, and the interpreter
        # allocates several temporaries of that size *per op* — any
        # per-iteration array materialization would blow through this
        field_bytes = fields[program.state_fields[0]].data.nbytes
        assert peak - base_peak < min(8192, field_bytes // 2)

    def test_stepwise_api_matches_one_shot(self):
        app = jacobi3d_app((16, 14, 8))
        program = app.program_on((16, 14, 8))
        fields = app.fields((16, 14, 8), seed=9)
        compiled = CompiledPlanCache().get(program, fields)
        compiled.load(fields)
        compiled.run_iterations(3)
        compiled.run_iterations(4)
        stepped = compiled.result(fields)
        one_shot = run_program(program, fields, 7, engine="interpreter")
        _assert_env_equal(one_shot, stepped)

    def test_results_do_not_alias_internal_buffers(self):
        app = poisson2d_app((16, 12))
        program = app.program_on((16, 12))
        fields = app.fields((16, 12), seed=0)
        cache = CompiledPlanCache()
        first = run_program_compiled(program, fields, 2, cache=cache)
        snapshot = first["U"].data.copy()
        run_program_compiled(program, fields, 4, cache=cache)  # reuses buffers
        assert np.array_equal(first["U"].data, snapshot)


# --------------------------------------------------------------------------- #
# property test: random expression trees
# --------------------------------------------------------------------------- #
@st.composite
def random_kernel_exprs(draw):
    """A random 2D expression over U (radius <= 2) plus one coefficient."""
    offsets = st.tuples(
        st.integers(min_value=-2, max_value=2),
        st.integers(min_value=-2, max_value=2),
    )

    def leaf():
        return st.one_of(
            st.floats(
                min_value=-2.0, max_value=2.0, allow_nan=False, width=32
            ).map(Const),
            st.just(Coef("c")),
            offsets.map(lambda off: FieldAccess("U", off)),
        )

    def compose(children):
        return st.one_of(
            st.tuples(children, children).map(lambda ab: ab[0] + ab[1]),
            st.tuples(children, children).map(lambda ab: ab[0] - ab[1]),
            st.tuples(children, children).map(lambda ab: ab[0] * ab[1]),
            # divide only by safely-nonzero literals: bit-identity must not
            # depend on inf/nan propagation quirks
            st.tuples(
                children,
                st.floats(min_value=0.5, max_value=2.0, allow_nan=False, width=32),
            ).map(lambda ab: ab[0] / Const(ab[1])),
            children.map(lambda e: -e),
        )

    expr = draw(st.recursive(leaf(), compose, max_leaves=12))
    # ensure the kernel reads at least one field (a pure-constant kernel is
    # rejected by kernel validation)
    if not any(isinstance(n, FieldAccess) for n in _walk(expr)):
        expr = expr + FieldAccess("U", (draw(offsets)))
    cval = draw(
        st.floats(min_value=-1.5, max_value=1.5, allow_nan=False, width=32)
    )
    return expr, cval


def _walk(expr):
    from repro.stencil.expr import walk

    return walk(expr)


class TestPropertyEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(data=random_kernel_exprs(), seed=st.integers(min_value=0, max_value=5))
    def test_random_trees_bit_identical(self, data, seed):
        expr, cval = data
        from repro.stencil.kernel import single_output_kernel

        kernel = single_output_kernel("rand", "U", expr, {"c": cval})
        mesh = MeshSpec((11, 9))
        program = single_kernel_program("rand_prog", mesh, kernel)
        fields = {"U": Field.random("U", mesh, seed=seed, lo=-1.0, hi=1.0)}
        gold = run_program(program, fields, 3, engine="interpreter")
        got = run_program(program, fields, 3, engine="compiled")
        assert np.array_equal(gold["U"].data, got["U"].data)
