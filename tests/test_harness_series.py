"""Unit tests for the CSV figure-series exporter."""

import csv

from repro.harness.experiments import experiment_by_id
from repro.harness.series import export_series, result_to_csv


class TestCsvRendering:
    def test_header_and_rows(self):
        result = experiment_by_id("table2").run()
        text = result_to_csv(result)
        rows = list(csv.DictReader(text.splitlines()))
        assert len(rows) == 3
        assert rows[0]["app"] == "Poisson-5pt-2D"
        assert int(rows[2]["gdsp_ours"]) == 2444

    def test_mesh_tuples_flattened(self):
        result = experiment_by_id("fig3a").run()
        text = result_to_csv(result)
        rows = list(csv.DictReader(text.splitlines()))
        assert rows[0]["mesh"] == "200x100"

    def test_numeric_columns_parse(self):
        result = experiment_by_id("fig3a").run()
        rows = list(csv.DictReader(result_to_csv(result).splitlines()))
        for row in rows:
            assert float(row["fpga_sim"]) > 0
            assert float(row["gpu_paper"]) > 0


class TestExport:
    def test_export_one(self, tmp_path):
        result = experiment_by_id("table3").run()
        path = export_series(result, tmp_path)
        assert path.name == "table3.csv"
        assert path.read_text().startswith("app,")
