"""Mix-aware DSE: workloads= scoring, mix_space, weighted_sum scalarization."""

from __future__ import annotations

import math

import pytest

from repro.arch.device import ALVEO_U280
from repro.dse import (
    ENERGY,
    RUNTIME,
    Evaluator,
    Objective,
    ParetoFront,
    Study,
    strategy_by_name,
    weighted_sum,
)
from repro.dse.space import mix_space
from repro.util.errors import ValidationError
from repro.workload import WorkloadMix

#: small cross-app mix: jacobi dominates the load, RTM caps feasibility
MIX = WorkloadMix.parse(
    "jacobi3d:48x48x48:100x4,jacobi3d:64x64x64:60x2@2,rtm:32x32x32:36x2"
)

GOOD = {"memory": "HBM", "V": 1, "p": 3, "tiled": False}
#: feasible for jacobi alone, far beyond RTM's DSP budget
JACOBI_ONLY = {"memory": "HBM", "V": 8, "p": 8, "tiled": False}


def _program_for(spec):
    from repro.apps.registry import app_by_name

    return app_by_name(spec.app).program_on(spec.mesh.shape)


@pytest.fixture
def evaluator():
    return Evaluator(
        _program_for(MIX.heaviest()),
        ALVEO_U280,
        workloads=MIX,
        objectives=(RUNTIME, ENERGY),
    )


class TestMixEvaluator:
    def test_requires_some_workload(self):
        program = _program_for(MIX.heaviest())
        with pytest.raises(ValidationError):
            Evaluator(program, ALVEO_U280)
        with pytest.raises(ValidationError):
            Evaluator(
                program, ALVEO_U280, MIX.heaviest(), workloads=MIX
            )

    def test_representative_is_heaviest_spec(self, evaluator):
        assert evaluator.workload == MIX.heaviest()
        assert evaluator.mix == MIX

    def test_runtime_is_weighted_sum_over_specs(self, evaluator):
        """One design (one clock) serves the mix; runtime sums per spec."""
        from repro.model.runtime import RuntimePredictor

        result = evaluator.evaluate(GOOD)
        assert result.feasible
        design = result.design
        total = 0.0
        for spec, weight in MIX.group_by_spec().items():
            from repro.apps.registry import app_by_name

            predictor = RuntimePredictor(
                _program_for(spec),
                ALVEO_U280,
                design,
                logical_bytes_per_cell_iter=app_by_name(
                    spec.app
                ).gpu_traffic.logical_bytes_per_cell_iter,
            )
            total += weight * predictor.predict(spec).seconds
        assert math.isclose(total, result.value("runtime"), rel_tol=1e-12)

    def test_design_must_serve_every_spec(self, evaluator):
        """A config feasible for the heavy member alone must not win."""
        result = evaluator.evaluate(JACOBI_ONLY)
        assert not result.feasible
        assert "DSP" in result.reason

    def test_caps_take_the_minimum_over_specs(self, evaluator):
        program = _program_for(MIX.heaviest())
        jacobi_only = Evaluator(
            program, ALVEO_U280, MIX.heaviest(), objectives=(RUNTIME,)
        )
        # RTM's G_dsp must cap the mix well below jacobi's own cap
        assert evaluator.unroll_cap(V=1) < jacobi_only.unroll_cap(V=1)
        assert evaluator.vector_cap("HBM") <= jacobi_only.vector_cap("HBM")

    def test_tiled_batch_axis_mix_is_infeasible(self, evaluator):
        """A batch-axis config can't be tiled, exactly as on single workloads."""
        result = evaluator.evaluate(
            {"memory": "HBM", "V": 1, "p": 3, "tiled": True, "batch": 2}
        )
        assert not result.feasible
        assert "tiled" in result.reason

    def test_tiled_mix_keeps_analytic_scoring_like_single_path(self):
        """Spec-level batches score tiled analytically, as workload= does.

        The same batched workload spelled workloads= must not lose tiled
        configurations the workload= spelling scores.
        """
        spec = WorkloadMix.parse("poisson2d:1000x1000:500x4").heaviest()
        program = _program_for(spec)
        config = {"memory": "DDR4", "V": 8, "p": 60, "tiled": True}
        single = Evaluator(program, ALVEO_U280, spec, objectives=(RUNTIME,))
        as_mix = Evaluator(
            program, ALVEO_U280, workloads=[spec], objectives=(RUNTIME,)
        )
        a, b = single.evaluate(config), as_mix.evaluate(config)
        assert a.feasible == b.feasible
        if a.feasible:
            assert math.isclose(
                a.value("runtime"), b.value("runtime"), rel_tol=1e-12
            )

    def test_batch_axis_scales_every_spec(self, evaluator):
        base = evaluator.evaluate(GOOD)
        scaled = evaluator.evaluate({**GOOD, "batch": 2})
        assert scaled.feasible
        # runtime grows with the doubled batch, and by less than 2.2x
        # (fills amortize) but more than 1.5x
        ratio = scaled.value("runtime") / base.value("runtime")
        assert 1.5 < ratio < 2.2

    def test_study_on_mix_space_end_to_end(self, evaluator):
        space = mix_space(MIX, ALVEO_U280)
        study = Study(space, evaluator)
        study.run(strategy_by_name("greedy", seed=0), 30)
        best = study.best()
        assert best is not None
        assert best.config["V"] * best.config["p"] <= 8  # RTM-capped region
        # the journal fingerprint pins the mix
        assert study.fingerprint()["workloads"] == MIX.token()

    def test_validate_mix_runs_chunked_and_bit_identical(self):
        small = WorkloadMix.parse(
            "poisson2d:24x16:8x3,jacobi3d:16x14x10:6x2,rtm:12x12x10:4x2"
        )
        evaluator = Evaluator(
            _program_for(small.heaviest()),
            ALVEO_U280,
            workloads=small,
            objectives=(RUNTIME,),
        )
        run = evaluator.validate_mix(GOOD)
        assert run.validated
        assert run.meshes == 7
        assert run.dispatches <= run.meshes
        with pytest.raises(ValidationError):
            Evaluator(
                _program_for(small.heaviest()), ALVEO_U280,
                small.heaviest(), objectives=(RUNTIME,),
            ).validate_mix(GOOD)

    def test_mix_space_unions_per_program_axes(self):
        space = mix_space(MIX, ALVEO_U280)
        jac_space_vs = set()
        from repro.dse.space import model_space

        for spec in MIX.group_by_spec():
            s = model_space(_program_for(spec), ALVEO_U280, spec)
            jac_space_vs.update(s["V"].values)
            assert set(s["V"].values) <= set(space["V"].values)
            assert set(s["p"].values) <= set(space["p"].values)
        assert set(space["V"].values) == jac_space_vs


class TestWeightedSum:
    def _ctx_free_objective(self, name, values):
        """An objective reading a canned per-design value (no model)."""
        return Objective(name, "min", lambda c, v=values: v[c], unit="")

    def test_reorders_a_dominance_tied_front(self):
        """Two designs tied under dominance get a total order from weights.

        Design A: fast but power-hungry; design B: slow but frugal. The
        Pareto front keeps both (neither dominates); a weighted-sum primary
        ranks them — and flipping the weights flips the winner.
        """
        runtime = {"A": 1.0, "B": 2.0}
        power = {"A": 10.0, "B": 3.0}
        o_rt = self._ctx_free_objective("rt", runtime)
        o_pw = self._ctx_free_objective("pw", power)

        front = ParetoFront((o_rt, o_pw))
        front.add({"rt": runtime["A"], "pw": power["A"]}, payload="A")
        front.add({"rt": runtime["B"], "pw": power["B"]}, payload="B")
        assert len(front) == 2  # dominance leaves the pair tied

        speed_first = weighted_sum((o_rt, o_pw), (1.0, 0.01))
        power_first = weighted_sum((o_rt, o_pw), (0.01, 1.0))
        by_speed = sorted("AB", key=lambda d: speed_first.value(d))
        by_power = sorted("AB", key=lambda d: power_first.value(d))
        assert by_speed == ["A", "B"]
        assert by_power == ["B", "A"]

    def test_direction_folding_of_maximized_components(self):
        """Maximized components enter the sum negated (lower == better)."""
        bw = Objective("bw", "max", lambda c: {"A": 5.0, "B": 9.0}[c])
        rt = self._ctx_free_objective("rt", {"A": 1.0, "B": 1.0})
        scalar = weighted_sum((rt, bw), (1.0, 1.0))
        assert scalar.value("B") < scalar.value("A")
        assert scalar.direction == "min"

    def test_usable_as_evaluator_primary(self):
        mix = WorkloadMix.parse("jacobi3d:48x48x48:100x2")
        primary = weighted_sum((RUNTIME, ENERGY), (1.0, 0.001))
        evaluator = Evaluator(
            _program_for(mix.heaviest()),
            ALVEO_U280,
            workloads=mix,
            objectives=(primary, RUNTIME, ENERGY),
        )
        result = evaluator.evaluate(GOOD)
        assert result.feasible
        expected = result.value("runtime") + 0.001 * result.value("energy")
        assert math.isclose(result.score, expected, rel_tol=1e-9)

    def test_validation(self):
        with pytest.raises(ValidationError):
            weighted_sum((), ())
        with pytest.raises(ValidationError):
            weighted_sum((RUNTIME,), (1.0, 2.0))
        with pytest.raises(ValidationError):
            weighted_sum((RUNTIME,), (float("nan"),))
        with pytest.raises(ValidationError):
            Objective("x", "min", lambda c: 0.0, aggregate="median")

    def test_default_name_spells_the_weights(self):
        scalar = weighted_sum((RUNTIME, ENERGY), (0.7, 0.3))
        assert scalar.name == "weighted(runtime*0.7+energy*0.3)"


class TestReviewRegressions:
    def test_mix_and_single_spelling_score_identically(self):
        """The same workload via workload= or workloads= is one trial."""
        from repro.dse import BANDWIDTH

        spec = WorkloadMix.parse("rtm:64x64x64:36x2").heaviest()
        program = _program_for(spec)
        objectives = (RUNTIME, ENERGY, BANDWIDTH)
        single = Evaluator(program, ALVEO_U280, spec, objectives=objectives)
        as_mix = Evaluator(
            program, ALVEO_U280, workloads=[spec], objectives=objectives
        )
        a = single.evaluate(GOOD)
        b = as_mix.evaluate(GOOD)
        assert a.feasible and b.feasible
        for name in ("runtime", "energy", "bandwidth"):
            assert math.isclose(a.value(name), b.value(name), rel_tol=1e-12)

    def test_mixed_rank_tiled_mix_has_clear_reason(self):
        mix = WorkloadMix.parse("poisson2d:4000x2000:100,jacobi3d:96x96x96:100")
        evaluator = Evaluator(
            _program_for(mix.heaviest()), ALVEO_U280, workloads=mix,
            objectives=(RUNTIME,),
        )
        result = evaluator.evaluate(
            {"memory": "HBM", "V": 1, "p": 2, "tiled": True}
        )
        assert not result.feasible
        assert "mixed-rank" in result.reason

    def test_representative_ranks_by_per_mesh_footprint(self):
        """A huge batch of small meshes must not outrank one big mesh."""
        mix = WorkloadMix.parse(
            "jacobi3d:96x96x96:100,poisson2d:100x50:100x500"
        )
        assert mix.heaviest().app == "jacobi3d"
        evaluator = Evaluator(
            _program_for(mix.heaviest()), ALVEO_U280, workloads=mix,
            objectives=(RUNTIME,),
        )
        assert evaluator.workload.app == "jacobi3d"

    def test_appless_mix_validates_with_synthesized_fields(self):
        """workloads= accepts app-less specs end to end, validation included."""
        from repro.mesh.mesh import MeshSpec
        from repro.model.design import Workload

        program = _program_for(
            WorkloadMix.parse("poisson2d:24x16:8").heaviest()
        )
        mix = [Workload(MeshSpec((24, 16)), 6, 3), Workload(MeshSpec((16, 12)), 4, 2)]
        evaluator = Evaluator(
            program, ALVEO_U280, workloads=mix, objectives=(RUNTIME,)
        )
        run = evaluator.validate_mix(GOOD)
        assert run.validated and run.meshes == 5

    def test_batch_runner_refuses_mix_evaluators(self):
        mix = WorkloadMix.parse("jacobi3d:16x14x10:12x3,rtm:12x12x10:6x2")
        evaluator = Evaluator(
            _program_for(mix.heaviest()), ALVEO_U280, workloads=mix,
            objectives=(RUNTIME,),
        )
        with pytest.raises(ValidationError, match="validate_mix"):
            evaluator.batch_runner(GOOD)

    def test_workload_for_refuses_mix_evaluators(self):
        mix = WorkloadMix.parse("jacobi3d:16x14x10:12x3,rtm:12x12x10:6x2")
        evaluator = Evaluator(
            _program_for(mix.heaviest()), ALVEO_U280, workloads=mix,
            objectives=(RUNTIME,),
        )
        with pytest.raises(ValidationError, match="mix"):
            evaluator.workload_for({"batch": 4})

    def test_mix_space_supports_appless_specs_with_base_program(self):
        from repro.mesh.mesh import MeshSpec
        from repro.model.design import Workload

        program = _program_for(
            WorkloadMix.parse("poisson2d:24x16:8").heaviest()
        )
        mix = [Workload(MeshSpec((24, 16)), 6), Workload(MeshSpec((48, 32)), 6)]
        space = mix_space(mix, ALVEO_U280, program=program)
        assert "V" in space and "p" in space
        with pytest.raises(ValidationError, match="program="):
            mix_space(mix, ALVEO_U280)
