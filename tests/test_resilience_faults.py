"""Fault-injection recovery: every fault class heals, bit-identically.

The tentpole contract: a dispatch that suffers an injected worker crash,
shm attach failure, slow (hung) chunk or corrupt result recovers
automatically — retry on the same backend, then degradation down the
process → thread → serial ladder — and the final per-mesh results are
bit-identical to the golden interpreter. Recovery is visible through
``resilience.*`` / ``exec.fault_injected`` metrics and events, and no
``/dev/shm`` segment outlives a dispatch, healthy or not.
"""

from __future__ import annotations

import time

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import observability as obs
from repro.apps.registry import all_apps
from repro.parallel.executor import (
    ParallelExecutionError,
    run_program_parallel,
)
from repro.parallel.pool import WorkerPool, shutdown_shared_pools
from repro.parallel.shm import live_segments
from repro.parallel.worker import CRASH_ENV
from repro.resilience import FaultPlan, RetryPolicy
from repro.stencil.compiled import CompiledPlanCache
from repro.stencil.numpy_eval import run_program

APP_MESHES = {
    "poisson2d": (20, 16),
    "jacobi3d": (14, 12, 8),
    "rtm": (12, 12, 10),
}

#: fast recovery for tests: no backoff sleeps, checksums verified
FAST = RetryPolicy(backoff_base=0.0, verify_checksums=True)


@pytest.fixture(autouse=True)
def _observability_off():
    obs.enable(fresh=True)
    obs.disable()
    yield
    obs.disable()


@pytest.fixture(scope="module", autouse=True)
def _drain_pools():
    yield
    shutdown_shared_pools()


def _batch(app_key, batch, seed=40):
    app = all_apps()[app_key]
    shape = APP_MESHES[app_key]
    program = app.program_on(shape)
    envs = [app.fields(shape, seed=seed + s) for s in range(batch)]
    return program, envs


def _assert_golden(program, envs, got, niter):
    for env, res in zip(envs, got):
        gold = run_program(program, env, niter, engine="interpreter")
        assert set(gold) == set(res)
        for name in gold:
            assert np.array_equal(gold[name].data, res[name].data), name


class TestFaultClassRecovery:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_worker_crash_recovers(self, backend):
        obs.enable()
        program, envs = _batch("poisson2d", 4)
        stats: dict = {}
        got = run_program_parallel(
            program, envs, 3, max_workers=2, backend=backend, stats=stats,
            policy=FAST, fault_plan=FaultPlan.parse("crash@0"),
        )
        _assert_golden(program, envs, got, 3)
        assert stats["retries"] >= 1
        reg = obs.metrics_registry()
        assert reg.value("exec.fault_injected", kind="crash", backend=backend) == 1
        # a process crash breaks the executor ("crash"); a thread crash
        # surfaces as the raised exception itself ("error")
        failure = "crash" if backend == "process" else "error"
        assert reg.value("resilience.retries", backend=backend, kind=failure) >= 1
        assert obs.ring_sink().of_kind("resilience.retry")
        assert obs.ring_sink().of_kind("exec.fault_injected")

    def test_shm_attach_failure_recovers(self):
        obs.enable()
        program, envs = _batch("jacobi3d", 4)
        got = run_program_parallel(
            program, envs, 3, max_workers=2, backend="process",
            policy=FAST, fault_plan=FaultPlan.parse("shm@*"),
        )
        _assert_golden(program, envs, got, 3)
        assert obs.metrics_registry().value(
            "resilience.retries", backend="process", kind="shm"
        ) >= 1
        assert live_segments() == ()

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_corrupt_result_detected_and_recovered(self, backend):
        obs.enable()
        program, envs = _batch("poisson2d", 4)
        got = run_program_parallel(
            program, envs, 3, max_workers=2, backend=backend,
            policy=FAST, fault_plan=FaultPlan.parse("corrupt@0"),
        )
        _assert_golden(program, envs, got, 3)
        assert obs.metrics_registry().value(
            "resilience.retries", backend=backend, kind="corrupt"
        ) >= 1

    def test_corrupt_without_checksums_goes_undetected(self):
        # the negative control: checksum verification is what catches it
        program, envs = _batch("poisson2d", 2)
        no_verify = RetryPolicy(backoff_base=0.0, verify_checksums=False)
        got = run_program_parallel(
            program, envs, 2, max_workers=2, backend="thread",
            policy=no_verify, fault_plan=FaultPlan.parse("corrupt@0"),
        )
        gold = run_program(program, envs[0], 2, engine="interpreter")
        diverged = any(
            not np.array_equal(gold[name].data, got[0][name].data)
            for name in gold
        )
        assert diverged

    def test_slow_chunk_times_out_and_degrades(self):
        obs.enable()
        program, envs = _batch("jacobi3d", 2)
        policy = RetryPolicy(
            backoff_base=0.0, chunk_timeout=0.25, max_attempts=1,
        )
        with WorkerPool(max_workers=2, backend="process") as pool:
            t0 = time.perf_counter()
            got = run_program_parallel(
                program, envs, 2, max_workers=2, backend="process", pool=pool,
                policy=policy, fault_plan=FaultPlan.parse("slow@*:30"),
            )
            elapsed = time.perf_counter() - t0
        _assert_golden(program, envs, got, 2)
        assert elapsed < 15  # nobody waited out the 30s sleep
        reg = obs.metrics_registry()
        assert reg.value("resilience.timeouts", backend="process") >= 1
        assert obs.ring_sink().of_kind("resilience.timeout")
        degraded = obs.ring_sink().of_kind("resilience.degraded")
        assert degraded and degraded[0]["from_backend"] == "process"
        assert live_segments() == ()

    def test_ladder_reaches_serial_when_workers_keep_dying(self):
        obs.enable()
        program, envs = _batch("poisson2d", 3)
        # four crashes outlast two thread attempts; the serial rung runs
        # in-parent and never draws a fault
        got = run_program_parallel(
            program, envs, 2, max_workers=2, backend="thread",
            policy=FAST, fault_plan=FaultPlan.parse("crash@*x4"),
        )
        _assert_golden(program, envs, got, 2)
        degraded = obs.ring_sink().of_kind("resilience.degraded")
        assert any(e["to_backend"] == "serial" for e in degraded)


class TestExhaustionAndLeaks:
    def test_exhausted_ladder_raises_with_attempt_context(self):
        program, envs = _batch("poisson2d", 2)
        policy = RetryPolicy(
            backoff_base=0.0, max_attempts=2, ladder=("thread",)
        )
        with pytest.raises(ParallelExecutionError) as err:
            run_program_parallel(
                program, envs, 2, max_workers=2, backend="thread",
                policy=policy, fault_plan=FaultPlan.parse("crash@*x99"),
            )
        assert err.value.backend == "thread"
        assert err.value.attempts == 2
        assert err.value.final_backend == "thread"
        assert "2 attempts" in str(err.value)

    def test_failed_process_dispatch_leaks_no_segments(self, monkeypatch):
        program, envs = _batch("jacobi3d", 4)
        monkeypatch.setenv(CRASH_ENV, "1")
        policy = RetryPolicy(backoff_base=0.0, max_attempts=1, ladder=())
        # a dedicated pool spawned after setenv, so its workers inherit it
        with WorkerPool(max_workers=2, backend="process") as pool:
            with pytest.raises(ParallelExecutionError):
                run_program_parallel(
                    program, envs, 2, max_workers=2, backend="process",
                    pool=pool,
                    max_stack_bytes=0,  # per-mesh chunks: several segments
                    policy=policy,
                )
        assert live_segments() == ()

    def test_recovered_process_dispatch_leaks_no_segments(self):
        program, envs = _batch("jacobi3d", 4)
        run_program_parallel(
            program, envs, 2, max_workers=2, backend="process",
            max_stack_bytes=0,
            policy=FAST, fault_plan=FaultPlan.parse("crash@0,shm@2"),
        )
        assert live_segments() == ()

    def test_disabled_policy_fails_fast(self):
        program, envs = _batch("poisson2d", 2)
        with pytest.raises(ParallelExecutionError) as err:
            run_program_parallel(
                program, envs, 2, max_workers=2, backend="thread",
                policy=RetryPolicy.disabled(),
                fault_plan=FaultPlan.parse("crash@0"),
            )
        assert err.value.attempts == 1


class TestLegacyCrashHookStillFails:
    """CRASH_ENV poisons every rung (serial included): errors still surface."""

    def test_thread_crash_env_exhausts_the_full_ladder(self, monkeypatch):
        program, envs = _batch("poisson2d", 2)
        monkeypatch.setenv(CRASH_ENV, "1")
        with pytest.raises(ParallelExecutionError) as err:
            run_program_parallel(
                program, envs, 2, max_workers=2, backend="thread",
                policy=RetryPolicy(backoff_base=0.0),
            )
        assert err.value.final_backend == "serial"


class TestPropertyFaultBitIdentity:
    """Satellite: faulted parallel runs match the interpreter, all apps."""

    @pytest.mark.parametrize("app_key", ["poisson2d", "jacobi3d", "rtm"])
    @settings(max_examples=6, deadline=None)
    @given(
        fault=st.sampled_from(
            ["crash@0", "crash@*x2", "shm@*", "corrupt@0", "slow@1:0.01",
             "crash@0,corrupt@1"]
        ),
        batch=st.integers(min_value=2, max_value=4),
        niter=st.integers(min_value=1, max_value=3),
        seed=st.integers(min_value=0, max_value=2),
    )
    def test_faulted_runs_bit_identical_to_interpreter(
        self, app_key, fault, batch, niter, seed
    ):
        app = all_apps()[app_key]
        shape = APP_MESHES[app_key]
        program = app.program_on(shape)
        envs = [app.fields(shape, seed=70 + seed + b) for b in range(batch)]
        cache = CompiledPlanCache()
        limit = cache.plan_for(program, envs[0]).nbytes  # per-mesh-ish chunks
        got = run_program_parallel(
            program, envs, niter, cache=cache, max_stack_bytes=limit,
            max_workers=2, backend="thread",
            policy=FAST, fault_plan=FaultPlan.parse(fault),
        )
        _assert_golden(program, envs, got, niter)
