"""Unit tests for design points and design-space exploration."""

import pytest

from repro.arch.device import ALVEO_U280
from repro.model.design import DesignPoint, DesignSpace, Workload, explore_designs
from repro.model.tiling import TileDesign
from repro.util.errors import InfeasibleDesignError, ValidationError


class TestDesignPoint:
    def test_clock_hz(self):
        d = DesignPoint(8, 60, 250.0)
        assert d.clock_hz == 250e6

    def test_tiled_flag(self):
        assert not DesignPoint(8, 60, 250.0).is_tiled
        assert DesignPoint(8, 60, 250.0, tile=TileDesign((1024,))).is_tiled

    def test_with_clock(self):
        d = DesignPoint(8, 60, 300.0).with_clock(250.0)
        assert d.clock_mhz == 250.0 and d.V == 8

    def test_rejects_bad_memory(self):
        with pytest.raises(ValidationError):
            DesignPoint(8, 60, 250.0, memory="SRAM")

    def test_rejects_ii_below_one(self):
        with pytest.raises(ValidationError):
            DesignPoint(8, 60, 250.0, initiation_interval=0.9)


class TestWorkload:
    def test_total_points(self, poisson_app):
        w = poisson_app.workload((200, 100), 60, batch=10)
        assert w.total_points == 200_000

    def test_footprint(self, poisson_app):
        w = poisson_app.workload((200, 100), 60)
        assert w.footprint_bytes == 200 * 100 * 4

    def test_rejects_zero_iters(self, poisson_app):
        with pytest.raises(ValidationError):
            poisson_app.workload((4, 4), 0)


class TestFeasibility:
    def _space(self, poisson_app, shape=(200, 100)):
        return DesignSpace(poisson_app.program_on(shape), ALVEO_U280), poisson_app

    def test_paper_design_feasible(self, poisson_app):
        space, app = self._space(poisson_app)
        w = app.workload((200, 100), 60)
        space.check(app.design(), w)  # must not raise

    def test_dsp_bound_enforced(self, poisson_app):
        space, app = self._space(poisson_app)
        w = app.workload((200, 100), 60)
        with pytest.raises(InfeasibleDesignError, match="eq. 6"):
            space.check(DesignPoint(8, 200, 250.0), w)

    def test_mem_bound_enforced(self, jacobi_app):
        program = jacobi_app.program_on((500, 500, 500))
        space = DesignSpace(program, ALVEO_U280)
        w = jacobi_app.workload((500, 500, 500), 29)
        # plane buffers of 500^2 are 1 MB per module: p=60 cannot fit
        with pytest.raises(InfeasibleDesignError, match="on-chip"):
            space.check(DesignPoint(8, 60, 246.0), w)

    def test_bandwidth_bound_enforced(self, poisson_app):
        # DDR4's two channels (38.4 GB/s) feed at most V=16 at 250 MHz;
        # V=32 needs 64 GB/s and must be rejected by the eq. (4) check
        space, app = self._space(poisson_app)
        w = app.workload((200, 100), 60)
        with pytest.raises(InfeasibleDesignError, match="eq. 4"):
            space.check(DesignPoint(32, 10, 250.0, memory="DDR4"), w)

    def test_capacity_bound_enforced(self, poisson_app):
        space, app = self._space(poisson_app, (40000, 40000))
        w = app.workload((40000, 40000), 60)
        # 1.6 GB mesh x ping-pong fits DDR4 but not 8 GB HBM x 3 copies? it does;
        # use an absurd batch to blow past HBM capacity
        w = app.workload((40000, 40000), 60, batch=4)
        with pytest.raises(InfeasibleDesignError, match="resident"):
            space.check(DesignPoint(1, 1, 250.0, memory="HBM"), w)

    def test_is_feasible_wrapper(self, poisson_app):
        space, app = self._space(poisson_app)
        w = app.workload((200, 100), 60)
        assert space.is_feasible(app.design(), w)
        assert not space.is_feasible(DesignPoint(8, 500, 250.0), w)


class TestExploration:
    def test_explore_returns_ranked(self, poisson_app):
        w = poisson_app.workload((200, 100), 60)
        ranked = explore_designs(poisson_app.program_on((200, 100)), ALVEO_U280, w, top_k=5)
        assert ranked
        times = [m.seconds for _, m in ranked]
        assert times == sorted(times)

    def test_explore_prefers_deep_unroll(self, poisson_app):
        w = poisson_app.workload((400, 400), 600)
        ranked = explore_designs(poisson_app.program_on((400, 400)), ALVEO_U280, w, top_k=3)
        best_design, _ = ranked[0]
        assert best_design.p > 8  # deep unrolling wins for compute-bound stencils

    def test_explore_tiled(self, poisson_app):
        w = poisson_app.workload((15000, 15000), 60)
        ranked = explore_designs(
            poisson_app.program_on((15000, 15000)), ALVEO_U280, w, tiled=True, top_k=3
        )
        assert ranked
        assert all(d.is_tiled for d, _ in ranked)

    def test_candidates_all_feasible(self, poisson_app):
        space = DesignSpace(poisson_app.program_on((200, 100)), ALVEO_U280)
        w = poisson_app.workload((200, 100), 60)
        for design in space.candidates(w):
            assert space.is_feasible(design, w)
