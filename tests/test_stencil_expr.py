"""Unit tests for the expression IR."""

import pytest

from repro.stencil.expr import (
    BinOp,
    Coef,
    Const,
    FieldAccess,
    Neg,
    as_expr,
    coefficient_names,
    count_ops,
    field_accesses,
    field_names,
    walk,
)
from repro.util.errors import ValidationError


def U(dx, dy):
    return FieldAccess("U", (dx, dy))


class TestConstruction:
    def test_operator_sugar_builds_binops(self):
        e = U(0, 0) + 1.0
        assert isinstance(e, BinOp) and e.op == "+"
        assert isinstance(e.rhs, Const)

    def test_reflected_operators(self):
        e = 2.0 * U(0, 0)
        assert isinstance(e, BinOp) and e.op == "*"
        assert isinstance(e.lhs, Const) and e.lhs.value == 2.0

    def test_division(self):
        e = U(0, 0) / 8
        assert e.op == "/"

    def test_negation(self):
        e = -U(0, 0)
        assert isinstance(e, Neg)

    def test_subtraction_order(self):
        e = 1.0 - U(0, 0)
        assert isinstance(e.lhs, Const)

    def test_as_expr_rejects_strings(self):
        with pytest.raises(ValidationError):
            as_expr("x")

    def test_field_access_validation(self):
        with pytest.raises(ValidationError):
            FieldAccess("", (0, 0))
        with pytest.raises(ValidationError):
            FieldAccess("U", (0,))
        with pytest.raises(ValidationError):
            FieldAccess("U", (0, 0), component=-1)

    def test_binop_rejects_bad_operator(self):
        with pytest.raises(ValidationError):
            BinOp("%", Const(1), Const(2))

    def test_coef_rejects_empty_name(self):
        with pytest.raises(ValidationError):
            Coef("")

    def test_hashable_and_equal(self):
        assert U(1, 0) == FieldAccess("U", (1, 0))
        assert hash(Const(1.0)) == hash(Const(1))


class TestTraversal:
    def test_walk_visits_all_nodes(self):
        e = Coef("a") * U(-1, 0) + Const(2.0)
        kinds = [type(n).__name__ for n in walk(e)]
        assert kinds.count("BinOp") == 2
        assert "Coef" in kinds and "FieldAccess" in kinds and "Const" in kinds

    def test_field_accesses_in_order(self):
        e = U(-1, 0) + U(1, 0)
        offs = [a.offset for a in field_accesses(e)]
        assert offs == [(-1, 0), (1, 0)]

    def test_field_names_and_coefficients(self):
        e = Coef("k1") * FieldAccess("A", (0, 0)) + FieldAccess("B", (1, 0))
        assert field_names(e) == {"A", "B"}
        assert coefficient_names(e) == {"k1"}


class TestOpCounts:
    def test_poisson_counts(self):
        # eq. (16): 4 adds, 2 muls -> Gdsp 14 with add=2/mul=3
        e = Const(0.125) * (U(-1, 0) + U(1, 0) + U(0, -1) + U(0, 1)) + Const(0.5) * U(0, 0)
        ops = count_ops(e)
        assert (ops.adds, ops.muls, ops.divs) == (4, 2, 0)
        assert ops.total == 6

    def test_division_counted(self):
        ops = count_ops(U(0, 0) / 3.0)
        assert ops.divs == 1

    def test_negation_free(self):
        ops = count_ops(-U(0, 0))
        assert ops.total == 0

    def test_opcounts_add(self):
        from repro.stencil.expr import OpCounts

        total = OpCounts(1, 2, 3) + OpCounts(4, 5, 6)
        assert (total.adds, total.muls, total.divs) == (5, 7, 9)
        assert total.flops == 21


class TestStr:
    def test_readable_repr(self):
        e = Coef("a") * U(-1, 0)
        s = str(e)
        assert "a" in s and "U[-1,+0]" in s

    def test_component_suffix(self):
        assert str(FieldAccess("Y", (0, 0, 0), 3)).endswith(".3")
