"""Unit tests for the declarative parameter space."""

import random

import pytest

from repro.arch.device import ALVEO_U250, ALVEO_U280
from repro.dse.space import Parameter, ParameterSpace, config_key, model_space
from repro.model.design import Workload
from repro.util.errors import ValidationError


@pytest.fixture
def space():
    return ParameterSpace(
        [
            Parameter("memory", ("HBM", "DDR4")),
            Parameter("V", (1, 2, 4)),
            Parameter("p", (1, 2, 3, 4, 5)),
        ]
    )


class TestParameter:
    def test_rejects_empty_values(self):
        with pytest.raises(ValidationError):
            Parameter("x", ())

    def test_rejects_duplicates(self):
        with pytest.raises(ValidationError):
            Parameter("x", (1, 1))

    def test_index_of_unknown_value(self):
        with pytest.raises(ValidationError):
            Parameter("x", (1, 2)).index_of(3)


class TestParameterSpace:
    def test_size(self, space):
        assert space.size == 2 * 3 * 5

    def test_grid_enumerates_every_config_once(self, space):
        seen = {config_key(c) for c in space.grid()}
        assert len(seen) == space.size

    def test_index_roundtrip(self, space):
        for i in range(space.size):
            assert space.index_of(space.config_at(i)) == i

    def test_validate_rejects_missing_axis(self, space):
        with pytest.raises(ValidationError):
            space.validate({"memory": "HBM", "V": 1})

    def test_validate_rejects_off_grid_value(self, space):
        with pytest.raises(ValidationError):
            space.validate({"memory": "HBM", "V": 3, "p": 1})

    def test_sample_is_on_grid(self, space):
        rng = random.Random(7)
        for _ in range(50):
            space.validate(space.sample(rng))

    def test_neighbor_moves_exactly_one_axis(self, space):
        rng = random.Random(3)
        config = {"memory": "HBM", "V": 2, "p": 3}
        for _ in range(50):
            moved = space.neighbor(config, rng)
            space.validate(moved)
            diffs = [k for k in config if config[k] != moved[k]]
            assert len(diffs) == 1

    def test_neighbor_on_singular_space_is_identity(self):
        single = ParameterSpace([Parameter("a", (1,)), Parameter("b", ("x",))])
        rng = random.Random(0)
        assert single.neighbor({"a": 1, "b": "x"}, rng) == {"a": 1, "b": "x"}

    def test_fixed_collapses_axis(self, space):
        pinned = space.fixed(memory="DDR4")
        assert pinned.size == space.size // 2
        assert all(c["memory"] == "DDR4" for c in pinned.grid())

    def test_fixed_rejects_unknown_axis(self, space):
        with pytest.raises(ValidationError):
            space.fixed(bogus=1)

    def test_with_parameter_appends(self, space):
        bigger = space.with_parameter(Parameter("boards", (1, 2)))
        assert bigger.size == space.size * 2

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValidationError):
            ParameterSpace([Parameter("a", (1,)), Parameter("a", (2,))])


class TestModelSpace:
    def test_axes_and_defaults(self, jacobi_app):
        program = jacobi_app.program_on((64, 64, 64))
        workload = Workload(program.mesh, 100)
        space = model_space(program, ALVEO_U280, workload)
        assert set(space.names) == {"memory", "V", "p", "tiled"}
        assert space["tiled"].values == (False,)
        assert set(space["memory"].values) == {"HBM", "DDR4"}
        # V axis is powers of two starting at 1
        assert space["V"].values[0] == 1
        assert all(v & (v - 1) == 0 for v in space["V"].values)

    def test_boards_axis_optional(self, jacobi_app):
        program = jacobi_app.program_on((64, 64, 64))
        workload = Workload(program.mesh, 100)
        space = model_space(program, ALVEO_U280, workload, boards=(1, 2, 4))
        assert space["boards"].values == (1, 2, 4)

    def test_memory_subset(self, jacobi_app):
        program = jacobi_app.program_on((64, 64, 64))
        workload = Workload(program.mesh, 100)
        space = model_space(program, ALVEO_U280, workload, memories=("HBM",))
        assert space["memory"].values == ("HBM",)

    def test_ddr_only_device(self, jacobi_app):
        program = jacobi_app.program_on((64, 64, 64))
        workload = Workload(program.mesh, 100)
        space = model_space(program, ALVEO_U250, workload)
        assert space["memory"].values == ("DDR4",)

    def test_unknown_memory_rejected(self, jacobi_app):
        program = jacobi_app.program_on((64, 64, 64))
        workload = Workload(program.mesh, 100)
        with pytest.raises(ValidationError):
            model_space(program, ALVEO_U250, workload, memories=("HBM",))

    def test_batch_axis_optional(self, jacobi_app):
        program = jacobi_app.program_on((64, 64, 64))
        workload = Workload(program.mesh, 100)
        space = model_space(program, ALVEO_U280, workload, batches=(1, 4, 16))
        assert space["batch"].values == (1, 4, 16)
        assert "batch" not in model_space(program, ALVEO_U280, workload)
        with pytest.raises(ValidationError):
            model_space(program, ALVEO_U280, workload, batches=(0, 4))
