"""Unit tests for vector padding and AXI alignment."""

import numpy as np
import pytest

from repro.mesh.mesh import Field, MeshSpec
from repro.mesh.padding import (
    AXI_ALIGN_BYTES,
    aligned_row_bytes,
    pad_to_vector,
    padded_row_length,
    unpad_from_vector,
)


class TestPaddedRowLength:
    def test_multiple_unchanged(self):
        assert padded_row_length(200, 8) == 200

    def test_pads_up(self):
        assert padded_row_length(201, 8) == 208

    def test_v1_never_pads(self):
        assert padded_row_length(37, 1) == 37


class TestAlignedRowBytes:
    def test_512bit_alignment(self):
        assert AXI_ALIGN_BYTES == 64
        assert aligned_row_bytes(16, 4) == 64
        assert aligned_row_bytes(17, 4) == 128

    def test_rtm_vector_rows(self):
        # 32 elements of 24 bytes = 768 B, already 64-aligned
        assert aligned_row_bytes(32, 24) == 768


class TestPadUnpadRoundtrip:
    def test_roundtrip_2d(self):
        spec = MeshSpec((10, 4))
        f = Field.random("U", spec, seed=1)
        padded = pad_to_vector(f, 8)
        assert padded.spec.m == 16
        restored = unpad_from_vector(padded, 10)
        assert np.array_equal(restored.data, f.data)

    def test_padding_cells_filled(self):
        spec = MeshSpec((5, 2))
        f = Field.full("U", spec, 3.0)
        padded = pad_to_vector(f, 4, fill=-1.0)
        assert padded.spec.m == 8
        assert np.all(padded.data[:, 5:, 0] == -1.0)

    def test_no_copy_semantics_when_aligned(self):
        spec = MeshSpec((8, 2))
        f = Field.random("U", spec, seed=2)
        padded = pad_to_vector(f, 8)
        assert padded.spec == f.spec
        padded.data[0, 0, 0] += 1
        assert f.data[0, 0, 0] != padded.data[0, 0, 0]  # still a copy

    def test_unpad_rejects_larger(self):
        f = Field.zeros("U", MeshSpec((8, 2)))
        with pytest.raises(ValueError):
            unpad_from_vector(f, 16)

    def test_3d_pad(self):
        spec = MeshSpec((6, 3, 2), components=2)
        f = Field.random("Y", spec, seed=3)
        padded = pad_to_vector(f, 4)
        assert padded.spec.shape == (8, 3, 2)
        assert padded.spec.components == 2
