"""Unit tests for SLR floorplanning heuristics."""

import pytest

from repro.arch.device import ALVEO_U280
from repro.arch.floorplan import SLRFloorplan
from repro.util.errors import ValidationError


class TestRTMFloorplan:
    def test_one_module_per_slr(self):
        # RTM: V=1, Gdsp=2444 per module -> each module fits one SLR
        plan = SLRFloorplan(ALVEO_U280, modules=3, module_dsp=2444, module_mem_bytes=4 * 2**20)
        assert plan.module_fits_one_slr
        assert plan.modules_per_slr == 1
        assert plan.slrs_used == 3
        assert plan.slr_crossings == 2

    def test_v2_would_not_fit(self):
        # doubling V doubles the module DSP beyond one SLR's 2830
        plan = SLRFloorplan(ALVEO_U280, modules=3, module_dsp=4888, module_mem_bytes=0)
        assert not plan.module_fits_one_slr


class TestPacking:
    def test_small_modules_pack_into_one_slr(self):
        plan = SLRFloorplan(ALVEO_U280, modules=10, module_dsp=112, module_mem_bytes=1024)
        assert plan.modules_per_slr >= 10
        assert plan.slr_crossings == 0
        assert plan.slrs_used == 1

    def test_poisson_design_spans_slrs(self):
        # 60 modules of V=8*Gdsp=14 -> 112 DSP each: 6720 total > 2 SLRs
        plan = SLRFloorplan(ALVEO_U280, modules=60, module_dsp=112, module_mem_bytes=3200)
        assert plan.slrs_used >= 3
        assert plan.slr_crossings == 2

    def test_straddling_module_pessimistic(self):
        plan = SLRFloorplan(ALVEO_U280, modules=2, module_dsp=9000, module_mem_bytes=0)
        assert plan.modules_per_slr == 0
        assert plan.slr_crossings == 2

    def test_zero_resource_modules(self):
        plan = SLRFloorplan(ALVEO_U280, modules=5, module_dsp=0, module_mem_bytes=0)
        assert plan.slr_crossings == 0

    def test_validation(self):
        with pytest.raises(ValidationError):
            SLRFloorplan(ALVEO_U280, modules=0, module_dsp=1, module_mem_bytes=1)
        with pytest.raises(ValidationError):
            SLRFloorplan(ALVEO_U280, modules=1, module_dsp=-1, module_mem_bytes=1)
