"""Unit tests for Pareto-dominance accounting."""

import pytest

from repro.dse.objectives import BANDWIDTH, ENERGY, RUNTIME
from repro.dse.pareto import ParetoFront, dominates
from repro.util.errors import ValidationError


class TestDominates:
    def test_strictly_better(self):
        assert dominates((1.0, 1.0), (2.0, 2.0))

    def test_better_in_one_equal_in_other(self):
        assert dominates((1.0, 2.0), (2.0, 2.0))

    def test_equal_does_not_dominate(self):
        assert not dominates((1.0, 1.0), (1.0, 1.0))

    def test_tradeoff_does_not_dominate(self):
        assert not dominates((1.0, 3.0), (2.0, 2.0))
        assert not dominates((2.0, 2.0), (1.0, 3.0))

    def test_rank_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            dominates((1.0,), (1.0, 2.0))


class TestParetoFront:
    def test_needs_objectives(self):
        with pytest.raises(ValidationError):
            ParetoFront(())

    def test_single_objective_keeps_only_best(self):
        front = ParetoFront((RUNTIME,))
        assert front.add({"runtime": 2.0})
        assert not front.add({"runtime": 3.0})  # dominated
        assert front.add({"runtime": 1.0})  # evicts the incumbent
        assert len(front) == 1
        assert front.members[0].values["runtime"] == 1.0
        assert front.evicted == 1
        assert front.rejected == 1
        assert front.considered == 3

    def test_tradeoffs_coexist(self):
        front = ParetoFront((RUNTIME, ENERGY))
        assert front.add({"runtime": 1.0, "energy": 10.0})
        assert front.add({"runtime": 2.0, "energy": 5.0})
        assert len(front) == 2

    def test_maximized_objective_is_folded(self):
        front = ParetoFront((RUNTIME, BANDWIDTH))
        front.add({"runtime": 1.0, "bandwidth": 100.0})
        # slower AND less bandwidth: dominated even though bandwidth is "max"
        assert not front.add({"runtime": 2.0, "bandwidth": 50.0})
        # slower but more bandwidth: a genuine trade-off
        assert front.add({"runtime": 2.0, "bandwidth": 200.0})

    def test_duplicate_vector_rejected(self):
        front = ParetoFront((RUNTIME,))
        front.add({"runtime": 1.0}, payload="first")
        assert not front.add({"runtime": 1.0}, payload="second")
        assert front.members[0].payload == "first"

    def test_missing_objective_value_rejected(self):
        front = ParetoFront((RUNTIME, ENERGY))
        with pytest.raises(ValidationError):
            front.add({"runtime": 1.0})

    def test_dominating_point_evicts_several(self):
        front = ParetoFront((RUNTIME, ENERGY))
        front.add({"runtime": 2.0, "energy": 3.0})
        front.add({"runtime": 3.0, "energy": 2.0})
        assert front.add({"runtime": 1.0, "energy": 1.0})
        assert len(front) == 1
        assert front.evicted == 2

    def test_dominated_by_front_query(self):
        front = ParetoFront((RUNTIME,))
        front.add({"runtime": 1.0})
        assert front.dominated_by_front({"runtime": 2.0})
        assert not front.dominated_by_front({"runtime": 0.5})
