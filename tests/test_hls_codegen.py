"""Unit tests for the HLS C++ code generator."""

import pytest

from repro.apps.jacobi3d import jacobi3d_app
from repro.apps.poisson2d import poisson2d_app
from repro.apps.rtm import rtm_app
from repro.hls.cexpr import c_expr, c_type_for
from repro.hls.codegen import HLSKernelGenerator
from repro.hls.host import generate_connectivity, generate_host, generate_makefile
from repro.hls.project import HLSProject
from repro.stencil.expr import Coef, Const, FieldAccess
from repro.util.errors import ValidationError


def _balanced(text: str) -> bool:
    return text.count("{") == text.count("}") and text.count("(") == text.count(")")


class TestCExpr:
    def test_window_indexing_2d(self):
        e = FieldAccess("U", (-1, 0))
        assert c_expr(e, (1, 1)) == "win_U[1][0].v[0]"

    def test_window_indexing_3d(self):
        e = FieldAccess("Y", (0, 1, -2), component=3)
        # radius (4,4,4): z index 4-2=2, y 4+1=5, x 4
        assert c_expr(e, (4, 4, 4)) == "win_Y[2][5][4].v[3]"

    def test_coefficient_prefix(self):
        assert c_expr(Coef("dt"), (1, 1)) == "c_dt"

    def test_const_float_suffix(self):
        assert c_expr(Const(0.5), (1, 1)) == "0.5f"
        assert c_expr(Const(2.0), (1, 1)) == "2.0f"

    def test_local_register(self):
        e = FieldAccess("K1", (0, 0, 0), 2)
        out = c_expr(e, (4, 4, 4), local_fields={"K1": "reg_K1"})
        assert out == "reg_K1.v[2]"

    def test_local_nonzero_offset_rejected(self):
        e = FieldAccess("K1", (1, 0, 0))
        with pytest.raises(ValidationError):
            c_expr(e, (4, 4, 4), local_fields={"K1": "reg_K1"})

    def test_elem_type_names(self):
        assert c_type_for(1) == "elem1_t"
        assert c_type_for(6) == "elem6_t"
        with pytest.raises(ValidationError):
            c_type_for(0)


class TestKernelGeneration:
    @pytest.fixture(params=["poisson", "jacobi", "rtm"])
    def app(self, request):
        return {
            "poisson": lambda: poisson2d_app((64, 64)),
            "jacobi": lambda: jacobi3d_app((32, 32, 32)),
            "rtm": lambda: rtm_app((16, 16, 16)),
        }[request.param]()

    def test_braces_balanced(self, app):
        code = HLSKernelGenerator(app.program, app.design()).generate()
        assert _balanced(code)

    def test_pipeline_pragma_present(self, app):
        code = HLSKernelGenerator(app.program, app.design()).generate()
        assert "#pragma HLS PIPELINE II=1" in code

    def test_dataflow_region(self, app):
        code = HLSKernelGenerator(app.program, app.design()).generate()
        assert "#pragma HLS DATAFLOW" in code

    def test_one_stage_per_kernel(self, app):
        code = HLSKernelGenerator(app.program, app.design()).generate()
        for kernel in app.program.kernels():
            assert f"void stage_{kernel.name}(" in code

    def test_p_module_instances(self, app):
        code = HLSKernelGenerator(app.program, app.design()).generate()
        assert code.count("compute_module(") >= app.design().p

    def test_axi_interfaces_per_external_field(self, app):
        code = HLSKernelGenerator(app.program, app.design()).generate()
        for f in app.program.external_reads():
            assert f"gmem_{f}_in" in code
        for f in app.program.external_writes():
            assert f"gmem_{f}_out" in code

    def test_uram_binding_for_window_buffers(self, app):
        code = HLSKernelGenerator(app.program, app.design()).generate()
        assert "impl=uram" in code


class TestRTMSpecifics:
    def test_vector_element_struct(self):
        app = rtm_app((16, 16, 16))
        code = HLSKernelGenerator(app.program, app.design()).generate()
        assert "struct elem6_t { float v[6]; };" in code

    def test_coefficients_emitted(self):
        app = rtm_app((16, 16, 16))
        code = HLSKernelGenerator(app.program, app.design()).generate()
        assert "static const float c_dt" in code
        assert "static const float c_l0" in code

    def test_intermediate_fifos(self):
        app = rtm_app((16, 16, 16))
        code = HLSKernelGenerator(app.program, app.design()).generate()
        for f in ("K1", "K2", "K3", "T"):
            assert f"s_{f}_fifo" in code


class TestHostAndConfig:
    def test_host_compilable_shape(self, poisson_app):
        host = generate_host(poisson_app.program, poisson_app.design())
        assert _balanced(host)
        assert "enqueueTask" in host
        assert "stencil_top" in host

    def test_host_unroll_constant(self, poisson_app):
        host = generate_host(poisson_app.program, poisson_app.design())
        assert "const int P = 60;" in host

    def test_connectivity_maps_channels(self, poisson_app):
        cfg = generate_connectivity(poisson_app.program, poisson_app.design())
        assert "sp=stencil_top_1.gmem_U_in:HBM[0]" in cfg
        assert "sp=stencil_top_1.gmem_U_out:HBM[1]" in cfg

    def test_connectivity_ddr4(self, poisson_app):
        design = poisson_app.design(tile=(8000,))
        cfg = generate_connectivity(poisson_app.program, design)
        assert "DDR[" in cfg

    def test_makefile_frequency(self, poisson_app):
        mk = generate_makefile(poisson_app.program, poisson_app.design())
        assert "FREQ_KHZ = 250000" in mk
        assert "v++" in mk


class TestProject:
    def test_generate_all_files(self, poisson_app):
        proj = HLSProject(poisson_app.program, poisson_app.design())
        files = proj.generate()
        assert set(files) == {"kernel.cpp", "host.cpp", "connectivity.cfg", "Makefile"}

    def test_write_to_disk(self, tmp_path, poisson_app):
        proj = HLSProject(poisson_app.program, poisson_app.design())
        written = proj.write_to(tmp_path)
        assert len(written) == 4
        for path in written:
            assert path.exists() and path.stat().st_size > 0
