"""Tests for the async serving layer (repro.serve.server).

Covers the ISSUE's acceptance surface: bit-identical results through the
coalescing path, deterministic overload rejection with exactly-once
resolution and leak-free drain, deadline shedding, queued/in-flight
cancellation, blocking admission, the breaker trip -> half-open -> recover
cycle under a deterministic crash plan, and a Hypothesis-driven
deadline/cancel race in which every job resolves exactly once.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import observability as obs
from repro.dataflow.scheduler import MixScheduler
from repro.parallel.shm import live_segments
from repro.resilience import ExecutionCancelled, FaultPlan, RetryPolicy
from repro.serve import (
    DeadlineExceeded,
    QueueFullError,
    Server,
    ServerClosedError,
    ServerConfig,
)
from repro.util.errors import ValidationError
from repro.workload import WorkloadSpec

pytestmark = pytest.mark.filterwarnings("ignore::pytest.PytestUnraisableExceptionWarning")


@pytest.fixture(autouse=True)
def _fresh_observability():
    obs.enable(fresh=True)
    obs.disable()
    yield


def _serve(coro):
    return asyncio.run(coro)


def _assert_envs_equal(got, want):
    assert set(got) == set(want)
    for name in want:
        np.testing.assert_array_equal(got[name].data, want[name].data)


class TestResults:
    def test_coalesced_results_bit_identical_to_direct_run(self):
        """Three batch-1 submits of one job key coalesce into one stacked
        dispatch whose slices match a direct merged scheduler run."""
        spec = WorkloadSpec.parse("poisson2d:16x12:12")

        async def _run():
            config = ServerConfig(
                engine="compiled", batch_window=0.02, validate=True
            )
            async with Server(config) as server:
                handles = [await server.submit(spec) for _ in range(3)]
                return [await h for h in handles]

        per_job = _serve(_run())
        merged = WorkloadSpec.of("poisson2d", (16, 12), 12, batch=3)
        golden = MixScheduler(engine="compiled", seed=0).run([merged])
        want = list(golden.groups[0].results)
        assert [len(chunk) for chunk in per_job] == [1, 1, 1]
        for index, chunk in enumerate(per_job):
            _assert_envs_equal(chunk[0], want[index])

    def test_mixed_job_keys_all_complete(self):
        async def _run():
            config = ServerConfig(engine="compiled", batch_window=0.005)
            async with Server(config) as server:
                handles = [
                    await server.submit(text)
                    for text in (
                        "poisson2d:16x12:10",
                        "jacobi3d:10x10x6:8x2",
                        "poisson2d:16x12:10",
                        "poisson2d:12x10:6",
                    )
                ]
                results = [await h for h in handles]
                health = server.health()
            return results, health

        results, health = _serve(_run())
        assert [len(r) for r in results] == [1, 2, 1, 1]
        assert health["jobs"]["completed"] == 4
        assert health["jobs"]["failed"] == 0
        assert health["outstanding_jobs"] == 0

    def test_string_and_spec_submits_are_equivalent(self):
        async def _run():
            async with Server(ServerConfig(engine="compiled")) as server:
                # await the first before submitting the second so each runs
                # as its own batch-1 dispatch with the same seeded mesh
                a = await (await server.submit("poisson2d:12x10:6"))
                b = await (
                    await server.submit(WorkloadSpec.of("poisson2d", (12, 10), 6))
                )
                return a, b

        got_a, got_b = _serve(_run())
        _assert_envs_equal(got_a[0], got_b[0])


class TestOverload:
    def test_reject_is_deterministic_and_drain_is_leak_free(self):
        """The ISSUE's overload acceptance: a bounded queue rejects the
        overflow deterministically, every job resolves exactly once, and
        close(drain=True) leaves no shm segment and no open span."""
        offered = 12
        depth = 2

        async def _run():
            obs.enable(fresh=True)
            config = ServerConfig(
                engine="compiled", queue_depth=depth, batch_window=0.005
            )
            server = Server(config)
            handles, rejected = [], 0
            # back-to-back submits with no awaited suspension in between:
            # exactly `depth` fit, the rest must reject
            for _ in range(offered):
                try:
                    handles.append(await server.submit("poisson2d:16x12:10"))
                except QueueFullError:
                    rejected += 1
            results = [await h for h in handles]
            await server.close(drain=True)
            return server, rejected, results

        server, rejected, results = _serve(_run())
        try:
            assert rejected == offered - depth
            assert len(results) == depth
            health = server.health()
            assert health["state"] == "closed"
            assert health["jobs"]["admitted"] == depth
            assert health["jobs"]["rejected"] == rejected
            assert health["jobs"]["completed"] == depth
            assert health["outstanding_jobs"] == 0
            assert health["inflight_groups"] == 0
            assert live_segments() == ()
            assert obs.tracer().current_span_id() is None
            kinds = obs.ring_sink().kinds()
            assert kinds.count("serve.job_rejected") == rejected
            assert "serve.drain_begin" in kinds
            assert "serve.closed" in kinds
        finally:
            obs.disable()

    def test_per_tenant_bounds_are_independent(self):
        async def _run():
            config = ServerConfig(
                engine="compiled", queue_depth=1, batch_window=0.05
            )
            async with Server(config) as server:
                first = await server.submit("poisson2d:12x10:6", tenant="a")
                with pytest.raises(QueueFullError):
                    await server.submit("poisson2d:12x10:6", tenant="a")
                other = await server.submit("poisson2d:12x10:6", tenant="b")
                await first
                await other
                return server.health()

        health = _serve(_run())
        assert health["jobs"]["rejected"] == 1
        assert health["jobs"]["completed"] == 2


class TestDeadlines:
    def test_queued_job_past_deadline_is_shed_without_executing(self):
        async def _run():
            # a batch window far longer than the deadline keeps the job
            # queued until the monitor sheds it
            config = ServerConfig(
                engine="compiled", batch_window=0.5, monitor_interval=0.005
            )
            async with Server(config) as server:
                handle = await server.submit(
                    "poisson2d:16x12:10", deadline=0.03
                )
                with pytest.raises(DeadlineExceeded):
                    await handle
                return server.health()

        health = _serve(_run())
        assert health["jobs"]["shed"] == 1
        assert health["jobs"]["completed"] == 0

    def test_deadline_must_be_positive(self):
        async def _run():
            async with Server(ServerConfig(engine="compiled")) as server:
                with pytest.raises(ValidationError):
                    await server.submit("poisson2d:12x10:6", deadline=0.0)

        _serve(_run())


class TestCancellation:
    def test_cancel_queued_job(self):
        async def _run():
            config = ServerConfig(engine="compiled", batch_window=0.5)
            async with Server(config) as server:
                handle = await server.submit("poisson2d:16x12:10")
                assert handle.cancel("changed my mind")
                assert not handle.cancel()  # already resolved
                with pytest.raises(asyncio.CancelledError):
                    await handle
                return server.health()

        health = _serve(_run())
        assert health["jobs"]["cancelled"] == 1
        assert health["jobs"]["completed"] == 0

    def test_cancel_inflight_job_cancels_its_batch(self):
        async def _run():
            # tiny stacking budget -> many chunk boundaries -> the worker
            # thread sees the batch token quickly
            config = ServerConfig(
                engine="compiled",
                batch_window=0.001,
                monitor_interval=0.005,
                stacked_bytes_limit=8_192,
            )
            async with Server(config) as server:
                handle = await server.submit("jacobi3d:12x12x8:200x2")
                while not server._inflight:
                    await asyncio.sleep(0.001)
                group = next(iter(server._inflight))
                assert handle.cancel("mid-flight")
                with pytest.raises(asyncio.CancelledError):
                    await handle
                # the reaped group token is what stops the worker thread
                assert group.token.is_set()
                health = server.health()
            return health

        health = _serve(_run())
        assert health["jobs"]["cancelled"] == 1
        assert live_segments() == ()


class TestAdmissionBlock:
    def test_block_admission_waits_for_space(self):
        async def _run():
            config = ServerConfig(
                engine="compiled",
                queue_depth=1,
                admission="block",
                batch_window=0.002,
                monitor_interval=0.005,
            )
            async with Server(config) as server:
                first = await server.submit("poisson2d:16x12:10")
                # the queue is full; this submit must wait until the loop
                # drains the first job, then be admitted, not rejected
                second = await asyncio.wait_for(
                    server.submit("poisson2d:16x12:10"), timeout=5.0
                )
                await first
                await second
                return server.health()

        health = _serve(_run())
        assert health["jobs"]["admitted"] == 2
        assert health["jobs"]["rejected"] == 0
        assert health["jobs"]["completed"] == 2

    def test_blocked_submit_wakes_on_close(self):
        """A submitter parked for queue space is event-woken by close —
        no poll cadence — and raises ServerClosedError."""

        async def _run():
            config = ServerConfig(
                engine="compiled",
                queue_depth=1,
                admission="block",
                batch_window=5.0,  # the queued job never dispatches
            )
            server = Server(config)
            first = await server.submit("poisson2d:12x10:6")
            blocked = asyncio.ensure_future(server.submit("poisson2d:12x10:6"))
            await asyncio.sleep(0.05)
            assert not blocked.done()
            await asyncio.wait_for(server.close(drain=False), timeout=2.0)
            with pytest.raises(ServerClosedError):
                await blocked
            with pytest.raises(asyncio.CancelledError):
                await first

        _serve(_run())

    def test_blocked_submit_is_bounded_by_its_deadline(self):
        """A blocked submitter whose deadline passes while it waits for
        space resolves DeadlineExceeded at the deadline, not at the next
        space signal."""

        async def _run():
            config = ServerConfig(
                engine="compiled",
                queue_depth=1,
                admission="block",
                batch_window=5.0,
            )
            server = Server(config)
            try:
                await server.submit("poisson2d:12x10:6")
                with pytest.raises(DeadlineExceeded):
                    await asyncio.wait_for(
                        server.submit("poisson2d:12x10:6", deadline=0.05),
                        timeout=2.0,
                    )
                return server.health()
            finally:
                await server.close(drain=False)

        health = _serve(_run())
        assert health["jobs"]["shed"] == 1


class TestDispatchRaces:
    def test_cancel_in_dequeue_gap_keeps_sibling_slices_aligned(self):
        """A cancel landing between the dequeue tick and the group body
        must not shift sibling jobs' result slices: offsets are accounted
        over the specs actually dispatched, not the original group."""
        spec = "poisson2d:16x12:12"

        async def _run():
            config = ServerConfig(
                engine="compiled", batch_window=0.2, validate=True
            )
            async with Server(config) as server:
                handles = [await server.submit(spec) for _ in range(3)]
                # reproduce the gap: pull the tick ourselves while the
                # batching loop sleeps its window, cancel a picked job,
                # then run the group body exactly as the loop would
                jobs = server._dequeue_tick()
                assert len(jobs) == 3
                assert handles[0].cancel("raced the dispatch")
                await server._run_group(jobs)
                with pytest.raises(asyncio.CancelledError):
                    await handles[0]
                return [await h for h in handles[1:]]

        per_job = _serve(_run())
        merged = WorkloadSpec.of("poisson2d", (16, 12), 12, batch=2)
        golden = MixScheduler(engine="compiled", seed=0).run([merged])
        want = list(golden.groups[0].results)
        assert [len(chunk) for chunk in per_job] == [1, 1]
        for index, chunk in enumerate(per_job):
            _assert_envs_equal(chunk[0], want[index])

    def test_cancelled_probe_dispatch_releases_the_probe_slot(self):
        """A probe whose dispatch dies ExecutionCancelled must release the
        half-open slot; otherwise the breaker wedges and the parallel
        backend can never recover."""

        class _CancelledScheduler:
            def run(self, specs, validate, cancel):
                raise ExecutionCancelled("every member job died mid-probe")

        async def _run():
            config = ServerConfig(
                engine="parallel",
                batch_window=0.005,
                failure_threshold=1,
                reset_timeout=0.01,
            )
            server = Server(config)
            try:
                server._schedulers["parallel"] = _CancelledScheduler()
                server.breaker.record_failure()  # threshold 1: trips open
                await asyncio.sleep(0.02)  # past reset_timeout
                assert server.breaker.state == "half_open"
                handle = await server.submit("poisson2d:12x10:6")
                with pytest.raises(asyncio.CancelledError):
                    await handle
                assert server.breaker.state == "half_open"
                assert server.breaker.begin_probe()  # slot free, not leaked
                server.breaker.abort_probe()
            finally:
                await server.close(drain=False)

        _serve(_run())

    def test_internal_error_fails_the_tick_and_the_loop_survives(self):
        """An exception escaping a group dispatch resolves that tick's
        jobs with the error instead of wedging the batching loop; the
        next submit is served normally."""

        async def _run():
            config = ServerConfig(engine="compiled", batch_window=0.005)
            async with Server(config) as server:
                real = server._run_group

                async def _broken_group(jobs):
                    raise RuntimeError("injected dispatch bug")

                server._run_group = _broken_group
                handle = await server.submit("poisson2d:12x10:6")
                with pytest.raises(RuntimeError, match="injected dispatch bug"):
                    await asyncio.wait_for(handle.result(), timeout=5.0)
                server._run_group = real
                result = await asyncio.wait_for(
                    (await server.submit("poisson2d:12x10:6")).result(),
                    timeout=5.0,
                )
                assert len(result) == 1
                return server.health()

        health = _serve(_run())
        assert health["jobs"]["failed"] == 1
        assert health["jobs"]["completed"] == 1
        assert health["outstanding_jobs"] == 0


class TestLifecycle:
    def test_closed_server_rejects_submits(self):
        async def _run():
            server = Server(ServerConfig(engine="compiled"))
            handle = await server.submit("poisson2d:12x10:6")
            await handle
            await server.close()
            with pytest.raises(ServerClosedError):
                await server.submit("poisson2d:12x10:6")
            await server.close()  # idempotent

        _serve(_run())

    def test_close_without_drain_cancels_queued_jobs(self):
        async def _run():
            config = ServerConfig(engine="compiled", batch_window=0.5)
            server = Server(config)
            handles = [
                await server.submit("poisson2d:16x12:10") for _ in range(3)
            ]
            await server.close(drain=False)
            outcomes = []
            for handle in handles:
                try:
                    await handle
                    outcomes.append("ok")
                except asyncio.CancelledError:
                    outcomes.append("cancelled")
            return outcomes, server.health()

        outcomes, health = _serve(_run())
        assert outcomes == ["cancelled"] * 3
        assert health["state"] == "closed"
        assert health["outstanding_jobs"] == 0
        assert live_segments() == ()

    def test_server_is_bound_to_one_loop(self):
        server = Server(ServerConfig(engine="compiled"))

        async def _first():
            handle = await server.submit("poisson2d:12x10:6")
            await handle

        asyncio.run(_first())

        async def _second():
            with pytest.raises(ValidationError):
                await server.submit("poisson2d:12x10:6")

        asyncio.run(_second())


class TestCircuitBreaker:
    def test_trip_half_open_recover_cycle_under_crash_plan(self):
        """The ISSUE's breaker acceptance: two planned chunk crashes trip
        the breaker twice (the second on the half-open probe); degraded
        dispatches still serve bit-identical results (validate=True reruns
        every mesh on the golden interpreter); the third parallel dispatch
        probes clean and closes the breaker."""

        async def _run():
            obs.enable(fresh=True)
            config = ServerConfig(
                engine="parallel",
                max_workers=2,
                failure_threshold=1,
                reset_timeout=0.2,
                batch_window=0.002,
                validate=True,
                retry_policy=RetryPolicy.disabled(),
                fault_plan=FaultPlan.parse("crash@0x2"),
            )
            async with Server(config) as server:
                states = []
                results = []
                # dispatch 1: chunk 0 crashes -> trip -> serial rerun
                results.append(await (await server.submit("poisson2d:16x12:10x2")))
                states.append(server.breaker.state)
                # breaker open: this dispatch degrades to serial up front
                results.append(await (await server.submit("poisson2d:16x12:10x2")))
                await asyncio.sleep(config.reset_timeout + 0.05)
                # dispatch on the half-open probe: second crash re-trips
                results.append(await (await server.submit("poisson2d:16x12:10x2")))
                states.append(server.breaker.state)
                await asyncio.sleep(config.reset_timeout + 0.05)
                # probe again: the plan is spent, the probe succeeds
                results.append(await (await server.submit("poisson2d:16x12:10x2")))
                states.append(server.breaker.state)
                health = server.health()
            return server, states, results, health

        server, states, results, health = _serve(_run())
        try:
            assert states == ["open", "open", "closed"]
            assert server.breaker.trips == 2
            assert all(len(r) == 2 for r in results)
            # every job served, none failed, and the open-breaker window
            # plus the post-failure reruns went through the serial engine
            assert health["jobs"]["completed"] == 4
            assert health["jobs"]["failed"] == 0
            assert health["jobs"]["degraded"] >= 3
            assert live_segments() == ()
            breaker_kinds = [
                k for k in obs.ring_sink().kinds()
                if k.startswith("serve.breaker")
            ]
            assert breaker_kinds == [
                "serve.breaker_open",
                "serve.breaker_half_open",
                "serve.breaker_open",
                "serve.breaker_half_open",
                "serve.breaker_closed",
            ]
            assert obs.ring_sink().of_kind("serve.group_parallel_failure")
        finally:
            obs.disable()

    def test_breaker_results_match_healthy_run(self):
        """Results served through trip/degrade/recover are bit-identical
        to the same submission order on a healthy serial server."""

        async def _drive(config):
            async with Server(config) as server:
                handles = [
                    await server.submit("poisson2d:14x12:8x2")
                    for _ in range(2)
                ]
                return [await h for h in handles]

        faulted = _serve(
            _drive(
                ServerConfig(
                    engine="parallel",
                    max_workers=2,
                    failure_threshold=1,
                    batch_window=0.02,
                    retry_policy=RetryPolicy.disabled(),
                    fault_plan=FaultPlan.parse("crash@0"),
                )
            )
        )
        healthy = _serve(
            _drive(ServerConfig(engine="compiled", batch_window=0.02))
        )
        for got_chunk, want_chunk in zip(faulted, healthy):
            for got, want in zip(got_chunk, want_chunk):
                _assert_envs_equal(got, want)


class TestExactlyOnce:
    @settings(max_examples=10, deadline=None)
    @given(
        plans=st.lists(
            st.tuples(
                st.sampled_from(["run", "cancel", "deadline"]),
                st.floats(min_value=0.001, max_value=0.05),
            ),
            min_size=1,
            max_size=6,
        )
    )
    def test_deadline_cancel_race_resolves_every_job_exactly_once(self, plans):
        """Satellite 3: under racing deadlines and client cancels every
        job resolves exactly once — results, DeadlineExceeded, or
        CancelledError — and completed results stay bit-identical to the
        interpreter (validate=True)."""

        async def _run():
            config = ServerConfig(
                engine="compiled",
                batch_window=0.01,
                monitor_interval=0.003,
                validate=True,
            )
            async with Server(config) as server:
                handles = []
                for action, delay in plans:
                    handle = await server.submit(
                        "poisson2d:12x10:8",
                        deadline=delay if action == "deadline" else None,
                    )
                    handles.append((handle, action, delay))

                async def _cancel_later(handle, delay):
                    await asyncio.sleep(delay)
                    handle.cancel("race")

                cancels = [
                    asyncio.ensure_future(_cancel_later(h, d))
                    for h, a, d in handles
                    if a == "cancel"
                ]
                outcomes = []
                for handle, _action, _delay in handles:
                    try:
                        result = await handle
                        assert len(result) == 1
                        outcomes.append("ok")
                    except DeadlineExceeded:
                        outcomes.append("shed")
                    except asyncio.CancelledError:
                        outcomes.append("cancelled")
                await asyncio.gather(*cancels, return_exceptions=True)
                health = server.health()
            return outcomes, health

        outcomes, health = _serve(_run())
        assert len(outcomes) == len(plans)  # exactly one outcome per job
        assert health["outstanding_jobs"] == 0
        jobs = health["jobs"]
        assert (
            jobs["completed"] + jobs["shed"] + jobs["cancelled"]
            == len(plans)
        )
        assert jobs["completed"] == outcomes.count("ok")
        assert jobs["shed"] == outcomes.count("shed")
        assert jobs["cancelled"] == outcomes.count("cancelled")
        assert live_segments() == ()
