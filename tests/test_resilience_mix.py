"""Partial-failure semantics at the mix layer: isolate, don't abort.

A live job population must survive one bad workload. ``strict=False``
turns a group failure into a :class:`GroupError` record on
``MixRunResult.errors`` while the neighbouring groups complete
bit-identically; ``strict=True`` keeps the fail-fast contract. The same
semantics surface through ``Evaluator.validate_mix`` and ``repro mix``.
"""

from __future__ import annotations

import pytest

from repro import observability as obs
from repro.arch.device import ALVEO_U280
from repro.cli import main
from repro.dataflow.scheduler import GroupError, MixScheduler
from repro.dse import ENERGY, RUNTIME, Evaluator
from repro.parallel.executor import (
    ParallelExecutionError,
    plan_token_for,
)
from repro.parallel.pool import shutdown_shared_pools
from repro.parallel.worker import CRASH_ENV
from repro.resilience import FaultPlan, RetryPolicy
from repro.util.errors import ValidationError
from repro.workload import WorkloadMix

#: two job groups with distinct plan tokens (different apps and meshes)
MIX = WorkloadMix.parse("poisson2d:20x16:2x2,jacobi3d:12x10x8:2x2")

#: no retries, no ladder: the first failure is final (fast tests)
FRAGILE = RetryPolicy(backoff_base=0.0, max_attempts=1, ladder=())


@pytest.fixture(autouse=True)
def _observability_off():
    obs.enable(fresh=True)
    obs.disable()
    yield
    obs.disable()


@pytest.fixture(scope="module", autouse=True)
def _drain_pools():
    yield
    shutdown_shared_pools()


def _token_of(spec):
    # member 0 of a group built by a seed-0 scheduler uses seed 0
    return plan_token_for(spec.program(), spec.fields(seed=0))


def _doomed_spec():
    return next(s for s in MIX.specs if s.app == "poisson2d")


class TestBestEffortIsolation:
    def test_failing_group_is_isolated_with_error_record(self):
        obs.enable()
        doomed = _doomed_spec()
        plan = FaultPlan.parse(f"crash@{_token_of(doomed)}/*x99")
        scheduler = MixScheduler(
            engine="parallel", max_workers=2, strict=False,
            retry_policy=FRAGILE, fault_plan=plan,
        )
        run = scheduler.run(MIX)
        assert not run.ok
        assert len(run.errors) == 1
        (error,) = run.errors
        assert isinstance(error, GroupError)
        assert error.spec.job_key == doomed.job_key
        assert error.attempts == 1
        assert error.backend == "thread"
        assert error.describe().startswith(error.spec.describe())
        # the healthy group still completed, with full accounting
        (survivor,) = run.groups
        assert survivor.spec.app == "jacobi3d"
        assert survivor.meshes == 2
        assert obs.metrics_registry().value(
            "mix.group_failures", engine="parallel"
        ) == 1
        assert obs.ring_sink().of_kind("mix.group_failure")

    def test_strict_run_raises_on_the_same_fault(self):
        doomed = _doomed_spec()
        plan = FaultPlan.parse(f"crash@{_token_of(doomed)}/*x99")
        scheduler = MixScheduler(
            engine="parallel", max_workers=2, strict=True,
            retry_policy=FRAGILE, fault_plan=plan,
        )
        with pytest.raises(ParallelExecutionError):
            scheduler.run(MIX)

    def test_retries_surface_on_group_runs(self):
        doomed = _doomed_spec()
        plan = FaultPlan.parse(f"crash@{_token_of(doomed)}/0")
        scheduler = MixScheduler(
            engine="parallel", max_workers=2,
            retry_policy=RetryPolicy(backoff_base=0.0), fault_plan=plan,
        )
        run = scheduler.run(MIX, validate=True)  # recovery is bit-identical
        assert run.ok
        by_app = {g.spec.app: g for g in run.groups}
        assert by_app["poisson2d"].retries >= 1
        assert by_app["jacobi3d"].retries == 0

    def test_compiled_engine_isolates_too(self):
        doomed = _doomed_spec()

        def program_for(spec):
            if spec.job_key == doomed.job_key:
                raise ValidationError("injected resolver failure")
            return spec.program()

        run = MixScheduler(
            engine="compiled", strict=False, program_for=program_for
        ).run(MIX)
        assert not run.ok
        (error,) = run.errors
        assert "injected resolver failure" in error.error
        assert error.attempts is None  # never reached the parallel engine
        (survivor,) = run.groups
        assert survivor.spec.app == "jacobi3d"


class TestValidateMixSemantics:
    @pytest.fixture
    def evaluator(self):
        spec = MIX.heaviest()
        return Evaluator(
            spec.program(), ALVEO_U280,
            workloads=MIX, objectives=(RUNTIME, ENERGY),
        )

    GOOD = {"memory": "HBM", "V": 1, "p": 3, "tiled": False}

    def test_best_effort_validate_mix_reports_errors(
        self, evaluator, monkeypatch
    ):
        monkeypatch.setenv(CRASH_ENV, "1")  # poisons every ladder rung
        run = evaluator.validate_mix(
            self.GOOD, engine="parallel", max_workers=2, strict=False,
            retry_policy=FRAGILE,
        )
        assert not run.ok
        assert len(run.errors) == len(MIX.job_groups())
        assert run.groups == ()

    def test_strict_validate_mix_raises(self, evaluator, monkeypatch):
        monkeypatch.setenv(CRASH_ENV, "1")
        with pytest.raises(ParallelExecutionError):
            evaluator.validate_mix(
                self.GOOD, engine="parallel", max_workers=2,
                retry_policy=FRAGILE,
            )


class TestMixCli:
    MIX_ARG = "poisson2d:20x16:2x2,jacobi3d:12x10x8:2x2"

    def test_strict_mix_exits_nonzero_under_faults(self, monkeypatch, capsys):
        monkeypatch.setenv(CRASH_ENV, "1")
        code = main(
            ["mix", self.MIX_ARG, "--engine", "parallel", "--max-workers", "2", "--strict"]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_best_effort_mix_exits_zero_with_failure_rows(
        self, monkeypatch, capsys
    ):
        monkeypatch.setenv(CRASH_ENV, "1")
        code = main(["mix", self.MIX_ARG, "--engine", "parallel", "--max-workers", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "FAILED" in out
        assert "group failed (isolated)" in out

    def test_fault_plan_flag_recovers_and_reports_retries(self, capsys):
        code = main(
            ["mix", self.MIX_ARG, "--engine", "parallel", "--max-workers", "2", "--validate",
             "--fault-plan", "crash@0"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "FAILED" not in out
        assert "recovered:" in out
        assert "validated: every mesh bit-identical" in out

    def test_validated_footer_is_honest_about_failed_groups(
        self, monkeypatch, capsys
    ):
        # all groups fail: no "every mesh bit-identical" claim may print
        monkeypatch.setenv(CRASH_ENV, "1")
        code = main(
            ["mix", self.MIX_ARG, "--engine", "parallel",
             "--max-workers", "2", "--validate"]
        )
        assert code == 0
        assert "bit-identical" not in capsys.readouterr().out

    def test_malformed_env_plan_is_a_usage_error(self, monkeypatch, capsys):
        # a bad REPRO_FAULT_PLAN is an operator mistake, not a group
        # failure to be isolated silently in best-effort mode
        from repro.resilience import ENV_PLAN

        monkeypatch.setenv(ENV_PLAN, "bogus-plan")
        code = main(
            ["mix", self.MIX_ARG, "--engine", "parallel", "--max-workers", "2"]
        )
        assert code == 2
        assert "cannot parse fault" in capsys.readouterr().err

    def test_bad_fault_plan_is_a_usage_error(self, capsys):
        code = main(
            ["mix", self.MIX_ARG, "--engine", "parallel", "--max-workers", "2",
             "--fault-plan", "fly@0"]
        )
        assert code == 2
        assert "fault" in capsys.readouterr().err
