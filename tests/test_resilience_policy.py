"""Retry policy and fault-plan mechanics: the pure half of resilience.

Covers the knobs in isolation — ladder construction, deterministic
backoff, deadlines, failure classification — and the fault-plan grammar:
parse/describe round-trips, draw accounting, environment activation.
"""

from __future__ import annotations

from concurrent.futures import BrokenExecutor
from concurrent.futures import TimeoutError as FuturesTimeout

import numpy as np
import pytest

from repro.resilience import (
    DEFAULT_POLICY,
    ENV_PLAN,
    FULL_LADDER,
    CorruptResultError,
    Fault,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    checksum_arrays,
    classify_failure,
    corrupt_first_value,
    forget_env_plans,
)
from repro.util.errors import ValidationError


class TestRetryPolicy:
    def test_default_policy_retries_and_degrades(self):
        assert DEFAULT_POLICY.max_attempts == 2
        assert DEFAULT_POLICY.ladder == FULL_LADDER

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"jitter": 1.5},
            {"jitter": -0.1},
            {"chunk_timeout": 0.0},
            {"backoff_factor": 0.5},
            {"backoff_base": -1.0},
            {"ladder": ("process", "gpu")},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValidationError):
            RetryPolicy(**kwargs)

    def test_disabled_is_fail_fast(self):
        policy = RetryPolicy.disabled()
        assert policy.max_attempts == 1
        assert policy.rungs_from("process") == ("process",)
        assert policy.rungs_from("thread") == ("thread",)

    def test_rungs_enter_ladder_at_own_backend(self):
        policy = RetryPolicy()
        assert policy.rungs_from("process") == ("process", "thread", "serial")
        assert policy.rungs_from("thread") == ("thread", "serial")
        assert policy.rungs_from("serial") == ("serial",)

    def test_rungs_never_degrade_upward(self):
        # a thread dispatch must not "degrade" to processes
        policy = RetryPolicy(ladder=("process", "serial"))
        assert policy.rungs_from("thread") == ("thread", "serial")
        assert policy.rungs_from("process") == ("process", "serial")

    def test_backoff_is_deterministic_and_exponential(self):
        policy = RetryPolicy(backoff_base=0.01, backoff_factor=2.0, jitter=0.5)
        a = [policy.backoff_delay(n, "tok", 3) for n in range(1, 5)]
        b = [policy.backoff_delay(n, "tok", 3) for n in range(1, 5)]
        assert a == b  # same seed/token/chunk/attempt -> same schedule
        bare = RetryPolicy(backoff_base=0.01, backoff_factor=2.0, jitter=0.0)
        assert [bare.backoff_delay(n) for n in range(1, 4)] == [
            0.01, 0.02, 0.04
        ]
        # jitter widens, never shrinks, and is bounded
        for base, widened in zip(
            [bare.backoff_delay(n) for n in range(1, 5)], a
        ):
            assert base <= widened <= base * 1.5

    def test_backoff_caps_and_zero_base(self):
        policy = RetryPolicy(
            backoff_base=0.5, backoff_factor=10.0, backoff_max=1.0, jitter=0.0
        )
        assert policy.backoff_delay(4) == 1.0
        assert RetryPolicy(backoff_base=0.0).backoff_delay(3) == 0.0
        assert policy.backoff_delay(0) == 0.0

    def test_distinct_chunks_desynchronize(self):
        policy = RetryPolicy(backoff_base=0.1, jitter=0.5)
        delays = {policy.backoff_delay(1, "tok", c) for c in range(8)}
        assert len(delays) > 1

    def test_deadline_remaining(self):
        assert RetryPolicy().deadline_remaining(0.0, 100.0) is None
        policy = RetryPolicy(chunk_timeout=2.0)
        assert policy.deadline_remaining(10.0, 11.0) == pytest.approx(1.0)
        assert policy.deadline_remaining(10.0, 13.0) == 0.0


class TestClassifyFailure:
    @pytest.mark.parametrize(
        "exc,kind",
        [
            (FuturesTimeout(), "timeout"),
            (BrokenExecutor("dead"), "crash"),
            (CorruptResultError("bad"), "corrupt"),
            (OSError("no shm"), "shm"),
            (ValueError("bug"), "error"),
        ],
    )
    def test_labels(self, exc, kind):
        assert classify_failure(exc) == kind


class TestFaultGrammar:
    @pytest.mark.parametrize(
        "text,kind,chunk,plan,times,seconds",
        [
            ("crash@0", "crash", 0, None, 1, 0.05),
            ("shm@*", "shm", None, None, 1, 0.05),
            ("crash@2x3", "crash", 2, None, 3, 0.05),
            ("slow@1:0.5", "slow", 1, None, 1, 0.5),
            ("crash@plan-7/0", "crash", 0, "plan-7", 1, 0.05),
            ("slow@*x2:0.25", "slow", None, None, 2, 0.25),
            ("corrupt@plan-3/*x4", "corrupt", None, "plan-3", 4, 0.05),
        ],
    )
    def test_parse(self, text, kind, chunk, plan, times, seconds):
        (spec,) = FaultPlan.parse(text).specs
        assert spec == FaultSpec(
            kind, chunk=chunk, plan=plan, times=times, seconds=seconds
        )

    def test_describe_round_trips(self):
        text = "crash@0,shm@*,slow@1x2:0.5,corrupt@plan-7/0"
        plan = FaultPlan.parse(text)
        again = FaultPlan.parse(plan.describe())
        assert again.specs == plan.specs

    @pytest.mark.parametrize(
        "text",
        ["", "bogus", "crash", "crash@", "fly@0", "crash@ab", "slow@1:abc",
         "crash@0x", "crash@0x0"],
    )
    def test_rejects_bad_specs(self, text):
        with pytest.raises(ValidationError):
            FaultPlan.parse(text)


class TestFaultDraws:
    def test_draw_decrements_and_exhausts(self):
        plan = FaultPlan.parse("crash@0x2")
        assert plan.remaining() == 2
        assert plan.draw(0) == Fault("crash")
        assert plan.draw(0) == Fault("crash")
        assert plan.draw(0) is None
        assert plan.remaining() == 0

    def test_chunk_filter(self):
        plan = FaultPlan.parse("crash@1")
        assert plan.draw(0) is None
        assert plan.draw(1) == Fault("crash")

    def test_plan_token_filter(self):
        plan = FaultPlan.parse("shm@plan-7/*")
        assert plan.draw(0, "plan-8") is None
        assert plan.draw(0, "plan-7") == Fault("shm")
        assert plan.draw(1, "plan-7") is None  # spent

    def test_first_match_wins(self):
        plan = FaultPlan.parse("crash@0,slow@*:0.3")
        assert plan.draw(0) == Fault("crash")
        assert plan.draw(0) == Fault("slow", 0.3)

    def test_env_plans_share_draw_counters(self, monkeypatch):
        forget_env_plans()
        monkeypatch.setenv(ENV_PLAN, "crash@0")
        a = FaultPlan.from_env()
        b = FaultPlan.from_env()
        assert a is b
        assert a.draw(0) is not None
        assert b.draw(0) is None  # one process-wide counter
        forget_env_plans()
        fresh = FaultPlan.from_env()
        assert fresh is not a
        assert fresh.draw(0) is not None
        forget_env_plans()

    def test_no_env_means_no_plan(self, monkeypatch):
        monkeypatch.delenv(ENV_PLAN, raising=False)
        assert FaultPlan.from_env() is None


class TestChecksums:
    def test_checksums_detect_byte_flips(self):
        arrays = {"U": np.arange(12, dtype=np.float32).reshape(3, 4)}
        before = checksum_arrays(arrays)
        assert checksum_arrays(arrays) == before  # pure
        corrupt_first_value(arrays)
        assert checksum_arrays(arrays) != before

    def test_corrupt_flips_exactly_the_first_element(self):
        arr = np.zeros((2, 3), dtype=np.float32)
        ref = arr.copy()
        corrupt_first_value({"U": arr})
        assert not np.array_equal(arr, ref)
        assert np.array_equal(arr.reshape(-1)[1:], ref.reshape(-1)[1:])

    def test_corrupt_works_on_nan(self):
        arr = np.full(4, np.nan, dtype=np.float64)
        before = checksum_arrays({"U": arr})
        corrupt_first_value({"U": arr})
        assert checksum_arrays({"U": arr}) != before
