"""Unit tests for StencilProgram structure and external memory contract."""

import pytest

from repro.apps.rtm import build_rtm_program
from repro.mesh.mesh import MeshSpec
from repro.stencil.builders import jacobi2d_5pt, jacobi3d_7pt
from repro.stencil.kernel import single_output_kernel
from repro.stencil.program import (
    FusedGroup,
    StencilLoop,
    StencilProgram,
    single_kernel_program,
)
from repro.util.errors import ValidationError


class TestSingleKernelProgram:
    def test_structure(self, poisson_program):
        assert poisson_program.num_stencil_loops == 1
        assert poisson_program.state_fields == ("U",)
        assert poisson_program.constant_fields == ()

    def test_order(self, poisson_program):
        assert poisson_program.order == 2

    def test_external_contract(self, poisson_program):
        assert poisson_program.external_reads() == ("U",)
        assert poisson_program.external_writes() == ("U",)
        # read + write of a 4-byte scalar per cell per pass
        assert poisson_program.bytes_per_cell_pass() == 8

    def test_fused_stage_orders_single(self, poisson_program):
        assert poisson_program.fused_stage_orders == (2,)

    def test_rejects_multi_output_kernel(self):
        prog = build_rtm_program((8, 8, 8))
        with pytest.raises(ValidationError):
            single_kernel_program("x", prog.mesh, prog.groups[0].kernels[0])


class TestRTMProgram:
    def test_four_fused_loops(self):
        prog = build_rtm_program((8, 8, 8))
        assert prog.num_stencil_loops == 4
        assert prog.fused_stage_orders == (8, 8, 8, 8)

    def test_external_contract(self):
        prog = build_rtm_program((8, 8, 8))
        assert prog.external_reads() == ("Y", "rho", "mu")
        assert prog.external_writes() == ("Y",)
        # Y in (24) + rho (4) + mu (4) + Y out (24)
        assert prog.bytes_per_cell_pass() == 56

    def test_intermediates_stay_on_chip(self):
        prog = build_rtm_program((8, 8, 8))
        inter = prog.intermediate_fields()
        assert set(inter) == {"K1", "T", "K2", "K3", "K4"}

    def test_plane_limit_enforced(self):
        with pytest.raises(ValidationError, match="64"):
            build_rtm_program((128, 128, 16))

    def test_coefficient_values_merged(self):
        prog = build_rtm_program((8, 8, 8))
        coeffs = prog.coefficient_values()
        assert "dt" in coeffs and "l0" in coeffs


class TestValidation:
    def test_state_field_must_be_produced(self, spec2d):
        k = single_output_kernel("k", "W", jacobi2d_5pt().outputs[0].exprs[0])
        group = FusedGroup((StencilLoop(k),))
        with pytest.raises(ValidationError, match="never produced"):
            StencilProgram("bad", spec2d, (group,), ("U",))

    def test_constant_field_must_not_be_written(self, spec2d, poisson_kernel):
        group = FusedGroup((StencilLoop(poisson_kernel),))
        with pytest.raises(ValidationError, match="written"):
            StencilProgram("bad", spec2d, (group,), ("U",), ("U",))

    def test_rank_mismatch(self, spec2d, jacobi_kernel):
        group = FusedGroup((StencilLoop(jacobi_kernel),))
        with pytest.raises(ValidationError, match="rank"):
            StencilProgram("bad", spec2d, (group,), ("U",))

    def test_requires_groups(self, spec2d):
        with pytest.raises(ValidationError):
            StencilProgram("bad", spec2d, (), ("U",))

    def test_empty_group_rejected(self):
        with pytest.raises(ValidationError):
            FusedGroup(())


class TestRebind:
    def test_with_mesh(self, poisson_program):
        bigger = poisson_program.with_mesh(MeshSpec((400, 400)))
        assert bigger.mesh.shape == (400, 400)
        assert bigger.name == poisson_program.name

    def test_with_mesh_rank_checked(self, poisson_program):
        with pytest.raises(ValidationError):
            poisson_program.with_mesh(MeshSpec((4, 4, 4)))

    def test_group_produced_fields_ordered(self):
        prog = build_rtm_program((8, 8, 8))
        fields = prog.groups[0].produced_fields()
        assert fields[0] == "K1"
        assert "Y" in fields
