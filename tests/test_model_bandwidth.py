"""Unit tests for bandwidth bounds (paper eq. 4)."""

import pytest

from repro.arch.device import ALVEO_U280
from repro.model.bandwidth import (
    bandwidth_required,
    channels_required,
    feasible_vectorization,
    max_vectorization,
)
from repro.util.errors import ValidationError
from repro.util.units import GB, MHZ


class TestEq4:
    def test_paper_poisson_v8_from_one_ddr4_channel(self):
        # "a value of 8 for V is calculated when using a single DDR4
        # channel ... with a frequency of 300MHz"
        channel = ALVEO_U280.ddr4.channel_bandwidth  # 19.2 GB/s
        assert max_vectorization(channel, 300 * MHZ, 4) == 8

    def test_two_hbm_channels_also_feed_v8(self):
        two_channels = 2 * ALVEO_U280.hbm.channel_bandwidth  # 28.75 GB/s
        assert max_vectorization(two_channels, 300 * MHZ, 4) >= 8

    def test_wider_elements_reduce_v(self):
        channel = 19.2 * GB
        assert max_vectorization(channel, 300 * MHZ, 24) < max_vectorization(
            channel, 300 * MHZ, 4
        )

    def test_validation(self):
        with pytest.raises(ValidationError):
            max_vectorization(0, 300 * MHZ, 4)


class TestProgramBandwidth:
    def test_poisson_requirement(self, poisson_program):
        # 8 B/cell/pass at V=8, 300 MHz -> 19.2 GB/s
        req = bandwidth_required(poisson_program, 8, 300 * MHZ)
        assert req == pytest.approx(19.2 * GB)

    def test_rtm_requirement(self, rtm_small_app):
        # 56 B/cell/pass at V=1, 261 MHz -> 14.6 GB/s
        req = bandwidth_required(rtm_small_app.program, 1, 261 * MHZ)
        assert req == pytest.approx(56 * 261e6)

    def test_channels_required_poisson(self, poisson_program):
        n = channels_required(poisson_program, ALVEO_U280.hbm, 8, 300 * MHZ)
        assert n == 2

    def test_feasible_v_power_of_two(self, poisson_program):
        v = feasible_vectorization(poisson_program, ALVEO_U280, "HBM", 300 * MHZ)
        assert v & (v - 1) == 0
        assert v >= 8

    def test_feasible_v_capped_by_channels(self, poisson_program):
        v_all = feasible_vectorization(poisson_program, ALVEO_U280, "HBM", 300 * MHZ)
        v_two = feasible_vectorization(
            poisson_program, ALVEO_U280, "HBM", 300 * MHZ, max_channels=2
        )
        assert v_two <= v_all
        assert v_two == 8

    def test_ddr4_lower_than_hbm(self, poisson_program):
        v_ddr = feasible_vectorization(poisson_program, ALVEO_U280, "DDR4", 300 * MHZ)
        v_hbm = feasible_vectorization(poisson_program, ALVEO_U280, "HBM", 300 * MHZ)
        assert v_ddr < v_hbm
