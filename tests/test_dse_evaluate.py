"""Unit tests for the memoizing evaluator."""

import math

import pytest

from repro.arch.device import ALVEO_U280
from repro.dse.evaluate import Evaluator
from repro.dse.objectives import ENERGY, RUNTIME, compute_bound_only, max_power
from repro.dse.space import model_space
from repro.model.design import Workload
from repro.util.errors import ValidationError


@pytest.fixture
def setup(jacobi_app):
    program = jacobi_app.program_on((64, 64, 64))
    workload = Workload(program.mesh, 100)
    evaluator = Evaluator(
        program, ALVEO_U280, workload, objectives=(RUNTIME, ENERGY)
    )
    space = model_space(program, ALVEO_U280, workload)
    return program, workload, evaluator, space


GOOD = {"memory": "HBM", "V": 8, "p": 4, "tiled": False}
#: V*p far beyond the DSP inventory
BAD = {"memory": "HBM", "V": 512, "p": 4096, "tiled": False}


class TestEvaluate:
    def test_feasible_trial_scores_all_objectives(self, setup):
        _, _, evaluator, _ = setup
        result = evaluator.evaluate(GOOD)
        assert result.feasible
        assert result.design.V == 8 and result.design.memory == "HBM"
        assert set(result.values) == {"runtime", "energy"}
        assert result.score == result.values["runtime"]
        assert math.isfinite(result.score)

    def test_infeasible_trial_has_reason_and_inf_score(self, setup):
        _, _, evaluator, _ = setup
        result = evaluator.evaluate(BAD)
        assert not result.feasible
        assert result.design is None
        assert result.reason
        assert math.isinf(result.score)

    def test_same_config_never_evaluated_twice(self, setup):
        _, _, evaluator, _ = setup
        evaluator.evaluate(GOOD)
        evaluator.evaluate(dict(GOOD))
        evaluator.evaluate({k: GOOD[k] for k in reversed(list(GOOD))})
        assert evaluator.evaluations == 1
        assert evaluator.cache_hits == 2

    def test_evaluate_many_dedupes_and_aligns(self, setup):
        _, _, evaluator, _ = setup
        batch = [GOOD, BAD, dict(GOOD), GOOD]
        results = evaluator.evaluate_many(batch)
        assert len(results) == 4
        assert results[0] is results[2] is results[3]
        assert evaluator.evaluations == 2  # one per distinct config

    def test_parallel_matches_serial(self, setup):
        program, workload, _, space = setup
        configs = list(space.grid())[:40]
        serial = Evaluator(program, ALVEO_U280, workload, max_workers=0)
        parallel = Evaluator(program, ALVEO_U280, workload, max_workers=4)
        for a, b in zip(serial.evaluate_many(configs), parallel.evaluate_many(configs)):
            assert a.feasible == b.feasible
            assert a.values == b.values

    def test_needs_objectives(self, setup):
        program, workload, _, _ = setup
        with pytest.raises(ValidationError):
            Evaluator(program, ALVEO_U280, workload, objectives=())

    def test_rejects_negative_workers(self, setup):
        program, workload, _, _ = setup
        with pytest.raises(ValidationError):
            Evaluator(program, ALVEO_U280, workload, max_workers=-1)

    def test_seed_installs_and_respects_incumbent(self, setup):
        _, _, evaluator, _ = setup
        result = evaluator.evaluate(GOOD)
        assert not evaluator.seed(result)  # already cached
        fresh = Evaluator(
            evaluator.program, ALVEO_U280, evaluator.workload,
            objectives=(RUNTIME, ENERGY),
        )
        assert fresh.seed(result)
        assert fresh.evaluate(GOOD) is result
        assert fresh.evaluations == 0  # answered from the seeded cache


class TestConstraints:
    def test_violating_design_is_infeasible(self, setup):
        program, workload, _, _ = setup
        constrained = Evaluator(
            program, ALVEO_U280, workload, constraints=(max_power(1.0),)
        )
        result = constrained.evaluate(GOOD)
        assert not result.feasible
        assert "power" in result.reason

    def test_compute_bound_only_passes_compute_bound(self, setup):
        program, workload, evaluator, _ = setup
        constrained = Evaluator(
            program, ALVEO_U280, workload, constraints=(compute_bound_only(),)
        )
        baseline = evaluator.evaluate(GOOD)
        assert baseline.feasible and not baseline.memory_bound
        assert constrained.evaluate(GOOD).feasible


class TestBoardsAxis:
    def test_more_boards_run_faster(self, setup):
        program, workload, _, _ = setup
        evaluator = Evaluator(program, ALVEO_U280, workload)
        single = evaluator.evaluate(dict(GOOD, boards=1))
        quad = evaluator.evaluate(dict(GOOD, boards=4))
        assert single.feasible and quad.feasible
        assert quad.value("runtime") < single.value("runtime")

    def test_boards_one_matches_no_axis(self, setup):
        program, workload, _, _ = setup
        evaluator = Evaluator(program, ALVEO_U280, workload)
        with_axis = evaluator.evaluate(dict(GOOD, boards=1))
        without = evaluator.evaluate(GOOD)
        assert with_axis.value("runtime") == without.value("runtime")


class TestBatchAxis:
    def test_batch_axis_scales_the_scored_workload(self, setup):
        """A ``batch`` value re-scores the design on the batched workload.

        More meshes take longer in total but amortize the fill latency, so
        a batch-B trial must sit strictly between 1x and Bx the single-mesh
        runtime (eq. (15)).
        """
        program, workload, evaluator, _ = setup
        single = evaluator.evaluate(GOOD)
        batched = evaluator.evaluate(dict(GOOD, batch=8))
        assert batched.feasible
        assert evaluator.workload_for(dict(GOOD, batch=8)).batch == 8
        assert single.value("runtime") < batched.value("runtime")
        assert batched.value("runtime") < 8 * single.value("runtime")

    def test_batch_one_matches_no_axis(self, setup):
        _, _, evaluator, _ = setup
        with_axis = evaluator.evaluate(dict(GOOD, batch=1))
        without = evaluator.evaluate(GOOD)
        assert with_axis.value("runtime") == without.value("runtime")

    def test_tiled_batched_configs_are_infeasible(self, jacobi_app):
        """tiled x batch>1 has no executable surface, so it must not score.

        ``FPGAAccelerator.run_batch`` raises on tiled designs; a config the
        runtime cannot execute must not win a Pareto front, and
        ``batch_runner`` must refuse to construct a runner for it.
        """
        program = jacobi_app.program_on((400, 400, 400))
        workload = Workload(program.mesh, 100)
        evaluator = Evaluator(program, ALVEO_U280, workload)
        tiled = {"memory": "HBM", "V": 1, "p": 2, "tiled": True}
        assert evaluator.evaluate(tiled).feasible
        batched = evaluator.evaluate(dict(tiled, batch=4))
        assert not batched.feasible
        assert "tiled" in batched.reason
        assert evaluator.evaluate(dict(tiled, batch=1)).feasible
        with pytest.raises(ValidationError, match="tiled"):
            evaluator.batch_runner(tiled)
        # only the *axis* is gated: a study-level batched workload keeps its
        # pre-existing analytic scoring on tiled designs
        study_batched = Evaluator(program, ALVEO_U280, Workload(program.mesh, 100, 4))
        assert study_batched.evaluate(tiled).feasible

    def test_batch_runner_realizes_the_trial_functionally(self, jacobi_app):
        """The stacked BatchRunner backs the batch axis, bit-identically.

        A study exploring batch sizes can validate its best design on the
        very batched workload it was scored for: the runner executes the
        batch through one stacked tape and matches the golden interpreter.
        """
        import numpy as np

        from repro.stencil.compiled import CompiledPlanCache
        from repro.stencil.numpy_eval import run_program

        shape = (16, 14, 8)
        program = jacobi_app.program_on(shape)
        workload = Workload(program.mesh, 100)
        evaluator = Evaluator(program, ALVEO_U280, workload)
        config = dict(GOOD, batch=4)
        assert evaluator.evaluate(config).feasible
        cache = CompiledPlanCache()
        runner = evaluator.batch_runner(config, plan_cache=cache)
        assert runner.design.V == GOOD["V"] and runner.design.p == GOOD["p"]
        batch = [jacobi_app.fields(shape, seed=s) for s in range(4)]
        results = runner.run(batch, runner.design.p * 2)
        assert cache.misses == 1  # one stacked plan for the whole batch
        for env, res in zip(batch, results):
            gold = run_program(
                program, env, runner.design.p * 2, engine="interpreter"
            )
            assert np.array_equal(res["U"].data, gold["U"].data)


class TestModelBounds:
    def test_unroll_cap_honors_hard_dsp_limit(self, setup):
        _, _, evaluator, _ = setup
        for V in (1, 8, 32):
            cap = evaluator.unroll_cap(V)
            result = evaluator.evaluate(
                {"memory": "HBM", "V": V, "p": cap, "tiled": False}
            )
            # the cap itself must never be DSP-infeasible
            assert "DSPs exceeds" not in result.reason

    def test_vector_cap_shrinks_with_unroll(self, setup):
        _, _, evaluator, _ = setup
        assert evaluator.vector_cap("HBM", p=64) <= evaluator.vector_cap("HBM", p=1)

    def test_tiled_config_derives_tile(self, jacobi_app):
        program = jacobi_app.program_on((400, 400, 400))
        workload = Workload(program.mesh, 100)
        evaluator = Evaluator(program, ALVEO_U280, workload)
        design = evaluator.design_for(
            {"memory": "HBM", "V": 1, "p": 2, "tiled": True}
        )
        assert design.tile is not None
        assert min(design.tile.tile) > 2 * program.order
