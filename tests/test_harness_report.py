"""Unit tests for the EXPERIMENTS.md report generator."""

from repro.harness.report import _ratio_note, result_markdown, write_report
from repro.harness.runner import ExperimentResult, run_table2
from repro.util.tables import TextTable


class TestRatioNote:
    def test_geometric_mean(self):
        records = [
            {"a": 2.0, "b": 1.0},
            {"a": 0.5, "b": 1.0},
        ]
        note = _ratio_note(records, "a", "b")
        assert "geometric mean 1.00" in note
        assert "n=2" in note

    def test_skips_missing(self):
        records = [{"a": 2.0, "b": None}, {"a": None, "b": 1.0}]
        assert _ratio_note(records, "a", "b") == ""

    def test_range_reported(self):
        records = [{"a": 1.2, "b": 1.0}, {"a": 0.9, "b": 1.0}]
        note = _ratio_note(records, "a", "b")
        assert "0.90" in note and "1.20" in note


class TestMarkdown:
    def test_section_structure(self):
        result = run_table2()
        md = result_markdown(result)
        assert md.startswith("## Table II")
        assert md.count("```") == 2

    def test_notes_included(self):
        table = TextTable(["x"])
        table.add_row([1])
        result = ExperimentResult("x1", "X", table, [], notes="a caveat")
        assert "a caveat" in result_markdown(result)

    def test_accuracy_line_present_when_ratios_exist(self):
        table = TextTable(["x"])
        result = ExperimentResult(
            "x1", "X", table, [{"fpga_pred": 1.0, "fpga_paper": 1.1}]
        )
        assert "Accuracy:" in result_markdown(result)


class TestWriteReport:
    def test_full_report(self, tmp_path):
        path = write_report(tmp_path / "EXP.md")
        text = path.read_text()
        # one section per registered artifact
        for artifact in ("Table II", "Table III", "Fig 3(a)", "Fig 4(c)", "Fig 5(b)", "Table VI"):
            assert artifact in text
        # 13 paper artifacts + 2 DSE experiments + the workload-mix experiment
        assert text.count("## ") == 16
