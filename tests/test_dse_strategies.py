"""Unit tests for the search strategies."""

import pytest

from repro.arch.device import ALVEO_U280
from repro.dse.evaluate import Evaluator
from repro.dse.space import model_space
from repro.dse.strategies import (
    ExhaustiveSearch,
    ModelGuidedGreedy,
    RandomSearch,
    SimulatedAnnealing,
    strategy_by_name,
)
from repro.dse.study import Study
from repro.model.design import Workload
from repro.util.errors import ValidationError


@pytest.fixture
def problem(jacobi_app):
    program = jacobi_app.program_on((64, 64, 64))
    workload = Workload(program.mesh, 100)
    space = model_space(program, ALVEO_U280, workload)

    def study():
        return Study(space, Evaluator(program, ALVEO_U280, workload))

    return space, study


@pytest.fixture
def optimum(problem):
    _, make = problem
    return make().run(ExhaustiveSearch()).best()


class TestRegistry:
    def test_all_registered(self):
        for name, cls in (
            ("exhaustive", ExhaustiveSearch),
            ("random", RandomSearch),
            ("annealing", SimulatedAnnealing),
            ("greedy", ModelGuidedGreedy),
        ):
            assert isinstance(strategy_by_name(name, seed=3), cls)

    def test_unknown_name(self):
        with pytest.raises(ValidationError):
            strategy_by_name("bayesian")

    def test_bad_options(self):
        with pytest.raises(ValidationError):
            ExhaustiveSearch(batch=0)
        with pytest.raises(ValidationError):
            SimulatedAnnealing(cooling=1.5)
        with pytest.raises(ValidationError):
            ModelGuidedGreedy(max_v_steps=0)


class TestExhaustive:
    def test_covers_the_whole_grid(self, problem):
        space, make = problem
        study = make().run(ExhaustiveSearch())
        assert len(study.trials) == space.size

    def test_respects_budget(self, problem):
        _, make = problem
        study = make().run(ExhaustiveSearch(batch=8), trials=20)
        assert len(study.trials) == 20

    def test_is_the_reference_optimum(self, problem, optimum):
        _, make = problem
        # no strategy can beat the full grid on the primary objective
        for name in ("random", "annealing", "greedy"):
            study = make().run(strategy_by_name(name, seed=0), trials=30)
            best = study.best()
            if best is not None:
                assert best.score >= optimum.score - 1e-12


class TestRandom:
    def test_budget_and_determinism(self, problem):
        _, make = problem
        a = make().run(RandomSearch(seed=5), trials=25)
        b = make().run(RandomSearch(seed=5), trials=25)
        assert len(a.trials) == len(b.trials) == 25
        assert [t.config for t in a.trials] == [t.config for t in b.trials]

    def test_no_replacement(self, problem):
        space, make = problem
        study = make().run(RandomSearch(seed=1), trials=space.size)
        keys = {tuple(sorted(t.config.items())) for t in study.trials}
        assert len(keys) == space.size


class TestAnnealing:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_within_5pct_of_optimum_in_50_trials(self, problem, optimum, seed):
        _, make = problem
        study = make().run(SimulatedAnnealing(seed=seed), trials=50)
        best = study.best()
        assert best is not None
        assert best.value("runtime") <= optimum.value("runtime") * 1.05

    def test_terminates_without_budget(self, problem):
        _, make = problem
        study = make().run(SimulatedAnnealing(seed=0, max_proposals=200))
        assert study.best() is not None


class TestGreedy:
    def test_prunes_instead_of_sweeping(self, problem):
        space, make = problem
        study = make().run(ModelGuidedGreedy())
        assert study.best() is not None
        # the whole point: far fewer evaluations than the grid
        assert len(study.trials) < space.size / 2

    def test_close_to_optimum(self, problem, optimum):
        _, make = problem
        study = make().run(ModelGuidedGreedy())
        best = study.best()
        assert best.value("runtime") <= optimum.value("runtime") * 1.25
