"""Observability wired through the execution stack, end to end.

Covers the PR's cross-layer contracts: the serial and parallel engines
report identical dispatch accounting through the registry-backed
``stats=`` view; an enabled run produces an event log whose span tree
covers compile → chunk dispatch → worker execution; the mix layer reports
per-group latency percentiles; failures carry backend/elapsed context;
and the disabled default stays inert.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import observability as obs
from repro.apps.registry import all_apps
from repro.dataflow.scheduler import MixScheduler, per_mesh_stats
from repro.observability.events import read_events
from repro.parallel.executor import (
    ParallelExecutionError,
    run_program_parallel,
)
from repro.parallel.pool import shutdown_shared_pools
from repro.stencil.compiled import CompiledPlanCache, run_program_stacked
from repro.workload import WorkloadMix

APP_MESHES = {
    "poisson2d": (20, 16),
    "jacobi3d": (14, 12, 8),
    "rtm": (12, 12, 10),
}


@pytest.fixture(autouse=True)
def _observability_off():
    """Every test starts disabled with freshly reset state."""
    obs.enable(fresh=True)  # fresh=True swaps in empty registry/tracer/ring
    obs.disable()
    yield
    obs.disable()


@pytest.fixture(scope="module", autouse=True)
def _drain_pools():
    yield
    shutdown_shared_pools()


def _batch(app_key, batch):
    app = all_apps()[app_key]
    shape = APP_MESHES[app_key]
    program = app.program_on(shape)
    envs = [app.fields(shape, seed=5 + s) for s in range(batch)]
    return program, envs


class TestStatsParity:
    """Satellite: serial and parallel report identical accounting."""

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_serial_and_parallel_stats_agree(self, backend):
        program, envs = _batch("jacobi3d", 5)
        cache = CompiledPlanCache()
        plan = cache.plan_for(program, envs[0])
        limit = plan.nbytes * 2
        serial_stats: dict = {}
        serial = run_program_stacked(
            program, envs, 3, cache=cache, max_stack_bytes=limit,
            stats=serial_stats,
        )
        parallel_stats: dict = {}
        parallel = run_program_parallel(
            program, envs, 3, cache=cache, max_stack_bytes=limit,
            stats=parallel_stats, max_workers=2, backend=backend,
        )
        for key in ("chunks", "dispatches", "stacked_meshes"):
            assert serial_stats[key] == parallel_stats[key], key
        for ser, par in zip(serial, parallel):
            for name in ser:
                assert np.array_equal(ser[name].data, par[name].data)

    @pytest.mark.parametrize("enabled", [False, True])
    def test_registry_view_preserves_stats_keys(self, enabled):
        """The registry-backed stats view keeps the stable key contract
        whether or not recording is on."""
        if enabled:
            obs.enable()
        program, envs = _batch("poisson2d", 4)
        cache = CompiledPlanCache()
        plan = cache.plan_for(program, envs[0])
        stats: dict = {}
        run_program_stacked(
            program, envs, 2, cache=cache,
            max_stack_bytes=plan.nbytes * 2, stats=stats,
        )
        assert set(stats) == {
            "chunks", "dispatches", "stacked_meshes", "chunk_seconds"
        }
        assert stats["dispatches"] == len(stats["chunks"])
        assert len(stats["chunk_seconds"]) == len(stats["chunks"])
        assert all(s >= 0 for s in stats["chunk_seconds"])
        if enabled:
            reg = obs.metrics_registry()
            assert reg.value("exec.dispatches", backend="compiled") == (
                stats["dispatches"]
            )
            assert reg.value("exec.meshes", backend="compiled") == len(envs)


class TestDisabledDefault:
    def test_disabled_records_nothing(self):
        program, envs = _batch("poisson2d", 3)
        run_program_stacked(program, envs, 2, cache=CompiledPlanCache())
        assert not obs.is_enabled()
        assert list(obs.metrics_registry().items()) == []
        assert obs.tracer().records() == []
        assert obs.ring_sink().records == []

    def test_span_helper_is_null_context_when_disabled(self):
        with obs.span("anything", k=1):
            pass
        assert obs.tracer().records() == []

    def test_enable_fresh_resets_state(self):
        obs.enable()
        obs.inc("x")
        obs.enable(fresh=True)
        assert list(obs.metrics_registry().items()) == []


class TestEventLogCoverage:
    def test_trace_covers_compile_dispatch_and_worker(self, tmp_path):
        """The hard constraint: an enabled parallel run's event log spans
        compile → chunk dispatch → worker execution (process backend)."""
        path = tmp_path / "trace.jsonl"
        obs.enable(trace_path=str(path))
        program, envs = _batch("jacobi3d", 4)
        cache = CompiledPlanCache()
        plan = cache.plan_for(program, envs[0])
        run_program_parallel(
            program, envs, 3, cache=cache,
            max_stack_bytes=plan.nbytes * 2, stats={},
            max_workers=2, backend="process",
        )
        obs.disable()
        events = list(read_events(path))
        kinds = {e["kind"] for e in events}
        assert {"plan.compile", "exec.dispatch", "span"} <= kinds
        spans = [e for e in events if e["kind"] == "span"]
        by_id = {s["span_id"]: s for s in spans}
        workers = [s for s in spans if s["name"] == "worker.chunk"]
        assert workers, "no worker-side spans were adopted"
        for w in workers:
            assert w["attrs"]["backend"] == "process"
            parent = by_id[w["parent_id"]]
            assert parent["name"] == "parallel.submit"
        assert all(e["v"] == 1 for e in events)

    def test_cache_hit_and_miss_counters(self):
        obs.enable()
        program, envs = _batch("poisson2d", 2)
        cache = CompiledPlanCache()
        run_program_stacked(program, envs, 2, cache=cache)
        run_program_stacked(program, envs, 2, cache=cache)
        reg = obs.metrics_registry()
        assert reg.value("plan.cache_misses") >= 1
        assert reg.value("plan.cache_hits") >= 1
        kinds = obs.ring_sink().kinds()
        assert "plan.cache_miss" in kinds


class TestMixLatency:
    def test_group_latency_percentiles(self):
        mix = WorkloadMix.parse("jacobi3d:14x12x8:3x4,poisson2d:20x16:2x3")
        run = MixScheduler(seed=1).run(mix)
        for group in run.groups:
            assert len(group.chunk_seconds) == len(group.chunks)
            lat = group.latency_percentiles()
            assert set(lat) == {"p50", "p95", "p99"}
            assert lat["p50"] <= lat["p99"]
        table = run.latency_percentiles()
        assert len(table) == 2
        for quantiles in table.values():
            assert not math.isnan(quantiles["p50"])

    def test_interpreter_engine_times_each_mesh(self):
        mix = WorkloadMix.parse("poisson2d:20x16:2x3")
        run = MixScheduler(engine="interpreter", seed=1).run(mix)
        (group,) = run.groups
        assert group.chunks == (1, 1, 1)
        assert len(group.chunk_seconds) == 3
        assert all(s > 0 for s in group.chunk_seconds)

    def test_per_mesh_stats_helper(self):
        stats = per_mesh_stats(3)
        assert stats == {
            "chunks": [1, 1, 1],
            "dispatches": 3,
            "stacked_meshes": 0,
            "chunk_seconds": [],
        }

    def test_group_run_tolerates_partial_stats(self):
        """A stats dict without ``chunks`` must not fabricate per-mesh
        chunks (satellite: the old fallback invented ``[1]*B``)."""
        run = MixScheduler._group_run(
            object(), [1, 2, 3], [{}, {}, {}], {"dispatches": 2}
        )
        assert run.chunks == ()
        assert run.dispatches == 2
        assert run.chunk_seconds == ()


class TestFailureContext:
    def test_error_carries_backend_and_elapsed(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_TEST_CRASH", "1")
        program, envs = _batch("poisson2d", 4)
        cache = CompiledPlanCache()
        plan = cache.plan_for(program, envs[0])
        with pytest.raises(ParallelExecutionError) as info:
            run_program_parallel(
                program, envs, 2, cache=cache,
                max_stack_bytes=plan.nbytes * 2,
                max_workers=2, backend="thread",
            )
        assert info.value.backend == "thread"
        assert info.value.elapsed is not None and info.value.elapsed >= 0
        assert "backend thread" in str(info.value)

    def test_worker_failure_event_emitted(self, monkeypatch):
        obs.enable()
        monkeypatch.setenv("REPRO_PARALLEL_TEST_CRASH", "1")
        program, envs = _batch("poisson2d", 4)
        cache = CompiledPlanCache()
        plan = cache.plan_for(program, envs[0])
        with pytest.raises(ParallelExecutionError):
            run_program_parallel(
                program, envs, 2, cache=cache,
                max_stack_bytes=plan.nbytes * 2,
                max_workers=2, backend="thread",
            )
        obs.disable()
        failures = obs.ring_sink().of_kind("parallel.worker_failure")
        assert failures and failures[0]["backend"] == "thread"
        assert obs.metrics_registry().value(
            "parallel.worker_failures", backend="thread"
        ) >= 1

    def test_shm_fallback_warns_and_emits(self, monkeypatch):
        obs.enable()
        from repro.parallel import shm

        def boom(layout):
            raise OSError("no shared memory on this host")

        monkeypatch.setattr(shm.SharedStack, "allocate", staticmethod(boom))
        program, envs = _batch("jacobi3d", 4)
        cache = CompiledPlanCache()
        plan = cache.plan_for(program, envs[0])
        with pytest.warns(RuntimeWarning, match="thread worker backend"):
            stats: dict = {}
            run_program_parallel(
                program, envs, 2, cache=cache,
                max_stack_bytes=plan.nbytes * 2, stats=stats,
                max_workers=2, backend="process",
            )
        obs.disable()
        assert stats["backend"] == "thread"
        assert obs.ring_sink().of_kind("parallel.shm_fallback")
        assert obs.metrics_registry().value("parallel.shm_fallbacks") == 1


class TestCLI:
    def test_mix_trace_writes_event_log(self, tmp_path, capsys):
        from repro.cli import main

        # a mesh shape unique to this test, so the process-wide plan cache
        # cannot have it warm and plan.compile is guaranteed to fire
        path = tmp_path / "mix-trace.jsonl"
        code = main([
            "mix", "poisson2d:22x18:2x3", "--trace", str(path)
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "p50 ms" in out
        assert str(path) in out
        kinds = {e["kind"] for e in read_events(path)}
        assert {"plan.compile", "exec.dispatch", "span"} <= kinds
        assert not obs.is_enabled()  # the CLI turned it back off

    def test_metrics_command_dumps_registry_and_trace(self, capsys):
        from repro.cli import main

        code = main(["metrics", "poisson2d:20x16:2x3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "repro_exec_dispatches" in out
        assert "mix.run" in out
        assert not obs.is_enabled()

    def test_dse_trace_flag(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "dse-trace.jsonl"
        code = main([
            "dse", "--workloads", "poisson2d:20x16:2x2",
            "--strategy", "random", "--trials", "3",
            "--trace", str(path),
        ])
        assert code == 0
        kinds = {e["kind"] for e in read_events(path)}
        assert "dse.trial" in kinds
