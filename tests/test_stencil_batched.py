"""Batch-major stacked-tape execution: equivalence, isolation, flat mode.

The contract under test: ``run_program_stacked`` advances ``B`` independent
same-spec meshes with one tape replay, and element ``b`` of its result is
bit-identical (``np.array_equal``, no tolerance) to an independent compiled
run on mesh ``b`` — and therefore to the golden interpreter — on every
registered application, on the edge cases PR 3's review fixes guarded
(niter=0, mixed-radius ``init_from``), and on random programs. Plus the
second compiled-engine follow-on: RTM's merged multi-component ops run in
flat mode via load-time broadcast expansion of its constant fields.
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.registry import all_apps
from repro.apps.rtm import rtm_app
from repro.mesh.mesh import Field, MeshSpec
from repro.stencil.compiled import (
    CompiledPlanCache,
    run_program_compiled,
    run_program_stacked,
)
from repro.stencil.expr import Coef, Const, FieldAccess
from repro.stencil.kernel import KernelOutput, StencilKernel, single_output_kernel
from repro.stencil.numpy_eval import run_program
from repro.stencil.plan import lower_program
from repro.stencil.program import (
    FusedGroup,
    StencilLoop,
    StencilProgram,
    single_kernel_program,
)
from repro.util.errors import ValidationError

#: small-but-representative functional meshes per registered app
APP_MESHES = {
    "poisson2d": (20, 16),
    "jacobi3d": (14, 12, 8),
    "rtm": (12, 12, 10),
}


def _assert_env_equal(gold, got):
    assert set(gold) == set(got)
    for name in gold:
        assert np.array_equal(gold[name].data, got[name].data), name


def _assert_stacked_matches_replay_and_interpreter(
    program, batch, niter, cache=None
):
    cache = cache if cache is not None else CompiledPlanCache()
    # force the stacked tape even for workloads the footprint heuristic
    # would replay per mesh: the property under test is the mechanism
    stacked = run_program_stacked(
        program, batch, niter, cache=cache, max_stack_bytes=float("inf")
    )
    assert len(stacked) == len(batch)
    for env, got in zip(batch, stacked):
        replay = run_program_compiled(program, env, niter, cache=cache)
        _assert_env_equal(replay, got)
        gold = run_program(program, env, niter, engine="interpreter")
        _assert_env_equal(gold, got)


# --------------------------------------------------------------------------- #
# equivalence on every registered app
# --------------------------------------------------------------------------- #
class TestStackedEquivalence:
    @pytest.mark.parametrize("name", sorted(APP_MESHES))
    @pytest.mark.parametrize("niter", [0, 1, 2, 3, 6])
    def test_stacked_bit_identical_to_replay_and_interpreter(self, name, niter):
        app = all_apps()[name]
        shape = APP_MESHES[name]
        program = app.program_on(shape)
        batch = [app.fields(shape, seed=s) for s in range(4)]
        _assert_stacked_matches_replay_and_interpreter(program, batch, niter)

    def test_coefficient_overrides_apply_to_the_whole_stack(self):
        app = all_apps()["jacobi3d"]
        shape = APP_MESHES["jacobi3d"]
        program = app.program_on(shape)
        coefficients = program.coefficient_values()
        cname = next(iter(coefficients))
        batch = [app.fields(shape, seed=s) for s in range(3)]
        cache = CompiledPlanCache()
        got = run_program_stacked(
            program, batch, 3, {cname: 0.07}, cache=cache
        )
        for env, res in zip(batch, got):
            gold = run_program(
                program, env, 3, {cname: 0.07}, engine="interpreter"
            )
            _assert_env_equal(gold, res)

    def test_single_member_batch_shares_the_unbatched_plan(self):
        app = all_apps()["poisson2d"]
        shape = APP_MESHES["poisson2d"]
        program = app.program_on(shape)
        env = app.fields(shape, seed=1)
        cache = CompiledPlanCache()
        run_program_compiled(program, env, 2, cache=cache)
        assert cache.misses == 1
        got = run_program_stacked(program, [env], 2, cache=cache)
        assert cache.misses == 1  # no separate batch=1 entry
        gold = run_program(program, env, 2, engine="interpreter")
        _assert_env_equal(gold, got[0])

    def test_batched_plans_cache_separately_by_batch_size(self):
        app = all_apps()["poisson2d"]
        shape = APP_MESHES["poisson2d"]
        program = app.program_on(shape)
        cache = CompiledPlanCache()
        batch4 = [app.fields(shape, seed=s) for s in range(4)]
        run_program_stacked(program, batch4, 2, cache=cache)
        misses = cache.misses
        run_program_stacked(program, batch4, 4, cache=cache)  # warm
        assert cache.misses == misses
        run_program_stacked(program, batch4[:2], 2, cache=cache)  # new B
        assert cache.misses == misses + 1

    def test_batch_sizes_share_one_lowered_plan(self):
        """Plans are batch-independent: one lowering serves every B.

        The cache memoizes unbound plans separately from bound instances,
        so the single-mesh instance and all batch-major instances of one
        binding hold the *same* ProgramPlan object.
        """
        app = all_apps()["poisson2d"]
        shape = APP_MESHES["poisson2d"]
        program = app.program_on(shape)
        env = app.fields(shape, seed=0)
        cache = CompiledPlanCache()
        single = cache.get(program, env)
        stacked = cache.get(program, env, batch=4)
        assert single.plan is stacked.plan
        assert cache.misses == 2  # two bound instances, one lowering
        # plan.nbytes (what the dispatch heuristic reads) matches the
        # actually-bound single-mesh footprint up to splatted constants
        assert single.plan.nbytes <= single.nbytes

    def test_footprint_heuristic_replays_large_batches_per_mesh(self):
        """Batches too large to stay cache-resident replay the single plan.

        Stacking amortizes per-op launch overhead; once the stacked
        working set spills out of cache, per-mesh replay is faster — the
        dispatch is automatic, bit-identical either way, and a generous
        ``max_stack_bytes`` forces the stacked tape back on.
        """
        app = all_apps()["poisson2d"]
        shape = APP_MESHES["poisson2d"]
        program = app.program_on(shape)
        batch = [app.fields(shape, seed=s) for s in range(3)]
        cache = CompiledPlanCache()
        got = run_program_stacked(
            program, batch, 2, cache=cache, max_stack_bytes=1
        )
        assert cache.misses == 1  # only the single-mesh plan, no batch entry
        for env, res in zip(batch, got):
            gold = run_program(program, env, 2, engine="interpreter")
            _assert_env_equal(gold, res)
        run_program_stacked(
            program, batch, 2, cache=cache, max_stack_bytes=float("inf")
        )
        assert cache.misses == 2  # now the batch-major plan compiled too


# --------------------------------------------------------------------------- #
# seam isolation
# --------------------------------------------------------------------------- #
class TestSeamIsolation:
    def test_extreme_neighbour_cannot_leak_across_the_stack(self):
        """A pathological mesh must not perturb its neighbours bitwise.

        The batch axis is a true leading dimension, so no stencil shift can
        couple meshes; mesh 1's huge values must leave meshes 0 and 2
        exactly as a solo run computes them.
        """
        app = all_apps()["jacobi3d"]
        shape = APP_MESHES["jacobi3d"]
        program = app.program_on(shape)
        spec = MeshSpec(shape)
        batch = [app.fields(shape, seed=s) for s in range(3)]
        batch[1] = {"U": Field.full("U", spec, 1e30)}
        stacked = run_program_stacked(program, batch, 4)
        for b in (0, 2):
            solo = run_program_compiled(program, batch[b], 4)
            _assert_env_equal(solo, stacked[b])

    def test_results_do_not_alias_internal_buffers(self):
        app = all_apps()["poisson2d"]
        shape = APP_MESHES["poisson2d"]
        program = app.program_on(shape)
        cache = CompiledPlanCache()
        batch = [app.fields(shape, seed=s) for s in range(3)]
        first = run_program_stacked(program, batch, 2, cache=cache)
        snapshot = [env["U"].data.copy() for env in first]
        run_program_stacked(program, batch, 4, cache=cache)  # reuses buffers
        for env, snap in zip(first, snapshot):
            assert np.array_equal(env["U"].data, snap)


# --------------------------------------------------------------------------- #
# edge cases the PR 3 review fixes guarded
# --------------------------------------------------------------------------- #
def _mixed_radius_program():
    """U's init_from ring overlaps G's recomputed interior (never settles)."""
    mesh = MeshSpec((12, 10))
    U = lambda dx, dy: FieldAccess("U", (dx, dy))
    G = lambda dx, dy: FieldAccess("G", (dx, dy))
    k1 = StencilKernel(
        "mk_g",
        (
            KernelOutput(
                "G", (Const(0.25) * (U(-1, 0) + U(1, 0) + U(0, -1) + U(0, 1)),)
            ),
        ),
    )
    k2 = StencilKernel(
        "mk_u",
        (
            KernelOutput(
                "U",
                (Const(0.25) * (G(-2, 0) + G(2, 0) + G(0, -2) + G(0, 2)),),
                init_from="G",
            ),
        ),
    )
    return StencilProgram(
        "mixed_radius",
        mesh,
        (FusedGroup((StencilLoop(k1), StencilLoop(k2))),),
        state_fields=("U",),
    )


class TestStackedEdgeCases:
    def test_niter_zero_returns_bindings_without_compiling(self):
        app = all_apps()["poisson2d"]
        shape = APP_MESHES["poisson2d"]
        program = app.program_on(shape)
        batch = [app.fields(shape, seed=s) for s in range(3)]
        cache = CompiledPlanCache()
        got = run_program_stacked(program, batch, 0, cache=cache)
        assert got == [dict(env) for env in batch]
        assert len(cache) == 0 and cache.misses == 0

    @pytest.mark.parametrize("niter", range(0, 8))
    def test_mixed_radius_init_from_stacked(self, niter):
        program = _mixed_radius_program()
        mesh = program.mesh
        batch = [{"U": Field.random("U", mesh, seed=s)} for s in range(4)]
        _assert_stacked_matches_replay_and_interpreter(program, batch, niter)

    def test_mixed_dtype_batches_fall_back_to_the_interpreter(self):
        mesh = MeshSpec((12, 10))
        U = lambda dx, dy: FieldAccess("U", (dx, dy))
        kernel = single_output_kernel(
            "relax",
            "U",
            Const(0.25) * (U(-1, 0) + U(1, 0) + U(0, -1) + U(0, 1))
            + FieldAccess("Z", (0, 0)),
            init_from="U",
        )
        program = StencilProgram(
            "mixed",
            mesh,
            (FusedGroup((StencilLoop(kernel),)),),
            state_fields=("U",),
            constant_fields=("Z",),
        )
        spec64 = MeshSpec(mesh.shape, 1, np.float64)
        batch = [
            {
                "U": Field.random("U", mesh, seed=s),
                "Z": Field(
                    "Z",
                    spec64,
                    Field.random("Z", mesh, seed=s + 10).data.astype(np.float64),
                ),
            }
            for s in range(3)
        ]
        cache = CompiledPlanCache()
        got = run_program_stacked(program, batch, 3, cache=cache)
        assert len(cache) == 0  # pure interpreter fallback, no plan
        for env, res in zip(batch, got):
            gold = run_program(program, env, 3, engine="interpreter")
            _assert_env_equal(gold, res)

    def test_rejects_empty_batch_and_mixed_specs(self):
        app = all_apps()["poisson2d"]
        shape = APP_MESHES["poisson2d"]
        program = app.program_on(shape)
        with pytest.raises(ValidationError, match="at least one"):
            run_program_stacked(program, [], 2)
        batch = [
            app.fields(shape, seed=0),
            app.fields((24, 18), seed=1),
        ]
        with pytest.raises(ValidationError, match="same spec"):
            run_program_stacked(program, batch, 2)
        with pytest.raises(ValidationError, match="needs field"):
            run_program_stacked(program, [app.fields(shape), {}], 2)

    def test_stepwise_load_validates_batch_length_and_shapes(self):
        app = all_apps()["poisson2d"]
        shape = APP_MESHES["poisson2d"]
        program = app.program_on(shape)
        env = app.fields(shape, seed=0)
        compiled = CompiledPlanCache().get(program, env, batch=3)
        with pytest.raises(ValidationError, match="3 batch members"):
            compiled.load_stacked([env, env])
        with pytest.raises(ValidationError, match="3 batch members"):
            compiled.run_stacked([env, env], 0)  # validated before niter=0
        with pytest.raises(ValidationError, match="result_stacked"):
            compiled.result(env)
        wrong = app.fields((24, 18), seed=0)
        with pytest.raises(ValidationError, match="shape"):
            compiled.load_stacked([env, env, wrong])

    def test_load_accepts_batch_major_arrays(self):
        """The documented raw-array entry: (B, *storage_shape) stacks."""
        from repro.mesh.batch import stack_batch_major

        app = all_apps()["poisson2d"]
        shape = APP_MESHES["poisson2d"]
        program = app.program_on(shape)
        batch = [app.fields(shape, seed=s) for s in range(3)]
        compiled = CompiledPlanCache().get(program, batch[0], batch=3)
        compiled.load({"U": stack_batch_major([env["U"] for env in batch])})
        compiled.run_iterations(4)
        got = compiled.result_stacked(batch)
        for env, res in zip(batch, got):
            gold = run_program(program, env, 4, engine="interpreter")
            _assert_env_equal(gold, res)


# --------------------------------------------------------------------------- #
# allocation behaviour of the stacked steady loop
# --------------------------------------------------------------------------- #
class TestStackedAllocation:
    def test_stacked_steady_loop_is_allocation_free(self):
        app = all_apps()["jacobi3d"]
        shape = APP_MESHES["jacobi3d"]
        program = app.program_on(shape)
        batch = [app.fields(shape, seed=s) for s in range(6)]
        compiled = CompiledPlanCache().get(program, batch[0], batch=6)
        compiled.load_stacked(batch)
        compiled.run_iterations(4)  # past warm-up, into the steady tapes
        tracemalloc.start()
        compiled.run_iterations(30)
        compiled.run_iterations(30)
        base_cur, base_peak = tracemalloc.get_traced_memory()
        compiled.run_iterations(30)
        cur, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert cur - base_cur < 512, "stacked steady loop leaked allocations"
        field_bytes = batch[0][program.state_fields[0]].data.nbytes
        assert peak - base_peak < min(8192, field_bytes // 2)


# --------------------------------------------------------------------------- #
# flat-mode lowering of multi-component merged runs (the RTM follow-on)
# --------------------------------------------------------------------------- #
class TestMultiComponentFlatMode:
    def test_rtm_merged_ops_run_flat_with_expanded_constants(self):
        """RTM's merged multi-component ops leave their strided views.

        Each RK4 stage's K output merges components 1..5 and every T/Y
        update merges all six — with ``mu`` pre-expanded into a broadcast
        buffer those runs lower to contiguous flat-mode lane ops, which is
        exactly the ROADMAP follow-on this plan-introspection test pins.
        """
        app = rtm_app((12, 12, 10))
        program = app.program_on((12, 12, 10))
        fields = app.fields((12, 12, 10))
        specs = {name: f.spec for name, f in fields.items()}
        plan = lower_program(program, program.mesh, specs)
        flat_ops = [op for op in plan.steady_odd if op.flat]
        assert flat_ops, "RTM steady tape has no flat-mode ops"
        # the majority of the arithmetic rides the flat lane windows; the
        # only strided interior arithmetic left is the four narrow
        # component-0 expressions (rho damping term)
        arith = [op for op in plan.steady_odd if op.op not in ("copy", "fill")]
        assert len(flat_ops) / len(arith) > 0.5
        # mu is read at a fixed component inside the merged runs -> one
        # load-time broadcast expansion to the 6-lane element stride
        assert plan.expansions == {"inx:mu:0x6": ("mu", 0)}
        # flat registers carry their per-mesh lane span so batch-major
        # executors can extend them across the stack
        assert any(span for (_, span) in plan.registers)

    def test_narrow_runs_stay_on_strided_views(self):
        """A width-1 run of a 6-component output must not go flat.

        Computing all six components' lanes to keep one would waste 6x the
        arithmetic; the lane-efficiency gate keeps such runs in interior
        mode (RTM's component-0 rho term is the motivating case).
        """
        mesh = MeshSpec((10, 8), components=4)

        def comp_expr(c):
            u = lambda dx, dy: FieldAccess("U", (dx, dy), c)
            if c == 0:
                return u(-1, 0) + u(1, 0) + Const(float(c))
            return u(0, -1) * Const(2.0 + c)

        kernel = StencilKernel(
            "narrow",
            (KernelOutput("U", tuple(comp_expr(c) for c in range(4)), "U"),),
        )
        program = single_kernel_program("narrow", mesh, kernel)
        plan = lower_program(program, mesh, {"U": mesh})
        assert not any(op.flat for op in plan.steady_odd)

    def test_multi_component_flat_is_bit_identical_under_batching(self):
        app = rtm_app((12, 12, 10))
        program = app.program_on((12, 12, 10))
        batch = [app.fields((12, 12, 10), seed=s) for s in range(3)]
        _assert_stacked_matches_replay_and_interpreter(program, batch, 4)


# --------------------------------------------------------------------------- #
# property test: random programs x batch sizes x iteration counts
# --------------------------------------------------------------------------- #
@st.composite
def random_kernel_exprs(draw):
    """A random 2D expression over U (radius <= 2) plus one coefficient."""
    offsets = st.tuples(
        st.integers(min_value=-2, max_value=2),
        st.integers(min_value=-2, max_value=2),
    )

    def leaf():
        return st.one_of(
            st.floats(
                min_value=-2.0, max_value=2.0, allow_nan=False, width=32
            ).map(Const),
            st.just(Coef("c")),
            offsets.map(lambda off: FieldAccess("U", off)),
        )

    def compose(children):
        return st.one_of(
            st.tuples(children, children).map(lambda ab: ab[0] + ab[1]),
            st.tuples(children, children).map(lambda ab: ab[0] - ab[1]),
            st.tuples(children, children).map(lambda ab: ab[0] * ab[1]),
            # divide only by safely-nonzero literals: bit-identity must not
            # depend on inf/nan propagation quirks
            st.tuples(
                children,
                st.floats(min_value=0.5, max_value=2.0, allow_nan=False, width=32),
            ).map(lambda ab: ab[0] / Const(ab[1])),
            children.map(lambda e: -e),
        )

    expr = draw(st.recursive(leaf(), compose, max_leaves=10))
    if not any(isinstance(n, FieldAccess) for n in _walk(expr)):
        expr = expr + FieldAccess("U", (draw(offsets)))
    cval = draw(
        st.floats(min_value=-1.5, max_value=1.5, allow_nan=False, width=32)
    )
    return expr, cval


def _walk(expr):
    from repro.stencil.expr import walk

    return walk(expr)


class TestPropertyStackedEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(
        data=random_kernel_exprs(),
        mesh_shape=st.tuples(
            st.integers(min_value=9, max_value=13),
            st.integers(min_value=7, max_value=11),
        ),
        batch=st.integers(min_value=1, max_value=4),
        niter=st.integers(min_value=0, max_value=3),
        seed=st.integers(min_value=0, max_value=3),
    )
    def test_random_programs_stacked_bit_identical(
        self, data, mesh_shape, batch, niter, seed
    ):
        expr, cval = data
        kernel = single_output_kernel("rand", "U", expr, {"c": cval})
        mesh = MeshSpec(mesh_shape)
        program = single_kernel_program("rand_prog", mesh, kernel)
        envs = [
            {"U": Field.random("U", mesh, seed=seed + b, lo=-1.0, hi=1.0)}
            for b in range(batch)
        ]
        cache = CompiledPlanCache()
        stacked = run_program_stacked(program, envs, niter, cache=cache)
        for env, got in zip(envs, stacked):
            replay = run_program_compiled(program, env, niter, cache=cache)
            _assert_env_equal(replay, got)
            gold = run_program(program, env, niter, engine="interpreter")
            _assert_env_equal(gold, got)


# --------------------------------------------------------------------------- #
# chunked stacking
# --------------------------------------------------------------------------- #
class TestChunkedStacking:
    def test_chunk_sizes_shapes(self):
        from repro.stencil.compiled import stacked_chunk_sizes

        assert stacked_chunk_sizes(10, 100, 450) == [4, 4, 2]
        assert stacked_chunk_sizes(8, 100, float("inf")) == [8]
        assert stacked_chunk_sizes(8, 100, 800) == [8]
        assert stacked_chunk_sizes(5, 100, 99) == [1] * 5
        assert stacked_chunk_sizes(5, 100, 0) == [1] * 5
        assert stacked_chunk_sizes(1, 100, 0) == [1]
        assert stacked_chunk_sizes(6, 0, 100) == [6]  # degenerate footprint
        with pytest.raises(ValidationError):
            stacked_chunk_sizes(0, 100, 100)
        with pytest.raises(ValidationError):
            stacked_chunk_sizes(4, 100, -1)

    def test_chunk_sizes_partition_the_batch(self):
        from repro.stencil.compiled import stacked_chunk_sizes

        for batch in range(1, 40):
            for limit in (0, 1, 150, 450, 1000, 10**6, float("inf")):
                chunks = stacked_chunk_sizes(batch, 100, limit)
                assert sum(chunks) == batch
                assert all(c >= 1 for c in chunks)
                if limit >= 100:
                    # every chunk respects the budget when one mesh fits it
                    assert all(c * 100 <= limit for c in chunks)

    @pytest.mark.parametrize("app_key", ["poisson2d", "jacobi3d", "rtm"])
    def test_chunked_equals_unchunked_and_interpreter(self, app_key):
        """Forcing small chunks changes dispatch, never results."""
        app = all_apps()[app_key]
        shape = APP_MESHES[app_key]
        program = app.program_on(shape)
        batch = [app.fields(shape, seed=40 + s) for s in range(5)]
        niter = 4
        cache = CompiledPlanCache()
        plan_bytes = cache.plan_for(program, batch[0]).nbytes
        stats_chunked: dict = {}
        chunked = run_program_stacked(
            program, batch, niter, cache=cache,
            max_stack_bytes=plan_bytes * 2,  # chunks of 2 (+ remainder 1)
            stats=stats_chunked,
        )
        assert stats_chunked["chunks"] == [2, 2, 1]
        assert stats_chunked["dispatches"] == 3
        whole = run_program_stacked(
            program, batch, niter, cache=cache, max_stack_bytes=float("inf")
        )
        for env, got_chunked, got_whole in zip(batch, chunked, whole):
            gold = run_program(program, env, niter, engine="interpreter")
            _assert_env_equal(gold, got_chunked)
            _assert_env_equal(gold, got_whole)

    def test_full_chunks_share_one_compiled_instance(self):
        """[C, C, ..., r] chunking binds at most two batch-major instances."""
        app = all_apps()["poisson2d"]
        shape = APP_MESHES["poisson2d"]
        program = app.program_on(shape)
        batch = [app.fields(shape, seed=s) for s in range(7)]
        cache = CompiledPlanCache()
        plan_bytes = cache.plan_for(program, batch[0]).nbytes
        stats: dict = {}
        run_program_stacked(
            program, batch, 2, cache=cache,
            max_stack_bytes=plan_bytes * 3, stats=stats,
        )
        assert stats["chunks"] == [3, 3, 1]
        # one lowering; bound instances: batch=3 (shared by both full
        # chunks) and the single-mesh remainder
        assert cache.misses == 2

    def test_stats_account_for_fallback_paths(self):
        app = all_apps()["jacobi3d"]
        shape = APP_MESHES["jacobi3d"]
        program = app.program_on(shape)
        batch = [app.fields(shape, seed=s) for s in range(3)]
        stats: dict = {}
        run_program_stacked(
            program, batch, 0, cache=CompiledPlanCache(), stats=stats
        )
        assert stats == {
            "chunks": [],
            "dispatches": 0,
            "stacked_meshes": 0,
            "chunk_seconds": [],
        }
        stats = {}
        run_program_stacked(
            program, batch[:1], 2, cache=CompiledPlanCache(), stats=stats
        )
        assert stats["dispatches"] == 1
        stats = {}
        run_program_stacked(
            program, batch, 2, cache=CompiledPlanCache(),
            max_stack_bytes=0, stats=stats,
        )
        assert stats["chunks"] == [1, 1, 1]
        assert stats["stacked_meshes"] == 0

    @settings(max_examples=12, deadline=None)
    @given(
        batch=st.integers(min_value=2, max_value=7),
        chunk_meshes=st.integers(min_value=1, max_value=7),
        niter=st.integers(min_value=1, max_value=4),
    )
    def test_property_chunked_bit_identical_to_per_mesh(
        self, batch, chunk_meshes, niter
    ):
        """Any (batch, budget) split is bit-identical to per-mesh solves."""
        app = all_apps()["poisson2d"]
        shape = APP_MESHES["poisson2d"]
        program = app.program_on(shape)
        envs = [app.fields(shape, seed=60 + s) for s in range(batch)]
        cache = CompiledPlanCache()
        plan_bytes = cache.plan_for(program, envs[0]).nbytes
        stats: dict = {}
        chunked = run_program_stacked(
            program, envs, niter, cache=cache,
            max_stack_bytes=plan_bytes * chunk_meshes, stats=stats,
        )
        assert sum(stats["chunks"]) == batch
        assert max(stats["chunks"]) <= max(1, chunk_meshes)
        for env, got in zip(envs, chunked):
            solo = run_program_compiled(program, env, niter, cache=cache)
            _assert_env_equal(solo, got)


class TestStackedBytesLimitKnob:
    """The budget is a real parameter on every batched entry point."""

    def _setup(self, batch=4):
        from repro.apps.registry import all_apps as _apps

        app = _apps()["poisson2d"]
        shape = APP_MESHES["poisson2d"]
        program = app.program_on(shape)
        envs = [app.fields(shape, seed=s) for s in range(batch)]
        return app, program, envs

    def test_pipeline_run_batch_limit(self):
        from repro.dataflow.pipeline import IterativePipeline

        app, program, envs = self._setup()
        cache = CompiledPlanCache()
        pipe = IterativePipeline(program, V=1, p=2, plan_cache=cache)
        got = pipe.run_batch(envs, 2, stacked_bytes_limit=0)
        assert cache.misses == 1  # per-mesh: only the single-mesh instance
        for env, res in zip(envs, got):
            gold = run_program(program, env, 2, engine="interpreter")
            _assert_env_equal(gold, res)
        pipe.run_batch(envs, 2, stacked_bytes_limit=float("inf"))
        assert cache.misses == 2  # whole-batch instance bound now

    def test_batch_runner_limit_constructor_and_call(self):
        from repro.dataflow.batcher import BatchRunner

        app, program, envs = self._setup()
        cache = CompiledPlanCache()
        runner = BatchRunner(
            program, app.design(p=2, V=1), plan_cache=cache,
            stacked_bytes_limit=0,
        )
        runner.run(envs, 2)
        assert cache.misses == 1  # constructor default: per-mesh
        runner.run(envs, 2, stacked_bytes_limit=float("inf"))
        assert cache.misses == 2  # per-call override wins

    def test_accelerator_run_batch_limit(self):
        from repro.dataflow.accelerator import FPGAAccelerator

        app, program, envs = self._setup()
        cache = CompiledPlanCache()
        acc = FPGAAccelerator(program, app.design(p=2, V=1), plan_cache=cache)
        results, report = acc.run_batch(
            envs, 2, stacked_bytes_limit=float("inf")
        )
        assert report.passes == 1
        for env, res in zip(envs, results):
            gold = run_program(program, env, 2, engine="interpreter")
            _assert_env_equal(gold, res)


class TestRunMix:
    """Mixes ride the same entry points batches do."""

    def test_pipeline_and_accelerator_run_mix(self):
        from repro.dataflow.accelerator import FPGAAccelerator
        from repro.dataflow.pipeline import IterativePipeline

        app = all_apps()["poisson2d"]
        program = app.program_on((20, 16))
        groups = [
            ([app.fields((20, 16), seed=s) for s in range(3)], 4),
            ([app.fields((12, 10), seed=s) for s in range(2)], 2),
        ]
        pipe = IterativePipeline(program, V=1, p=2)
        got = pipe.run_mix(groups)
        assert [len(g) for g in got] == [3, 2]
        for (batch, niter), results in zip(groups, got):
            for env, res in zip(batch, results):
                gold = run_program(program, env, niter, engine="interpreter")
                _assert_env_equal(gold, res)

        acc = FPGAAccelerator(program, app.design(p=2, V=1))
        results, mix_report = acc.run_mix(groups)
        assert len(mix_report.reports) == 2
        assert mix_report.seconds == pytest.approx(
            sum(r.seconds for r in mix_report.reports)
        )
        assert mix_report.power_w == max(
            r.power_w for r in mix_report.reports
        )
        for (batch, niter), group_results in zip(groups, results):
            for env, res in zip(batch, group_results):
                gold = run_program(program, env, niter, engine="interpreter")
                _assert_env_equal(gold, res)

    def test_empty_mix_rejected(self):
        from repro.dataflow.pipeline import IterativePipeline

        app = all_apps()["poisson2d"]
        program = app.program_on((20, 16))
        pipe = IterativePipeline(program, V=1, p=2)
        with pytest.raises(ValidationError):
            pipe.run_mix([])

    def test_batch_runner_run_mix(self):
        from repro.dataflow.batcher import BatchRunner

        app = all_apps()["poisson2d"]
        program = app.program_on((20, 16))
        runner = BatchRunner(program, app.design(p=2, V=1))
        groups = [
            ([app.fields((20, 16), seed=s) for s in range(3)], 4),
            ([app.fields((12, 10), seed=s) for s in range(2)], 2),
        ]
        got = runner.run_mix(groups)
        assert [len(g) for g in got] == [3, 2]
        for (batch, niter), results in zip(groups, got):
            for env, res in zip(batch, results):
                gold = run_program(program, env, niter, engine="interpreter")
                _assert_env_equal(gold, res)
        # per-group spec validation still applies inside a mix
        mismatched = [(groups[0][0] + groups[1][0], 2)]
        with pytest.raises(ValidationError):
            runner.run_mix(mismatched)
        with pytest.raises(ValidationError):
            runner.run_mix([])
