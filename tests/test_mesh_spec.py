"""Unit tests for MeshSpec."""

import numpy as np
import pytest

from repro.mesh.mesh import MeshSpec
from repro.util.errors import ValidationError


class TestMeshSpecBasics:
    def test_2d_accessors(self):
        spec = MeshSpec((200, 100))
        assert spec.ndim == 2
        assert spec.m == 200
        assert spec.n == 100
        assert spec.num_points == 20000

    def test_3d_accessors(self):
        spec = MeshSpec((50, 60, 70))
        assert spec.ndim == 3
        assert (spec.m, spec.n, spec.l) == (50, 60, 70)
        assert spec.num_points == 50 * 60 * 70

    def test_l_undefined_for_2d(self):
        with pytest.raises(ValidationError):
            _ = MeshSpec((4, 4)).l

    def test_rejects_1d(self):
        with pytest.raises(ValidationError):
            MeshSpec((10,))

    def test_rejects_4d(self):
        with pytest.raises(ValidationError):
            MeshSpec((2, 2, 2, 2))

    def test_rejects_zero_extent(self):
        with pytest.raises(ValidationError):
            MeshSpec((0, 5))


class TestSizes:
    def test_elem_bytes_scalar_f32(self):
        assert MeshSpec((4, 4)).elem_bytes == 4

    def test_elem_bytes_rtm_vector(self):
        # RTM: 6-float vector elements = 24 bytes (k in eq. 7)
        assert MeshSpec((4, 4, 4), components=6).elem_bytes == 24

    def test_footprint(self):
        spec = MeshSpec((100, 100), components=2)
        assert spec.footprint_bytes == 100 * 100 * 8

    def test_storage_shape_is_reversed_paper_order(self):
        spec = MeshSpec((5, 6, 7), components=3)
        assert spec.storage_shape == (7, 6, 5, 3)

    def test_plane_points(self):
        assert MeshSpec((5, 6, 7)).plane_points == 30
        assert MeshSpec((5, 6)).plane_points == 5


class TestInteriorSlices:
    def test_2d_radius(self):
        spec = MeshSpec((10, 8))
        slices = spec.interior_slices((2, 1))
        # storage order (n, m): n gets radius 1, m gets radius 2
        assert slices == (slice(1, 7), slice(2, 8))

    def test_scalar_radius_broadcast(self):
        spec = MeshSpec((10, 8))
        assert spec.interior_slices(1) == (slice(1, 7), slice(1, 9))

    def test_rejects_radius_too_large(self):
        with pytest.raises(ValidationError):
            MeshSpec((4, 4)).interior_slices(2)

    def test_rejects_wrong_rank(self):
        with pytest.raises(ValidationError):
            MeshSpec((4, 4)).interior_slices((1, 1, 1))

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            MeshSpec((8, 8)).interior_slices((-1, 0))


class TestEqualityAndRebind:
    def test_frozen_equality(self):
        assert MeshSpec((4, 4)) == MeshSpec((4, 4))
        assert MeshSpec((4, 4)) != MeshSpec((4, 4), components=2)

    def test_with_shape(self):
        spec = MeshSpec((4, 4), components=6)
        other = spec.with_shape((8, 8))
        assert other.shape == (8, 8)
        assert other.components == 6

    def test_dtype_normalized(self):
        spec = MeshSpec((4, 4), dtype="float32")
        assert spec.dtype == np.dtype(np.float32)

    def test_str(self):
        assert "4x5" in str(MeshSpec((4, 5)))
