"""Unit tests for the text table formatter."""

import pytest

from repro.util.errors import ValidationError
from repro.util.tables import TextTable


class TestTextTable:
    def test_renders_header_and_rows(self):
        t = TextTable(["mesh", "runtime"])
        t.add_row(["200x100", 0.03])
        out = t.render()
        assert "mesh" in out and "200x100" in out and "0.03" in out

    def test_column_alignment(self):
        t = TextTable(["a", "b"])
        t.add_row(["xxxxxx", 1])
        lines = t.render().splitlines()
        # all rows have the same width
        assert len(lines[0]) == len(lines[2])

    def test_title(self):
        t = TextTable(["a"], title="Table II")
        assert t.render().startswith("Table II")

    def test_rejects_wrong_row_length(self):
        t = TextTable(["a", "b"])
        with pytest.raises(ValidationError):
            t.add_row([1])

    def test_rejects_empty_columns(self):
        with pytest.raises(ValidationError):
            TextTable([])

    def test_float_formatting(self):
        t = TextTable(["v"])
        t.add_row([0.000123])
        t.add_row([123456.0])
        t.add_row([0.0])
        out = t.render()
        assert "0.000123" in out
        assert "0" in out

    def test_none_and_bool(self):
        t = TextTable(["v"])
        t.add_row([None])
        t.add_row([True])
        out = t.render()
        assert "None" in out and "True" in out
