"""Unit tests: spatial tiling is functionally exact and counts cycles sanely."""

import numpy as np
import pytest

from repro.arch.device import ALVEO_U280
from repro.dataflow.tiler import SpatialTiler
from repro.mesh.mesh import Field, MeshSpec
from repro.model.design import DesignPoint
from repro.model.tiling import TileDesign
from repro.stencil.builders import jacobi2d_5pt, jacobi3d_7pt
from repro.stencil.numpy_eval import run_program
from repro.stencil.program import single_kernel_program
from repro.util.errors import ValidationError


def _tiled_design(tile, p=2, V=2, memory="DDR4"):
    return DesignPoint(V=V, p=p, clock_mhz=250.0, memory=memory, tile=TileDesign(tile))


class TestTiler2D:
    def test_matches_untiled_golden(self):
        spec = MeshSpec((64, 12))
        prog = single_kernel_program("p", spec, jacobi2d_5pt())
        f = Field.random("U", spec, seed=31)
        tiler = SpatialTiler(prog, _tiled_design((20,)), ALVEO_U280)
        ours = tiler.run({"U": f}, 6)
        gold = run_program(prog, {"U": f}, 6, engine="interpreter")
        assert np.array_equal(ours["U"].data, gold["U"].data)

    def test_tile_not_dividing_mesh(self):
        spec = MeshSpec((37, 9))
        prog = single_kernel_program("p", spec, jacobi2d_5pt())
        f = Field.random("U", spec, seed=32)
        tiler = SpatialTiler(prog, _tiled_design((17,)), ALVEO_U280)
        ours = tiler.run({"U": f}, 4)
        gold = run_program(prog, {"U": f}, 4, engine="interpreter")
        assert np.array_equal(ours["U"].data, gold["U"].data)

    def test_tile_larger_than_mesh(self):
        spec = MeshSpec((16, 8))
        prog = single_kernel_program("p", spec, jacobi2d_5pt())
        f = Field.random("U", spec, seed=33)
        tiler = SpatialTiler(prog, _tiled_design((64,)), ALVEO_U280)
        ours = tiler.run({"U": f}, 2)
        gold = run_program(prog, {"U": f}, 2, engine="interpreter")
        assert np.array_equal(ours["U"].data, gold["U"].data)

    def test_requires_tiled_design(self, poisson_program):
        with pytest.raises(ValidationError):
            SpatialTiler(poisson_program, DesignPoint(2, 2, 250.0), ALVEO_U280)

    def test_niter_multiple_of_p(self):
        spec = MeshSpec((32, 8))
        prog = single_kernel_program("p", spec, jacobi2d_5pt())
        f = Field.random("U", spec, seed=34)
        tiler = SpatialTiler(prog, _tiled_design((16,), p=4), ALVEO_U280)
        with pytest.raises(ValidationError, match="multiple"):
            tiler.run({"U": f}, 6)


class TestTiler3D:
    def test_matches_untiled_golden(self):
        spec = MeshSpec((24, 20, 6))
        prog = single_kernel_program("j", spec, jacobi3d_7pt())
        f = Field.random("U", spec, seed=35)
        tiler = SpatialTiler(prog, _tiled_design((10, 12)), ALVEO_U280)
        ours = tiler.run({"U": f}, 4)
        gold = run_program(prog, {"U": f}, 4, engine="interpreter")
        assert np.array_equal(ours["U"].data, gold["U"].data)

    def test_3d_requires_mn_tile(self):
        spec = MeshSpec((24, 20, 6))
        prog = single_kernel_program("j", spec, jacobi3d_7pt())
        f = Field.random("U", spec, seed=36)
        tiler = SpatialTiler(prog, _tiled_design((10,)), ALVEO_U280)
        with pytest.raises(ValidationError, match="(M, N)"):
            tiler.run({"U": f}, 2)

    def test_halo_per_axis(self):
        spec = MeshSpec((24, 20, 6))
        prog = single_kernel_program("j", spec, jacobi3d_7pt())
        tiler = SpatialTiler(prog, _tiled_design((10, 12), p=3), ALVEO_U280)
        assert tiler.halo(0) == 3
        assert tiler.halo(1) == 3


class TestTilerCycles:
    def test_pass_cycles_positive_and_scaling(self):
        spec = MeshSpec((15000, 15000))
        prog = single_kernel_program("p", spec, jacobi2d_5pt())
        design_small = DesignPoint(8, 60, 250.0, "DDR4", TileDesign((512,)))
        design_big = DesignPoint(8, 60, 250.0, "DDR4", TileDesign((8000,)))
        small = SpatialTiler(prog, design_small, ALVEO_U280).pass_cycles(spec, 250e6)
        big = SpatialTiler(prog, design_big, ALVEO_U280).pass_cycles(spec, 250e6)
        assert big < small  # less redundant compute with larger tiles

    def test_total_cycles_proportional_to_passes(self):
        spec = MeshSpec((15000, 15000))
        prog = single_kernel_program("p", spec, jacobi2d_5pt())
        design = DesignPoint(8, 60, 250.0, "DDR4", TileDesign((4096,)))
        tiler = SpatialTiler(prog, design, ALVEO_U280)
        one = tiler.total_cycles(spec, 60, 250e6)
        ten = tiler.total_cycles(spec, 600, 250e6)
        assert ten == pytest.approx(10 * one)
