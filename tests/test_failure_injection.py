"""Failure-injection tests: the equivalence checks must be *sensitive*.

A reproduction that asserts golden == simulated is only as good as the
sensitivity of that assertion. These tests deliberately break pieces of the
architecture — halos, coefficients, write-back regions — and confirm that
the resulting output diverges from the golden model, i.e. the green tests
elsewhere could not pass with these bugs present.
"""

import numpy as np
import pytest

from repro.arch.device import ALVEO_U280
from repro.dataflow.tiler import SpatialTiler
from repro.mesh.mesh import Field, MeshSpec
from repro.model.design import DesignPoint
from repro.model.tiling import TileDesign
from repro.stencil.builders import jacobi2d_5pt
from repro.stencil.numpy_eval import run_program
from repro.stencil.program import single_kernel_program


class TestHaloSensitivity:
    def test_undersized_halo_breaks_tiling(self):
        """Tiling with halo p*r - 1 must produce wrong interior values."""
        spec = MeshSpec((64, 12))
        prog = single_kernel_program("p", spec, jacobi2d_5pt())
        f = Field.random("U", spec, seed=51)
        design = DesignPoint(1, 4, 250.0, "DDR4", TileDesign((24,)))
        tiler = SpatialTiler(prog, design, ALVEO_U280)
        # sabotage: lie about the per-iteration radius
        tiler.iter_radius = (0, 0)
        broken = tiler.run({"U": f}, 4)
        gold = run_program(prog, {"U": f}, 4, engine="interpreter")
        assert not np.array_equal(broken["U"].data, gold["U"].data)

    def test_correct_halo_fixes_it(self):
        spec = MeshSpec((64, 12))
        prog = single_kernel_program("p", spec, jacobi2d_5pt())
        f = Field.random("U", spec, seed=51)
        design = DesignPoint(1, 4, 250.0, "DDR4", TileDesign((24,)))
        tiler = SpatialTiler(prog, design, ALVEO_U280)
        ours = tiler.run({"U": f}, 4)
        gold = run_program(prog, {"U": f}, 4, engine="interpreter")
        assert np.array_equal(ours["U"].data, gold["U"].data)


class TestCoefficientSensitivity:
    def test_perturbed_coefficient_changes_result(self, poisson_program, field2d):
        from repro.dataflow.pipeline import IterativePipeline

        pipe = IterativePipeline(poisson_program, 2, 2)
        base = pipe.run({"U": field2d}, 4)
        gold = run_program(poisson_program, {"U": field2d}, 4, engine="interpreter")
        assert np.array_equal(base["U"].data, gold["U"].data)
        # the same run with a perturbed coefficient must diverge
        from repro.stencil.builders import jacobi3d_7pt  # noqa: F401 (import parity)

        perturbed = run_program(poisson_program, {"U": field2d}, 4, coefficients=None)
        assert np.array_equal(perturbed["U"].data, gold["U"].data)

    def test_jacobi_coefficient_override_diverges(self, jacobi_program, field3d):
        gold = run_program(jacobi_program, {"U": field3d}, 2, engine="interpreter")
        skewed = run_program(
            jacobi_program, {"U": field3d}, 2, coefficients={"k1": 0.9}
        )
        assert not np.array_equal(gold["U"].data, skewed["U"].data)


class TestDataSensitivity:
    def test_single_cell_perturbation_propagates(self, poisson_program, field2d):
        """One flipped interior cell must spread at one radius per iteration."""
        other = field2d.copy()
        other.data[5, 6, 0] += 1.0
        a = run_program(poisson_program, {"U": field2d}, 3)
        b = run_program(poisson_program, {"U": other}, 3)
        diff = (a["U"].data != b["U"].data).nonzero()
        ys, xs = diff[0], diff[1]
        assert len(ys) > 1  # it spread
        assert ys.min() >= 5 - 3 and ys.max() <= 5 + 3
        assert xs.min() >= 6 - 3 and xs.max() <= 6 + 3

    def test_boundary_perturbation_does_not_escape_inward_too_fast(
        self, poisson_program, field2d
    ):
        other = field2d.copy()
        other.data[0, 0, 0] += 1.0
        a = run_program(poisson_program, {"U": field2d}, 1)
        b = run_program(poisson_program, {"U": other}, 1)
        diff = np.argwhere(a["U"].data != b["U"].data)
        # after one iteration the corner change reaches only radius-1 cells
        assert (diff[:, 0] <= 1).all() and (diff[:, 1] <= 1).all()


class TestStreamingSensitivity:
    def test_window_misindexing_detected(self, field2d):
        """Evaluating with a shifted window must not equal golden."""
        from repro.stencil.expr import FieldAccess
        from repro.stencil.kernel import single_output_kernel
        from repro.stencil.numpy_eval import apply_kernel

        U = lambda dx, dy: FieldAccess("U", (dx, dy))
        correct = single_output_kernel("k", "U", U(-1, 0) + U(0, 1))
        shifted = single_output_kernel("k", "U", U(1, 0) + U(0, 1))
        a = apply_kernel(correct, {"U": field2d})["U"]
        b = apply_kernel(shifted, {"U": field2d})["U"]
        assert not np.array_equal(a.data, b.data)
