"""Unit tests for the AXI data movers."""

import pytest

from repro.arch.device import ALVEO_U280
from repro.dataflow.datamover import DataMover, TransferStats
from repro.util.errors import ValidationError


class TestContiguous:
    def test_full_mesh_stream_efficiency(self):
        mover = DataMover(ALVEO_U280, "HBM", 300e6)
        stats = mover.contiguous(4 * 10**6)
        # long contiguous streams approach one bus word per cycle
        assert stats.cycles < 1.05 * (4 * 10**6 / 64)
        assert stats.efficiency > 0.99

    def test_small_transfer_latency_visible(self):
        mover = DataMover(ALVEO_U280, "HBM", 300e6)
        stats = mover.contiguous(64)
        assert stats.cycles >= 14

    def test_rejects_zero(self):
        mover = DataMover(ALVEO_U280, "HBM", 300e6)
        with pytest.raises(ValidationError):
            mover.contiguous(0)


class TestStrided:
    def test_row_alignment_counted(self):
        mover = DataMover(ALVEO_U280, "DDR4", 250e6)
        stats = mover.strided_rows(36, 100)
        assert stats.bytes_useful == 3600
        assert stats.bytes_moved == 6400  # 64 B per row after alignment
        assert stats.efficiency == pytest.approx(36 / 64)

    def test_long_runs_amortize(self):
        mover = DataMover(ALVEO_U280, "DDR4", 250e6)
        short = mover.strided_rows(256, 1000)
        long = mover.strided_rows(32768, 1000)
        per_byte_short = short.cycles / short.bytes_useful
        per_byte_long = long.cycles / long.bytes_useful
        assert per_byte_long < per_byte_short

    def test_channel_limited_cycles(self):
        mover = DataMover(ALVEO_U280, "HBM", 250e6)
        one = mover.channel_limited_cycles(1e9, channels=1)
        four = mover.channel_limited_cycles(1e9, channels=4)
        assert one == pytest.approx(4 * four)


class TestTransferStats:
    def test_efficiency_empty(self):
        assert TransferStats(0, 0, 0).efficiency == 1.0
