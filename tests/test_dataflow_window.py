"""Unit tests: literal window-buffer streaming matches the golden evaluator."""

import numpy as np
import pytest

from repro.dataflow.window import LineBufferStream, stream_iterate_2d, stream_iterate_3d
from repro.mesh.mesh import Field, MeshSpec
from repro.stencil.builders import jacobi2d_5pt, jacobi3d_7pt, weighted_star_kernel, star_offsets
from repro.stencil.numpy_eval import apply_kernel
from repro.util.errors import ValidationError


class TestLineBufferStream:
    def test_window_emitted_when_full(self):
        buf = LineBufferStream(1)
        assert buf.push(np.array([1.0])) is None
        assert buf.push(np.array([2.0])) is None
        window = buf.push(np.array([3.0]))
        assert [w[0] for w in window] == [1.0, 2.0, 3.0]

    def test_cyclic_rotation(self):
        buf = LineBufferStream(1)
        for v in (1.0, 2.0, 3.0):
            buf.push(np.array([v]))
        window = buf.push(np.array([4.0]))
        assert [w[0] for w in window] == [2.0, 3.0, 4.0]

    def test_depth_matches_paper_d_plus_one(self):
        # a D-order stencil holds D buffered lines plus the incoming one
        assert LineBufferStream(1).depth == 3
        assert LineBufferStream(4).depth == 9

    def test_window_accessor(self):
        buf = LineBufferStream(1)
        assert buf.window() == []
        buf.push(np.array([1.0]))
        buf.push(np.array([2.0]))
        window = buf.window()
        assert [w[0] for w in window] == [1.0, 2.0]
        # the accessor returns a snapshot, not the live deque
        window.append(np.array([9.0]))
        assert [w[0] for w in buf.window()] == [1.0, 2.0]

    def test_radius_zero(self):
        buf = LineBufferStream(0)
        assert buf.push(np.array([5.0])) == [np.array([5.0])]

    def test_reset(self):
        buf = LineBufferStream(1)
        buf.push(np.array([1.0]))
        buf.reset()
        assert not buf.full
        assert buf.pushes == 0

    def test_rejects_negative_radius(self):
        with pytest.raises(ValidationError):
            LineBufferStream(-1)


class TestStream2DEquivalence:
    def test_poisson_bit_identical(self, field2d):
        k = jacobi2d_5pt()
        golden = apply_kernel(k, {"U": field2d})["U"]
        streamed = stream_iterate_2d(k, {"U": field2d})["U"]
        assert np.array_equal(golden.data, streamed.data)

    def test_higher_order_star(self):
        spec = MeshSpec((14, 12))
        f = Field.random("U", spec, seed=21)
        offsets = star_offsets(2, 2)
        weights = {tuple(o): 1.0 / len(offsets) for o in offsets}
        k = weighted_star_kernel("star4", "U", 2, 2, weights=weights)
        golden = apply_kernel(k, {"U": f})["U"]
        streamed = stream_iterate_2d(k, {"U": f})["U"]
        assert np.array_equal(golden.data, streamed.data)

    def test_multi_field(self):
        spec = MeshSpec((10, 8))
        from repro.stencil.expr import FieldAccess

        U = lambda dx, dy: FieldAccess("U", (dx, dy))
        R = lambda: FieldAccess("R", (0, 0))
        from repro.stencil.kernel import single_output_kernel

        k = single_output_kernel("mix", "U", R() * (U(-1, 0) + U(1, 0)))
        fields = {
            "U": Field.random("U", spec, seed=1),
            "R": Field.random("R", spec, seed=2),
        }
        golden = apply_kernel(k, fields)["U"]
        streamed = stream_iterate_2d(k, fields)["U"]
        assert np.array_equal(golden.data, streamed.data)


class TestStream3DEquivalence:
    def test_jacobi_bit_identical(self, field3d):
        k = jacobi3d_7pt()
        golden = apply_kernel(k, {"U": field3d})["U"]
        streamed = stream_iterate_3d(k, {"U": field3d})["U"]
        assert np.array_equal(golden.data, streamed.data)

    def test_rtm_stage_bit_identical(self):
        from repro.apps.rtm import build_rtm_program

        prog = build_rtm_program((12, 12, 10))
        stage1 = prog.groups[0].kernels[0]
        spec = MeshSpec((12, 12, 10), components=6)
        scalar = MeshSpec((12, 12, 10), 1)
        fields = {
            "Y": Field.random("Y", spec, seed=3),
            "rho": Field.random("rho", scalar, seed=4),
            "mu": Field.random("mu", scalar, seed=5),
        }
        golden = apply_kernel(stage1, fields)
        streamed = stream_iterate_3d(stage1, fields)
        for name in ("K1", "T"):
            assert np.array_equal(golden[name].data, streamed[name].data), name

    def test_rank_checked(self, field2d):
        with pytest.raises(ValidationError):
            stream_iterate_3d(jacobi3d_7pt(), {"U": field2d})

    def test_missing_field(self):
        with pytest.raises(ValidationError):
            stream_iterate_2d(jacobi2d_5pt(), {})
