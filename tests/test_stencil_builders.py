"""Unit tests for stencil builders: shapes, op counts, paper kernels."""

import pytest

from repro.model.resources import gdsp_kernel
from repro.stencil.builders import (
    box_offsets,
    high_order_star_1d_terms,
    jacobi2d_5pt,
    jacobi3d_7pt,
    star_offsets,
    weighted_star_kernel,
)
from repro.stencil.expr import count_ops
from repro.util.errors import ValidationError


class TestOffsets:
    def test_star_2d_point_count(self):
        assert len(star_offsets(2, 1)) == 5
        assert len(star_offsets(2, 4)) == 17

    def test_star_3d_rtm_shape(self):
        # 25-point 8th-order star: 3 axes * 8 + centre
        assert len(star_offsets(3, 4)) == 25

    def test_star_contains_centre(self):
        assert (0, 0) in star_offsets(2, 1)

    def test_box_counts(self):
        assert len(box_offsets(2, 1)) == 9
        assert len(box_offsets(3, 1)) == 27

    def test_rejects_bad_rank(self):
        with pytest.raises(ValidationError):
            star_offsets(4, 1)


class TestPaperKernels:
    def test_poisson_gdsp_matches_table2(self):
        assert gdsp_kernel(jacobi2d_5pt()) == 14

    def test_jacobi_gdsp_matches_table2(self):
        assert gdsp_kernel(jacobi3d_7pt()) == 33

    def test_poisson_order(self):
        assert jacobi2d_5pt().order == 2

    def test_jacobi_order(self):
        assert jacobi3d_7pt().order == 2

    def test_jacobi_coefficient_defaults_sum_to_one(self):
        k = jacobi3d_7pt()
        assert abs(sum(k.coefficients.values()) - 1.0) < 1e-9

    def test_jacobi_custom_coefficients(self):
        k = jacobi3d_7pt(coefficients=[1, 2, 3, 4, 5, 6, 7])
        assert k.coefficients["k7"] == 7.0

    def test_jacobi_rejects_wrong_count(self):
        with pytest.raises(ValidationError):
            jacobi3d_7pt(coefficients=[1.0])


class TestWeightedStar:
    def test_literal_weights(self):
        offsets = star_offsets(2, 1)
        weights = {tuple(o): 1.0 / len(offsets) for o in offsets}
        k = weighted_star_kernel("avg", "U", 2, 1, weights=weights)
        ops = k.op_counts()
        assert ops.muls == 5 and ops.adds == 4

    def test_named_coefficients(self):
        k = weighted_star_kernel("avg", "U", 2, 1, coef_prefix="w")
        assert len(k.coefficient_names()) == 5

    def test_missing_weight_rejected(self):
        with pytest.raises(ValidationError, match="missing weight"):
            weighted_star_kernel("avg", "U", 2, 1, weights={(0, 0): 1.0})

    def test_extra_weight_rejected(self):
        offsets = star_offsets(2, 1)
        weights = {tuple(o): 0.2 for o in offsets}
        weights[(5, 5)] = 1.0
        with pytest.raises(ValidationError, match="non-star"):
            weighted_star_kernel("avg", "U", 2, 1, weights=weights)

    def test_both_modes_rejected(self):
        with pytest.raises(ValidationError):
            weighted_star_kernel("avg", "U", 2, 1, weights={}, coef_prefix="w")


class TestHighOrderTerms:
    def test_op_structure(self):
        expr, coeffs = high_order_star_1d_terms("U", 0, 3, 4, "cx")
        ops = count_ops(expr)
        # centre mul + 4 pair muls; 4 pair adds + 4 accumulations
        assert ops.muls == 5
        assert ops.adds == 8
        assert len(coeffs) == 5

    def test_symmetry_offsets(self):
        from repro.stencil.expr import field_accesses

        expr, _ = high_order_star_1d_terms("U", 1, 3, 2, "cy")
        offsets = {a.offset for a in field_accesses(expr)}
        assert (0, 2, 0) in offsets and (0, -2, 0) in offsets
