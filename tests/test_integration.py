"""Integration tests across the full stack.

End-to-end flows a downstream user would run: describe a stencil, explore
the design space, simulate, compare against the model and GPU baseline, and
generate HLS code — for all three paper applications plus a custom kernel.
"""

import numpy as np
import pytest

from repro.apps.jacobi3d import jacobi3d_app
from repro.apps.poisson2d import poisson2d_app
from repro.apps.rtm import rtm_app
from repro.arch.device import ALVEO_U280
from repro.dataflow.accelerator import FPGAAccelerator
from repro.hls.project import HLSProject
from repro.mesh.mesh import Field, MeshSpec
from repro.model.design import DesignPoint, DesignSpace, explore_designs
from repro.stencil.builders import star_offsets, weighted_star_kernel
from repro.stencil.numpy_eval import run_program
from repro.stencil.program import single_kernel_program


class TestEndToEndCustomKernel:
    """The README quickstart flow on a user-defined stencil."""

    def _kernel(self):
        offsets = star_offsets(2, 2)
        weights = {tuple(o): 1.0 / len(offsets) for o in offsets}
        return weighted_star_kernel("custom9", "U", 2, 2, weights=weights)

    def test_full_flow(self, tmp_path):
        spec = MeshSpec((64, 32))
        program = single_kernel_program("custom", spec, self._kernel())
        workload_field = Field.random("U", spec, seed=77)

        # 1. explore the design space
        from repro.model.design import Workload

        w = Workload(spec, niter=40)
        ranked = explore_designs(program, ALVEO_U280, w, top_k=3)
        assert ranked
        design, predicted = ranked[0]

        # 2. simulate with a small functional design (niter % p == 0)
        sim_design = DesignPoint(2, 4, design.clock_mhz)
        acc = FPGAAccelerator(program, sim_design)
        result, report = acc.run({"U": workload_field}, 40)

        # 3. results are bit-identical to the golden model
        gold = run_program(program, {"U": workload_field}, 40, engine="interpreter")
        assert np.array_equal(result["U"].data, gold["U"].data)

        # 4. generate synthesizable sources
        files = HLSProject(program, sim_design).write_to(tmp_path)
        assert (tmp_path / "kernel.cpp").exists()
        assert len(files) == 4


class TestModelSimulatorAgreement:
    """The paper's +-15% model-accuracy claim, replayed against our simulator."""

    @pytest.mark.parametrize(
        "app_factory, mesh, niter",
        [
            (poisson2d_app, (200, 100), 60000),
            (poisson2d_app, (400, 400), 60000),
            (jacobi3d_app, (100, 100, 100), 29000),
            (jacobi3d_app, (250, 250, 250), 29000),
            (rtm_app, (32, 32, 32), 1800),
            (rtm_app, (50, 50, 200), 1800),
        ],
    )
    def test_pred_within_15pct_of_sim_kernel_time(self, app_factory, mesh, niter):
        app = app_factory(mesh)
        w = app.workload(mesh, niter)
        pred = app.predictor(mesh).predict(w)
        sim = app.accelerator(mesh).estimate(w)
        # compare kernel time (the model excludes host overhead)
        rel = abs(pred.seconds - sim.kernel_seconds) / sim.kernel_seconds
        assert rel < 0.15


class TestBatchedIntegration:
    def test_poisson_batch_of_heterogeneous_content(self):
        app = poisson2d_app((16, 12))
        acc = app.accelerator((16, 12), app.design(p=4, V=2))
        batch = [app.fields((16, 12), seed=s) for s in range(6)]
        results, report = acc.run_batch(batch, 8)
        for env, res in zip(batch, results):
            gold = run_program(app.program_on((16, 12)), env, 8, engine="interpreter")
            assert np.array_equal(res["U"].data, gold["U"].data)
        assert report.passes == 2

    def test_rtm_batch(self):
        # the radius-4 stencil needs every extent > 8
        app = rtm_app((12, 12, 10))
        acc = app.accelerator((12, 12, 10))
        batch = [app.fields((12, 12, 10), seed=s) for s in range(3)]
        results, _ = acc.run_batch(batch, 3)
        for env, res in zip(batch, results):
            gold = run_program(app.program_on((12, 12, 10)), env, 3, engine="interpreter")
            assert np.array_equal(res["Y"].data, gold["Y"].data)


class TestTiledIntegration:
    def test_poisson_tiled_multi_pass(self):
        app = poisson2d_app((96, 20))
        design = app.design(tile=(40,), p=4, V=2)
        acc = app.accelerator((96, 20), design)
        fields = app.fields((96, 20), seed=13)
        res, report = acc.run(fields, 12)
        gold = run_program(app.program_on((96, 20)), fields, 12, engine="interpreter")
        assert np.array_equal(res["U"].data, gold["U"].data)
        assert report.cycles > 0

    def test_jacobi_tiled_3d_multi_pass(self):
        app = jacobi3d_app((36, 30, 6))
        design = app.design(tile=(16, 14), p=2, V=2)
        acc = app.accelerator((36, 30, 6), design)
        fields = app.fields((36, 30, 6), seed=14)
        res, _ = acc.run(fields, 6)
        gold = run_program(app.program_on((36, 30, 6)), fields, 6, engine="interpreter")
        assert np.array_equal(res["U"].data, gold["U"].data)


class TestDesignSpaceSanity:
    def test_paper_designs_feasible_on_u280(self):
        cases = [
            (poisson2d_app((200, 100)), (200, 100), 60),
            (jacobi3d_app((250, 250, 250)), (250, 250, 250), 29),
            (rtm_app((64, 64, 32)), (64, 64, 32), 3),
        ]
        for app, mesh, niter in cases:
            space = DesignSpace(app.program_on(mesh), ALVEO_U280)
            w = app.workload(mesh, niter)
            space.check(app.design(), w)  # must not raise

    def test_explored_designs_beat_naive(self):
        app = poisson2d_app((400, 400))
        w = app.workload((400, 400), 600)
        ranked = explore_designs(app.program_on((400, 400)), ALVEO_U280, w, top_k=1)
        best_design, best = ranked[0]
        naive = app.predictor((400, 400), DesignPoint(1, 1, 300.0)).predict(w)
        assert best.seconds < naive.seconds / 50
