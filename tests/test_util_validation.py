"""Unit tests for validation helpers."""

import pytest

from repro.util.errors import ValidationError
from repro.util.validation import (
    check_in_range,
    check_non_negative,
    check_one_of,
    check_positive,
    check_shape,
    check_type,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        check_positive("x", 1)

    def test_rejects_zero(self):
        with pytest.raises(ValidationError, match="x"):
            check_positive("x", 0)

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_positive("x", -1)


class TestCheckNonNegative:
    def test_accepts_zero(self):
        check_non_negative("x", 0)

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_non_negative("x", -0.5)


class TestCheckInRange:
    def test_bounds_inclusive(self):
        check_in_range("x", 0.0, 0.0, 1.0)
        check_in_range("x", 1.0, 0.0, 1.0)

    def test_rejects_outside(self):
        with pytest.raises(ValidationError):
            check_in_range("x", 1.5, 0.0, 1.0)


class TestCheckType:
    def test_accepts_match(self):
        check_type("x", 3, int)

    def test_rejects_mismatch_with_name(self):
        with pytest.raises(ValidationError, match="int"):
            check_type("x", "3", int)

    def test_tuple_of_types(self):
        check_type("x", 3.0, (int, float))


class TestCheckOneOf:
    def test_member(self):
        check_one_of("memory", "HBM", ("HBM", "DDR4"))

    def test_non_member(self):
        with pytest.raises(ValidationError, match="memory"):
            check_one_of("memory", "SRAM", ("HBM", "DDR4"))


class TestCheckShape:
    def test_normalizes_to_ints(self):
        assert check_shape("shape", [4.0, 5]) == (4, 5)

    def test_rejects_wrong_rank(self):
        with pytest.raises(ValidationError):
            check_shape("shape", (4, 5), ndim=3)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValidationError):
            check_shape("shape", (4, 0))

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            check_shape("shape", ())
