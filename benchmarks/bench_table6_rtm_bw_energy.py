"""Bench: Table VI — RTM bandwidth (GB/s) and energy (kJ)."""

from repro.harness.runner import run_table6


def test_table6_rtm_bw_energy(benchmark, once):
    result = once(benchmark, run_table6)
    print("\n" + result.render())
    for rec in result.records:
        assert 0.7 < rec["fpga_bw_ours"] / rec["fpga_bw_paper"] < 1.3
        if rec["fpga_kj_ours"] is not None:
            # FPGA uses less energy on every batched RTM configuration
            assert rec["fpga_kj_ours"] < rec["gpu_kj_ours"]
