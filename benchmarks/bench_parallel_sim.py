"""Bench: parallel chunk fan-out — worker-pool dispatch vs serial stacked.

Times the parallel engine (``repro.parallel``) against the serial compiled
stacked path on the same footprint-bounded chunk schedule: the only delta
is whether chunks execute one after another in-process or fan out across a
persistent worker pool with shared-memory transport. Jacobi-3D rows sweep
the batch axis (B in {4, 8, 16}) in the small-mesh regime the paper
batches in hardware; the RTM row exercises the over-budget chunked regime
with the *calibrated* per-host stacking budget (the adaptive replacement
for the static ``STACKED_BYTES_LIMIT``).

Results are appended to ``BENCH_parallel_sim.json`` at the repo root so
future PRs can track the trajectory. The headline contract — parallel
>= 2x serial at B=16 on Jacobi-3D with >= 4 workers — is recorded
unconditionally but only *asserted* when ``BENCH_ASSERT_SPEEDUP=1`` is
set: wall-clock ratios depend on the host's core count (a single-core
runner cannot show a fan-out win), and shared CI runners are too noisy to
hard-fail unrelated PRs. Every pairing re-asserts bit-identity per mesh:
a speedup obtained by diverging from the serial engine would be a bug.
"""

from __future__ import annotations

import os
import timeit

import numpy as np
import pytest

import _trajectory
from repro.apps.jacobi3d import jacobi3d_app
from repro.apps.rtm import rtm_app
from repro.parallel.calibrate import calibrated_bytes_limit
from repro.parallel.executor import run_program_parallel
from repro.parallel.pool import WorkerPool
from repro.resilience import DEFAULT_POLICY, RetryPolicy
from repro.stencil.compiled import CompiledPlanCache, run_program_stacked

#: collected (workload -> metrics) rows, flushed to the trajectory file
_RESULTS: dict[str, dict] = {}

#: timing repeats (best-of); the workloads are deterministic
_REPEATS = 7

#: worker count for the fan-out side (the >= 2x contract requires >= 4)
_WORKERS = 4

#: opt-in hard assertion of the speedup thresholds (off on shared CI
#: runners and single-core hosts, where fan-out cannot pay)
_ASSERT_SPEEDUP = os.environ.get("BENCH_ASSERT_SPEEDUP") == "1"


@pytest.fixture(scope="module")
def pool():
    """One persistent pool for the whole module: pool spin-up is a one-time
    cost in production use, so it stays out of the timed region here too."""
    with WorkerPool(max_workers=_WORKERS) as p:
        yield p


@pytest.fixture(scope="module", autouse=True)
def _write_trajectory():
    yield
    if _RESULTS:
        _trajectory.append_record("parallel_sim", dict(_RESULTS))


def _time_best(fn) -> float:
    fn()  # warm caches and the pool (plan compilation deliberately excluded)
    return min(timeit.repeat(fn, number=1, repeat=_REPEATS))


def _record_parallel_pair(
    name, app, shape, niter, batch, limit, pool, threshold
):
    """Time serial stacked vs pool fan-out on one chunk schedule."""
    program = app.program_on(shape)
    envs = [app.fields(shape, seed=37 + s) for s in range(batch)]
    cache = CompiledPlanCache()
    stats: dict = {}

    def serial():
        return run_program_stacked(
            program, envs, niter, cache=cache, max_stack_bytes=limit
        )

    def parallel():
        return run_program_parallel(
            program, envs, niter, cache=cache, max_stack_bytes=limit,
            max_workers=_WORKERS, pool=pool, stats=stats,
        )

    state = program.state_fields[0]
    for ser, par in zip(serial(), parallel()):
        assert np.array_equal(ser[state].data, par[state].data)

    t_serial = _time_best(serial)
    t_parallel = _time_best(parallel)
    speedup = t_serial / t_parallel
    _RESULTS[name] = {
        "mesh": list(shape),
        "niter": niter,
        "batch": batch,
        "workers": stats["workers"],
        "backend": stats["backend"],
        "chunks": list(stats["chunks"]),
        "stack_bytes_limit": int(limit),
        "serial_s": t_serial,
        "parallel_s": t_parallel,
        "speedup": round(speedup, 2),
    }
    print(
        f"\n{name}: serial {t_serial * 1e3:.2f} ms, parallel "
        f"{t_parallel * 1e3:.2f} ms ({stats['workers']} workers, "
        f"{stats['backend']}, chunks {stats['chunks']}) -> {speedup:.2f}x"
    )
    if threshold is not None and _ASSERT_SPEEDUP:
        assert speedup >= threshold, (
            f"{name}: parallel fan-out {speedup:.2f}x < required {threshold}x"
        )


# --------------------------------------------------------------------------- #
# Jacobi-3D: the >= 2x contract workload at B=16 with 4 workers, plus the
# B-scaling sweep. The budget pins one chunk per worker so the schedule
# exposes exactly the fan-out parallelism being measured.
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("batch,threshold", [(4, None), (8, None), (16, 2.0)])
def test_parallel_jacobi3d(benchmark, pool, batch, threshold):
    app = jacobi3d_app((8, 8, 6))
    cache = CompiledPlanCache()
    plan = cache.plan_for(app.program_on((8, 8, 6)), app.fields((8, 8, 6)))
    limit = plan.nbytes * max(1, batch // _WORKERS)
    benchmark.pedantic(
        lambda: _record_parallel_pair(
            f"jacobi3d_b{batch}", app, (8, 8, 6), 32, batch, limit, pool,
            threshold,
        ),
        rounds=1,
        iterations=1,
    )


# --------------------------------------------------------------------------- #
# RTM: the over-budget chunked regime under the calibrated per-host budget —
# the configuration the adaptive-budget work exists for
# --------------------------------------------------------------------------- #
def test_parallel_rtm_calibrated(benchmark, pool):
    app = rtm_app((12, 12, 10))
    limit = calibrated_bytes_limit()
    benchmark.pedantic(
        lambda: _record_parallel_pair(
            "rtm_b8_calibrated", app, (12, 12, 10), 6, 8, limit, pool, None
        ),
        rounds=1,
        iterations=1,
    )


# --------------------------------------------------------------------------- #
# Resilience overhead: the retry layer on the healthy path. DEFAULT_POLICY
# (retries + full degradation ladder armed, no faults drawn) vs the
# fail-fast RetryPolicy.disabled() on the identical dispatch — the armed
# machinery must cost nothing when nothing fails.
# --------------------------------------------------------------------------- #
def test_resilience_no_fault_overhead(benchmark, pool):
    app = jacobi3d_app((8, 8, 6))
    shape, niter, batch = (8, 8, 6), 32, 8
    program = app.program_on(shape)
    envs = [app.fields(shape, seed=37 + s) for s in range(batch)]
    cache = CompiledPlanCache()
    plan = cache.plan_for(program, envs[0])
    limit = plan.nbytes * max(1, batch // _WORKERS)
    stats: dict = {}

    def run_with(policy):
        return run_program_parallel(
            program, envs, niter, cache=cache, max_stack_bytes=limit,
            max_workers=_WORKERS, pool=pool, stats=stats, policy=policy,
        )

    def measure():
        for a, b in zip(run_with(RetryPolicy.disabled()),
                        run_with(DEFAULT_POLICY)):
            for name in a:
                assert np.array_equal(a[name].data, b[name].data)
        t_disabled = _time_best(lambda: run_with(RetryPolicy.disabled()))
        t_default = _time_best(lambda: run_with(DEFAULT_POLICY))
        overhead = t_default / t_disabled - 1.0
        _RESULTS["resilience_no_fault_overhead"] = {
            "mesh": list(shape),
            "niter": niter,
            "batch": batch,
            "workers": stats["workers"],
            "backend": stats["backend"],
            "disabled_s": t_disabled,
            "default_policy_s": t_default,
            "overhead_pct": round(overhead * 100, 2),
        }
        print(
            f"\nresilience_no_fault_overhead: disabled {t_disabled * 1e3:.2f} "
            f"ms, default policy {t_default * 1e3:.2f} ms -> "
            f"{overhead * 100:+.2f}%"
        )
        if _ASSERT_SPEEDUP:
            assert overhead <= 0.03, (
                f"resilience layer costs {overhead * 100:.2f}% on the "
                f"healthy path (> 3% budget)"
            )

    benchmark.pedantic(measure, rounds=1, iterations=1)
