"""Benchmark trajectory files: append-only JSON performance records.

Each tracked benchmark keeps one ``BENCH_<name>.json`` file at the repo
root holding a list of timestamped records, so consecutive PRs can see how
a headline number (e.g. the interpreter-vs-compiled speedup) moves over
time. The files are committed; CI also uploads them as artifacts.

Record shape::

    {
      "benchmark": "functional_sim",
      "unit": "seconds",
      "trajectory": [
        {"timestamp": "...", "git_rev": "...", "workloads": {...}},
        ...
      ]
    }
"""

from __future__ import annotations

import json
import subprocess
from datetime import datetime, timezone
from pathlib import Path

#: repo root (benchmarks/ lives directly under it)
ROOT = Path(__file__).resolve().parent.parent

#: records kept per trajectory file; old entries roll off the front
MAX_RECORDS = 200


def _git_rev() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        )
        return out.stdout.strip() or "unknown"
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def append_record(name: str, workloads: dict, unit: str = "seconds") -> Path:
    """Append one record to ``BENCH_<name>.json``; returns the file path."""
    path = ROOT / f"BENCH_{name}.json"
    doc = {"benchmark": name, "unit": unit, "trajectory": []}
    if path.exists():
        try:
            loaded = json.loads(path.read_text())
            if isinstance(loaded, dict) and isinstance(loaded.get("trajectory"), list):
                doc = loaded
        except (OSError, json.JSONDecodeError):
            pass  # a corrupt trajectory restarts rather than blocking the bench
    doc["trajectory"].append(
        {
            "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
            "git_rev": _git_rev(),
            "workloads": workloads,
        }
    )
    doc["trajectory"] = doc["trajectory"][-MAX_RECORDS:]
    path.write_text(json.dumps(doc, indent=2, sort_keys=False) + "\n")
    return path
