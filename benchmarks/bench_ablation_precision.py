"""Ablation: alternative numerical representations (paper future work).

Replays the Table II analysis across half/float/double/fixed formats: each
representation changes G_dsp (operator costs), the eq. (6) unroll bound and
the eq. (4) bandwidth-limited V — and its quantization error on the Poisson
solver is measured against a float64 reference.
"""

from repro.apps.poisson2d import poisson2d_app
from repro.arch.device import ALVEO_U280
from repro.mesh.mesh import Field, MeshSpec
from repro.model.precision import (
    ALL_PRECISIONS,
    FLOAT,
    gdsp_at_precision,
    max_vectorization_at_precision,
    precision_error,
)
from repro.model.resources import p_dsp
from repro.util.tables import TextTable
from repro.util.units import MHZ


def test_ablation_precision(benchmark, once):
    app = poisson2d_app((24, 20))
    program = app.program_on((24, 20))
    channel = ALVEO_U280.ddr4.channel_bandwidth
    field = Field.random("U", MeshSpec((24, 20)), seed=5)

    def run():
        table = TextTable(
            ["precision", "Gdsp", "pdsp (V=8)", "V max (eq.4)", "max err @10 iters"],
            title="Ablation: numerical representations (Poisson-5pt-2D)",
        )
        rows = {}
        for precision in ALL_PRECISIONS:
            gdsp = gdsp_at_precision(program, precision)
            p_bound = p_dsp(ALVEO_U280, 8, max(1, gdsp))
            v_max = max_vectorization_at_precision(channel, 300 * MHZ, precision)
            err = precision_error(program, {"U": field}, 10, precision)
            table.add_row([precision.name, gdsp, p_bound, v_max, err])
            rows[precision.name] = (gdsp, p_bound, v_max, err)
        return table, rows

    table, rows = once(benchmark, run)
    print("\n" + table.render())
    # float is the paper baseline
    assert rows["float"][0] == 14
    # narrower formats buy unroll depth and bandwidth headroom...
    assert rows["half"][1] > rows["float"][1]
    assert rows["half"][2] == 2 * rows["float"][2]
    assert rows["fixed16"][1] > rows["float"][1]
    # ...at the cost of numerical error
    assert rows["half"][3] > rows["float"][3]
    assert rows["double"][3] < rows["float"][3]
