"""Ablation: square vs non-square tiles (eq. 11 optimality).

Eq. (11) predicts square transverse blocks maximize throughput for a fixed
on-chip buffer budget. This sweep holds M*N constant for the Jacobi tiled
design and confirms the square shape wins.
"""

from repro.apps.jacobi3d import jacobi3d_app
from repro.model.tiling import tile_throughput
from repro.util.tables import TextTable


def test_ablation_tile_shape(benchmark, once):
    app = jacobi3d_app()
    V, p, D = 64, 3, 2
    area = 768 * 768

    def run():
        table = TextTable(
            ["M", "N", "T (cells/cycle)", "valid ratio"],
            title="Ablation: tile aspect ratio at fixed M*N (Jacobi, Table III)",
        )
        results = []
        for M in (192, 384, 768, 1536, 3072):
            N = area // M
            t = tile_throughput(M, N, 10**9, V, p, D)
            from repro.model.tiling import valid_ratio

            table.add_row([M, N, t, valid_ratio(M, N, p, D)])
            results.append((M, t))
        return table, results

    table, results = once(benchmark, run)
    print("\n" + table.render())
    by_m = dict(results)
    # the square tile beats every skewed aspect at the same area
    assert by_m[768] >= max(t for m, t in results) - 1e-9
