"""Bench: observability overhead — instrumented vs disabled steady loop.

The observability contract is that the default (disabled) state costs one
module-attribute read per instrumented call site and *nothing* on the
zero-alloc steady loop, and that the fully enabled state (registry +
ring-buffer event log + tracer, no file sink) stays within noise of the
disabled run on a realistic chunked stacked workload. This bench times
the same Jacobi-3D chunked stacked loop three ways:

* ``disabled`` — observability off (the default every other bench runs in);
* ``enabled`` — metrics + events + spans recording into memory;
* ``steady`` — the raw ``CompiledProgram.run_iterations`` loop on a warm
  instance, timed disabled and enabled, where the deltas must be pure
  noise because that loop carries no instrumentation at all.

Results are appended to ``BENCH_observability.json`` at the repo root.
The headline contract — enabled <= 1.03x disabled on the chunked stacked
loop — is recorded unconditionally but only *asserted* under
``BENCH_ASSERT_SPEEDUP=1``: shared CI runners are too noisy to hard-fail
unrelated PRs on a 3% wall-clock band.
"""

from __future__ import annotations

import os
import timeit

import pytest

import _trajectory
from repro import observability
from repro.apps.jacobi3d import jacobi3d_app
from repro.stencil.compiled import CompiledPlanCache, run_program_stacked

#: collected (workload -> metrics) rows, flushed to the trajectory file
_RESULTS: dict[str, dict] = {}

#: timing repeats (best-of); the workloads are deterministic
_REPEATS = 9

#: opt-in hard assertion of the overhead band (off on shared CI runners)
_ASSERT_SPEEDUP = os.environ.get("BENCH_ASSERT_SPEEDUP") == "1"

#: the enabled run must stay within this factor of the disabled run
_MAX_OVERHEAD = 1.03


@pytest.fixture(scope="module", autouse=True)
def _write_trajectory():
    yield
    observability.disable()  # never leak an enabled state into other benches
    if _RESULTS:
        _trajectory.append_record("observability", dict(_RESULTS))


def _time_best(fn) -> float:
    fn()  # warm plan caches so compilation stays out of the timed region
    return min(timeit.repeat(fn, number=1, repeat=_REPEATS))


def test_observability_overhead_stacked(benchmark):
    """Chunked stacked dispatch: enabled within 3% of disabled.

    The mesh is sized so each chunk carries real tape work (~milliseconds):
    the per-dispatch instrumentation cost is constant, so the band is a
    statement about realistic chunks, not about dispatch-dominated toys.
    """
    shape = (32, 32, 24)
    app = jacobi3d_app(shape)
    program = app.program_on(shape)
    envs = [app.fields(shape, seed=11 + s) for s in range(8)]
    cache = CompiledPlanCache()
    plan = cache.plan_for(program, envs[0])
    limit = plan.nbytes * 2  # force a multi-chunk schedule

    def loop():
        return run_program_stacked(
            program, envs, 48, cache=cache, max_stack_bytes=limit
        )

    def run() -> None:
        observability.disable()
        t_disabled = _time_best(loop)
        observability.enable()  # ring sink + registry + tracer, no file
        try:
            t_enabled = _time_best(loop)
        finally:
            observability.disable()
        overhead = t_enabled / t_disabled
        _RESULTS["stacked_loop"] = {
            "mesh": list(shape),
            "niter": 48,
            "batch": len(envs),
            "disabled_s": t_disabled,
            "enabled_s": t_enabled,
            "overhead": round(overhead, 4),
        }
        print(
            f"\nstacked loop: disabled {t_disabled * 1e3:.2f} ms, enabled "
            f"{t_enabled * 1e3:.2f} ms -> {overhead:.3f}x"
        )
        if _ASSERT_SPEEDUP:
            assert overhead <= _MAX_OVERHEAD, (
                f"instrumentation overhead {overhead:.3f}x exceeds "
                f"{_MAX_OVERHEAD}x on the chunked stacked loop"
            )

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_observability_overhead_steady(benchmark):
    """The zero-alloc steady loop itself carries no instrumentation."""
    shape = (12, 12, 10)
    app = jacobi3d_app(shape)
    program = app.program_on(shape)
    env = app.fields(shape, seed=3)
    cache = CompiledPlanCache()
    compiled = cache.get(program, env)
    compiled.load(env)

    def loop():
        compiled.run_iterations(16)

    def run() -> None:
        observability.disable()
        t_disabled = _time_best(loop)
        observability.enable()
        try:
            t_enabled = _time_best(loop)
        finally:
            observability.disable()
        overhead = t_enabled / t_disabled
        _RESULTS["steady_loop"] = {
            "mesh": list(shape),
            "niter": 16,
            "disabled_s": t_disabled,
            "enabled_s": t_enabled,
            "overhead": round(overhead, 4),
        }
        print(
            f"\nsteady loop: disabled {t_disabled * 1e3:.2f} ms, enabled "
            f"{t_enabled * 1e3:.2f} ms -> {overhead:.3f}x"
        )
        if _ASSERT_SPEEDUP:
            assert overhead <= _MAX_OVERHEAD, (
                f"steady loop saw {overhead:.3f}x under instrumentation; "
                f"it must not be instrumented at all"
            )

    benchmark.pedantic(run, rounds=1, iterations=1)
