"""Bench: Table III — spatial blocking model parameters (eqs. 8-14)."""

from repro.harness.runner import run_table3


def test_table3_blocking_params(benchmark, once):
    result = once(benchmark, run_table3)
    print("\n" + result.render())
    for rec in result.records:
        assert abs(rec["throughput_ours"] - rec["throughput_paper"]) < 0.01 * rec["throughput_paper"]
        assert abs(rec["valid_ours"] - rec["valid_paper"]) < 1e-3
