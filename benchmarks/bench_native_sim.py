"""Bench: steady-loop throughput — compiled tape replay vs native lowering.

Times ``engine="compiled"`` (per-op tape replay) against ``engine="native"``
(generated fused steady-loop code, :mod:`repro.stencil.native`) on the
paper workloads, plus a ``native+numba`` row when numba is importable
(it is optional — the row records as absent, never fails, without it).
Results are appended to ``BENCH_native_sim.json`` at the repo root so
future PRs can track the trajectory; the headline contract — native >= 2x
compiled on the Jacobi-3D and RTM steady loops — is recorded
unconditionally but only *asserted* under ``BENCH_ASSERT_SPEEDUP=1``
(shared-CI wall clocks are too noisy to hard-fail unrelated PRs).

Every pair re-asserts bit-identity first: a speedup obtained by diverging
from the tape replay (and therefore from the golden interpreter) would be
a bug, not a win.
"""

from __future__ import annotations

import os
import timeit

import pytest

import _trajectory
from repro.apps.jacobi3d import jacobi3d_app
from repro.apps.rtm import rtm_app
from repro.stencil.compiled import CompiledPlanCache, run_program_compiled

_RESULTS: dict[str, dict] = {}

_REPEATS = 9

_ASSERT_SPEEDUP = os.environ.get("BENCH_ASSERT_SPEEDUP") == "1"


def _has_numba() -> bool:
    if os.environ.get("REPRO_NO_NUMBA") == "1":
        return False
    try:
        import numba  # noqa: F401
    except ImportError:
        return False
    return True


@pytest.fixture(scope="module", autouse=True)
def _write_trajectory():
    yield
    if _RESULTS:
        _trajectory.append_record("native_sim", dict(_RESULTS))


def _time_best(fn) -> float:
    fn()  # warm caches (plan lowering/JIT build is deliberately excluded)
    return min(timeit.repeat(fn, number=1, repeat=_REPEATS))


def _record_pair(name: str, app, shape, niter: int, threshold: float | None):
    """Time compiled vs native on one workload; assert bit-identity first."""
    program = app.program_on(shape)
    fields = app.fields(shape, seed=11)
    cache = CompiledPlanCache()

    def run(engine):
        return run_program_compiled(
            program, fields, niter, cache=cache, engine=engine
        )

    gold = run("compiled")
    got = run("native")
    for fname in gold:
        assert gold[fname].data.tobytes() == got[fname].data.tobytes(), fname
    bound = cache.get(program, fields, native=True)
    backend = bound.native_backend

    t_compiled = _time_best(lambda: run("compiled"))
    t_native = _time_best(lambda: run("native"))
    speedup = t_compiled / t_native
    row = {
        "mesh": list(shape),
        "niter": niter,
        "backend": backend,
        "compiled_s": t_compiled,
        "native_s": t_native,
        "speedup": round(speedup, 2),
    }

    if _has_numba():
        # a second, numba-pinned binding in its own cache: measures the
        # njit flavor even when the auto ladder would pick cc
        os.environ["REPRO_NATIVE_JIT"] = "numba"
        try:
            nb_cache = CompiledPlanCache()
            nb_run = lambda: run_program_compiled(  # noqa: E731
                program, fields, niter, cache=nb_cache, engine="native"
            )
            nb = nb_run()
            for fname in gold:
                assert gold[fname].data.tobytes() == nb[fname].data.tobytes()
            if cache is not nb_cache:
                bound_nb = nb_cache.get(program, fields, native=True)
                if bound_nb.native_backend == "numba":
                    t_numba = _time_best(nb_run)
                    row["numba_s"] = t_numba
                    row["numba_speedup"] = round(t_compiled / t_numba, 2)
        finally:
            os.environ.pop("REPRO_NATIVE_JIT", None)

    _RESULTS[name] = row
    print(
        f"\n{name}: compiled {t_compiled * 1e3:.2f} ms, "
        f"native[{backend}] {t_native * 1e3:.2f} ms -> {speedup:.1f}x"
        + (
            f", numba {row['numba_s'] * 1e3:.2f} ms"
            if "numba_s" in row
            else ""
        )
    )
    if threshold is not None and _ASSERT_SPEEDUP:
        assert speedup >= threshold, (
            f"{name}: native engine {speedup:.1f}x < required {threshold}x"
        )


# --------------------------------------------------------------------------- #
# compiled-vs-native pairs (the PR 10 speedup contract)
# --------------------------------------------------------------------------- #
def test_pair_jacobi3d(benchmark):
    # the >=2x contract workload: steady-loop-dominated functional mesh
    app = jacobi3d_app((20, 20, 10))
    benchmark.pedantic(
        lambda: _record_pair("jacobi3d_steady", app, (20, 20, 10), 32, 2.0),
        rounds=1,
        iterations=1,
    )


def test_pair_rtm(benchmark):
    app = rtm_app((16, 16, 12))
    benchmark.pedantic(
        lambda: _record_pair("rtm_steady", app, (16, 16, 12), 12, 2.0),
        rounds=1,
        iterations=1,
    )


def test_pair_jacobi3d_stacked(benchmark):
    """Batched native: the generated loops vectorize over the stack too."""
    from repro.stencil.compiled import run_program_stacked

    app = jacobi3d_app((20, 20, 10))
    program = app.program_on((20, 20, 10))
    batch = [app.fields((20, 20, 10), seed=s) for s in range(4)]
    cache = CompiledPlanCache()

    def run(engine):
        return run_program_stacked(
            program, batch, 16, cache=cache,
            max_stack_bytes=float("inf"), engine=engine,
        )

    def pair():
        gold = run("compiled")
        got = run("native")
        for g, o in zip(gold, got):
            for fname in g:
                assert g[fname].data.tobytes() == o[fname].data.tobytes()
        t_compiled = _time_best(lambda: run("compiled"))
        t_native = _time_best(lambda: run("native"))
        _RESULTS["jacobi3d_stacked4"] = {
            "mesh": [20, 20, 10],
            "niter": 16,
            "batch": 4,
            "compiled_s": t_compiled,
            "native_s": t_native,
            "speedup": round(t_compiled / t_native, 2),
        }
        print(
            f"\njacobi3d_stacked4: compiled {t_compiled * 1e3:.2f} ms, "
            f"native {t_native * 1e3:.2f} ms -> {t_compiled / t_native:.1f}x"
        )

    benchmark.pedantic(pair, rounds=1, iterations=1)
