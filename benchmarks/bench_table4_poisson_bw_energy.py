"""Bench: Table IV — Poisson bandwidth (GB/s) and energy (kJ)."""

from repro.harness.runner import run_table4


def test_table4_poisson_bw_energy(benchmark, once):
    result = once(benchmark, run_table4)
    print("\n" + result.render())
    for rec in result.records:
        assert 0.7 < rec["fpga_bw_ours"] / rec["fpga_bw_paper"] < 1.3
        if rec["fpga_kj_ours"] is not None:
            # FPGA several-fold more energy efficient on batched Poisson
            assert rec["gpu_kj_ours"] / rec["fpga_kj_ours"] > 3.0
