"""Bench: workload-mix scheduling — chunked stacked vs per-mesh replay.

The paper's batching optimisation (Section IV-B, eq. (15)) targets
populations of small meshes; PR 4's stacked tape realized it in the
functional simulator but replayed *large-working-set* batches (RTM) per
mesh — the ``STACKED_BYTES_LIMIT`` cliff. This bench tracks the chunked
stacked mode that replaces the cliff: an RTM-sized batch whose whole stack
exceeds the byte budget executes in footprint-bounded chunks, recovering
most of the one-tape-dispatch win while each chunk's working set stays
cache-resident.

Two contracts are recorded per workload in ``BENCH_workload_mix.json``:

* **dispatch count** (structural, asserted unconditionally): the chunked
  schedule must issue strictly fewer tape dispatches than per-mesh replay
  whenever the batch holds more meshes than one chunk — deterministic, so
  shared-runner noise cannot flake it;
* **wall clock** (recorded; asserted only under ``BENCH_ASSERT_SPEEDUP=1``,
  matching the other benches): chunked stacked should not lose to per-mesh
  replay on the over-budget workloads.

Since the parallel engine landed, every row also records a **parallel
column**: the same chunk schedule under the *calibrated* per-host byte
budget fanned across a 4-worker pool. This is the configuration that
closes the chunked-RTM wall-clock regression (0.77-0.84x in earlier
trajectories), so the RTM rows carry a ``speedup_parallel >= 1.0``
contract under ``BENCH_ASSERT_SPEEDUP=1``.

Every pairing re-asserts bit-identity per mesh against per-mesh *golden
interpreter* replay — the acceptance bar for the chunked mode.
"""

from __future__ import annotations

import os
import timeit

import numpy as np
import pytest

import _trajectory
from repro.apps.jacobi3d import jacobi3d_app
from repro.apps.rtm import rtm_app
from repro.parallel.calibrate import calibrated_bytes_limit
from repro.parallel.executor import run_program_parallel
from repro.parallel.pool import WorkerPool
from repro.stencil.compiled import (
    STACKED_BYTES_LIMIT,
    CompiledPlanCache,
    run_program_compiled,
    run_program_stacked,
)
from repro.stencil.numpy_eval import run_program

#: collected (workload -> metrics) rows, flushed to the trajectory file
_RESULTS: dict[str, dict] = {}

#: timing repeats (best-of); the workloads are deterministic
_REPEATS = 7

#: opt-in hard assertion of the speedup thresholds (off on shared CI
#: runners, where throttling or a slow machine would fail unrelated PRs)
_ASSERT_SPEEDUP = os.environ.get("BENCH_ASSERT_SPEEDUP") == "1"


@pytest.fixture(scope="module", autouse=True)
def _write_trajectory():
    yield
    if _RESULTS:
        _trajectory.append_record("workload_mix", dict(_RESULTS))


@pytest.fixture(scope="module")
def pool():
    """One persistent 4-worker pool per module run (spin-up untimed)."""
    with WorkerPool(max_workers=4) as p:
        yield p


def _time_best(fn) -> float:
    fn()  # warm caches (plan compilation is deliberately excluded)
    return min(timeit.repeat(fn, number=1, repeat=_REPEATS))


def _record_mix_pair(
    name: str, app, shape, niter: int, batch: int, threshold: float | None,
    pool=None, parallel_threshold: float | None = None,
):
    """Chunked stacked vs per-mesh replay on one over/under-budget batch."""
    program = app.program_on(shape)
    envs = [app.fields(shape, seed=23 + s) for s in range(batch)]
    cache = CompiledPlanCache()

    def replay():
        return [
            run_program_compiled(program, env, niter, cache=cache)
            for env in envs
        ]

    stats: dict = {}

    def chunked():
        # the default footprint budget: over-budget batches split into
        # cache-sized stacked chunks instead of replaying per mesh
        return run_program_stacked(
            program, envs, niter, cache=cache,
            max_stack_bytes=STACKED_BYTES_LIMIT, stats=stats,
        )

    # bit-identity per mesh against the golden interpreter — the chunked
    # mode's acceptance bar, not a timing artefact
    state = program.state_fields[0]
    for env, result in zip(envs, chunked()):
        golden = run_program(program, env, niter, engine="interpreter")
        assert np.array_equal(golden[state].data, result[state].data)

    dispatches = stats["dispatches"]
    # structural contract: strictly fewer dispatches than per-mesh replay
    # whenever more than one mesh fits a chunk
    if max(stats["chunks"]) > 1:
        assert dispatches < batch, (
            f"{name}: chunked schedule issued {dispatches} dispatches for "
            f"{batch} meshes — no win over per-mesh replay"
        )

    t_replay = _time_best(replay)
    t_chunked = _time_best(chunked)
    speedup = t_replay / t_chunked
    per_mesh_bytes = cache.plan_for(program, envs[0]).nbytes
    _RESULTS[name] = {
        "mesh": list(shape),
        "niter": niter,
        "batch": batch,
        "per_mesh_bytes": per_mesh_bytes,
        "over_budget": per_mesh_bytes * batch > STACKED_BYTES_LIMIT,
        "chunks": list(stats["chunks"]),
        "dispatches": dispatches,
        "per_mesh_dispatches": batch,
        "replay_s": t_replay,
        "chunked_s": t_chunked,
        "speedup": round(speedup, 2),
    }
    parallel_note = ""
    if pool is not None:
        # the regression-closing configuration: calibrated per-host budget,
        # chunks fanned across the pool; bit-identity re-asserted first
        calibrated = calibrated_bytes_limit()
        pstats: dict = {}

        def fanned():
            return run_program_parallel(
                program, envs, niter, cache=cache, max_stack_bytes=calibrated,
                max_workers=pool.max_workers, pool=pool, stats=pstats,
            )

        for ser, par in zip(chunked(), fanned()):
            assert np.array_equal(ser[state].data, par[state].data)
        t_parallel = _time_best(fanned)
        speedup_parallel = t_replay / t_parallel
        _RESULTS[name].update(
            {
                "calibrated_bytes_limit": int(calibrated),
                "parallel_chunks": list(pstats["chunks"]),
                "parallel_workers": pstats["workers"],
                "parallel_s": t_parallel,
                "speedup_parallel": round(speedup_parallel, 2),
            }
        )
        parallel_note = (
            f", parallel {t_parallel * 1e3:.2f} ms -> {speedup_parallel:.2f}x"
        )
    print(
        f"\n{name}: replay {t_replay * 1e3:.2f} ms ({batch} dispatches), "
        f"chunked {t_chunked * 1e3:.2f} ms ({dispatches} dispatches, "
        f"chunks {stats['chunks']}) -> {speedup:.2f}x{parallel_note}"
    )
    if threshold is not None and _ASSERT_SPEEDUP:
        assert speedup >= threshold, (
            f"{name}: chunked stacked {speedup:.2f}x < required {threshold}x"
        )
    if parallel_threshold is not None and _ASSERT_SPEEDUP:
        assert speedup_parallel >= parallel_threshold, (
            f"{name}: parallel engine {speedup_parallel:.2f}x < required "
            f"{parallel_threshold}x vs per-mesh replay"
        )


# --------------------------------------------------------------------------- #
# RTM: the over-budget regime the chunked mode exists for — a whole-batch
# stack would spill the byte budget, the pre-chunking dispatch replayed all
# B meshes individually. The contract here is the *dispatch* win (asserted
# above, unconditionally); wall clock is recorded for the trajectory only —
# stacking overhead on these wide-element meshes roughly washes out.
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("batch", [6, 12])
def test_mix_rtm_over_budget(benchmark, pool, batch):
    app = rtm_app((12, 12, 10))
    benchmark.pedantic(
        lambda: _record_mix_pair(
            f"rtm_b{batch}", app, (12, 12, 10), 6, batch, None,
            pool=pool, parallel_threshold=1.0,
        ),
        rounds=1,
        iterations=1,
    )


# --------------------------------------------------------------------------- #
# Jacobi-3D: an under-budget reference point (single whole-batch chunk) so
# the trajectory can compare the chunked path against plain stacking
# --------------------------------------------------------------------------- #
def test_mix_jacobi3d_under_budget(benchmark):
    app = jacobi3d_app((8, 8, 6))
    benchmark.pedantic(
        lambda: _record_mix_pair("jacobi3d_b8", app, (8, 8, 6), 32, 8, 1.5),
        rounds=1,
        iterations=1,
    )
