"""Bench: Figure 5 — RTM forward pass baseline (a) and batching (b)."""

from repro.harness.runner import run_fig5a, run_fig5b


def test_fig5a_baseline(benchmark, once):
    result = once(benchmark, run_fig5a)
    print("\n" + result.render())
    for rec in result.records:
        # FPGA matches the GPU within ~1.6x either way across all meshes
        assert 0.5 < rec["fpga_sim"] / rec["gpu_model"] < 1.6
        assert 0.65 < rec["fpga_sim"] / rec["fpga_paper"] < 1.35


def test_fig5b_batching(benchmark, once):
    result = once(benchmark, run_fig5b)
    print("\n" + result.render())
    for rec in result.records:
        # batched RTM: FPGA and GPU effectively match (paper Fig 5b)
        assert 0.6 < rec["fpga_sim"] / rec["gpu_model"] < 1.7
        assert 0.7 < rec["fpga_sim"] / rec["fpga_paper"] < 1.5
