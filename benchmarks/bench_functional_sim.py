"""Bench: functional simulator throughput — interpreter vs compiled engine.

Times the numerics-preserving paths (pipeline, tiler, batcher) on meshes
small enough to run in milliseconds, pairing the tree-walking golden
interpreter against the plan-compiled execution engine
(:mod:`repro.stencil.compiled`). Results are appended to
``BENCH_functional_sim.json`` at the repo root so future PRs can track the
speedup trajectory; the headline contract — compiled >= 5x interpreter on
the Jacobi-3D and RTM functional workloads — is recorded unconditionally
but only *asserted* when ``BENCH_ASSERT_SPEEDUP=1`` is set: wall-clock
ratios on shared CI runners are too noisy to hard-fail unrelated PRs, so
CI publishes the trajectory and the assertion stays an opt-in local check.

Every pair also re-asserts bit-identity: a speedup obtained by diverging
from the golden model would be a bug, not a win.
"""

from __future__ import annotations

import os
import timeit

import numpy as np
import pytest

import _trajectory
from repro.apps.jacobi3d import jacobi3d_app
from repro.apps.poisson2d import poisson2d_app
from repro.apps.rtm import rtm_app
from repro.stencil.numpy_eval import run_program

#: collected (workload -> metrics) rows, flushed to the trajectory file
_RESULTS: dict[str, dict] = {}

#: timing repeats (best-of); the workloads are deterministic
_REPEATS = 9

#: opt-in hard assertion of the speedup thresholds (off on shared CI
#: runners, where throttling or a slow machine would fail unrelated PRs)
_ASSERT_SPEEDUP = os.environ.get("BENCH_ASSERT_SPEEDUP") == "1"


@pytest.fixture(scope="module", autouse=True)
def _write_trajectory():
    yield
    if _RESULTS:
        _trajectory.append_record("functional_sim", dict(_RESULTS))


def _time_best(fn) -> float:
    fn()  # warm caches (plan compilation is deliberately excluded)
    return min(timeit.repeat(fn, number=1, repeat=_REPEATS))


def _record_pair(name: str, app, shape, niter: int, threshold: float | None):
    """Time interpreter vs compiled on one workload; assert bit-identity."""
    program = app.program_on(shape)
    fields = app.fields(shape, seed=11)
    gold = run_program(program, fields, niter, engine="interpreter")
    got = run_program(program, fields, niter, engine="compiled")
    state = program.state_fields[0]
    assert np.array_equal(gold[state].data, got[state].data)

    t_interp = _time_best(
        lambda: run_program(program, fields, niter, engine="interpreter")
    )
    t_compiled = _time_best(
        lambda: run_program(program, fields, niter, engine="compiled")
    )
    speedup = t_interp / t_compiled
    _RESULTS[name] = {
        "mesh": list(shape),
        "niter": niter,
        "interpreter_s": t_interp,
        "compiled_s": t_compiled,
        "speedup": round(speedup, 2),
    }
    print(
        f"\n{name}: interpreter {t_interp * 1e3:.2f} ms, "
        f"compiled {t_compiled * 1e3:.2f} ms -> {speedup:.1f}x"
    )
    if threshold is not None and _ASSERT_SPEEDUP:
        assert speedup >= threshold, (
            f"{name}: compiled engine {speedup:.1f}x < required {threshold}x"
        )


# --------------------------------------------------------------------------- #
# interpreter-vs-compiled pairs (the PR 3 speedup contract)
# --------------------------------------------------------------------------- #
def test_pair_poisson2d(benchmark):
    app = poisson2d_app((64, 48))
    benchmark.pedantic(
        lambda: _record_pair("poisson2d_pipeline", app, (64, 48), 20, None),
        rounds=1,
        iterations=1,
    )


def test_pair_jacobi3d(benchmark):
    # the >=5x contract workload: overhead-dominated functional mesh, long
    # enough to sit in the steady-state tapes
    app = jacobi3d_app((20, 20, 10))
    benchmark.pedantic(
        lambda: _record_pair("jacobi3d_pipeline", app, (20, 20, 10), 32, 5.0),
        rounds=1,
        iterations=1,
    )


def test_pair_rtm(benchmark):
    app = rtm_app((16, 16, 12))
    benchmark.pedantic(
        lambda: _record_pair("rtm_pipeline", app, (16, 16, 12), 12, 5.0),
        rounds=1,
        iterations=1,
    )


# --------------------------------------------------------------------------- #
# end-to-end accelerator paths (compiled by default, golden-checked)
# --------------------------------------------------------------------------- #
def test_functional_poisson_pipeline(benchmark):
    app = poisson2d_app((64, 48))
    fields = app.fields((64, 48), seed=1)
    acc = app.accelerator((64, 48), app.design(p=5, V=4))

    result, _ = benchmark(lambda: acc.run(fields, 20))
    gold = run_program(app.program_on((64, 48)), fields, 20, engine="interpreter")
    assert np.array_equal(result["U"].data, gold["U"].data)


def test_functional_jacobi_tiled(benchmark):
    app = jacobi3d_app((32, 28, 8))
    fields = app.fields((32, 28, 8), seed=2)
    acc = app.accelerator((32, 28, 8), app.design(tile=(16, 14), p=2, V=2))

    result, _ = benchmark(lambda: acc.run(fields, 4))
    gold = run_program(app.program_on((32, 28, 8)), fields, 4, engine="interpreter")
    assert np.array_equal(result["U"].data, gold["U"].data)


def test_functional_rtm_pipeline(benchmark):
    app = rtm_app((16, 16, 12))
    fields = app.fields((16, 16, 12), seed=3)
    acc = app.accelerator((16, 16, 12))

    result, _ = benchmark(lambda: acc.run(fields, 3))
    gold = run_program(app.program_on((16, 16, 12)), fields, 3, engine="interpreter")
    assert np.array_equal(result["Y"].data, gold["Y"].data)


def test_functional_batched_poisson(benchmark):
    app = poisson2d_app((32, 24))
    acc = app.accelerator((32, 24), app.design(p=4, V=2))
    batch = [app.fields((32, 24), seed=s) for s in range(8)]

    results, _ = benchmark(lambda: acc.run_batch(batch, 8))
    assert len(results) == 8
