"""Bench: functional simulator throughput on scaled-down workloads.

Times the numerics-preserving paths (pipeline, tiler, batcher) that validate
the architecture, on meshes small enough to run in milliseconds. These are
the code paths the paper-scale estimates are anchored to.
"""

import numpy as np

from repro.apps.jacobi3d import jacobi3d_app
from repro.apps.poisson2d import poisson2d_app
from repro.apps.rtm import rtm_app
from repro.stencil.numpy_eval import run_program


def test_functional_poisson_pipeline(benchmark):
    app = poisson2d_app((64, 48))
    fields = app.fields((64, 48), seed=1)
    acc = app.accelerator((64, 48), app.design(p=5, V=4))

    result, _ = benchmark(lambda: acc.run(fields, 20))
    gold = run_program(app.program_on((64, 48)), fields, 20)
    assert np.array_equal(result["U"].data, gold["U"].data)


def test_functional_jacobi_tiled(benchmark):
    app = jacobi3d_app((32, 28, 8))
    fields = app.fields((32, 28, 8), seed=2)
    acc = app.accelerator((32, 28, 8), app.design(tile=(16, 14), p=2, V=2))

    result, _ = benchmark(lambda: acc.run(fields, 4))
    gold = run_program(app.program_on((32, 28, 8)), fields, 4)
    assert np.array_equal(result["U"].data, gold["U"].data)


def test_functional_rtm_pipeline(benchmark):
    app = rtm_app((16, 16, 12))
    fields = app.fields((16, 16, 12), seed=3)
    acc = app.accelerator((16, 16, 12))

    result, _ = benchmark(lambda: acc.run(fields, 3))
    gold = run_program(app.program_on((16, 16, 12)), fields, 3)
    assert np.array_equal(result["Y"].data, gold["Y"].data)


def test_functional_batched_poisson(benchmark):
    app = poisson2d_app((32, 24))
    acc = app.accelerator((32, 24), app.design(p=4, V=2))
    batch = [app.fields((32, 24), seed=s) for s in range(8)]

    results, _ = benchmark(lambda: acc.run_batch(batch, 8))
    assert len(results) == 8
