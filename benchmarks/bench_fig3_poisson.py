"""Bench: Figure 3 — Poisson-5pt-2D baseline (a), batching (b), tiling (c)."""

from repro.harness.runner import run_fig3a, run_fig3b, run_fig3c


def test_fig3a_baseline(benchmark, once):
    result = once(benchmark, run_fig3a)
    print("\n" + result.render())
    for rec in result.records:
        # FPGA beats the launch-bound GPU on every baseline mesh
        assert rec["fpga_sim"] < rec["gpu_model"]
        assert 0.65 < rec["fpga_sim"] / rec["fpga_paper"] < 1.35


def test_fig3b_batching(benchmark, once):
    result = once(benchmark, run_fig3b)
    print("\n" + result.render())
    for rec in result.records:
        # batched: FPGA keeps a 1.3-2.5x edge over the GPU (paper: 30-34%+)
        assert rec["fpga_sim"] < rec["gpu_model"]
        assert 0.7 < rec["fpga_sim"] / rec["fpga_paper"] < 1.3


def test_fig3c_tiling(benchmark, once):
    result = once(benchmark, run_fig3c)
    print("\n" + result.render())
    by_mesh = {}
    for rec in result.records:
        by_mesh.setdefault(rec["mesh"], []).append(rec)
    for mesh, recs in by_mesh.items():
        times = [r["fpga_sim"] for r in sorted(recs, key=lambda r: r["tile"])]
        # larger tiles monotonically reduce redundant compute
        assert all(a >= b for a, b in zip(times, times[1:]))
        # tiled FPGA stays ahead of the GPU on large 2D meshes
        for r in recs:
            assert r["fpga_sim"] < r["gpu_model"]
