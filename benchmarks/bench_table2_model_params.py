"""Bench: Table II — baseline/batching model parameters.

Regenerates the paper's Table II (frequency, G_dsp, p_dssp per application)
from first principles and asserts exact agreement.
"""

from repro.harness.runner import run_table2


def test_table2_model_params(benchmark, once):
    result = once(benchmark, run_table2)
    print("\n" + result.render())
    for rec in result.records:
        assert rec["gdsp_ours"] == rec["gdsp_paper"]
        assert rec["pdsp_ours"] == rec["pdsp_paper"]
