"""Ablation: 512-bit alignment / burst quantization on tiled transfers.

Tiled designs make strided accesses whose runs must align to the 64-byte
AXI bus (Section IV-A: "we must maintain a 512 bit alignment in read/write
transactions, regardless of the order of the stencil"). Runs that are not a
multiple of 16 float32 elements waste the rest of the last bus word; this
bench quantifies that loss across tile edges — the effect behind the extra
redundant transfer the paper describes at block boundaries.
"""

from repro.arch.memory import AXIPort, strided_transfer_efficiency
from repro.util.tables import TextTable


def test_ablation_alignment(benchmark, once):
    port = AXIPort()

    def run():
        table = TextTable(
            ["tile edge (f32)", "run bytes", "aligned", "efficiency"],
            title="Ablation: strided-run efficiency vs tile edge (512-bit AXI)",
        )
        series = []
        for tile in (9, 16, 17, 100, 250, 1000, 8192):
            run_bytes = tile * 4
            eff = strided_transfer_efficiency(port, run_bytes)
            aligned = run_bytes % 64 == 0
            table.add_row([tile, run_bytes, aligned, eff])
            series.append((tile, run_bytes, aligned, eff))
        return table, series

    table, series = once(benchmark, run)
    print("\n" + table.render())
    by_tile = {t: e for t, _, _, e in series}
    # a 9-element run occupies one full bus word: 36/64 of it useful
    assert by_tile[9] < 0.6
    # 17 elements spill one word into a second: worse than both neighbours
    assert by_tile[17] < by_tile[16]
    assert by_tile[17] < by_tile[100]
    # aligned runs are near-perfect once latency is hidden
    assert by_tile[16] > 0.95
    assert by_tile[8192] > 0.99
