"""Ablation: manual loop flattening vs nested loops.

The paper flattens the mesh loops to one 1D loop because a nested pipeline
flushes at every row end (Section III: "Retaining an outer loop can be
costly due to the need to flush the unrolled inner loop pipeline").
This ablation quantifies the cost: a nested-loop design pays the pipeline
depth once per row instead of once per pass.
"""

from repro.apps.poisson2d import poisson2d_app
from repro.util.rounding import ceil_div
from repro.util.tables import TextTable

#: compute pipeline depth in cycles (SP adder/multiplier chains, typical)
PIPELINE_DEPTH = 70


def _flattened_cycles(m, n, niter, V, p, D):
    from repro.model.cycles import baseline_cycles_2d

    return baseline_cycles_2d(m, n, niter, V, p, D)


def _nested_cycles(m, n, niter, V, p, D):
    # flush the compute pipeline at every row end
    passes = ceil_div(niter, p)
    per_row = ceil_div(m, V) + PIPELINE_DEPTH
    return passes * per_row * (n + p * D // 2)


def test_ablation_loop_flattening(benchmark, once):
    app = poisson2d_app()

    def run():
        table = TextTable(
            ["mesh", "flattened (s)", "nested (s)", "slowdown"],
            title="Ablation: manual loop flattening (Section III)",
        )
        rows = []
        for mesh in ((200, 100), (300, 300), (400, 400)):
            flat = _flattened_cycles(*mesh, 60000, app.V, app.p, 2) / 250e6
            nested = _nested_cycles(*mesh, 60000, app.V, app.p, 2) / 250e6
            table.add_row([f"{mesh[0]}x{mesh[1]}", flat, nested, nested / flat])
            rows.append((flat, nested))
        return table, rows

    table, rows = once(benchmark, run)
    print("\n" + table.render())
    for flat, nested in rows:
        # flushing per row costs integer factors on narrow meshes
        assert nested > 2.0 * flat
