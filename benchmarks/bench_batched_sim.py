"""Bench: batched functional simulation — stacked tape vs per-mesh replay.

Times the paper's batching optimisation (Section IV-B, eq. (15)) as realised
in the functional simulator: ``run_program_stacked`` advances ``B``
same-spec meshes through **one** batch-major replay of the compiled op
tape, against the pre-PR-4 behaviour of replaying the (warm) compiled plan
once per mesh. Workloads are small meshes — the regime the paper batches in
hardware, where per-mesh overhead (pipeline fill there, Python dispatch and
small-array ufunc launches here) dominates.

Results are appended to ``BENCH_batched_sim.json`` at the repo root so
future PRs can track the scaling trajectory. The headline contract —
stacked >= 3x per-mesh replay at B=8 on the small Jacobi-3D workload — is
recorded unconditionally but only *asserted* when ``BENCH_ASSERT_SPEEDUP=1``
is set, matching ``bench_functional_sim.py``: wall-clock ratios on shared
CI runners are too noisy to hard-fail unrelated PRs.

Every pairing also re-asserts bit-identity per mesh: a speedup obtained by
coupling meshes across the stack (or diverging from the golden model at
all) would be a bug, not a win.
"""

from __future__ import annotations

import os
import timeit

import numpy as np
import pytest

import _trajectory
from repro.apps.jacobi3d import jacobi3d_app
from repro.apps.rtm import rtm_app
from repro.stencil.compiled import (
    CompiledPlanCache,
    run_program_compiled,
    run_program_stacked,
)

#: collected (workload -> metrics) rows, flushed to the trajectory file
_RESULTS: dict[str, dict] = {}

#: timing repeats (best-of); the workloads are deterministic
_REPEATS = 9

#: opt-in hard assertion of the speedup thresholds (off on shared CI
#: runners, where throttling or a slow machine would fail unrelated PRs)
_ASSERT_SPEEDUP = os.environ.get("BENCH_ASSERT_SPEEDUP") == "1"


@pytest.fixture(scope="module", autouse=True)
def _write_trajectory():
    yield
    if _RESULTS:
        _trajectory.append_record("batched_sim", dict(_RESULTS))


def _time_best(fn) -> float:
    fn()  # warm caches (plan compilation is deliberately excluded)
    return min(timeit.repeat(fn, number=1, repeat=_REPEATS))


def _record_batch_pair(
    name: str, app, shape, niter: int, batch: int, threshold: float | None
):
    """Time stacked vs per-mesh replay on one workload; assert bit-identity."""
    program = app.program_on(shape)
    envs = [app.fields(shape, seed=11 + s) for s in range(batch)]
    cache = CompiledPlanCache()

    def replay():
        return [
            run_program_compiled(program, env, niter, cache=cache)
            for env in envs
        ]

    def stacked():
        # force the stacked tape even past the footprint heuristic: the
        # bench measures the mechanism itself, and the RTM rows document
        # where stacking stops paying (which is exactly why production
        # dispatch falls back to per-mesh replay for such workloads)
        return run_program_stacked(
            program, envs, niter, cache=cache, max_stack_bytes=float("inf")
        )

    state = program.state_fields[0]
    for per_mesh, batched in zip(replay(), stacked()):
        assert np.array_equal(per_mesh[state].data, batched[state].data)

    t_replay = _time_best(replay)
    t_stacked = _time_best(stacked)
    speedup = t_replay / t_stacked
    _RESULTS[name] = {
        "mesh": list(shape),
        "niter": niter,
        "batch": batch,
        "replay_s": t_replay,
        "stacked_s": t_stacked,
        "speedup": round(speedup, 2),
    }
    print(
        f"\n{name}: replay {t_replay * 1e3:.2f} ms, "
        f"stacked {t_stacked * 1e3:.2f} ms -> {speedup:.1f}x"
    )
    if threshold is not None and _ASSERT_SPEEDUP:
        assert speedup >= threshold, (
            f"{name}: stacked tape {speedup:.1f}x < required {threshold}x"
        )


# --------------------------------------------------------------------------- #
# Jacobi-3D: the >=3x contract workload at B=8, plus the B-scaling sweep
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("batch,threshold", [(1, None), (4, None), (8, 3.0), (16, None)])
def test_batched_jacobi3d(benchmark, batch, threshold):
    # small mesh, long solve: the overhead-dominated regime the paper's
    # batching targets (meshes too small to amortize the pipeline fill)
    app = jacobi3d_app((8, 8, 6))
    benchmark.pedantic(
        lambda: _record_batch_pair(
            f"jacobi3d_b{batch}", app, (8, 8, 6), 32, batch, threshold
        ),
        rounds=1,
        iterations=1,
    )


# --------------------------------------------------------------------------- #
# RTM: multi-component flat-mode tape under batching
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("batch", [1, 4, 16])
def test_batched_rtm(benchmark, batch):
    app = rtm_app((12, 12, 10))
    benchmark.pedantic(
        lambda: _record_batch_pair(
            f"rtm_b{batch}", app, (12, 12, 10), 6, batch, None
        ),
        rounds=1,
        iterations=1,
    )
