"""Ablation: batching factor sweep (eq. 15 latency amortization).

Sweeps B over the paper's 200x100 Poisson mesh and shows per-mesh time
converging to the fill-free limit — the justification for Section IV-B.
"""

from repro.apps.poisson2d import poisson2d_app
from repro.model.cycles import batched_cycles_per_mesh_2d
from repro.util.tables import TextTable


def test_ablation_batch_sweep(benchmark, once):
    app = poisson2d_app()

    def run():
        table = TextTable(
            ["batch", "cycles/mesh (eq. 15)", "sim runtime/mesh (s)", "efficiency"],
            title="Ablation: batching factor sweep, Poisson 200x100, 60000 iters",
        )
        ideal = 25 * 100  # ceil(m/V) * n
        series = []
        for batch in (1, 10, 100, 1000):
            per_mesh = batched_cycles_per_mesh_2d(200, 100, batch, app.V, app.p, 2)
            w = app.workload((200, 100), 60000, batch)
            sim = app.accelerator((200, 100)).estimate(w)
            per_mesh_s = sim.seconds / batch
            table.add_row([batch, per_mesh, per_mesh_s, ideal / per_mesh])
            series.append((batch, per_mesh, per_mesh_s))
        return table, series

    table, series = once(benchmark, run)
    print("\n" + table.render())
    # per-mesh cost strictly decreases with batch size
    per_mesh = [s[1] for s in series]
    assert all(a > b for a, b in zip(per_mesh, per_mesh[1:]))
    per_mesh_s = [s[2] for s in series]
    assert all(a > b for a, b in zip(per_mesh_s, per_mesh_s[1:]))
    # B=1000 is within 7% of the fill-free ideal (eq. 15 limit)
    assert per_mesh[-1] < 1.07 * 2500
