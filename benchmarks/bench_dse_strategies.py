"""Bench: DSE search efficiency — trials-to-best-design and wall-clock.

Each strategy explores the same Jacobi-7pt-3D design space; the benchmark
records wall-clock per full search, and the assertions pin the search
efficiency contract so future PRs can track regressions: annealing within
5% of the exhaustive optimum on a 50-trial budget, greedy pruning to a
fraction of the grid, every strategy's journal reporting how many trials
it took to first reach its best design.

The evaluator runs on the memoized model path from PR 3 (cached
``bytes_per_cell_pass`` / ``G_dsp``, plan-compiled functional engine behind
any validation runs); per-strategy trials-to-best and wall-clock are
appended to ``BENCH_dse_strategies.json`` so per-strategy adaptive budgets
can be calibrated once the numbers stabilize across a few PRs (ROADMAP
follow-on).
"""

import time

import pytest

import _trajectory
from repro.arch.device import ALVEO_U280
from repro.dse import Evaluator, Study, model_space, strategy_by_name
from repro.harness.runner import run_dse_convergence
from repro.model.design import Workload

#: per-strategy search-efficiency rows, flushed to the trajectory file
_RESULTS: dict[str, dict] = {}


@pytest.fixture(scope="module", autouse=True)
def _write_trajectory():
    yield
    if _RESULTS:
        _trajectory.append_record("dse_strategies", dict(_RESULTS))


def _problem():
    from repro.apps.jacobi3d import jacobi3d_app

    app = jacobi3d_app()
    program = app.program_on((100, 100, 100))
    workload = Workload(program.mesh, 100)
    space = model_space(program, ALVEO_U280, workload)
    return program, workload, space


def _search(strategy_name, trials):
    program, workload, space = _problem()
    study = Study(space, Evaluator(program, ALVEO_U280, workload))
    study.run(strategy_by_name(strategy_name, seed=0), trials)
    return study


def _record_strategy(name, study, seconds):
    """Record one strategy's search-efficiency row for the trajectory.

    ``seconds`` is the wall of the benchmark invocation that produced
    ``study`` (one search under ``--benchmark-disable``, warmup + rounds
    under full benchmarking) — a tracked signal, not a calibrated number.
    """
    _RESULTS[name] = {
        "trials": len(study.trials),
        "trials_to_best": _trials_to_best(study),
        "best_runtime_s": study.best().value("runtime"),
        "bench_wall_s": round(seconds, 6),
    }


def _trials_to_best(study):
    """Index (1-based) of the first trial that reaches the study's best score."""
    best = study.best()
    for i, trial in enumerate(study.trials, 1):
        if trial.feasible and trial.score <= best.score:
            return i
    return len(study.trials)


def test_dse_exhaustive(benchmark, once):
    start = time.perf_counter()
    study = once(benchmark, lambda: _search("exhaustive", None))
    _record_strategy("exhaustive", study, time.perf_counter() - start)
    print(f"\nexhaustive: {len(study.trials)} trials, "
          f"best at trial {_trials_to_best(study)}")
    assert study.best() is not None


def test_dse_random(benchmark, once):
    start = time.perf_counter()
    study = once(benchmark, lambda: _search("random", 50))
    _record_strategy("random", study, time.perf_counter() - start)
    print(f"\nrandom: {len(study.trials)} trials, "
          f"best at trial {_trials_to_best(study)}")
    assert len(study.trials) == 50


def test_dse_annealing(benchmark, once):
    optimum = _search("exhaustive", None).best()
    start = time.perf_counter()
    study = once(benchmark, lambda: _search("annealing", 50))
    _record_strategy("annealing", study, time.perf_counter() - start)
    to_best = _trials_to_best(study)
    print(f"\nannealing: {len(study.trials)} trials, best at trial {to_best}")
    # the headline contract: within 5% of the grid optimum on a 50-trial budget
    assert study.best().value("runtime") <= optimum.value("runtime") * 1.05


def test_dse_greedy(benchmark, once):
    _, _, space = _problem()
    start = time.perf_counter()
    study = once(benchmark, lambda: _search("greedy", None))
    _record_strategy("greedy", study, time.perf_counter() - start)
    print(f"\ngreedy: {len(study.trials)} trials of a {space.size}-point grid, "
          f"best at trial {_trials_to_best(study)}")
    # pruning contract: the model-guided walk touches a fraction of the grid
    assert len(study.trials) < space.size / 2


def test_dse_convergence_experiment(benchmark, once):
    result = once(benchmark, run_dse_convergence)
    print("\n" + result.render())
    for rec in result.records:
        if rec["strategy"] == "annealing":
            assert rec["gap_pct"] <= 5.0
