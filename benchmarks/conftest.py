"""Benchmark-suite configuration.

Every bench regenerates one paper artifact: it times the full experiment
evaluation (model + simulator estimates + GPU baseline over all the paper's
workloads) and prints the same rows/series the paper reports. Run with
``pytest benchmarks/ --benchmark-only -s`` to see the tables.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn):
    """Time ``fn`` with a single measured round (experiments are deterministic)."""
    return benchmark.pedantic(fn, rounds=3, iterations=1, warmup_rounds=1)


@pytest.fixture
def once():
    return run_once
