"""Bench: the serving layer — end-to-end latency under closed-loop load.

Drives a :class:`repro.serve.Server` with the closed-loop generator
(``clients`` coroutines, each awaiting its previous job before the next
submit) over a two-spec population, on the serial compiled engine so the
numbers measure the *serving layer itself* — admission, coalescing into
stacked dispatches, resolution — rather than host core count. Records
end-to-end p50/p95/p99 latency and throughput (jobs per second) overall
and per spec, plus an over-capacity run against a depth-limited queue
showing bounded rejection instead of unbounded queueing.

Results append to ``BENCH_serve.json`` at the repo root (the CI
``serve-smoke`` job uploads it). Latency thresholds are only asserted
under ``BENCH_ASSERT_SPEEDUP=1`` — shared runners are too noisy to
hard-fail on wall clock.
"""

from __future__ import annotations

import asyncio
import os
import time

import pytest

import _trajectory
from repro.serve import QueueFullError, Server, ServerConfig, run_closed_loop

#: collected rows, flushed to the trajectory file at module teardown
_RESULTS: dict[str, dict] = {}

_SPECS = ("jacobi3d:12x12x8:20x2", "poisson2d:24x16:30")

_ASSERT = os.environ.get("BENCH_ASSERT_SPEEDUP") == "1"


@pytest.fixture(scope="module", autouse=True)
def _write_trajectory():
    yield
    if _RESULTS:
        _trajectory.append_record("serve", dict(_RESULTS))


def test_bench_serve_closed_loop():
    """Steady-state closed loop: everything admitted, latency recorded."""

    async def _run():
        config = ServerConfig(engine="compiled", batch_window=0.002)
        async with Server(config) as server:
            t0 = time.perf_counter()
            report = await run_closed_loop(
                server, _SPECS, clients=4, requests=6
            )
            elapsed = time.perf_counter() - t0
            return report, elapsed, server.health()

    report, elapsed, health = asyncio.run(_run())
    assert report["ok"] == report["jobs"] == 24
    assert health["outstanding_jobs"] == 0
    _RESULTS["closed_loop"] = {
        "jobs": report["jobs"],
        "seconds": elapsed,
        "jobs_per_second": report["jobs"] / elapsed,
        "latency": report["latency"],
        "per_spec": {
            spec: entry["latency"]
            for spec, entry in report["per_spec"].items()
        },
    }
    if _ASSERT:
        assert report["latency"]["p99"] < 5.0


def test_bench_serve_overload():
    """Over-capacity: a depth-1 queue rejects deterministically, p99 of the
    admitted jobs stays bounded by one dispatch, not by the offered load."""

    async def _run():
        config = ServerConfig(
            engine="compiled", queue_depth=1, batch_window=0.002
        )
        async with Server(config) as server:
            handles, rejected = [], 0
            for _ in range(16):
                try:
                    handles.append(await server.submit(_SPECS[0]))
                except QueueFullError:
                    rejected += 1
            latencies = []
            for handle in handles:
                t0 = time.perf_counter()
                await handle
                latencies.append(time.perf_counter() - t0)
            return len(handles), rejected, latencies, server.health()

    admitted, rejected, latencies, health = asyncio.run(_run())
    assert admitted + rejected == 16
    assert rejected > 0  # the bounded queue actually pushed back
    assert health["jobs"]["rejected"] == rejected
    _RESULTS["overload"] = {
        "offered": 16,
        "admitted": admitted,
        "rejected": rejected,
        "max_await_seconds": max(latencies) if latencies else 0.0,
    }
