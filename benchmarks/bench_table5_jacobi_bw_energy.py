"""Bench: Table V — Jacobi bandwidth (GB/s) and energy (kJ)."""

from repro.harness.runner import run_table5


def test_table5_jacobi_bw_energy(benchmark, once):
    result = once(benchmark, run_table5)
    print("\n" + result.render())
    for rec in result.records:
        assert 0.7 < rec["fpga_bw_ours"] / rec["fpga_bw_paper"] < 1.3
        if rec["fpga_kj_ours"] is not None:
            # paper: ~2x more energy efficient at 200^3/50B
            assert rec["gpu_kj_ours"] / rec["fpga_kj_ours"] > 1.5
