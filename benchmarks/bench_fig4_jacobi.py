"""Bench: Figure 4 — Jacobi-7pt-3D baseline (a), batching (b), tiling (c)."""

from repro.harness.runner import run_fig4a, run_fig4b, run_fig4c


def test_fig4a_baseline(benchmark, once):
    result = once(benchmark, run_fig4a)
    print("\n" + result.render())
    records = result.records
    # crossover: FPGA wins at 50^3, GPU wins conclusively at 250^3
    assert records[0]["fpga_sim"] < records[0]["gpu_model"]
    assert records[-1]["gpu_model"] < records[-1]["fpga_sim"]
    for rec in records:
        assert 0.65 < rec["fpga_sim"] / rec["fpga_paper"] < 1.35


def test_fig4b_batching(benchmark, once):
    result = once(benchmark, run_fig4b)
    print("\n" + result.render())
    for rec in result.records:
        assert 0.7 < rec["fpga_sim"] / rec["fpga_paper"] < 1.4
        # paper: V100 ~40% faster on the 50B problem
        if rec["batch"] == 50:
            assert rec["gpu_model"] < rec["fpga_sim"]


def test_fig4c_tiling(benchmark, once):
    result = once(benchmark, run_fig4c)
    print("\n" + result.render())
    for rec in result.records:
        # paper: tiled Jacobi ~40% slower than the GPU, but FPGA stays
        # within ~2.5x (it remains the more energy-efficient device)
        assert rec["gpu_model"] < rec["fpga_sim"] < 3.0 * rec["gpu_model"]
