"""V100 GPU baseline performance/power model.

Stands in for the paper's measured Nvidia V100 runs (CUDA, nvidia-smi).
Explicit stencil kernels on GPUs are memory-bandwidth bound; the model is a
roofline with three calibrated ingredients:

* per-iteration kernel-launch/dependency latency (dominates small meshes —
  the paper's motivation for batching);
* a mesh-size-dependent achievable-bandwidth curve (small grids underfill
  the 80 SMs);
* per-application DRAM traffic per cell per iteration (fused loop chains
  move more than the 2x4 bytes of a simple ping-pong stencil).
"""

from repro.gpubaseline.traffic import GPUTraffic, POISSON_TRAFFIC, JACOBI_TRAFFIC, RTM_TRAFFIC
from repro.gpubaseline.model import GPUPerformanceModel, GPUMetrics

__all__ = [
    "GPUTraffic",
    "POISSON_TRAFFIC",
    "JACOBI_TRAFFIC",
    "RTM_TRAFFIC",
    "GPUPerformanceModel",
    "GPUMetrics",
]
