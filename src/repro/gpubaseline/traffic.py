"""Per-application GPU memory traffic accounting.

``bytes_per_cell_iter`` is the DRAM traffic one mesh point generates per
time iteration in the optimized GPU implementation (neighbour reads hit in
cache, so a simple ping-pong stencil moves one read + one write of the
state). ``kernels_per_iter`` is the number of kernel launches per time
iteration (the RTM chain launches one fused kernel per stencil loop).

``logical_bytes_per_cell_iter`` is the paper's reporting convention: all
mesh arrays logically accessed by the loop chain, used for both FPGA and
GPU bandwidth tables. For single-loop solvers the two coincide.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import check_positive


@dataclass(frozen=True)
class GPUTraffic:
    """Traffic/launch profile of one application on the GPU."""

    bytes_per_cell_iter: float
    kernels_per_iter: int
    logical_bytes_per_cell_iter: float
    #: bandwidth-saturation half point in mesh cells (grid occupancy ramp)
    saturation_half_cells: float
    #: peak achievable fraction of device bandwidth for this kernel mix
    peak_efficiency: float

    def __post_init__(self):
        check_positive("bytes_per_cell_iter", self.bytes_per_cell_iter)
        check_positive("kernels_per_iter", self.kernels_per_iter)
        check_positive("logical_bytes_per_cell_iter", self.logical_bytes_per_cell_iter)
        check_positive("saturation_half_cells", self.saturation_half_cells)
        check_positive("peak_efficiency", self.peak_efficiency)


#: Poisson-5pt-2D: ping-pong scalar stencil, one kernel per iteration.
#: 2D thread blocks fill the device quickly (half point ~100k cells); the
#: best 2D stencil kernels reach ~65% of V100 peak (Table IV: 540-609 GB/s).
POISSON_TRAFFIC = GPUTraffic(
    bytes_per_cell_iter=8.0,
    kernels_per_iter=1,
    logical_bytes_per_cell_iter=8.0,
    saturation_half_cells=1.0e5,
    peak_efficiency=0.65,
)

#: Jacobi-7pt-3D: ping-pong scalar stencil; 3D grids ramp more slowly
#: (Table V: 83 GB/s at 50^3 up to ~585 GB/s at 250^3).
JACOBI_TRAFFIC = GPUTraffic(
    bytes_per_cell_iter=8.0,
    kernels_per_iter=1,
    logical_bytes_per_cell_iter=8.0,
    saturation_half_cells=2.5e5,
    peak_efficiency=0.69,
)

#: RTM forward pass: four fused loops per iteration; intermediates
#: K1..K3 and T spill to DRAM between loops, so physical ~= logical
#: traffic (440 B/cell/iter over the chain). The complex 25-point kernel
#: mix reaches a lower fraction of peak (paper: fpml ~180 GB/s, best single
#: kernel ~340 GB/s).
RTM_TRAFFIC = GPUTraffic(
    bytes_per_cell_iter=440.0,
    kernels_per_iter=4,
    logical_bytes_per_cell_iter=440.0,
    saturation_half_cells=6.0e4,
    peak_efficiency=0.28,
)
