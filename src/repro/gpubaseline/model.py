"""V100 runtime/power/energy model.

``runtime = niter * (kernels_per_iter * launch_latency + bytes / bw(cells))``

with the achievable bandwidth following a Michaelis-Menten occupancy ramp::

    bw(cells) = peak * peak_efficiency * cells / (cells + half)

Batching multiplies the per-iteration payload by ``B`` without adding
launches, which is exactly why the GPU, like the FPGA, gains so much from
batched small meshes (paper Fig. 3(b)/4(b)/5(b)).

Power follows the bandwidth utilization: ``P = idle + (max-idle) *
(bw/peak)^0.5`` — calibrated so the paper's observed envelopes (40-210 W on
Poisson, 77-240 W on Jacobi, 51-170 W on RTM) are recovered.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.gpu import GPUDevice, NVIDIA_V100
from repro.gpubaseline.traffic import GPUTraffic
from repro.model.design import Workload
from repro.util.validation import check_positive


@dataclass(frozen=True)
class GPUMetrics:
    """Model outputs for one GPU run."""

    seconds: float
    achieved_bandwidth: float
    logical_bytes: float
    power_w: float

    @property
    def energy_j(self) -> float:
        """Energy over the run."""
        return self.power_w * self.seconds

    @property
    def logical_bandwidth(self) -> float:
        """Paper-convention bandwidth (logical bytes / runtime)."""
        return self.logical_bytes / self.seconds


class GPUPerformanceModel:
    """Roofline + launch-latency model of an iterative stencil solve."""

    def __init__(self, traffic: GPUTraffic, device: GPUDevice = NVIDIA_V100):
        self.traffic = traffic
        self.device = device

    def achievable_bandwidth(self, cells: int) -> float:
        """DRAM bandwidth achievable at a given total grid size."""
        check_positive("cells", cells)
        peak = self.device.peak_bandwidth * self.traffic.peak_efficiency
        return peak * cells / (cells + self.traffic.saturation_half_cells)

    def iteration_seconds(self, cells: int) -> float:
        """Time of one time iteration over ``cells`` total mesh points."""
        launch = self.traffic.kernels_per_iter * self.device.launch_latency_s
        payload = self.traffic.bytes_per_cell_iter * cells
        return launch + payload / self.achievable_bandwidth(cells)

    def predict(self, workload: Workload) -> GPUMetrics:
        """Runtime/bandwidth/power/energy for a (possibly batched) workload."""
        cells = workload.total_points
        seconds = workload.niter * self.iteration_seconds(cells)
        bw = self.achievable_bandwidth(cells)
        # power tracks how hard the memory system is driven
        utilization = bw / self.device.peak_bandwidth
        power = self.device.idle_watts + (
            self.device.max_watts - self.device.idle_watts
        ) * min(1.0, utilization) ** 0.5
        logical = (
            self.traffic.logical_bytes_per_cell_iter * cells * workload.niter
        )
        return GPUMetrics(
            seconds=seconds,
            achieved_bandwidth=bw,
            logical_bytes=logical,
            power_w=power,
        )
