"""Reverse Time Migration (RTM) forward pass (paper Section V-C, Algorithm 1).

The iteration body is a classic RK4 step over a 6-component wave field
``Y`` with two scalar coefficient meshes ``rho`` and ``mu``::

    for i in range(niter):
        K1 = fpml(Y_25pt,  rho, mu) * dt;  T = Y + K1/2
        K2 = fpml(T_25pt,  rho, mu) * dt;  T = Y + K2/2
        K3 = fpml(T_25pt,  rho, mu) * dt;  T = Y + K3
        K4 = fpml(T_25pt,  rho, mu) * dt
        Y  = Y + K1/6 + K2/3 + K3/3 + K4/6

``fpml`` uses a 25-point 8th-order star stencil (radius 4 on each axis).
The paper fuses ``K1..K3`` with their ``T`` updates and ``K4`` with the
final ``Y`` update — four fused stencil loops brought into one pipeline,
with ``T``/``K`` as on-chip FIFO streams and ``rho``/``mu``/``Y`` delay-
buffered past each stage. External traffic per pass: one read+write of
``Y`` plus reads of ``rho`` and ``mu`` (56 B/cell).

Substitution note (documented in DESIGN.md): the production ``fpml`` is
proprietary NAG code. We implement a synthetic ``fpml`` with the same
structure — per component a full 3-axis 8th-order Laplacian scaled by
``mu``, with a ``rho`` damping term on the leading component — whose op mix
reproduces the paper's ``G_dsp = 2444`` exactly:

* ``Lap8``: 13 muls + 24 adds = 87 DSP
* components 1..5: ``mu * Lap8`` -> 90 DSP; component 0 adds ``+ rho*X_0``
  -> 95 DSP; ``fpml`` total 545 DSP
* the ``*dt`` scalings and the fused T/Y updates add 264 DSP over the four
  loops: 4*545 + 264 = 2444.

Design point (Section V-C): V=1 (keeps each fused module inside one SLR),
p=3 (one module per SLR), 261 MHz, HBM. The 6-float element struct limits
the mesh plane to 64^2 (URAM budget, eq. (7)) and sustains II ~ 1.6
(calibrated from Fig. 5 runtimes).
"""

from __future__ import annotations

from repro.apps.base import StencilApp
from repro.gpubaseline.traffic import RTM_TRAFFIC
from repro.mesh.mesh import Field, MeshSpec
from repro.stencil.builders import high_order_star_1d_terms
from repro.stencil.expr import Coef, Const, Expr, FieldAccess
from repro.stencil.kernel import KernelOutput, StencilKernel
from repro.stencil.program import FusedGroup, StencilLoop, StencilProgram
from repro.util.errors import ValidationError

#: Section V-C parameters
RTM_CLOCK_MHZ = 261.0
RTM_V = 1
RTM_P = 3
RTM_COMPONENTS = 6
RTM_RADIUS = 4
#: sustained initiation interval calibrated from Fig. 5 (see module docstring)
RTM_II = 1.6
#: largest supported mesh plane edge (paper: "limited to 64^2")
RTM_MAX_PLANE_EDGE = 64

_AXIS_PREFIX = ("lx", "ly", "lz")


def _lap8(field: str, component: int) -> tuple[Expr, dict[str, float]]:
    """Full 3-axis 8th-order Laplacian with one shared centre coefficient.

    13 multiplies (1 centre + 12 pair weights) and 24 adds, per component.
    """
    coeffs: dict[str, float] = {"l0": -8.541667e-3}  # 3 * (-205/72) * h^-2, h=10

    def acc(axis: int, r: int) -> Expr:
        off = [0, 0, 0]
        off[axis] = r
        return FieldAccess(field, tuple(off), component)

    expr: Expr = Coef("l0") * acc(0, 0)
    # standard 8th-order second-derivative pair weights (h=10 grid)
    pair_defaults = {1: 1.6e-2, 2: -2.0e-3, 3: 2.53968e-4, 4: -1.785714e-5}
    for axis in range(3):
        prefix = _AXIS_PREFIX[axis]
        for r in range(1, RTM_RADIUS + 1):
            cname = f"{prefix}{r}"
            coeffs[cname] = pair_defaults[r]
            expr = expr + Coef(cname) * (acc(axis, r) + acc(axis, -r))
    return expr, coeffs


def _fpml_exprs(field: str) -> tuple[tuple[Expr, ...], dict[str, float]]:
    """The synthetic fpml: ``mu * Lap8`` per component, rho damping on comp 0."""
    coeffs: dict[str, float] = {"rho_c": 1.0}
    exprs = []
    for c in range(RTM_COMPONENTS):
        lap, lap_coeffs = _lap8(field, c)
        coeffs.update(lap_coeffs)
        e: Expr = FieldAccess("mu", (0, 0, 0)) * lap
        if c == 0:
            e = e + FieldAccess("rho", (0, 0, 0)) * FieldAccess(field, (0, 0, 0), 0)
        exprs.append(e)
    return tuple(exprs), coeffs


def _scaled(exprs: tuple[Expr, ...], coef: str) -> tuple[Expr, ...]:
    return tuple(e * Coef(coef) for e in exprs)


def _combine(
    a: str, terms: list[tuple[str, float | None]]
) -> tuple[Expr, ...]:
    """Per-component ``a + sum(w * t)`` expressions (w=None means weight 1)."""
    out = []
    for c in range(RTM_COMPONENTS):
        e: Expr = FieldAccess(a, (0, 0, 0), c)
        for field, w in terms:
            t: Expr = FieldAccess(field, (0, 0, 0), c)
            if w is not None:
                t = Const(w) * t
            e = e + t
        out.append(e)
    return tuple(out)


def build_rtm_program(mesh_shape: tuple[int, int, int] = (64, 64, 32)) -> StencilProgram:
    """Algorithm 1 as four fused-loop kernels in one dataflow pipeline."""
    if mesh_shape[0] > RTM_MAX_PLANE_EDGE or mesh_shape[1] > RTM_MAX_PLANE_EDGE:
        raise ValidationError(
            f"RTM mesh plane {mesh_shape[0]}x{mesh_shape[1]} exceeds the "
            f"design limit of {RTM_MAX_PLANE_EDGE}^2 (paper Section V-C)"
        )
    dt = 1.0e-3
    coeffs: dict[str, float] = {"dt": dt}

    fpml_y, c1 = _fpml_exprs("Y")
    coeffs.update(c1)
    stage1 = StencilKernel(
        "rtm_stage1",
        (
            KernelOutput("K1", _scaled(fpml_y, "dt")),
            KernelOutput("T", _combine("Y", [("K1", 0.5)]), init_from="Y"),
        ),
        coeffs,
    )

    fpml_t, c2 = _fpml_exprs("T")
    coeffs2 = dict(coeffs)
    coeffs2.update(c2)
    stage2 = StencilKernel(
        "rtm_stage2",
        (
            KernelOutput("K2", _scaled(fpml_t, "dt")),
            KernelOutput("T", _combine("Y", [("K2", 0.5)]), init_from="Y"),
        ),
        coeffs2,
    )

    stage3 = StencilKernel(
        "rtm_stage3",
        (
            KernelOutput("K3", _scaled(fpml_t, "dt")),
            KernelOutput("T", _combine("Y", [("K3", None)]), init_from="Y"),
        ),
        coeffs2,
    )

    y_update = _combine(
        "Y",
        [("K1", 1.0 / 6.0), ("K2", 1.0 / 3.0), ("K3", 1.0 / 3.0), ("K4", 1.0 / 6.0)],
    )
    stage4 = StencilKernel(
        "rtm_stage4",
        (
            KernelOutput("K4", _scaled(fpml_t, "dt")),
            KernelOutput("Y", y_update, init_from="Y"),
        ),
        coeffs2,
    )

    group = FusedGroup(
        tuple(StencilLoop(k) for k in (stage1, stage2, stage3, stage4))
    )
    return StencilProgram(
        name="rtm_forward",
        mesh=MeshSpec(mesh_shape, components=RTM_COMPONENTS),
        groups=(group,),
        state_fields=("Y",),
        constant_fields=("rho", "mu"),
        description="RTM forward pass: RK4 over a 25-point 8th-order 3D stencil "
        "on 6-component vector elements (Algorithm 1)",
    )


def _make_fields(spec: MeshSpec, seed: int) -> dict[str, Field]:
    scalar = MeshSpec(spec.shape, 1, spec.dtype)
    return {
        "Y": Field.random("Y", spec, seed=seed, lo=-0.5, hi=0.5),
        "rho": Field.random("rho", scalar, seed=seed + 1, lo=0.9, hi=1.1),
        "mu": Field.random("mu", scalar, seed=seed + 2, lo=0.4, hi=0.6),
    }


def rtm_app(mesh_shape: tuple[int, int, int] = (64, 64, 32)) -> StencilApp:
    """The RTM forward-pass application preset."""
    return StencilApp(
        name="RTM-forward",
        program=build_rtm_program(mesh_shape),
        paper_clock_mhz=RTM_CLOCK_MHZ,
        V=RTM_V,
        p=RTM_P,
        memory="HBM",
        gpu_traffic=RTM_TRAFFIC,
        make_fields=_make_fields,
        initiation_interval=RTM_II,
        notes="V=1 keeps each fused module in one SLR; p=3 across the three SLRs. "
        "Mesh plane limited to 64^2 by URAM capacity.",
    )
