"""Poisson-5pt-2D (paper Section V-A, eq. (16)).

``U' = 1/8 (U[i-1,j] + U[i+1,j] + U[i,j-1] + U[i,j+1]) + 1/2 U[i,j]``

Design point from Table II: V=8 (one DDR4 channel / two HBM channels at
300 MHz, eq. (4)), p=60 synthesized at 250 MHz (routing congestion capped
the clock below the 300 MHz default). G_dsp = 14. The spatially blocked
variant (Table III) keeps the same pipeline (p=60, V=8) with 2D blocks of
M = 8192 columns.
"""

from __future__ import annotations

from repro.apps.base import StencilApp
from repro.gpubaseline.traffic import POISSON_TRAFFIC
from repro.mesh.mesh import Field, MeshSpec
from repro.stencil.builders import jacobi2d_5pt
from repro.stencil.program import single_kernel_program

#: Table II parameters
POISSON_CLOCK_MHZ = 250.0
POISSON_V = 8
POISSON_P = 60


def _make_fields(spec: MeshSpec, seed: int) -> dict[str, Field]:
    """A smooth reproducible initial condition (random interior, zero mean)."""
    return {"U": Field.random("U", spec, seed=seed, lo=0.0, hi=1.0)}


def poisson2d_app(mesh_shape: tuple[int, int] = (200, 100)) -> StencilApp:
    """The Poisson-5pt-2D application preset."""
    program = single_kernel_program(
        "poisson_5pt_2d",
        MeshSpec(mesh_shape),
        jacobi2d_5pt(),
        description="2D Poisson solver, 2nd-order 5-point star stencil (eq. 16)",
    )
    return StencilApp(
        name="Poisson-5pt-2D",
        program=program,
        paper_clock_mhz=POISSON_CLOCK_MHZ,
        V=POISSON_V,
        p=POISSON_P,
        memory="HBM",
        gpu_traffic=POISSON_TRAFFIC,
        make_fields=_make_fields,
        tiled_V=POISSON_V,
        tiled_p=POISSON_P,
        notes="Baseline V from eq. (4) with one DDR4 channel; tiled design reuses the pipeline.",
    )
