"""Jacobi-7pt-3D (paper Section V-B, eq. (18)).

``U' = k1 U[i+1] + k2 U[i-1] + k3 U[j-1] + k4 U + k5 U[j+1] + k6 U[k+1] + k7 U[k-1]``

Design point from Table II: V=8, p=29 (model bound p_dsp=28; the synthesized
design squeezed 29 modules in), 246 MHz. G_dsp = 33. The baseline needs
``D * m * n`` elements of plane buffer per module, which is what pushes this
app to spatial blocking (Table III: V=64, p=3, 768x768 blocks) on large
meshes.
"""

from __future__ import annotations

from repro.apps.base import StencilApp
from repro.gpubaseline.traffic import JACOBI_TRAFFIC
from repro.mesh.mesh import Field, MeshSpec
from repro.stencil.builders import jacobi3d_7pt
from repro.stencil.program import single_kernel_program

#: Table II parameters
JACOBI_CLOCK_MHZ = 246.0
JACOBI_V = 8
JACOBI_P = 29
#: Table III tiled parameters
JACOBI_TILED_V = 64
JACOBI_TILED_P = 3


def _make_fields(spec: MeshSpec, seed: int) -> dict[str, Field]:
    return {"U": Field.random("U", spec, seed=seed, lo=0.0, hi=1.0)}


def jacobi3d_app(mesh_shape: tuple[int, int, int] = (50, 50, 50)) -> StencilApp:
    """The Jacobi-7pt-3D application preset."""
    program = single_kernel_program(
        "jacobi_7pt_3d",
        MeshSpec(mesh_shape),
        jacobi3d_7pt(),
        description="3D Jacobi iteration, 2nd-order 7-point star stencil (eq. 18)",
    )
    return StencilApp(
        name="Jacobi-7pt-3D",
        program=program,
        paper_clock_mhz=JACOBI_CLOCK_MHZ,
        V=JACOBI_V,
        p=JACOBI_P,
        memory="HBM",
        gpu_traffic=JACOBI_TRAFFIC,
        make_fields=_make_fields,
        tiled_V=JACOBI_TILED_V,
        tiled_p=JACOBI_TILED_P,
        tiled_memory="HBM",  # p=3 reuse leaves ~80 GB/s of physical traffic
        notes="Plane buffers of D*m*n elements per module bound the mesh size (eq. 7).",
    )
