"""The paper's three representative applications.

* :mod:`repro.apps.poisson2d` — Poisson-5pt-2D (eq. 16): 2D, low order,
  single stencil loop.
* :mod:`repro.apps.jacobi3d` — Jacobi-7pt-3D (eq. 18): 3D, low order,
  single stencil loop.
* :mod:`repro.apps.rtm` — Reverse Time Migration forward pass (Algorithm 1):
  3D, 8th order, 25-point stencil over 6-component vector elements, four
  fused stencil loops per RK4 time iteration.
"""

from repro.apps.base import StencilApp
from repro.apps.poisson2d import poisson2d_app
from repro.apps.jacobi3d import jacobi3d_app
from repro.apps.rtm import rtm_app, build_rtm_program
from repro.apps.registry import all_apps, app_by_name

__all__ = [
    "StencilApp",
    "poisson2d_app",
    "jacobi3d_app",
    "rtm_app",
    "build_rtm_program",
    "all_apps",
    "app_by_name",
]
