"""Application registry used by the harness and examples."""

from __future__ import annotations

from typing import Callable

from repro.apps.base import StencilApp
from repro.apps.jacobi3d import jacobi3d_app
from repro.apps.poisson2d import poisson2d_app
from repro.apps.rtm import rtm_app
from repro.util.errors import ValidationError

_FACTORIES: dict[str, Callable[[], StencilApp]] = {
    "poisson2d": poisson2d_app,
    "jacobi3d": jacobi3d_app,
    "rtm": rtm_app,
}


def all_apps() -> dict[str, StencilApp]:
    """Instantiate all three paper applications with default meshes."""
    return {name: factory() for name, factory in _FACTORIES.items()}


def app_by_name(name: str) -> StencilApp:
    """Instantiate one application by registry name."""
    try:
        return _FACTORIES[name]()
    except KeyError:
        raise ValidationError(
            f"unknown app {name!r}; available: {sorted(_FACTORIES)}"
        ) from None
