"""Application presets: a program plus its paper-validated design parameters.

A :class:`StencilApp` bundles everything the harness needs to reproduce one
of the paper's applications: the stencil program, the synthesis outcomes
from Table II (achieved frequency, chosen V and p), the GPU traffic profile
and an initial-condition generator.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Callable, Mapping

from repro.arch.device import ALVEO_U280, FPGADevice
from repro.dataflow.accelerator import FPGAAccelerator
from repro.gpubaseline.model import GPUPerformanceModel
from repro.gpubaseline.traffic import GPUTraffic
from repro.mesh.mesh import Field, MeshSpec
from repro.model.design import DesignPoint, Workload
from repro.model.runtime import RuntimePredictor
from repro.model.tiling import TileDesign
from repro.stencil.program import StencilProgram
from repro.util.errors import ValidationError

FieldMaker = Callable[[MeshSpec, int], Mapping[str, Field]]


@dataclass(frozen=True)
class StencilApp:
    """One paper application with its validated design point."""

    name: str
    program: StencilProgram
    #: achieved clock after place & route (Table II column 2)
    paper_clock_mhz: float
    #: vectorization factor of the paper design
    V: int
    #: iterative unroll factor actually synthesized (Table II column 5)
    p: int
    memory: str
    gpu_traffic: GPUTraffic
    make_fields: FieldMaker
    initiation_interval: float = 1.0
    #: tiled-design parameters from Table III, if the app was tiled
    tiled_V: int | None = None
    tiled_p: int | None = None
    #: memory system feeding the tiled design (DDR4 suffices for Poisson's
    #: p=60 reuse; Jacobi's p=3 needs HBM-class bandwidth)
    tiled_memory: str = "DDR4"
    notes: str = ""

    # -- program/design helpers -------------------------------------------------
    def program_on(self, mesh_shape: tuple[int, ...]) -> StencilProgram:
        """The program re-bound to a concrete mesh shape."""
        spec = MeshSpec(mesh_shape, self.program.mesh.components, self.program.mesh.dtype)
        return self.program.with_mesh(spec)

    def design(
        self,
        tile: tuple[int, ...] | None = None,
        clock_mhz: float | None = None,
        p: int | None = None,
        V: int | None = None,
    ) -> DesignPoint:
        """The paper design point, optionally tiled or overridden."""
        if tile is not None:
            return DesignPoint(
                V=V if V is not None else (self.tiled_V or self.V),
                p=p if p is not None else (self.tiled_p or self.p),
                clock_mhz=clock_mhz or self.paper_clock_mhz,
                memory=self.tiled_memory,
                tile=TileDesign(tile),
                initiation_interval=self.initiation_interval,
            )
        return DesignPoint(
            V=V if V is not None else self.V,
            p=p if p is not None else self.p,
            clock_mhz=clock_mhz or self.paper_clock_mhz,
            memory=self.memory,
            initiation_interval=self.initiation_interval,
        )

    def workload(self, mesh_shape: tuple[int, ...], niter: int, batch: int = 1) -> Workload:
        """A workload on this app's element type."""
        spec = MeshSpec(mesh_shape, self.program.mesh.components, self.program.mesh.dtype)
        return Workload(spec, niter, batch)

    # -- executable artefacts -----------------------------------------------------
    def accelerator(
        self,
        mesh_shape: tuple[int, ...],
        design: DesignPoint | None = None,
        device: FPGADevice = ALVEO_U280,
    ) -> FPGAAccelerator:
        """A simulated accelerator configured for this app."""
        program = self.program_on(mesh_shape)
        return FPGAAccelerator(
            program,
            design or self.design(),
            device,
            logical_bytes_per_cell_iter=self.gpu_traffic.logical_bytes_per_cell_iter,
        )

    def predictor(
        self,
        mesh_shape: tuple[int, ...],
        design: DesignPoint | None = None,
        device: FPGADevice = ALVEO_U280,
    ) -> RuntimePredictor:
        """The analytic-model predictor for this app."""
        program = self.program_on(mesh_shape)
        return RuntimePredictor(
            program,
            device,
            design or self.design(),
            logical_bytes_per_cell_iter=self.gpu_traffic.logical_bytes_per_cell_iter,
        )

    def gpu_model(self) -> GPUPerformanceModel:
        """The V100 baseline model for this app."""
        return GPUPerformanceModel(self.gpu_traffic)

    def fields(self, mesh_shape: tuple[int, ...], seed: int = 0) -> dict[str, Field]:
        """Reproducible initial conditions on a given mesh."""
        spec = MeshSpec(mesh_shape, self.program.mesh.components, self.program.mesh.dtype)
        fields = dict(self.make_fields(spec, seed))
        for name in self.program.external_reads():
            if name not in fields:
                raise ValidationError(
                    f"app '{self.name}' field maker did not produce '{name}'"
                )
        return fields
