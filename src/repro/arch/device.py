"""FPGA device models.

The inventory follows the paper's Table I for the Xilinx Alveo U280:

=============  =====================================================
DSP blocks     8490
BRAM           6.6 MB (1487 x 36 Kb blocks)
URAM           34.5 MB (960 x 288 Kb blocks)
HBM            8 GB, 460 GB/s, 32 channels
DDR4           32 GB, 38.4 GB/s in 2 banks (1 channel per bank)
SLRs           3 (design spanning SLRs degrades routing/frequency)
=============  =====================================================

On-chip memory is quantized: BRAM in 36 Kb blocks (usable as 2 x 18 Kb) and
URAM in 288 Kb blocks with fixed 72-bit native width. The paper notes this
quantization plus routing slack limits practical utilization to 80-90% of
the raw capacity, which :meth:`FPGADevice.usable_on_chip_bytes` models.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field

from repro.util.errors import ValidationError
from repro.util.units import GB, MHZ
from repro.util.validation import check_in_range, check_positive


@dataclass(frozen=True)
class MemoryBank:
    """One external/near-chip memory system (HBM stack or DDR4 bank group)."""

    kind: str  # "HBM" or "DDR4"
    capacity_bytes: int
    total_bandwidth: float  # bytes/second, peak over all channels
    channels: int

    def __post_init__(self):
        if self.kind not in ("HBM", "DDR4"):
            raise ValidationError(f"memory kind must be HBM or DDR4, got {self.kind!r}")
        check_positive("capacity_bytes", self.capacity_bytes)
        check_positive("total_bandwidth", self.total_bandwidth)
        check_positive("channels", self.channels)

    @property
    def channel_bandwidth(self) -> float:
        """Peak bandwidth of a single channel (``BW_channel`` in eq. (4))."""
        return self.total_bandwidth / self.channels


#: bits per BRAM block (36 Kb true dual port)
BRAM_BLOCK_BITS = 36 * 1024
#: bits per URAM block (288 Kb)
URAM_BLOCK_BITS = 288 * 1024
#: native URAM word width in bits (fixed 72-bit)
URAM_WIDTH_BITS = 72


@dataclass(frozen=True)
class FPGADevice:
    """Resource inventory and interfaces of an FPGA accelerator card."""

    name: str
    dsp_blocks: int
    bram_blocks: int
    uram_blocks: int
    slr_count: int
    hbm: MemoryBank | None
    ddr4: MemoryBank | None
    default_clock_mhz: float = 300.0
    axi_bus_bits: int = 512
    #: fraction of raw on-chip memory practically usable (paper: 80-90%)
    mem_utilization_target: float = 0.85
    #: fraction of DSP blocks budgeted for compute (paper assumes 90%)
    dsp_utilization_target: float = 0.90

    def __post_init__(self):
        check_positive("dsp_blocks", self.dsp_blocks)
        check_positive("bram_blocks", self.bram_blocks)
        check_positive("uram_blocks", self.uram_blocks)
        check_positive("slr_count", self.slr_count)
        check_positive("default_clock_mhz", self.default_clock_mhz)
        check_in_range("mem_utilization_target", self.mem_utilization_target, 0.1, 1.0)
        check_in_range("dsp_utilization_target", self.dsp_utilization_target, 0.1, 1.0)
        if self.hbm is None and self.ddr4 is None:
            raise ValidationError(f"device '{self.name}' has no external memory")

    # -- on-chip memory -----------------------------------------------------------
    @property
    def bram_bytes(self) -> int:
        """Raw BRAM capacity in bytes."""
        return self.bram_blocks * BRAM_BLOCK_BITS // 8

    @property
    def uram_bytes(self) -> int:
        """Raw URAM capacity in bytes."""
        return self.uram_blocks * URAM_BLOCK_BITS // 8

    @property
    def on_chip_bytes(self) -> int:
        """Raw combined BRAM + URAM capacity (``FPGA_mem`` in eq. (7))."""
        return self.bram_bytes + self.uram_bytes

    def usable_on_chip_bytes(self) -> int:
        """On-chip bytes after the practical utilization target."""
        return int(self.on_chip_bytes * self.mem_utilization_target)

    def usable_dsp(self) -> int:
        """DSP blocks after the utilization target (``FPGA_dsp`` in eq. (6))."""
        return int(self.dsp_blocks * self.dsp_utilization_target)

    # -- external memory ----------------------------------------------------------
    def memory(self, target: str) -> MemoryBank:
        """The memory bank for a named target ('HBM' or 'DDR4')."""
        if target == "HBM":
            bank = self.hbm
        elif target == "DDR4":
            bank = self.ddr4
        else:
            raise ValidationError(f"unknown memory target {target!r}")
        if bank is None:
            raise ValidationError(f"device '{self.name}' has no {target}")
        return bank

    @property
    def memory_targets(self) -> tuple[str, ...]:
        """Available external memory targets."""
        targets = []
        if self.hbm is not None:
            targets.append("HBM")
        if self.ddr4 is not None:
            targets.append("DDR4")
        return tuple(targets)

    @property
    def axi_bus_bytes(self) -> int:
        """AXI data bus width in bytes (64 B for the 512-bit designs)."""
        return self.axi_bus_bits // 8

    # -- per-SLR resources ----------------------------------------------------
    @property
    def dsp_per_slr(self) -> int:
        """DSP blocks per SLR (uniform split assumed)."""
        return self.dsp_blocks // self.slr_count

    @property
    def on_chip_bytes_per_slr(self) -> int:
        """On-chip memory per SLR (uniform split assumed)."""
        return self.on_chip_bytes // self.slr_count


#: The paper's evaluation device (Table I).
ALVEO_U280 = FPGADevice(
    name="Xilinx Alveo U280",
    dsp_blocks=8490,
    bram_blocks=1487,
    uram_blocks=960,
    slr_count=3,
    hbm=MemoryBank("HBM", 8 * GB, 460.0 * GB, 32),
    ddr4=MemoryBank("DDR4", 32 * GB, 38.4 * GB, 2),
    default_clock_mhz=300.0,
)

#: A DDR-only sibling card, used by the design-space exploration examples.
ALVEO_U250 = FPGADevice(
    name="Xilinx Alveo U250",
    dsp_blocks=12288,
    bram_blocks=2000,
    uram_blocks=1280,
    slr_count=4,
    hbm=None,
    ddr4=MemoryBank("DDR4", 64 * GB, 77.0 * GB, 4),
    default_clock_mhz=300.0,
)

_DEVICES = {d.name: d for d in (ALVEO_U280, ALVEO_U250)}
_DEVICES.update({"U280": ALVEO_U280, "U250": ALVEO_U250})


def device_by_name(name: str) -> FPGADevice:
    """Look up a predefined device by full or short name."""
    try:
        return _DEVICES[name]
    except KeyError:
        raise ValidationError(
            f"unknown device {name!r}; available: {sorted(_DEVICES)}"
        ) from None
