"""GPU device descriptions used by the baseline performance model.

The paper's comparison platform is an Nvidia Tesla V100 PCIe (Table I):
16 GB HBM2 at 900 GB/s peak. The baseline model additionally needs launch
latency and power envelope figures; these are the commonly reported values
for CUDA 9/V100-class systems and are calibrated against the paper's
measured runtimes in :mod:`repro.gpubaseline.model`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.units import GB
from repro.util.validation import check_positive


@dataclass(frozen=True)
class GPUDevice:
    """A GPU accelerator for the baseline comparison model."""

    name: str
    memory_bytes: int
    peak_bandwidth: float  # bytes/second
    sm_count: int
    #: end-to-end kernel launch + dependency latency in an iterative loop (s)
    launch_latency_s: float
    idle_watts: float
    max_watts: float

    def __post_init__(self):
        check_positive("memory_bytes", self.memory_bytes)
        check_positive("peak_bandwidth", self.peak_bandwidth)
        check_positive("sm_count", self.sm_count)
        check_positive("launch_latency_s", self.launch_latency_s)
        check_positive("idle_watts", self.idle_watts)
        check_positive("max_watts", self.max_watts)


#: The paper's comparison GPU (Table I).
NVIDIA_V100 = GPUDevice(
    name="Nvidia Tesla V100 PCIe",
    memory_bytes=16 * GB,
    peak_bandwidth=900.0 * GB,
    sm_count=80,
    launch_latency_s=7.0e-6,
    idle_watts=40.0,
    max_watts=250.0,
)
