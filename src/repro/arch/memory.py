"""AXI memory-transaction model.

The paper (Section IV-A) characterises the U280's memory interface with a
concrete example: "it takes 16 clock cycles to transfer 1024 bytes via the
512-bit wide AXI interface bus, but the latency of the transfer is about 14
clock cycles" — so small or strided transfers must keep multiple requests in
flight to hide the per-transaction latency, and tiled designs lose bandwidth
when the contiguous run within a tile is short. This module models exactly
that effect; the tiler and the tiling performance model both consume it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.errors import ValidationError
from repro.util.rounding import ceil_div, round_up
from repro.util.validation import check_positive

#: per-transaction latency in clock cycles (paper Section IV-A)
DEFAULT_TRANSACTION_LATENCY = 14
#: maximum AXI burst payload modelled (paper: 4 KB transfer granularity)
MAX_BURST_BYTES = 4096


@dataclass(frozen=True)
class AXIPort:
    """One AXI master port between the accelerator and a memory channel."""

    bus_bits: int = 512
    latency_cycles: int = DEFAULT_TRANSACTION_LATENCY
    max_outstanding: int = 16
    max_burst_bytes: int = MAX_BURST_BYTES

    def __post_init__(self):
        check_positive("bus_bits", self.bus_bits)
        if self.bus_bits % 8:
            raise ValidationError(f"bus_bits must be a multiple of 8, got {self.bus_bits}")
        check_positive("latency_cycles", self.latency_cycles)
        check_positive("max_outstanding", self.max_outstanding)
        check_positive("max_burst_bytes", self.max_burst_bytes)

    @property
    def bus_bytes(self) -> int:
        """Data bus width in bytes."""
        return self.bus_bits // 8


def burst_cycles(port: AXIPort, nbytes: int) -> int:
    """Clock cycles to move one contiguous transfer of ``nbytes``.

    The transfer is split into bursts of at most ``max_burst_bytes``. Beats
    within a burst stream back to back; each burst pays the transaction
    latency once (unless hidden, which :func:`stream_cycles` accounts for).
    """
    check_positive("nbytes", nbytes)
    total = 0
    remaining = nbytes
    while remaining > 0:
        chunk = min(remaining, port.max_burst_bytes)
        total += ceil_div(chunk, port.bus_bytes) + port.latency_cycles
        remaining -= chunk
    return total


def stream_cycles(port: AXIPort, chunk_bytes: int, num_chunks: int) -> int:
    """Cycles to move ``num_chunks`` independent transfers of ``chunk_bytes``.

    With enough outstanding requests the latency of one transaction hides
    behind the data beats of others; throughput is then limited by
    ``max(beats, latency / max_outstanding)`` per chunk. The pipeline always
    pays one full latency at the start.
    """
    check_positive("chunk_bytes", chunk_bytes)
    check_positive("num_chunks", num_chunks)
    beats = ceil_div(min(chunk_bytes, port.max_burst_bytes), port.bus_bytes)
    bursts_per_chunk = ceil_div(chunk_bytes, port.max_burst_bytes)
    # effective issue interval per burst once the request window is full
    per_burst = max(beats, ceil_div(port.latency_cycles, port.max_outstanding))
    return port.latency_cycles + per_burst * bursts_per_chunk * num_chunks


def effective_bandwidth(
    port: AXIPort, clock_hz: float, chunk_bytes: int, num_chunks: int = 1024
) -> float:
    """Achievable bytes/second for a stream of ``chunk_bytes`` transfers."""
    check_positive("clock_hz", clock_hz)
    cycles = stream_cycles(port, chunk_bytes, num_chunks)
    return chunk_bytes * num_chunks / (cycles / clock_hz)


def strided_transfer_efficiency(port: AXIPort, run_bytes: int) -> float:
    """Fraction of peak port bandwidth achieved with contiguous runs of ``run_bytes``.

    Tiled access reads ``M``-element runs out of longer rows; the run is
    aligned up to the bus width (512-bit alignment rule) and the per-burst
    overhead is amortized over the run length.
    """
    check_positive("run_bytes", run_bytes)
    aligned = round_up(run_bytes, port.bus_bytes)
    cycles = stream_cycles(port, aligned, 1024) / 1024.0
    ideal = aligned / port.bus_bytes
    useful = run_bytes / aligned
    return (ideal / cycles) * useful
