"""Hardware substrate models: FPGA devices, memory interfaces, clocking, GPUs."""

from repro.arch.device import (
    FPGADevice,
    MemoryBank,
    ALVEO_U280,
    ALVEO_U250,
    device_by_name,
)
from repro.arch.memory import (
    AXIPort,
    burst_cycles,
    effective_bandwidth,
    strided_transfer_efficiency,
)
from repro.arch.clocking import ClockModel, DEFAULT_CLOCK_MODEL
from repro.arch.gpu import GPUDevice, NVIDIA_V100
from repro.arch.floorplan import SLRFloorplan

__all__ = [
    "FPGADevice",
    "MemoryBank",
    "ALVEO_U280",
    "ALVEO_U250",
    "device_by_name",
    "AXIPort",
    "burst_cycles",
    "effective_bandwidth",
    "strided_transfer_efficiency",
    "ClockModel",
    "DEFAULT_CLOCK_MODEL",
    "GPUDevice",
    "NVIDIA_V100",
    "SLRFloorplan",
]
