"""SLR floorplanning heuristics.

Modern Xilinx devices are split into Super Logic Regions; bandwidth within
an SLR is abundant but inter-SLR connections are scarce, so a compute module
that straddles a boundary congests routing and drops the clock (paper
Sections II/V-C). The RTM design keeps each fused four-loop compute module
inside one SLR by choosing V=1, giving p=3 on the U280's three SLRs.

This module answers two floorplanning questions the workflow needs:

* does one compute module fit within a single SLR's resources?
* how many SLR boundaries does a chain of ``p`` modules cross?
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.device import FPGADevice
from repro.util.errors import ValidationError
from repro.util.validation import check_positive


@dataclass(frozen=True)
class SLRFloorplan:
    """Placement summary for a chain of identical compute modules."""

    device: FPGADevice
    modules: int
    module_dsp: int
    module_mem_bytes: int

    def __post_init__(self):
        check_positive("modules", self.modules)
        if self.module_dsp < 0 or self.module_mem_bytes < 0:
            raise ValidationError("module resources must be non-negative")

    @property
    def module_fits_one_slr(self) -> bool:
        """True when a single module's resources fit within one SLR."""
        return (
            self.module_dsp <= self.device.dsp_per_slr
            and self.module_mem_bytes <= self.device.on_chip_bytes_per_slr
        )

    @property
    def modules_per_slr(self) -> int:
        """How many whole modules one SLR can host (0 if none fit)."""
        if self.module_dsp == 0 and self.module_mem_bytes == 0:
            return self.modules
        by_dsp = (
            self.device.dsp_per_slr // self.module_dsp
            if self.module_dsp
            else self.modules
        )
        by_mem = (
            self.device.on_chip_bytes_per_slr // self.module_mem_bytes
            if self.module_mem_bytes
            else self.modules
        )
        return int(min(by_dsp, by_mem))

    @property
    def slr_crossings(self) -> int:
        """SLR boundaries crossed by the module chain.

        If each module fits in an SLR, modules pack into SLRs and only the
        chain links between SLRs cross; otherwise every module straddles and
        the estimate is pessimistic (one crossing per module).
        """
        if self.modules_per_slr >= 1:
            slrs_used = -(-self.modules // self.modules_per_slr)
            return max(0, min(slrs_used, self.device.slr_count) - 1)
        return self.modules

    @property
    def slrs_used(self) -> int:
        """Number of SLRs occupied by the chain (capped at the device count)."""
        if self.modules_per_slr >= 1:
            return min(self.device.slr_count, -(-self.modules // self.modules_per_slr))
        return self.device.slr_count
