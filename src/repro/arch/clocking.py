"""Achievable-frequency model.

The paper observes (Sections III-A and V-A) that Vivado HLS targets 300 MHz
by default, but designs that occupy a large fraction of the device — in
particular deep iterative pipelines spanning multiple SLRs — suffer routing
congestion and close timing at a lower clock: Poisson with p=60 ran at
250 MHz, Jacobi at 246 MHz, RTM at 261 MHz.

No analytic model predicts placement-and-route exactly; the paper itself
adjusts the frequency "by trial". We model the observed trend: full speed up
to a utilization knee, then a linear derate with combined DSP/memory
utilization, plus a fixed penalty per SLR crossing. Designs may override the
model with a measured frequency, which is what the application presets do.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import check_in_range, check_non_negative, check_positive


@dataclass(frozen=True)
class ClockModel:
    """Linear-derate clock estimate.

    ``f = f_target * (1 - derate * max(0, util - knee)) - slr_penalty_mhz * crossings``
    clamped to ``[f_floor, f_target]``.
    """

    target_mhz: float = 300.0
    floor_mhz: float = 150.0
    utilization_knee: float = 0.55
    derate: float = 0.42
    slr_penalty_mhz: float = 4.0

    def __post_init__(self):
        check_positive("target_mhz", self.target_mhz)
        check_positive("floor_mhz", self.floor_mhz)
        check_in_range("utilization_knee", self.utilization_knee, 0.0, 1.0)
        check_non_negative("derate", self.derate)
        check_non_negative("slr_penalty_mhz", self.slr_penalty_mhz)

    def estimate_mhz(self, utilization: float, slr_crossings: int = 0) -> float:
        """Estimated achievable clock for a given device utilization.

        Parameters
        ----------
        utilization:
            The binding resource utilization of the design in [0, 1] — the
            max of DSP and on-chip-memory utilization.
        slr_crossings:
            Number of SLR boundaries the critical dataflow path crosses.
        """
        check_in_range("utilization", utilization, 0.0, 1.0)
        check_non_negative("slr_crossings", slr_crossings)
        f = self.target_mhz
        over = max(0.0, utilization - self.utilization_knee)
        f *= 1.0 - self.derate * over
        f -= self.slr_penalty_mhz * slr_crossings
        return min(self.target_mhz, max(self.floor_mhz, f))


#: Calibrated so the three paper designs land in their measured 246-261 MHz band.
DEFAULT_CLOCK_MODEL = ClockModel()
