"""Resource estimation: DSP cost of a mesh-point update and unroll bounds.

``G_dsp`` (paper Table II) is the DSP-block cost of computing one mesh-point
update — the whole fused loop chain of one iteration. With the standard
Xilinx single-precision operator costs (adder: 2 DSPs, multiplier: 3 DSPs,
divider: LUT-based) the paper's values are recovered exactly:

* Poisson-5pt-2D: 4 adds + 2 muls -> 4*2 + 2*3 = 14
* Jacobi-7pt-3D: 6 adds + 7 muls -> 6*2 + 7*3 = 33
* RTM forward pass: 2444 (see :mod:`repro.apps.rtm` for the op budget)

From ``G_dsp`` follow the two unroll bounds:

* eq. (6): ``p_dsp = FPGA_dsp / (V * G_dsp)``
* eq. (7): ``p_mem = FPGA_mem / (k*D*m)`` (2D) or ``/(k*D*m*n)`` (3D)

and the achievable iterative unroll factor ``p = min(p_dsp, p_mem)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.device import (
    BRAM_BLOCK_BITS,
    FPGADevice,
    URAM_BLOCK_BITS,
    URAM_WIDTH_BITS,
)
from repro.stencil.kernel import StencilKernel
from repro.stencil.program import StencilProgram
from repro.util.errors import ValidationError
from repro.util.rounding import ceil_div
from repro.util.validation import check_positive


@dataclass(frozen=True)
class DSPCostModel:
    """DSP blocks per single-precision floating-point operator."""

    add: int = 2
    mul: int = 3
    div: int = 0  # Xilinx SP divider is LUT-based; it consumes no DSP blocks

    def __post_init__(self):
        if self.add < 0 or self.mul < 0 or self.div < 0:
            raise ValidationError("DSP costs must be non-negative")


#: Standard Vivado HLS single-precision operator costs.
DEFAULT_DSP_COSTS = DSPCostModel()


def gdsp_kernel(kernel: StencilKernel, costs: DSPCostModel = DEFAULT_DSP_COSTS) -> int:
    """DSP blocks for one mesh-point update of a single kernel."""
    ops = kernel.op_counts()
    return ops.adds * costs.add + ops.muls * costs.mul + ops.divs * costs.div


def gdsp_program(program: StencilProgram, costs: DSPCostModel = DEFAULT_DSP_COSTS) -> int:
    """``G_dsp``: DSP blocks for one mesh-point update of the full iteration body.

    Memoized per (program instance, cost model): counting ops walks every
    expression tree, and DSE evaluators construct a runtime predictor — and
    therefore ask for ``G_dsp`` — once per trial.
    """
    cache = program.__dict__.get("_gdsp_cache")
    if cache is None:
        cache = {}
        object.__setattr__(program, "_gdsp_cache", cache)
    cached = cache.get(costs)
    if cached is None:
        cached = sum(gdsp_kernel(k, costs) for k in program.kernels())
        cache[costs] = cached
    return cached


def p_dsp(device: FPGADevice, V: int, gdsp: int) -> int:
    """Eq. (6): maximum unroll factor from the DSP budget."""
    check_positive("V", V)
    check_positive("gdsp", gdsp)
    return device.usable_dsp() // (V * gdsp)


def _field_elem_bytes(program: StencilProgram, field: str) -> int:
    """Bytes of one element of ``field`` as streamed through the pipeline."""
    scalar = program.mesh.dtype.itemsize
    if field in program.constant_fields:
        return scalar
    return program.mesh.elem_bytes


def module_mem_bytes(program: StencilProgram, mesh_shape: tuple[int, ...] | None = None) -> int:
    """On-chip bytes needed by ONE compute module (one unrolled iteration).

    Per fused stage: a window buffer of ``D_f`` rows (2D) or planes (3D) for
    every buffered (non-self-stencil) input field, following the paper's rule
    that a ``D``-order stencil buffers ``D`` rows/planes. Fields that bypass
    a stage to feed later stages (constants and the carried state in RTM)
    are delayed by the stage's ``D/2`` latency in FIFOs of the same width.

    For a one-kernel scalar program this reduces exactly to the paper's
    ``k * D * m`` (2D) / ``k * D * m * n`` (3D) of eq. (7).
    """
    shape = tuple(mesh_shape) if mesh_shape is not None else program.mesh.shape
    if len(shape) == 2:
        line_points = shape[0]
    elif len(shape) == 3:
        line_points = shape[0] * shape[1]
    else:
        raise ValidationError(f"mesh shape must be 2D or 3D, got {shape}")

    kernels = list(program.kernels())
    total = 0
    for idx, kernel in enumerate(kernels):
        spec = kernel.spec()
        for pattern in spec.patterns:
            if pattern.is_self_stencil:
                continue
            elem = _field_elem_bytes(program, pattern.field)
            total += pattern.order * line_points * elem
        if idx < len(kernels) - 1:
            # bypass FIFOs: delay constants + carried state past this stage
            delay_lines = max(1, kernel.order // 2)
            for field in program.constant_fields:
                total += delay_lines * line_points * _field_elem_bytes(program, field)
            for field in program.state_fields:
                total += delay_lines * line_points * _field_elem_bytes(program, field)
    return total


def p_mem(device: FPGADevice, module_bytes: int) -> int:
    """Eq. (7): maximum unroll factor from the on-chip memory budget."""
    check_positive("module_bytes", module_bytes)
    return device.usable_on_chip_bytes() // module_bytes


def max_unroll(device: FPGADevice, V: int, gdsp: int, module_bytes: int) -> int:
    """The achievable iterative unroll factor: ``min(p_dsp, p_mem)``."""
    return min(p_dsp(device, V, gdsp), p_mem(device, module_bytes))


def uram_blocks_for_buffer(depth_elems: int, width_bits: int) -> int:
    """URAM blocks to realise a buffer, honouring the 72-bit native width.

    A buffer of ``width_bits`` needs ``ceil(width/72)`` URAM columns; each
    column holds ``288Kb / 72b = 4096`` elements of depth.
    """
    check_positive("depth_elems", depth_elems)
    check_positive("width_bits", width_bits)
    columns = ceil_div(width_bits, URAM_WIDTH_BITS)
    depth_per_block = URAM_BLOCK_BITS // URAM_WIDTH_BITS
    return columns * ceil_div(depth_elems, depth_per_block)


def bram_blocks_for_buffer(depth_elems: int, width_bits: int) -> int:
    """36Kb BRAM blocks to realise a buffer (72-bit max width per block)."""
    check_positive("depth_elems", depth_elems)
    check_positive("width_bits", width_bits)
    columns = ceil_div(width_bits, 72)
    depth_per_block = BRAM_BLOCK_BITS // 72
    return columns * ceil_div(depth_elems, depth_per_block)


@dataclass(frozen=True)
class ResourceReport:
    """Estimated device utilization of a design."""

    dsp_used: int
    dsp_total: int
    mem_used_bytes: int
    mem_total_bytes: int
    uram_blocks: int
    bram_blocks: int

    @property
    def dsp_utilization(self) -> float:
        """DSP utilization fraction."""
        return self.dsp_used / self.dsp_total

    @property
    def mem_utilization(self) -> float:
        """On-chip memory utilization fraction."""
        return self.mem_used_bytes / self.mem_total_bytes

    @property
    def binding_utilization(self) -> float:
        """The larger of the two utilizations: drives the clock estimate."""
        return max(self.dsp_utilization, self.mem_utilization)


def resource_report(
    program: StencilProgram,
    device: FPGADevice,
    V: int,
    p: int,
    mesh_shape: tuple[int, ...] | None = None,
    costs: DSPCostModel = DEFAULT_DSP_COSTS,
) -> ResourceReport:
    """Utilization of a (V, p) design on ``device``.

    Window buffers are costed twice: raw bytes (for eq. (7)-style bounds)
    and quantized URAM blocks (wide vector elements waste URAM columns).
    """
    check_positive("V", V)
    check_positive("p", p)
    gdsp = gdsp_program(program, costs)
    module_bytes = module_mem_bytes(program, mesh_shape)
    shape = tuple(mesh_shape) if mesh_shape is not None else program.mesh.shape
    line_points = shape[0] if len(shape) == 2 else shape[0] * shape[1]

    elem_bits = program.mesh.elem_bytes * 8
    uram = 0
    for kernel in program.kernels():
        for pattern in kernel.spec().patterns:
            if pattern.is_self_stencil:
                continue
            # one line buffer per buffered row/plane, V elements wide
            uram += pattern.order * uram_blocks_for_buffer(
                ceil_div(line_points, V), elem_bits * V
            )
    return ResourceReport(
        dsp_used=V * p * gdsp,
        dsp_total=device.dsp_blocks,
        mem_used_bytes=p * module_bytes,
        mem_total_bytes=device.on_chip_bytes,
        uram_blocks=p * uram,
        bram_blocks=0,
    )
