"""Clock-cycle models for the baseline and batched designs (paper III-A, IV-B).

The compute pipeline outputs ``V`` mesh points per clock once full. For a 2D
``m x n`` mesh (rows of length ``m``, padded to a multiple of ``V``) the
baseline design takes (eq. (2))::

    Clks_2D = niter/p * ceil(m/V) * (n + p*D/2)

and for 3D ``m x n x l`` (eq. (3))::

    Clks_3D = niter/p * ceil(m/V) * n * (l + p*D/2)

where ``D`` is the stencil order and ``p`` the iterative unroll factor: each
of the ``p`` chained compute modules adds ``D/2`` rows (2D) or planes (3D)
of fill latency. Batching ``B`` meshes stacks them along the outer dimension
so the fill is paid once per batch (eq. (15)).

Programs with several fused stencil stages per iteration (RTM) pay the sum
of the stages' ``D_i/2`` latencies per unrolled iteration;
:func:`pipeline_fill_rows` generalizes ``D/2`` accordingly.
"""

from __future__ import annotations

from typing import Sequence

from repro.util.errors import ValidationError
from repro.util.rounding import ceil_div
from repro.util.validation import check_positive


def _check_order(D: int) -> None:
    if D <= 0 or D % 2:
        raise ValidationError(f"stencil order D must be a positive even integer, got {D}")


def pipeline_fill_rows(stage_orders: Sequence[int], p: int) -> int:
    """Rows (2D) / planes (3D) of fill latency for ``p`` chained iterations.

    Each unrolled iteration chains the program's fused stages back to back,
    so one iteration contributes ``sum(D_i / 2)`` and the ``p``-deep chain
    contributes ``p`` times that (the ``p * D/2`` term of eqs. (2)/(3) for a
    single-stage program).
    """
    check_positive("p", p)
    if not stage_orders:
        raise ValidationError("stage_orders must be non-empty")
    total = 0
    for D in stage_orders:
        _check_order(D)
        total += D // 2
    return p * total


def baseline_cycles_2d(m: int, n: int, niter: int, V: int, p: int, D: int) -> int:
    """Eq. (2): total clock cycles for the baseline 2D design."""
    check_positive("m", m)
    check_positive("n", n)
    check_positive("niter", niter)
    check_positive("V", V)
    check_positive("p", p)
    _check_order(D)
    passes = ceil_div(niter, p)
    return passes * ceil_div(m, V) * (n + p * D // 2)


def baseline_cycles_3d(m: int, n: int, l: int, niter: int, V: int, p: int, D: int) -> int:
    """Eq. (3): total clock cycles for the baseline 3D design."""
    check_positive("l", l)
    check_positive("n", n)
    check_positive("m", m)
    check_positive("niter", niter)
    check_positive("V", V)
    check_positive("p", p)
    _check_order(D)
    passes = ceil_div(niter, p)
    return passes * ceil_div(m, V) * n * (l + p * D // 2)


def cycles_per_cell_2d(n: int, V: int, p: int, D: int) -> float:
    """Eq. (5): average clock cycles per mesh point per iteration (2D).

    ``1/V`` is the ideal; the ``p*D/(2*n*V)`` term is pipeline-fill idling,
    which grows for narrow meshes and deep pipelines — the motivation for
    batching (Section IV-B).
    """
    check_positive("n", n)
    check_positive("V", V)
    check_positive("p", p)
    _check_order(D)
    return 1.0 / V + (p * D) / (2.0 * n * V)


def batched_cycles_2d(m: int, n: int, batch: int, niter: int, V: int, p: int, D: int) -> int:
    """Total cycles for ``batch`` stacked 2D meshes (fill paid once per pass)."""
    check_positive("batch", batch)
    check_positive("m", m)
    check_positive("n", n)
    check_positive("niter", niter)
    check_positive("V", V)
    check_positive("p", p)
    _check_order(D)
    passes = ceil_div(niter, p)
    return passes * ceil_div(m, V) * (n * batch + p * D // 2)


def batched_cycles_3d(
    m: int, n: int, l: int, batch: int, niter: int, V: int, p: int, D: int
) -> int:
    """Total cycles for ``batch`` stacked 3D meshes."""
    check_positive("batch", batch)
    check_positive("l", l)
    passes = ceil_div(niter, p)
    check_positive("m", m)
    check_positive("n", n)
    check_positive("niter", niter)
    check_positive("V", V)
    check_positive("p", p)
    _check_order(D)
    return passes * ceil_div(m, V) * n * (l * batch + p * D // 2)


def batched_cycles_per_mesh_2d(m: int, n: int, batch: int, V: int, p: int, D: int) -> float:
    """Eq. (15): cycles attributable to one mesh within a batched pass.

    ``ceil(m/V) * (n + p*D/(2*B))`` — the fill latency term is shared by the
    ``B`` meshes of the batch.
    """
    check_positive("batch", batch)
    check_positive("m", m)
    check_positive("n", n)
    check_positive("V", V)
    check_positive("p", p)
    _check_order(D)
    return ceil_div(m, V) * (n + p * D / (2.0 * batch))


def pipeline_cycles(
    mesh_shape: Sequence[int],
    niter: int,
    V: int,
    p: int,
    stage_orders: Sequence[int],
    batch: int = 1,
    ii: float = 1.0,
) -> float:
    """Generalized eqs. (2)/(3)/(15): cycles for a multi-stage fused program.

    ``mesh_shape`` is the paper-order shape of *one* mesh; ``batch`` meshes
    are stacked along the outer dimension. ``ii`` is the sustained
    initiation interval (cycles per output vector); it scales the streaming
    term but not the fill latency.
    """
    check_positive("niter", niter)
    check_positive("V", V)
    check_positive("p", p)
    check_positive("batch", batch)
    if ii < 1.0:
        raise ValidationError(f"ii must be >= 1, got {ii}")
    fill = pipeline_fill_rows(stage_orders, p)
    passes = ceil_div(niter, p)
    if len(mesh_shape) == 2:
        m, n = mesh_shape
        check_positive("m", m)
        check_positive("n", n)
        return passes * ceil_div(m, V) * (n * batch * ii + fill)
    if len(mesh_shape) == 3:
        m, n, l = mesh_shape
        check_positive("m", m)
        check_positive("n", n)
        check_positive("l", l)
        return passes * ceil_div(m, V) * n * (l * batch * ii + fill)
    raise ValidationError(f"mesh_shape must be 2D or 3D, got {tuple(mesh_shape)}")
