"""Runtime, bandwidth and energy prediction for a design point.

This produces the paper's "FPGA - Pred" series: pure-model estimates with no
measurement in the loop. Cycle counts come from eqs. (2)/(3)/(15) (baseline,
batched) or eqs. (8)/(9) (tiled); tiled designs additionally take a
memory-boundedness correction from the AXI burst model, because short
strided runs cannot reach raw DRAM bandwidth (the effect the paper calls out
on Jacobi, Fig. 4(c)).

Bandwidth convention: the paper reports *logical* traffic — "the total
number of bytes transferred during the execution of the stencil loop
(looking at the mesh data accessed)" divided by loop runtime — so a p-deep
pipeline reports roughly p times the physical DRAM traffic. Both numbers
are exposed here.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.device import FPGADevice
from repro.arch.memory import AXIPort, strided_transfer_efficiency
from repro.mesh.padding import aligned_row_bytes
from repro.model.cycles import pipeline_cycles
from repro.model.design import DesignPoint, Workload
from repro.model.energy import DEFAULT_FPGA_POWER, FPGAPowerModel
from repro.model.resources import (
    DEFAULT_DSP_COSTS,
    DSPCostModel,
    ResourceReport,
    gdsp_program,
    module_mem_bytes,
    resource_report,
)
from repro.model.tiling import TileDesign, block_cycles, plan_blocks, valid_ratio
from repro.stencil.program import StencilProgram
from repro.util.errors import ValidationError
from repro.util.rounding import ceil_div


@dataclass(frozen=True)
class PredictedMetrics:
    """Model outputs for one (design, workload) pair."""

    cycles: float
    seconds: float
    clock_hz: float
    logical_bytes: float
    physical_bytes: float
    power_w: float
    energy_j: float
    resources: ResourceReport
    memory_bound: bool = False

    @property
    def logical_bandwidth(self) -> float:
        """Paper-convention bandwidth: logical bytes / runtime."""
        return self.logical_bytes / self.seconds

    @property
    def physical_bandwidth(self) -> float:
        """Actual external-memory traffic / runtime."""
        return self.physical_bytes / self.seconds


class RuntimePredictor:
    """Predicts runtime/bandwidth/energy of a design on a workload."""

    def __init__(
        self,
        program: StencilProgram,
        device: FPGADevice,
        design: DesignPoint,
        power_model: FPGAPowerModel = DEFAULT_FPGA_POWER,
        costs: DSPCostModel = DEFAULT_DSP_COSTS,
        logical_bytes_per_cell_iter: float | None = None,
    ):
        self.program = program
        self.device = device
        self.design = design
        self.power_model = power_model
        self.costs = costs
        self.gdsp = gdsp_program(program, costs)
        #: logical (paper-convention) traffic per mesh point per iteration;
        #: defaults to the program's external contract (read+write of state
        #: plus constant reads), which matches the paper for all three apps
        #: except RTM where the full unfused loop-chain traffic is counted.
        self.logical_bytes_per_cell_iter = (
            logical_bytes_per_cell_iter
            if logical_bytes_per_cell_iter is not None
            else float(program.bytes_per_cell_pass())
        )

    # -- cycle models -----------------------------------------------------------
    def compute_cycles(self, workload: Workload) -> float:
        """Pipeline cycles from the analytic model (no memory stalls)."""
        design = self.design
        if design.tile is None:
            return float(
                pipeline_cycles(
                    workload.mesh.shape,
                    workload.niter,
                    design.V,
                    design.p,
                    self.program.fused_stage_orders,
                    workload.batch,
                    design.initiation_interval,
                )
            )
        return self._tiled_cycles(workload) * design.initiation_interval

    def _tiled_cycles(self, workload: Workload) -> float:
        """Plan-based generalization of eq. (9): variable-size edge blocks.

        Eq. (9) assumes every block is full-size; the implemented designs
        shrink edge blocks ("variable sized tiling"), which this sums
        exactly. For meshes that are a multiple of the valid block extent
        the two coincide.
        """
        design = self.design
        tile: TileDesign = design.tile
        D = self.program.order
        shape = workload.mesh.shape
        passes = ceil_div(workload.niter, design.p)
        halo = design.p * D // 2
        fill = design.p * sum(d // 2 for d in self.program.fused_stage_orders)
        plans_m = plan_blocks(shape[0], min(tile.M, shape[0]), halo)
        vectors = sum(ceil_div(b.extent, design.V) for b in plans_m)
        if len(shape) == 2:
            per_pass = vectors * (shape[1] + fill)
        else:
            plans_n = plan_blocks(shape[1], min(tile.N, shape[1]), halo)
            rows = sum(b.extent for b in plans_n)
            per_pass = vectors * rows * (shape[2] + fill)
        return passes * per_pass * workload.batch

    def memory_cycles(self, workload: Workload) -> float:
        """Cycles needed to move the physical traffic through the memory system."""
        physical = self.physical_bytes(workload)
        bank = self.device.memory(self.design.memory)
        port = AXIPort(bus_bits=self.device.axi_bus_bits)
        if self.design.tile is not None:
            run = self.design.tile.M * workload.mesh.elem_bytes
            efficiency = strided_transfer_efficiency(port, run)
        else:
            efficiency = 1.0
        usable = bank.total_bandwidth * efficiency
        seconds = physical / usable
        return seconds * self.design.clock_hz

    # -- traffic ------------------------------------------------------------------
    def physical_bytes(self, workload: Workload) -> float:
        """External bytes actually moved over the whole solve."""
        passes = ceil_div(workload.niter, self.design.p)
        per_cell = self.program.bytes_per_cell_pass()
        cells = workload.total_points
        if self.design.tile is None:
            m = workload.mesh.shape[0]
            pad = aligned_row_bytes(m, workload.mesh.elem_bytes) / (
                m * workload.mesh.elem_bytes
            )
            return passes * per_cell * cells * pad
        # tiled: overlapping blocks re-read the halo; writes are valid-only
        D = self.program.order
        tile = self.design.tile
        if len(workload.mesh.shape) == 2:
            ratio = valid_ratio(tile.M, None, self.design.p, D)
        else:
            ratio = valid_ratio(tile.M, tile.N, self.design.p, D)
        redundancy = 1.0 / ratio
        read_cells = cells * redundancy
        write_cells = cells
        reads = sum(
            workload.mesh.elem_bytes
            if f in self.program.state_fields
            else workload.mesh.dtype.itemsize
            for f in self.program.external_reads()
        )
        writes = workload.mesh.elem_bytes * len(self.program.external_writes())
        # 512-bit alignment at block edges adds one bus word per row run
        run_bytes = tile.M * workload.mesh.elem_bytes
        align_overhead = aligned_row_bytes(tile.M, workload.mesh.elem_bytes) / run_bytes
        return passes * (reads * read_cells + writes * write_cells) * align_overhead

    def logical_bytes(self, workload: Workload) -> float:
        """Paper-convention logical traffic over the whole solve."""
        return (
            self.logical_bytes_per_cell_iter * workload.total_points * workload.niter
        )

    # -- prediction ---------------------------------------------------------------
    def predict(self, workload: Workload) -> PredictedMetrics:
        """Full model prediction for the workload."""
        if workload.mesh.ndim != self.program.mesh.ndim:
            raise ValidationError(
                f"workload mesh rank {workload.mesh.ndim} does not match program "
                f"rank {self.program.mesh.ndim}"
            )
        compute = self.compute_cycles(workload)
        memory = self.memory_cycles(workload)
        cycles = max(compute, memory)
        seconds = cycles / self.design.clock_hz
        shape = workload.mesh.shape
        if self.design.tile is not None:
            if len(shape) == 2:
                shape = (self.design.tile.M, shape[1])
            else:
                shape = (self.design.tile.M, self.design.tile.N, shape[2])
        resources = resource_report(
            self.program, self.device, self.design.V, self.design.p, shape, self.costs
        )
        power = self.power_model.watts(
            self.device,
            dsp_used=resources.dsp_used,
            mem_used_bytes=resources.mem_used_bytes,
            clock_hz=self.design.clock_hz,
            channels_active=2,
        )
        return PredictedMetrics(
            cycles=cycles,
            seconds=seconds,
            clock_hz=self.design.clock_hz,
            logical_bytes=self.logical_bytes(workload),
            physical_bytes=self.physical_bytes(workload),
            power_w=power,
            energy_j=power * seconds,
            resources=resources,
            memory_bound=memory > compute,
        )
