"""External-memory bandwidth bounds (paper eq. (4)).

The baseline streams one read and one write of the state per pass, so a
vectorization factor ``V`` at clock ``f`` requires::

    BW_channel >= 2 * V * f * sizeof(t)            (eq. 4)

per channel pair. Multi-field programs (RTM reads Y, rho, mu and writes Y)
generalize the 2x factor to the program's per-cell external byte count.
"""

from __future__ import annotations

from repro.arch.device import FPGADevice, MemoryBank
from repro.stencil.program import StencilProgram
from repro.util.rounding import ceil_div
from repro.util.validation import check_positive


def max_vectorization(channel_bandwidth: float, clock_hz: float, elem_bytes: int) -> int:
    """Eq. (4) solved for ``V``: the largest V one channel's bandwidth feeds.

    Assumes the classic one-read + one-write per cell of the single-field
    baseline (the paper derives V=8 for Poisson from one DDR4 channel at
    300 MHz and 4-byte elements).
    """
    check_positive("channel_bandwidth", channel_bandwidth)
    check_positive("clock_hz", clock_hz)
    check_positive("elem_bytes", elem_bytes)
    return int(channel_bandwidth // (2.0 * clock_hz * elem_bytes))


def bandwidth_required(
    program: StencilProgram, V: int, clock_hz: float, batch: int = 1
) -> float:
    """Bytes/second of external traffic a (V, clock) design sustains at peak.

    ``batch`` does not change the steady-state rate; it is accepted for API
    symmetry with the cycle models.
    """
    check_positive("V", V)
    check_positive("clock_hz", clock_hz)
    check_positive("batch", batch)
    return program.bytes_per_cell_pass() * V * clock_hz


def channels_required(
    program: StencilProgram, bank: MemoryBank, V: int, clock_hz: float
) -> int:
    """Memory channels needed to feed a (V, clock) design from ``bank``.

    Read and write streams are mapped to separate channels (the designs use
    independent AXI ports per stream), each channel supplying its share of
    the per-cell traffic.
    """
    check_positive("V", V)
    check_positive("clock_hz", clock_hz)
    elem = 1  # computed per stream below
    del elem
    total_needed = bandwidth_required(program, V, clock_hz)
    return max(1, ceil_div(int(total_needed), int(bank.channel_bandwidth)))


def feasible_vectorization(
    program: StencilProgram,
    device: FPGADevice,
    memory: str,
    clock_hz: float,
    max_channels: int | None = None,
) -> int:
    """Largest power-of-two V the chosen memory system can feed.

    ``max_channels`` caps how many channels the design may consume (HBM has
    32; DDR4 on the U280 has one channel per bank).
    """
    bank = device.memory(memory)
    channels = bank.channels if max_channels is None else min(max_channels, bank.channels)
    budget = bank.channel_bandwidth * channels
    per_cell = program.bytes_per_cell_pass()
    v = 1
    while per_cell * (v * 2) * clock_hz <= budget:
        v *= 2
    return v
