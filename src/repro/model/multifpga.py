"""Multi-FPGA scaling model (extension; related work [16], [20], [24]).

Several of the paper's cited systems scale stencil pipelines across FPGAs.
Two established strategies map directly onto this package's models:

* **temporal scaling** — chain the iterative pipelines of ``n`` boards so
  the effective unroll becomes ``n * p``; inter-board links carry the full
  mesh stream once per chained pass (Sano et al.'s constant-bandwidth
  scalable streaming array);
* **spatial scaling** — partition the mesh's outer dimension across boards,
  each solving its slab and exchanging ``D/2``-deep halos per iteration
  (classic distributed-stencil decomposition).

Both are modelled analytically on top of the single-board cycle model, with
a serial inter-board link (e.g. QSFP28 at 100 Gb/s in each direction).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.cycles import pipeline_cycles
from repro.model.design import DesignPoint, Workload
from repro.stencil.program import StencilProgram
from repro.util.errors import ValidationError
from repro.util.validation import check_positive

#: usable payload bandwidth of one QSFP28 network port, bytes/second
QSFP28_BYTES_PER_S = 100.0e9 / 8 * 0.9


@dataclass(frozen=True)
class MultiFPGAConfig:
    """A cluster of identical boards running one program."""

    boards: int
    link_bandwidth: float = QSFP28_BYTES_PER_S

    def __post_init__(self):
        check_positive("boards", self.boards)
        check_positive("link_bandwidth", self.link_bandwidth)


def temporal_scaling_seconds(
    program: StencilProgram,
    design: DesignPoint,
    workload: Workload,
    config: MultiFPGAConfig,
) -> float:
    """Runtime with ``boards`` pipelines chained into one deep pipeline.

    The effective unroll is ``boards * p``; ``niter`` must divide by it.
    The stream crosses ``boards - 1`` links once per pass; a link slower
    than the pipeline's ingest rate becomes the bottleneck.
    """
    effective_p = design.p * config.boards
    if workload.niter % effective_p:
        raise ValidationError(
            f"niter={workload.niter} is not a multiple of boards*p={effective_p}"
        )
    cycles = pipeline_cycles(
        workload.mesh.shape,
        workload.niter,
        design.V,
        effective_p,
        program.fused_stage_orders,
        workload.batch,
        design.initiation_interval,
    )
    compute_s = cycles / design.clock_hz
    # per pass the whole stream transits each of the boards-1 links
    passes = workload.niter // effective_p
    stream_bytes = workload.footprint_bytes * len(program.state_fields)
    link_s = 0.0
    if config.boards > 1:
        per_pass = stream_bytes / config.link_bandwidth
        link_s = passes * per_pass
    # links and pipelines stream concurrently: the slower one gates the pass
    return max(compute_s, link_s)


def spatial_scaling_seconds(
    program: StencilProgram,
    design: DesignPoint,
    workload: Workload,
    config: MultiFPGAConfig,
) -> float:
    """Runtime with the outer mesh dimension partitioned across boards.

    Each board solves a slab of ``l / boards`` planes (2D: ``n / boards``
    rows) and exchanges a ``D/2``-deep halo with each neighbour once per
    unrolled pass (deeper unrolls exchange ``p * D/2``).
    """
    shape = list(workload.mesh.shape)
    outer = shape[-1]
    if outer < config.boards:
        raise ValidationError(
            f"cannot split outer extent {outer} across {config.boards} boards"
        )
    shape[-1] = -(-outer // config.boards)  # ceil split
    slab_cycles = pipeline_cycles(
        tuple(shape),
        workload.niter,
        design.V,
        design.p,
        program.fused_stage_orders,
        workload.batch,
        design.initiation_interval,
    )
    compute_s = slab_cycles / design.clock_hz
    if config.boards == 1:
        return compute_s
    # halo exchange: p*D/2 planes (rows) in each direction per pass
    halo_lines = design.p * sum(d // 2 for d in program.fused_stage_orders)
    if workload.mesh.ndim == 3:
        line_bytes = workload.mesh.m * workload.mesh.n * workload.mesh.elem_bytes
    else:
        line_bytes = workload.mesh.m * workload.mesh.elem_bytes
    passes = -(-workload.niter // design.p)
    exchange_s = passes * 2 * halo_lines * line_bytes / config.link_bandwidth
    return compute_s + exchange_s


def scaling_efficiency(
    program: StencilProgram,
    design: DesignPoint,
    workload: Workload,
    boards: int,
    strategy: str = "spatial",
) -> float:
    """Parallel efficiency vs a single board: ``t1 / (n * tn)``."""
    check_positive("boards", boards)
    single = MultiFPGAConfig(1)
    multi = MultiFPGAConfig(boards)
    if strategy == "spatial":
        t1 = spatial_scaling_seconds(program, design, workload, single)
        tn = spatial_scaling_seconds(program, design, workload, multi)
    elif strategy == "temporal":
        t1 = temporal_scaling_seconds(program, design, workload, single)
        tn = temporal_scaling_seconds(program, design, workload, multi)
    else:
        raise ValidationError(f"unknown strategy {strategy!r}")
    return t1 / (boards * tn)
