"""FPGA power and energy model.

The paper measures board power with ``xbutil`` during execution: roughly
70 W for the Poisson designs, 90 W for Jacobi (whose deep 3D plane buffers
keep far more URAM toggling) and 70 W for RTM and the tiled designs. We
model board power as::

    P = P_static + c_dsp * DSP_used * f + c_mem * mem_bytes_used * f + c_ch * channels

calibrated against those observations. Power measurement on real boards is
noisy and workload-dependent; expect +-25% per design, which is enough to
reproduce the paper's energy-ratio conclusions (FPGA ~2x more efficient than
the V100 on the large applications).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.device import FPGADevice
from repro.util.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class FPGAPowerModel:
    """Linear activity-based board power model."""

    static_watts: float = 22.0
    #: watts per (DSP block * Hz) of compute activity
    dsp_coef: float = 2.8e-11
    #: watts per (byte of active on-chip buffer * Hz)
    mem_coef: float = 4.0e-15
    #: watts per active memory channel
    channel_watts: float = 0.5
    #: board power ceiling (U280 is a 225 W card; designs stay well below)
    max_watts: float = 225.0

    def __post_init__(self):
        check_positive("static_watts", self.static_watts)
        check_non_negative("dsp_coef", self.dsp_coef)
        check_non_negative("mem_coef", self.mem_coef)
        check_non_negative("channel_watts", self.channel_watts)

    def watts(
        self,
        device: FPGADevice,
        dsp_used: int,
        mem_used_bytes: int,
        clock_hz: float,
        channels_active: int = 2,
    ) -> float:
        """Board power for a running design."""
        check_non_negative("dsp_used", dsp_used)
        check_non_negative("mem_used_bytes", mem_used_bytes)
        check_positive("clock_hz", clock_hz)
        check_non_negative("channels_active", channels_active)
        p = (
            self.static_watts
            + self.dsp_coef * dsp_used * clock_hz
            + self.mem_coef * mem_used_bytes * clock_hz
            + self.channel_watts * channels_active
        )
        return min(self.max_watts, p)

    def energy_joules(
        self,
        device: FPGADevice,
        dsp_used: int,
        mem_used_bytes: int,
        clock_hz: float,
        seconds: float,
        channels_active: int = 2,
    ) -> float:
        """Energy of a run of ``seconds`` duration."""
        check_non_negative("seconds", seconds)
        return (
            self.watts(device, dsp_used, mem_used_bytes, clock_hz, channels_active)
            * seconds
        )


#: Calibrated against the paper's xbutil observations (Section V).
DEFAULT_FPGA_POWER = FPGAPowerModel()
