"""Design points and design-space exploration.

A :class:`DesignPoint` fixes everything the workflow must choose before
synthesis: vectorization factor ``V``, iterative unroll depth ``p``, target
clock, external memory system and (optionally) a spatial-blocking tile.
:func:`explore_designs` enumerates feasible points for a program/workload on
a device and ranks them by predicted runtime — the "model significantly
narrows the design space" step of the paper (Section V-A).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Sequence

from repro.arch.clocking import DEFAULT_CLOCK_MODEL, ClockModel
from repro.arch.device import FPGADevice
from repro.mesh.mesh import MeshSpec
from repro.model.bandwidth import feasible_vectorization
from repro.model.resources import (
    DEFAULT_DSP_COSTS,
    DSPCostModel,
    gdsp_program,
    max_unroll,
    module_mem_bytes,
    resource_report,
)
from repro.model.tiling import TileDesign, optimal_tile_m, p_max_for_tile
from repro.stencil.program import StencilProgram
from repro.util.errors import InfeasibleDesignError, ValidationError
from repro.util.units import MHZ
from repro.util.validation import check_one_of, check_positive
from repro.workload.spec import WorkloadSpec


@dataclass(frozen=True)
class DesignPoint:
    """A fully specified accelerator configuration.

    ``initiation_interval`` is the sustained cycles per vector of output once
    the pipeline is full. The simple scalar designs achieve II=1; the RTM
    design's wide (6-float) element struct contends for HBM channel slots
    and sustains II ~ 1.6 (calibrated from the paper's Fig. 5 runtimes).
    """

    V: int
    p: int
    clock_mhz: float
    memory: str = "HBM"
    tile: TileDesign | None = None
    initiation_interval: float = 1.0

    def __post_init__(self):
        check_positive("V", self.V)
        check_positive("p", self.p)
        check_positive("clock_mhz", self.clock_mhz)
        check_one_of("memory", self.memory, ("HBM", "DDR4"))
        if self.initiation_interval < 1.0:
            raise ValidationError(
                f"initiation_interval must be >= 1, got {self.initiation_interval}"
            )

    @property
    def clock_hz(self) -> float:
        """Clock in Hz."""
        return self.clock_mhz * MHZ

    @property
    def is_tiled(self) -> bool:
        """True for spatially blocked designs."""
        return self.tile is not None

    def with_clock(self, clock_mhz: float) -> "DesignPoint":
        """The same design at a different clock."""
        return replace(self, clock_mhz=clock_mhz)


#: compatibility alias: the workload layer's frozen spec subsumed this
#: module's original ``Workload`` dataclass (same fields, same positional
#: construction — ``Workload(mesh, niter, batch)`` — plus an optional app
#: name, string grammar and JSON round-trips; see :mod:`repro.workload`)
Workload = WorkloadSpec


class DesignSpace:
    """Feasibility-pruned enumeration of design points for one program."""

    def __init__(
        self,
        program: StencilProgram,
        device: FPGADevice,
        clock_model: ClockModel = DEFAULT_CLOCK_MODEL,
        costs: DSPCostModel = DEFAULT_DSP_COSTS,
    ):
        self.program = program
        self.device = device
        self.clock_model = clock_model
        self.costs = costs
        self.gdsp = gdsp_program(program, costs)

    # -- feasibility ------------------------------------------------------------
    def check(self, design: DesignPoint, workload: Workload) -> None:
        """Raise :class:`InfeasibleDesignError` if the design cannot be built.

        Checks, in order: external capacity, line-buffer capacity (eq. (7)),
        DSP capacity (eq. (6)) and memory-bandwidth feasibility (eq. (4)).
        """
        bank = self.device.memory(design.memory)
        # all external fields resident
        n_fields = len(set(self.program.external_reads()) | set(self.program.external_writes()))
        resident = workload.footprint_bytes * (n_fields + 1)  # +1 for ping-pong copy
        if resident > bank.capacity_bytes:
            raise InfeasibleDesignError(
                f"workload needs {resident} bytes resident, {design.memory} has "
                f"{bank.capacity_bytes}"
            )
        shape = self._buffer_shape(design, workload)
        module_bytes = module_mem_bytes(self.program, shape)
        budget = self.device.usable_on_chip_bytes()
        if design.p * module_bytes > budget:
            raise InfeasibleDesignError(
                f"p={design.p} needs {design.p * module_bytes} on-chip bytes, "
                f"budget is {budget} (eq. 7 bound: p_mem="
                f"{budget // module_bytes})"
            )
        # feasibility uses the hard device limit; eq. (6)'s 90% budget is a
        # planning guide the synthesized designs may slightly exceed (the
        # paper's Jacobi landed at p=29 against a model bound of 28)
        dsp_needed = design.V * design.p * self.gdsp
        if dsp_needed > self.device.dsp_blocks:
            raise InfeasibleDesignError(
                f"V*p*Gdsp = {dsp_needed} DSPs exceeds the device's "
                f"{self.device.dsp_blocks} (eq. 6 planning bound: "
                f"p_dsp={self.device.usable_dsp() // (design.V * self.gdsp)})"
            )
        v_max = feasible_vectorization(
            self.program, self.device, design.memory, design.clock_hz
        )
        if design.V > v_max:
            raise InfeasibleDesignError(
                f"V={design.V} needs more bandwidth than {design.memory} supplies "
                f"(eq. 4 bound: V<={v_max})"
            )

    def is_feasible(self, design: DesignPoint, workload: Workload) -> bool:
        """True when :meth:`check` passes."""
        try:
            self.check(design, workload)
            return True
        except InfeasibleDesignError:
            return False

    def _buffer_shape(self, design: DesignPoint, workload: Workload) -> tuple[int, ...]:
        """The shape whose rows/planes the window buffers must hold."""
        shape = workload.mesh.shape
        if design.tile is None:
            return shape
        if len(shape) == 2:
            return (design.tile.M, shape[1])
        if design.tile.N is None:
            raise ValidationError("3D tiled designs need an (M, N) tile")
        return (design.tile.M, design.tile.N, shape[2])

    # -- enumeration --------------------------------------------------------------
    def candidates(
        self,
        workload: Workload,
        memories: Sequence[str] | None = None,
        v_values: Sequence[int] | None = None,
        tiled: bool = False,
    ) -> Iterable[DesignPoint]:
        """Yield feasible design points (clock from the clock model)."""
        memories = memories or self.device.memory_targets
        for memory in memories:
            vs = v_values or self._default_v_sweep(memory)
            for V in vs:
                if tiled:
                    yield from self._tiled_candidates(workload, memory, V)
                else:
                    yield from self._baseline_candidates(workload, memory, V)

    def _default_v_sweep(self, memory: str) -> list[int]:
        return v_sweep(
            self.program, self.device, memory, self.device.default_clock_mhz * MHZ
        )

    def _baseline_candidates(
        self, workload: Workload, memory: str, V: int
    ) -> Iterable[DesignPoint]:
        module_bytes = module_mem_bytes(self.program, workload.mesh.shape)
        p_cap = max_unroll(self.device, V, self.gdsp, module_bytes)
        for p in _p_sweep(p_cap):
            design = DesignPoint(V, p, self.device.default_clock_mhz, memory)
            design = self._with_estimated_clock(design, workload)
            if self.is_feasible(design, workload):
                yield design

    def _tiled_candidates(
        self, workload: Workload, memory: str, V: int
    ) -> Iterable[DesignPoint]:
        D = self.program.order
        p_cap = max(1, self.device.usable_dsp() // (V * self.gdsp))
        for p in _p_sweep(p_cap):
            tile = tile_for_unroll(self.program, self.device, workload.mesh, p)
            if min(tile.tile) <= p * D:
                continue
            design = DesignPoint(V, p, self.device.default_clock_mhz, memory, tile)
            design = self._with_estimated_clock(design, workload)
            if self.is_feasible(design, workload):
                yield design

    def _with_estimated_clock(self, design: DesignPoint, workload: Workload) -> DesignPoint:
        shape = self._buffer_shape(design, workload)
        report = resource_report(
            self.program, self.device, design.V, design.p, shape, self.costs
        )
        from repro.arch.floorplan import SLRFloorplan

        plan = SLRFloorplan(
            self.device,
            design.p,
            design.V * self.gdsp,
            module_mem_bytes(self.program, shape),
        )
        mhz = self.clock_model.estimate_mhz(
            min(1.0, report.binding_utilization), plan.slr_crossings
        )
        return design.with_clock(mhz)


def tile_for_unroll(
    program: StencilProgram, device: FPGADevice, mesh: MeshSpec, p: int
) -> TileDesign:
    """The largest buffer-feasible tile at unroll ``p`` (Section IV-A).

    3D meshes get square ``M x M`` transverse blocks from eq. (11); 2D
    meshes get ``M x n`` row blocks whose ``D`` buffered rows fill the
    budget.  Callers must still reject tiles consumed by the ``p * D``
    halo (``min(tile) <= p * D``).
    """
    mem_budget = device.usable_on_chip_bytes()
    k = mesh.elem_bytes
    D = program.order
    if mesh.ndim == 3:
        M = optimal_tile_m(mem_budget // p, k, 1, D)
        return TileDesign((M, M))
    return TileDesign((max(mem_budget // (p * k * D), 1),))


def v_sweep(
    program: StencilProgram, device: FPGADevice, memory: str, clock_hz: float
) -> list[int]:
    """Power-of-two vectorization factors up to the bandwidth bound (eq. 4)."""
    v_max = feasible_vectorization(program, device, memory, clock_hz)
    vs = []
    v = 1
    while v <= v_max:
        vs.append(v)
        v *= 2
    return vs or [1]


def _p_sweep(p_cap: int) -> list[int]:
    """A dense-at-the-top sweep of unroll factors up to ``p_cap``."""
    if p_cap < 1:
        return []
    values = {1, p_cap}
    v = 2
    while v < p_cap:
        values.add(v)
        v *= 2
    # densify near the cap, where the optimum usually lives
    for delta in (1, 2, 4, 8):
        if p_cap - delta >= 1:
            values.add(p_cap - delta)
    return sorted(values)


def explore_designs(
    program: StencilProgram,
    device: FPGADevice,
    workload: Workload,
    tiled: bool = False,
    top_k: int = 5,
    clock_model: ClockModel = DEFAULT_CLOCK_MODEL,
) -> list[tuple[DesignPoint, "object"]]:
    """Enumerate feasible designs and rank by predicted runtime.

    Returns ``[(design, PredictedMetrics), ...]`` sorted fastest first.
    """
    from repro.model.runtime import RuntimePredictor

    space = DesignSpace(program, device, clock_model)
    ranked = []
    for design in space.candidates(workload, tiled=tiled):
        predictor = RuntimePredictor(program, device, design)
        metrics = predictor.predict(workload)
        ranked.append((design, metrics))
    ranked.sort(key=lambda pair: pair[1].seconds)
    return ranked[:top_k]
