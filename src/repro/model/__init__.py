"""The paper's predictive analytic model.

Implements every numbered performance equation of the paper — baseline cycle
counts (eqs. 2, 3, 5), the bandwidth-limited vectorization bound (eq. 4),
resource-limited unroll factors (eqs. 6, 7), the spatial-blocking throughput
theory (eqs. 8–14) and batching (eq. 15) — plus the derived design-space
explorer, runtime, bandwidth and energy predictors used to reproduce the
paper's tables and figures.
"""

from repro.model.cycles import (
    baseline_cycles_2d,
    baseline_cycles_3d,
    batched_cycles_2d,
    batched_cycles_3d,
    batched_cycles_per_mesh_2d,
    cycles_per_cell_2d,
    pipeline_cycles,
    pipeline_fill_rows,
)
from repro.model.resources import (
    DSPCostModel,
    DEFAULT_DSP_COSTS,
    gdsp_kernel,
    gdsp_program,
    p_dsp,
    p_mem,
    max_unroll,
    module_mem_bytes,
    ResourceReport,
    resource_report,
)
from repro.model.bandwidth import (
    max_vectorization,
    channels_required,
    bandwidth_required,
    feasible_vectorization,
)
from repro.model.tiling import (
    block_valid_points,
    block_cycles,
    tile_throughput,
    optimal_tile_m,
    p_max_for_tile,
    throughput_full_dsp_2d,
    throughput_full_dsp_3d,
    valid_ratio,
    TileDesign,
)
from repro.model.design import DesignPoint, Workload, DesignSpace, explore_designs
from repro.model.runtime import PredictedMetrics, RuntimePredictor
from repro.model.energy import FPGAPowerModel, DEFAULT_FPGA_POWER
from repro.model.precision import (
    PrecisionSpec,
    ALL_PRECISIONS,
    HALF,
    FLOAT,
    DOUBLE,
    FIXED16,
    FIXED32,
    precision_by_name,
    gdsp_at_precision,
    precision_error,
)
from repro.model.multifpga import (
    MultiFPGAConfig,
    temporal_scaling_seconds,
    spatial_scaling_seconds,
    scaling_efficiency,
)

__all__ = [
    "baseline_cycles_2d",
    "baseline_cycles_3d",
    "batched_cycles_2d",
    "batched_cycles_3d",
    "batched_cycles_per_mesh_2d",
    "cycles_per_cell_2d",
    "pipeline_cycles",
    "pipeline_fill_rows",
    "DSPCostModel",
    "DEFAULT_DSP_COSTS",
    "gdsp_kernel",
    "gdsp_program",
    "p_dsp",
    "p_mem",
    "max_unroll",
    "module_mem_bytes",
    "ResourceReport",
    "resource_report",
    "max_vectorization",
    "channels_required",
    "bandwidth_required",
    "feasible_vectorization",
    "block_valid_points",
    "block_cycles",
    "tile_throughput",
    "optimal_tile_m",
    "p_max_for_tile",
    "throughput_full_dsp_2d",
    "throughput_full_dsp_3d",
    "valid_ratio",
    "TileDesign",
    "DesignPoint",
    "Workload",
    "DesignSpace",
    "explore_designs",
    "PredictedMetrics",
    "RuntimePredictor",
    "FPGAPowerModel",
    "DEFAULT_FPGA_POWER",
    "PrecisionSpec",
    "ALL_PRECISIONS",
    "HALF",
    "FLOAT",
    "DOUBLE",
    "FIXED16",
    "FIXED32",
    "precision_by_name",
    "gdsp_at_precision",
    "precision_error",
    "MultiFPGAConfig",
    "temporal_scaling_seconds",
    "spatial_scaling_seconds",
    "scaling_efficiency",
]
