"""Spatial/temporal blocking theory (paper Section IV-A, eqs. (8)-(14)).

Large meshes exceed the line-buffer bound (eq. (7)); the design then streams
overlapping *blocks* through the same pipeline. A ``p``-deep pipeline on a
``D``-order stencil invalidates a ``p*D``-wide ring of each block, so blocks
overlap by ``p*D`` and the redundant compute is the price of temporal reuse.

Dimension conventions (matching Table III):

* 3D: blocks of ``M x N x l`` over an ``m x n x l`` mesh — both transverse
  dimensions are split, the outer dimension ``l`` is streamed.
* 2D: blocks of ``M x n`` over an ``m x n`` mesh — only the row dimension is
  split (the window buffer needs ``D`` rows of ``M``), rows are streamed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.util.errors import ValidationError
from repro.util.rounding import ceil_div
from repro.util.validation import check_positive


def _check_block(M: int, p: int, D: int) -> None:
    check_positive("M", M)
    check_positive("p", p)
    if D <= 0 or D % 2:
        raise ValidationError(f"stencil order D must be positive and even, got {D}")
    if M <= p * D:
        raise ValidationError(
            f"block extent {M} leaves no valid points at p*D overlap {p * D}"
        )


def block_valid_points(
    M: int, N: int | None, l_or_n: int, p: int, D: int
) -> int:
    """Eq. (8): valid (non-redundant) mesh points per block.

    3D: pass ``N`` and ``l_or_n = l`` -> ``(M - pD) * (N - pD) * l``.
    2D: pass ``N=None`` and ``l_or_n = n`` -> ``(M - pD) * n``.
    """
    _check_block(M, p, D)
    check_positive("l_or_n", l_or_n)
    if N is None:
        return (M - p * D) * l_or_n
    _check_block(N, p, D)
    return (M - p * D) * (N - p * D) * l_or_n


def block_cycles(M: int, N: int | None, l_or_n: int, V: int, p: int, D: int) -> float:
    """Eq. (9): average cycles to process one block through ``p`` iterations.

    3D: ``ceil(M/V) * N * (l + p*D/2) / p``; 2D: ``ceil(M/V) * (n + p*D/2) / p``.
    """
    _check_block(M, p, D)
    check_positive("V", V)
    check_positive("l_or_n", l_or_n)
    if N is None:
        return ceil_div(M, V) * (l_or_n + p * D / 2.0) / p
    _check_block(N, p, D)
    return ceil_div(M, V) * N * (l_or_n + p * D / 2.0) / p


def tile_throughput(M: int, N: int | None, l_or_n: int, V: int, p: int, D: int) -> float:
    """Eq. (10): valid mesh points per clock cycle of the blocked design."""
    valid = block_valid_points(M, N, l_or_n, p, D)
    cycles = block_cycles(M, N, l_or_n, V, p, D)
    return valid / cycles


def valid_ratio(M: int, N: int | None, p: int, D: int) -> float:
    """Fraction of computed points that are valid (Table III last column)."""
    _check_block(M, p, D)
    ratio = 1.0 - (p * D) / M
    if N is not None:
        _check_block(N, p, D)
        ratio *= 1.0 - (p * D) / N
    return ratio


def optimal_tile_m(mem_bytes: int, k: int, p: int, D: int) -> int:
    """Eq. (11): the square-block edge maximizing throughput for given ``p``.

    ``M = sqrt(FPGA_mem / (k * p * D))`` — the block transverse area that
    exactly fills the on-chip buffer budget.
    """
    check_positive("mem_bytes", mem_bytes)
    check_positive("k", k)
    check_positive("p", p)
    check_positive("D", D)
    return int(math.sqrt(mem_bytes / (k * p * D)))


def p_max_for_tile(M: int, D: int) -> int:
    """Eq. (12): the throughput-maximizing unroll depth for block edge ``M``."""
    check_positive("M", M)
    check_positive("D", D)
    return max(1, M // (3 * D))


def throughput_full_dsp_3d(
    M: int, p: int, D: int, fpga_dsp: int, gdsp: int, l: int
) -> float:
    """Eq. (13): 3D blocked throughput assuming all DSP capacity is used.

    Substitutes ``p*V = FPGA_dsp / G_dsp`` into eq. (10) with square blocks.
    """
    _check_block(M, p, D)
    check_positive("fpga_dsp", fpga_dsp)
    check_positive("gdsp", gdsp)
    check_positive("l", l)
    edge = 1.0 - (p * D) / M
    return edge * edge * (fpga_dsp / gdsp) * (l / (l + p * D / 2.0))


def throughput_full_dsp_2d(
    M: int, p: int, D: int, fpga_dsp: int, gdsp: int, n: int
) -> float:
    """Eq. (14): 2D blocked throughput assuming all DSP capacity is used."""
    _check_block(M, p, D)
    check_positive("fpga_dsp", fpga_dsp)
    check_positive("gdsp", gdsp)
    check_positive("n", n)
    return (1.0 - (p * D) / M) * (fpga_dsp / gdsp) * (n / (n + p * D / 2.0))


@dataclass(frozen=True)
class BlockPlan:
    """One block along one axis: extents and valid write-back range."""

    start: int
    end: int
    valid_start: int
    valid_end: int

    @property
    def extent(self) -> int:
        """Block extent along this axis."""
        return self.end - self.start


def plan_blocks(extent: int, block: int, halo: int) -> list[BlockPlan]:
    """Plan overlapping blocks covering ``[0, extent)`` along one axis.

    Blocks are at most ``block`` wide, overlap by ``2*halo``, and their
    valid regions tile the axis exactly. Edge blocks shrink instead of
    re-covering already-valid cells — the paper's "variable sized tiling"
    extension, which avoids paying full-block cycles for a sliver of new
    valid cells at the mesh edge.
    """
    check_positive("extent", extent)
    check_positive("block", block)
    if halo < 0:
        raise ValidationError(f"halo must be non-negative, got {halo}")
    if block <= 2 * halo and block < extent:
        raise ValidationError(
            f"block extent {block} leaves no valid cells at halo {halo}"
        )
    plans: list[BlockPlan] = []
    v = 0  # next uncovered valid index
    while v < extent:
        start = max(0, v - halo)
        end = min(extent, start + block)
        valid_start = v
        valid_end = extent if end == extent else end - halo
        if valid_end <= valid_start:
            raise ValidationError(
                f"no forward progress planning blocks (extent={extent}, "
                f"block={block}, halo={halo})"
            )
        plans.append(BlockPlan(start, end, valid_start, valid_end))
        v = valid_end
    return plans


@dataclass(frozen=True)
class TileDesign:
    """A chosen blocking configuration.

    ``tile`` is ``(M,)`` for 2D designs or ``(M, N)`` for 3D designs, in
    paper axis order (``M`` splits the contiguous ``m`` dimension).
    """

    tile: tuple[int, ...]

    def __post_init__(self):
        if len(self.tile) not in (1, 2):
            raise ValidationError(
                f"tile must be (M,) for 2D or (M, N) for 3D, got {self.tile!r}"
            )
        for t in self.tile:
            check_positive("tile extent", t)
        object.__setattr__(self, "tile", tuple(int(t) for t in self.tile))

    @property
    def M(self) -> int:
        """Block extent along the contiguous dimension."""
        return self.tile[0]

    @property
    def N(self) -> int | None:
        """Block extent along the second dimension (3D only)."""
        return self.tile[1] if len(self.tile) == 2 else None

    def num_blocks(self, mesh_shape: tuple[int, ...], p: int, D: int) -> int:
        """Number of overlapping blocks covering the mesh.

        Blocks advance by their valid extent (``M - pD``); edge blocks are
        clipped. A block must keep at least one valid point.
        """
        overlap = p * D
        if len(mesh_shape) == 2:
            m, _ = mesh_shape
            _check_block(self.M, p, D)
            return ceil_div(max(1, m - overlap), self.M - overlap)
        m, n, _ = mesh_shape
        if self.N is None:
            raise ValidationError("3D meshes need an (M, N) tile")
        _check_block(self.M, p, D)
        _check_block(self.N, p, D)
        blocks_m = ceil_div(max(1, m - overlap), self.M - overlap)
        blocks_n = ceil_div(max(1, n - overlap), self.N - overlap)
        return blocks_m * blocks_n
