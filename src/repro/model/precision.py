"""Alternative numerical representations (paper Section VI future work).

The paper evaluates single precision throughout and names "alternative
numerical representations" as future work. This module implements that
direction within the same model: per-precision DSP operator costs, the
derived Table-II-style parameters (``G_dsp``, ``p_dsp``, eq. (4) ``V``
bounds all scale with element width), and a quantization-error harness for
judging whether a narrower representation is numerically acceptable for a
given solver.

Operator costs are the typical Vivado HLS figures for DSP48E2 devices:

=============  ====  ====  ===========================================
representation add   mul   notes
=============  ====  ====  ===========================================
half  (FP16)    1     1    native DSP floating-point support
float (FP32)    2     3    the paper's baseline
double(FP64)    3    11    multi-DSP mantissa multiplier
fixed16 (Q8.8)  0     1    adds in fabric; one DSP per multiply
fixed32 (Q16)   0     4    32x32 multiply = 4 DSP48
=============  ====  ====  ===========================================
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.model.resources import DSPCostModel
from repro.stencil.program import StencilProgram
from repro.util.errors import ValidationError
from repro.util.validation import check_positive


@dataclass(frozen=True)
class PrecisionSpec:
    """One numerical representation usable by the workflow."""

    name: str
    bytes_per_scalar: int
    costs: DSPCostModel
    #: None for floating point; fractional bits for fixed-point formats
    fixed_frac_bits: int | None = None
    #: the NumPy dtype arithmetic is emulated in (fixed point uses float64
    #: plus explicit quantization after every kernel application)
    numpy_dtype: str = "float32"

    def __post_init__(self):
        check_positive("bytes_per_scalar", self.bytes_per_scalar)
        if self.fixed_frac_bits is not None and self.fixed_frac_bits <= 0:
            raise ValidationError("fixed_frac_bits must be positive when set")

    @property
    def is_fixed_point(self) -> bool:
        """True for fixed-point representations."""
        return self.fixed_frac_bits is not None


HALF = PrecisionSpec("half", 2, DSPCostModel(add=1, mul=1), numpy_dtype="float16")
FLOAT = PrecisionSpec("float", 4, DSPCostModel(add=2, mul=3), numpy_dtype="float32")
DOUBLE = PrecisionSpec("double", 8, DSPCostModel(add=3, mul=11), numpy_dtype="float64")
FIXED16 = PrecisionSpec(
    "fixed16", 2, DSPCostModel(add=0, mul=1), fixed_frac_bits=8, numpy_dtype="float64"
)
FIXED32 = PrecisionSpec(
    "fixed32", 4, DSPCostModel(add=0, mul=4), fixed_frac_bits=16, numpy_dtype="float64"
)

ALL_PRECISIONS = (HALF, FLOAT, DOUBLE, FIXED16, FIXED32)


def precision_by_name(name: str) -> PrecisionSpec:
    """Look up one of the predefined representations."""
    for spec in ALL_PRECISIONS:
        if spec.name == name:
            return spec
    raise ValidationError(
        f"unknown precision {name!r}; available: {[p.name for p in ALL_PRECISIONS]}"
    )


def gdsp_at_precision(program: StencilProgram, precision: PrecisionSpec) -> int:
    """``G_dsp`` of the program's iteration body at a given representation."""
    from repro.model.resources import gdsp_program

    return gdsp_program(program, precision.costs)


def max_vectorization_at_precision(
    channel_bandwidth: float,
    clock_hz: float,
    precision: PrecisionSpec,
    components: int = 1,
) -> int:
    """Eq. (4) with the representation's element width."""
    from repro.model.bandwidth import max_vectorization

    return max_vectorization(
        channel_bandwidth, clock_hz, precision.bytes_per_scalar * components
    )


def quantize_fixed(values: np.ndarray, frac_bits: int) -> np.ndarray:
    """Round values to a signed fixed-point grid with ``frac_bits`` fraction bits."""
    check_positive("frac_bits", frac_bits)
    scale = float(1 << frac_bits)
    return np.round(values * scale) / scale


def quantization_step(precision: PrecisionSpec) -> float:
    """The representable step (ulp near 1.0 for floats; LSB for fixed point)."""
    if precision.is_fixed_point:
        return 2.0 ** (-precision.fixed_frac_bits)
    return float(np.finfo(np.dtype(precision.numpy_dtype)).eps)


def precision_error(
    program: StencilProgram,
    fields,
    niter: int,
    precision: PrecisionSpec,
) -> float:
    """Max-norm error of a reduced-precision solve vs a float64 reference.

    Floating-point formats run the golden evaluator in the format's dtype;
    fixed-point formats run in float64 with quantization after every kernel
    application (matching a datapath that rounds at each register stage).
    """
    from repro.mesh.mesh import Field, MeshSpec
    from repro.stencil.numpy_eval import apply_kernel

    def cast_env(env, dtype):
        out = {}
        for name, f in env.items():
            spec = MeshSpec(f.spec.shape, f.spec.components, dtype)
            out[name] = Field(name, spec, f.data.astype(dtype))
        return out

    reference = cast_env(fields, np.float64)
    test_dtype = np.dtype(precision.numpy_dtype)
    test = cast_env(fields, test_dtype)
    if precision.is_fixed_point:
        for f in test.values():
            f.data[:] = quantize_fixed(f.data, precision.fixed_frac_bits)

    for _ in range(niter):
        for group in program.groups:
            for loop in group.loops:
                reference.update(apply_kernel(loop.kernel, reference))
                outputs = apply_kernel(loop.kernel, test)
                if precision.is_fixed_point:
                    for f in outputs.values():
                        f.data[:] = quantize_fixed(f.data, precision.fixed_frac_bits)
                test.update(outputs)

    state = program.state_fields[0]
    diff = np.abs(
        reference[state].data.astype(np.float64) - test[state].data.astype(np.float64)
    )
    return float(diff.max())
