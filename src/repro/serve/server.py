"""The async serving layer: accelerator-as-a-service over the mix scheduler.

A :class:`Server` turns the batch-oriented execution stack —
:class:`~repro.dataflow.scheduler.MixScheduler` over the chunked stacked
compiled engine and the parallel worker-pool backend — into an always-on
service: clients :meth:`~Server.submit` individual
:class:`~repro.workload.WorkloadSpec` jobs and await their results, while
a batching loop coalesces compatible queued jobs (same
:attr:`~repro.workload.WorkloadSpec.job_key`: app, mesh, dtype, niter)
into merged stacked dispatches — the serving-time realization of the
paper's batched streaming mode, where many small client jobs ride one
plan instead of paying one dispatch each.

The robustness envelope, end to end:

* **Admission control** — bounded per-tenant queues; a full queue either
  rejects (:class:`~repro.serve.errors.QueueFullError`, the default) or
  blocks the submitter until space frees, per
  :attr:`ServerConfig.admission`.
* **Fair scheduling** — weighted stride dequeue across tenants, priority
  within a tenant (:mod:`repro.serve.queue`).
* **Deadlines** — per-job; still-queued work past its deadline is shed
  without executing, in-flight work resolves
  :class:`~repro.serve.errors.DeadlineExceeded` while its batch is
  cancelled cooperatively through the
  :class:`~repro.resilience.CancelToken` threaded down the engine stack.
* **Circuit breaking** — consecutive parallel-backend failures trip a
  :class:`~repro.serve.breaker.CircuitBreaker`; while open, dispatches
  degrade to the serial compiled engine (results stay bit-identical),
  and timed half-open probes restore the parallel backend when it heals.
* **Graceful drain** — :meth:`Server.close` stops admissions and either
  drains (every queued/in-flight job resolves or deadline-fails) or sheds
  everything; either way no shared-memory segment outlives the server
  (asserted leak-free in the suite via
  :func:`repro.parallel.shm.live_segments`).

Every job resolves **exactly once**: with its per-mesh results, with a
serve error (queue full, deadline, server closed), or with
``asyncio.CancelledError`` after :meth:`JobHandle.cancel`. The server
keeps its own always-on :class:`~repro.observability.MetricsRegistry`
behind :meth:`Server.health` and mirrors every decision into the global
:mod:`repro.observability` facade when that is enabled.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass, field as dc_field
from typing import Mapping

from repro import observability as obs
from repro.observability.metrics import MetricsRegistry
from repro.parallel.executor import ParallelExecutionError
from repro.resilience import CancelToken, ExecutionCancelled, FaultPlan, RetryPolicy
from repro.serve.breaker import CircuitBreaker
from repro.serve.errors import DeadlineExceeded, QueueFullError, ServerClosedError
from repro.serve.queue import FairQueue
from repro.stencil.compiled import check_engine
from repro.util.errors import ValidationError
from repro.workload import WorkloadSpec

#: admission policies for a full tenant queue
ADMISSIONS = ("reject", "block")


@dataclass(frozen=True)
class ServerConfig:
    """Tuning of one :class:`Server` instance."""

    #: engine while the breaker is closed
    #: ("parallel" | "compiled" | "native" | "interpreter")
    engine: str = "parallel"
    #: worker-pool width for the parallel engine (None: one per core)
    max_workers: int | None = None
    #: bounded queue capacity, per tenant
    queue_depth: int = 64
    #: what a full queue does to a submit: "reject" or "block"
    admission: str = "reject"
    #: relative service weights per tenant (absent tenants weigh 1.0)
    tenant_weights: Mapping[str, float] | None = None
    #: seconds the batching loop waits after waking, letting compatible
    #: jobs accumulate into one stacked dispatch
    batch_window: float = 0.005
    #: mesh budget one loop tick dequeues (bounds a tick's working set)
    max_batch_meshes: int = 64
    #: consecutive parallel failures that trip the breaker
    failure_threshold: int = 3
    #: seconds an open breaker waits before half-opening
    reset_timeout: float = 1.0
    #: deadline/shed poll cadence of the monitor task, seconds
    monitor_interval: float = 0.02
    #: re-derive every served mesh on the golden interpreter (bit-identity)
    validate: bool = False
    #: base seed for synthesized initial conditions (see MixScheduler)
    seed: int = 0
    #: retry/degradation policy for parallel dispatches (None: default)
    retry_policy: RetryPolicy | None = None
    #: deterministic faults armed into parallel dispatches (None: env plan)
    fault_plan: FaultPlan | None = None
    #: per-chunk stacking budget in bytes (None: module default)
    stacked_bytes_limit: float | None = None

    def __post_init__(self):
        check_engine(self.engine)
        if self.admission not in ADMISSIONS:
            raise ValidationError(
                f"unknown admission policy {self.admission!r}; "
                f"expected one of {ADMISSIONS}"
            )


class Job:
    """One submitted workload: spec, tenant, deadline, and its future."""

    __slots__ = (
        "spec", "tenant", "priority", "deadline", "seq",
        "future", "submitted_at",
    )

    def __init__(
        self,
        spec: WorkloadSpec,
        tenant: str,
        priority: int,
        deadline: float | None,
        seq: int,
        future: asyncio.Future,
    ) -> None:
        self.spec = spec
        self.tenant = tenant
        self.priority = priority
        self.deadline = deadline  # absolute loop time, or None
        self.seq = seq
        self.future = future
        self.submitted_at = time.perf_counter()


class JobHandle:
    """The client's side of a submitted job: awaitable, cancellable."""

    __slots__ = ("_job", "_server")

    def __init__(self, job: Job, server: "Server") -> None:
        self._job = job
        self._server = server

    @property
    def spec(self) -> WorkloadSpec:
        return self._job.spec

    @property
    def tenant(self) -> str:
        return self._job.tenant

    def done(self) -> bool:
        """True once the job has resolved (result, error, or cancel)."""
        return self._job.future.done()

    def cancel(self, reason: str | None = None) -> bool:
        """Cancel the job; returns False if it already resolved.

        A queued job resolves ``asyncio.CancelledError`` immediately; an
        in-flight job additionally cancels its batch cooperatively once
        every sibling job in the batch is dead. Safe from any thread.
        """
        return self._server._cancel_job(self._job, reason)

    async def result(self):
        """Await the job's per-mesh results (list of field environments)."""
        return await asyncio.shield(self._job.future)

    def __await__(self):
        return self.result().__await__()


class _InflightGroup:
    """One coalesced dispatch in flight: its jobs and their shared token."""

    __slots__ = ("jobs", "token")

    def __init__(self, jobs: list[Job], token: CancelToken) -> None:
        self.jobs = jobs
        self.token = token

    def reap(self) -> None:
        """Fire the token once every member job has already resolved."""
        if not self.token.is_set() and all(j.future.done() for j in self.jobs):
            self.token.set("all jobs in batch resolved")


class Server:
    """An overload-safe async façade over the mix-scheduling stack."""

    def __init__(self, config: ServerConfig | None = None) -> None:
        self.config = config or ServerConfig()
        self.metrics = MetricsRegistry()
        self.breaker = CircuitBreaker(
            failure_threshold=self.config.failure_threshold,
            reset_timeout=self.config.reset_timeout,
        )
        self._queue = FairQueue(
            self.config.queue_depth, self.config.tenant_weights
        )
        self._state = "running"  # running -> draining -> closed
        self._seq = 0
        #: blocked submitters awaiting queue space, in arrival order
        self._space_waiters: deque[asyncio.Future] = deque()
        self._outstanding: set[Job] = set()
        self._inflight: set[_InflightGroup] = set()
        self._schedulers: dict[str, object] = {}
        self._loop: asyncio.AbstractEventLoop | None = None
        self._work: asyncio.Event | None = None
        self._loop_task: asyncio.Task | None = None
        self._monitor_task: asyncio.Task | None = None

    # -- submission ---------------------------------------------------------------
    async def submit(
        self,
        spec: WorkloadSpec | str,
        *,
        tenant: str = "default",
        priority: int = 0,
        deadline: float | None = None,
    ) -> JobHandle:
        """Admit one workload; returns an awaitable :class:`JobHandle`.

        ``spec`` is a :class:`~repro.workload.WorkloadSpec` or its string
        grammar (``app:MESH:NITER[xBATCH]``). ``deadline`` is relative
        seconds from now; past it the job resolves
        :class:`~repro.serve.errors.DeadlineExceeded` whether queued or in
        flight. A full tenant queue rejects or blocks per
        :attr:`ServerConfig.admission`.
        """
        if isinstance(spec, str):
            spec = WorkloadSpec.parse(spec)
        if deadline is not None and deadline <= 0:
            raise ValidationError(
                f"deadline must be positive seconds, got {deadline}"
            )
        self._check_open()
        self._ensure_started()
        loop = self._loop
        assert loop is not None
        self._seq += 1
        job = Job(
            spec,
            tenant,
            priority,
            loop.time() + deadline if deadline is not None else None,
            self._seq,
            loop.create_future(),
        )
        # consume unawaited exceptions (a shed job nobody awaits must not
        # warn at interpreter exit) and keep the outstanding set exact
        job.future.add_done_callback(self._job_resolved)
        self._outstanding.add(job)
        if not self._queue.offer(job):
            if self.config.admission == "reject":
                self._outstanding.discard(job)
                job.future.cancel()
                self._count("serve.rejected", tenant=tenant)
                obs.emit(
                    "serve.job_rejected",
                    spec=spec.describe(),
                    tenant=tenant,
                    queued=len(self._queue),
                )
                raise QueueFullError(
                    f"tenant {tenant!r} queue is full "
                    f"({self._queue.depth} jobs); job {spec.describe()} rejected"
                )
            await self._block_for_space(job)
        self._count("serve.admitted", tenant=tenant)
        self._set_depth_gauge()
        obs.emit(
            "serve.job_admitted",
            spec=spec.describe(),
            tenant=tenant,
            priority=priority,
            deadline=deadline,
        )
        assert self._work is not None
        self._work.set()
        return JobHandle(job, self)

    async def _block_for_space(self, job: Job) -> None:
        """``admission="block"``: wait for queue space (or server close).

        Waiters park on per-submit futures signalled by the dequeue tick,
        the deadline monitor's shed, and :meth:`close` — woken in arrival
        order, so earlier submitters get first claim on freed space — and
        each wait is bounded by the job's own deadline (if any) rather
        than a poll cadence.
        """
        loop = self._loop
        assert loop is not None
        while True:
            if self._state != "running":
                self._outstanding.discard(job)
                job.future.cancel()
                raise ServerClosedError(
                    "server closed while a submit waited for queue space"
                )
            if job.deadline is not None and loop.time() >= job.deadline:
                self._deadline_fail(job, queued=True)
            if job.future.done():  # deadline passed / cancelled while blocked
                await asyncio.shield(job.future)
                return
            if self._queue.offer(job):
                return
            waiter: asyncio.Future = loop.create_future()
            self._space_waiters.append(waiter)
            timeout = (
                max(0.0, job.deadline - loop.time())
                if job.deadline is not None
                else None
            )
            try:
                # job.future rides along so a client cancel (or deadline
                # fail) wakes the submitter immediately, not at the next
                # space signal
                await asyncio.wait(
                    (waiter, job.future),
                    timeout=timeout,
                    return_when=asyncio.FIRST_COMPLETED,
                )
            finally:
                waiter.cancel()
                try:
                    self._space_waiters.remove(waiter)
                except ValueError:
                    pass

    def _notify_space(self) -> None:
        """Wake every blocked submitter: queue space may have freed."""
        while self._space_waiters:
            waiter = self._space_waiters.popleft()
            if not waiter.done():
                waiter.set_result(None)

    def _check_open(self) -> None:
        if self._state != "running":
            raise ServerClosedError(f"server is {self._state}; not accepting jobs")

    def _ensure_started(self) -> None:
        loop = asyncio.get_running_loop()
        if self._loop is None:
            self._loop = loop
            self._work = asyncio.Event()
            self._loop_task = loop.create_task(self._run_loop())
            self._monitor_task = loop.create_task(self._run_monitor())
        elif self._loop is not loop:
            raise ValidationError(
                "a Server is bound to the event loop of its first submit"
            )

    # -- the batching loop --------------------------------------------------------
    async def _run_loop(self) -> None:
        assert self._work is not None
        while True:
            await self._work.wait()
            picked: list[Job] = []
            try:
                if self.config.batch_window > 0:
                    await asyncio.sleep(self.config.batch_window)
                self._shed_expired()
                picked = self._dequeue_tick()
                self._notify_space()
                if not picked:
                    if not len(self._queue):
                        self._work.clear()
                    continue
                groups: dict[tuple, list[Job]] = {}
                for job in picked:
                    groups.setdefault(job.spec.job_key, []).append(job)
                outcomes = await asyncio.gather(
                    *(self._run_group(jobs) for jobs in groups.values()),
                    return_exceptions=True,
                )
                for jobs, outcome in zip(groups.values(), outcomes):
                    if isinstance(outcome, asyncio.CancelledError):
                        raise outcome
                    if isinstance(outcome, BaseException):
                        self._fail_jobs(jobs, outcome)
                self._set_depth_gauge()
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # noqa: BLE001 - the loop must survive
                # a wedged loop would admit jobs forever without dispatching
                # them; resolve this tick's jobs and keep serving, using the
                # raw future API in case metrics/events are what broke
                for job in picked:
                    if not job.future.done():
                        job.future.set_exception(exc)
                try:
                    obs.emit("serve.loop_error", error=repr(exc))
                except Exception:  # noqa: BLE001, S110 - best-effort telemetry
                    pass

    def _dequeue_tick(self) -> list[Job]:
        """Fair-pop jobs up to the tick's mesh budget."""
        picked: list[Job] = []
        meshes = 0
        while meshes < self.config.max_batch_meshes:
            job = self._queue.pop()
            if job is None:
                break
            picked.append(job)
            meshes += job.spec.batch
        return picked

    async def _run_group(self, jobs: list[Job]) -> None:
        """Execute one coalesced job group and resolve its members."""
        token = CancelToken()
        group = _InflightGroup(jobs, token)
        self._inflight.add(group)
        probe = False
        try:
            # jobs resolved between the dequeue tick and this task body
            # (client cancels land in that gap) are excluded from the
            # dispatch — and from result slicing, which must account only
            # the specs actually executed
            live = [job for job in jobs if not job.future.done()]
            if not live:
                return
            engine, probe = self._pick_engine()
            specs = [job.spec for job in live]
            obs.emit(
                "serve.group_dispatch",
                spec=specs[0].describe(),
                jobs=len(specs),
                meshes=sum(s.batch for s in specs),
                engine=engine,
                probe=probe,
            )
            try:
                run = await asyncio.to_thread(
                    self._scheduler(engine).run,
                    specs,
                    self.config.validate,
                    token,
                )
            except ExecutionCancelled:
                # deadline monitor / client cancels resolved every member;
                # anything left alive (a token raced the last resolution)
                # is a cancel. The backend was never judged: a held probe
                # slot must be released, not left dangling in half-open.
                if probe:
                    self.breaker.abort_probe()
                for job in live:
                    job.future.cancel()
                return
            except ParallelExecutionError as exc:
                self.breaker.record_failure()
                obs.emit(
                    "serve.group_parallel_failure",
                    spec=specs[0].describe(),
                    error=repr(exc),
                    breaker=self.breaker.state,
                )
                await self._rerun_serial(live, specs, token)
                return
            except Exception as exc:  # noqa: BLE001 - resolve, don't crash the loop
                if probe:
                    self.breaker.abort_probe()
                self._fail_jobs(live, exc)
                return
            if engine == "parallel":
                self.breaker.record_success()
            self._resolve_group(live, run)
        except Exception as exc:  # noqa: BLE001 - an internal error (metrics,
            # result slicing, breaker bookkeeping) must resolve the jobs,
            # not escape into the batching loop
            if probe:
                self.breaker.abort_probe()
            self._fail_jobs(jobs, exc)
        finally:
            self._inflight.discard(group)

    def _pick_engine(self) -> tuple[str, bool]:
        """The engine this dispatch uses, honoring the breaker."""
        engine = self.config.engine
        if engine != "parallel":
            return engine, False
        if self.breaker.allow():
            return "parallel", False
        if self.breaker.begin_probe():
            return "parallel", True
        self._count("serve.degraded")
        obs.emit("serve.group_degraded", breaker=self.breaker.state)
        return "compiled", False

    async def _rerun_serial(
        self, jobs: list[Job], specs: list[WorkloadSpec], token: CancelToken
    ) -> None:
        """Ladder semantics at the serving layer: rerun a failed group serially."""
        self._count("serve.degraded")
        obs.emit("serve.group_degraded", breaker=self.breaker.state, rerun=True)
        try:
            run = await asyncio.to_thread(
                self._scheduler("compiled").run,
                specs,
                self.config.validate,
                token,
            )
        except ExecutionCancelled:
            for job in jobs:
                job.future.cancel()
            return
        except Exception as exc:  # noqa: BLE001 - resolve, don't crash the loop
            self._fail_jobs(jobs, exc)
            return
        self._resolve_group(jobs, run)

    def _resolve_group(self, jobs: list[Job], run) -> None:
        """Slice the merged group's per-mesh results back onto the jobs.

        The scheduler merged every spec of one job key into a single
        group whose results are positional over the summed batch; each
        job owns the slice its batch contributed, in dispatch order.
        """
        results = list(run.groups[0].results) if run.groups else []
        offset = 0
        for job in jobs:
            chunk = results[offset : offset + job.spec.batch]
            offset += job.spec.batch
            if job.future.done():
                continue
            job.future.set_result(chunk)
            latency = time.perf_counter() - job.submitted_at
            self._count("serve.completed", tenant=job.tenant)
            self.metrics.histogram("serve.latency_seconds").observe(latency)
            obs.observe("serve.latency_seconds", latency)
            obs.emit(
                "serve.job_completed",
                spec=job.spec.describe(),
                tenant=job.tenant,
                seconds=latency,
            )

    def _fail_jobs(self, jobs: list[Job], exc: Exception) -> None:
        for job in jobs:
            if job.future.done():
                continue
            job.future.set_exception(exc)
            self._count("serve.failed", tenant=job.tenant)
            obs.emit(
                "serve.job_failed",
                spec=job.spec.describe(),
                tenant=job.tenant,
                error=repr(exc),
            )

    # -- deadlines, cancels, shedding ---------------------------------------------
    async def _run_monitor(self) -> None:
        while True:
            await asyncio.sleep(self.config.monitor_interval)
            self._shed_expired()
            now = self._loop.time() if self._loop else 0.0
            for group in list(self._inflight):
                for job in group.jobs:
                    if (
                        not job.future.done()
                        and job.deadline is not None
                        and now >= job.deadline
                    ):
                        self._deadline_fail(job, queued=False)
                group.reap()

    def _shed_expired(self) -> None:
        if self._loop is None:
            return
        now = self._loop.time()
        shed = self._queue.shed(
            lambda j: j.deadline is not None and now >= j.deadline
        )
        for job in shed:
            self._deadline_fail(job, queued=True)
        if shed:
            self._notify_space()
        self._set_depth_gauge()

    def _deadline_fail(self, job: Job, queued: bool) -> None:
        if job.future.done():
            return
        job.future.set_exception(
            DeadlineExceeded(
                f"job {job.spec.describe()} (tenant {job.tenant!r}) missed "
                f"its deadline while {'queued' if queued else 'in flight'}"
            )
        )
        self._count("serve.shed", tenant=job.tenant)
        obs.emit(
            "serve.job_shed",
            spec=job.spec.describe(),
            tenant=job.tenant,
            queued=queued,
        )

    def _cancel_job(self, job: Job, reason: str | None = None) -> bool:
        loop = self._loop
        if loop is None:
            return job.future.cancel()
        try:
            running = asyncio.get_running_loop()
        except RuntimeError:
            running = None
        if running is not loop:
            loop.call_soon_threadsafe(self._cancel_job, job, reason)
            return not job.future.done()
        if job.future.done():
            return False
        job.future.cancel()
        self._count("serve.cancelled", tenant=job.tenant)
        obs.emit(
            "serve.job_cancelled",
            spec=job.spec.describe(),
            tenant=job.tenant,
            reason=reason,
        )
        for group in self._inflight:
            if job in group.jobs:
                group.reap()
                break
        return True

    def _job_resolved(self, future: asyncio.Future) -> None:
        # one done callback per job: retrieve the exception so shed jobs
        # nobody awaits never warn, and drop the job from the drain set
        if not future.cancelled():
            future.exception()
        for job in list(self._outstanding):
            if job.future is future:
                self._outstanding.discard(job)
                break

    # -- health & lifecycle -------------------------------------------------------
    def health(self) -> dict:
        """A readiness/health snapshot: queues, breaker, counters, latency."""
        return {
            "state": self._state,
            "queue": {"total": len(self._queue), "tenants": self._queue.depths()},
            "inflight_groups": len(self._inflight),
            "outstanding_jobs": len(self._outstanding),
            "breaker": {"state": self.breaker.state, "trips": self.breaker.trips},
            "jobs": {
                name: self._count_total(f"serve.{name}")
                for name in (
                    "admitted", "rejected", "shed", "cancelled",
                    "completed", "failed", "degraded",
                )
            },
            "latency": self.metrics.histogram("serve.latency_seconds").summary(),
        }

    async def close(self, drain: bool = True) -> None:
        """Stop admissions, settle every job, stop the loop tasks.

        ``drain=True`` lets queued and in-flight jobs finish (or
        deadline-fail); ``drain=False`` cancels everything still queued
        and cooperatively cancels in-flight batches. Either way the
        server ends with zero outstanding jobs and no shared-memory
        segment of its dispatches left alive.
        """
        if self._state == "closed":
            return
        self._state = "draining"
        self._notify_space()  # blocked submitters must wake and see the close
        obs.emit("serve.drain_begin", drain=drain, queued=len(self._queue))
        interval = self.config.monitor_interval
        if self._loop is not None:
            if not drain:
                for job in self._queue.shed(lambda j: True):
                    self._cancel_job(job, reason="server closed")
                for group in list(self._inflight):
                    for job in group.jobs:
                        self._cancel_job(job, reason="server closed")
                    group.token.set("server closed")
            else:
                assert self._work is not None
                self._work.set()
            # outstanding empties when every job resolves; inflight empties
            # only when each dispatch's worker thread has returned — both
            # must be gone before the loop tasks can be torn down, or a
            # still-running thread would outlive the server (and its
            # shared-memory segments with it)
            while self._outstanding or self._inflight:
                await asyncio.sleep(interval)
            for task in (self._loop_task, self._monitor_task):
                if task is not None:
                    task.cancel()
            for task in (self._loop_task, self._monitor_task):
                if task is not None:
                    try:
                        await task
                    except asyncio.CancelledError:
                        pass
        self._state = "closed"
        self._set_depth_gauge()
        obs.emit("serve.closed", drain=drain)

    async def __aenter__(self) -> "Server":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close(drain=True)

    # -- internals ----------------------------------------------------------------
    def _scheduler(self, engine: str):
        scheduler = self._schedulers.get(engine)
        if scheduler is None:
            from repro.dataflow.scheduler import MixScheduler

            scheduler = self._schedulers[engine] = MixScheduler(
                engine=engine,
                seed=self.config.seed,
                max_workers=self.config.max_workers,
                strict=True,
                retry_policy=self.config.retry_policy,
                fault_plan=self.config.fault_plan,
                stacked_bytes_limit=self.config.stacked_bytes_limit,
            )
        return scheduler

    def _count(self, name: str, **labels: object) -> None:
        self.metrics.counter(name, **labels).inc()
        obs.inc(name, **labels)

    def _count_total(self, name: str) -> float:
        total = 0.0
        for metric_name, _labels, metric in self.metrics.items():
            if metric_name == name:
                total += metric.value
        return total

    def _set_depth_gauge(self) -> None:
        depth = len(self._queue)
        self.metrics.gauge("serve.queue_depth").set(depth)
        obs.set_gauge("serve.queue_depth", depth)
