"""Closed-loop load generation against a :class:`~repro.serve.Server`.

``clients`` concurrent client coroutines each submit ``requests`` jobs
back to back (closed loop: the next submit waits for the previous result),
drawing specs round-robin from the given list — deterministic, so a bench
run is reproducible and an over-capacity configuration rejects/sheds the
*same* jobs every time. The report counts every terminal outcome
(completed, rejected, shed, cancelled, failed) and summarizes end-to-end
latency percentiles of the completed jobs, per spec and overall — the
numbers ``repro serve`` prints and ``benchmarks/bench_serve.py`` records.
"""

from __future__ import annotations

import asyncio
import time
from typing import Sequence

from repro.observability.metrics import percentiles
from repro.serve.errors import DeadlineExceeded, QueueFullError, ServeError
from repro.serve.server import Server
from repro.workload import WorkloadSpec


async def run_closed_loop(
    server: Server,
    specs: Sequence[WorkloadSpec | str],
    *,
    clients: int = 4,
    requests: int = 8,
    tenants: int = 1,
    deadline: float | None = None,
    priority: int = 0,
) -> dict:
    """Drive the server with a closed loop; returns the outcome report.

    Client ``c`` belongs to tenant ``"client<c mod tenants>"`` and submits
    ``requests`` jobs, cycling through ``specs`` starting at its own
    index. Rejected submits count and continue — a closed loop pushed
    over capacity measures the admission controller, not a hang.
    """
    resolved = [
        WorkloadSpec.parse(s) if isinstance(s, str) else s for s in specs
    ]
    outcomes: list[tuple[WorkloadSpec, str, float]] = []

    async def _client(index: int) -> None:
        tenant = f"client{index % tenants}"
        for r in range(requests):
            spec = resolved[(index + r) % len(resolved)]
            t0 = time.perf_counter()
            try:
                handle = await server.submit(
                    spec, tenant=tenant, priority=priority, deadline=deadline
                )
                await handle
            except QueueFullError:
                outcomes.append((spec, "rejected", 0.0))
                continue
            except DeadlineExceeded:
                outcomes.append((spec, "shed", 0.0))
                continue
            except asyncio.CancelledError:
                outcomes.append((spec, "cancelled", 0.0))
                continue
            except ServeError:
                outcomes.append((spec, "failed", 0.0))
                continue
            outcomes.append((spec, "ok", time.perf_counter() - t0))

    await asyncio.gather(*(_client(c) for c in range(clients)))
    return _report(outcomes)


def _report(outcomes: list[tuple[WorkloadSpec, str, float]]) -> dict:
    per_spec: dict[str, dict] = {}
    ok_latencies: list[float] = []
    counts = {"ok": 0, "rejected": 0, "shed": 0, "cancelled": 0, "failed": 0}
    for spec, outcome, latency in outcomes:
        key = spec.describe()
        entry = per_spec.setdefault(
            key, {"ok": 0, "rejected": 0, "shed": 0, "cancelled": 0,
                  "failed": 0, "latencies": []}
        )
        entry[outcome] += 1
        counts[outcome] += 1
        if outcome == "ok":
            entry["latencies"].append(latency)
            ok_latencies.append(latency)
    for entry in per_spec.values():
        entry["latency"] = percentiles(entry.pop("latencies"))
    return {
        "jobs": len(outcomes),
        **counts,
        "latency": percentiles(ok_latencies),
        "per_spec": per_spec,
    }
