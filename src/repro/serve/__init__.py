"""``repro.serve`` — an overload-safe async serving layer over the scheduler.

The accelerator-as-a-service tier the paper's deployment story implies
(many client jobs of differing shapes arriving continuously, served by one
batched accelerator): an asyncio :class:`Server` admits individual
:class:`~repro.workload.WorkloadSpec` jobs, coalesces compatible ones into
merged stacked dispatches through the
:class:`~repro.dataflow.scheduler.MixScheduler`, and wraps the whole path
in a robustness envelope — bounded per-tenant admission queues with
weighted fair dequeue, per-job deadlines with cooperative in-flight
cancellation, a circuit breaker that degrades to the serial engine while
the parallel backend heals, health/readiness snapshots, and a graceful,
leak-free drain. See ``docs/serving.md`` and ``repro serve``.
"""

from repro.serve.breaker import CircuitBreaker
from repro.serve.errors import (
    DeadlineExceeded,
    QueueFullError,
    ServeError,
    ServerClosedError,
)
from repro.serve.loadgen import run_closed_loop
from repro.serve.queue import FairQueue
from repro.serve.server import Job, JobHandle, Server, ServerConfig

__all__ = [
    "CircuitBreaker",
    "DeadlineExceeded",
    "FairQueue",
    "Job",
    "JobHandle",
    "QueueFullError",
    "ServeError",
    "Server",
    "ServerClosedError",
    "ServerConfig",
    "run_closed_loop",
]
