"""Circuit breaker: stop hammering a failing parallel backend.

The classic three-state machine, tuned for the serving loop:

* **closed** — parallel dispatch allowed; consecutive
  :class:`~repro.parallel.ParallelExecutionError` failures count up, a
  success resets the count. Reaching ``failure_threshold`` trips the
  breaker.
* **open** — parallel dispatch refused (the server degrades to the serial
  compiled engine, so jobs keep resolving bit-identically while the pool
  recovers). After ``reset_timeout`` seconds the breaker half-opens.
* **half_open** — exactly one **probe** dispatch is allowed back onto the
  parallel backend (:meth:`begin_probe`); its success closes the breaker,
  its failure re-opens it and restarts the timer.

State changes are counted and emitted through :mod:`repro.observability`
(``serve.breaker_trips``; ``serve.breaker_open`` / ``_half_open`` /
``_closed`` events) — the CI smoke job asserts a full
trip → half-open → recover cycle from the event log. The breaker is
event-loop-confined like the rest of the server; ``clock`` is injectable
so tests drive the timeout without sleeping.
"""

from __future__ import annotations

import time
from typing import Callable

from repro import observability as obs
from repro.util.errors import ValidationError

#: the breaker's states
STATES = ("closed", "open", "half_open")


class CircuitBreaker:
    """Consecutive-failure breaker with timed half-open probes."""

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_timeout: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValidationError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_timeout <= 0:
            raise ValidationError(
                f"reset_timeout must be positive, got {reset_timeout}"
            )
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._clock = clock
        self._state = "closed"
        self._failures = 0
        self._opened_at = 0.0
        self._probing = False
        #: total trips (closed/half_open -> open) over the breaker's life
        self.trips = 0

    # -- state --------------------------------------------------------------------
    @property
    def state(self) -> str:
        """The current state, after any due open → half-open transition."""
        if (
            self._state == "open"
            and self._clock() - self._opened_at >= self.reset_timeout
        ):
            self._state = "half_open"
            self._probing = False
            obs.emit("serve.breaker_half_open")
        return self._state

    def allow(self) -> bool:
        """True when a parallel dispatch may proceed right now.

        In half-open state only the probe holder may dispatch — callers
        that want the probe must win :meth:`begin_probe` first.
        """
        return self.state == "closed"

    def begin_probe(self) -> bool:
        """Claim the single half-open probe slot (False if taken/closed)."""
        if self.state != "half_open" or self._probing:
            return False
        self._probing = True
        return True

    def abort_probe(self) -> None:
        """Release the probe slot without judging the backend.

        For probes whose dispatch ended without a verdict on the parallel
        backend's health (every member job cancelled or deadline-failed
        mid-flight, or an internal serving error): the breaker keeps its
        state but frees the half-open slot so the next dispatch may probe
        — otherwise the slot would leak and the backend never recover.
        """
        self._probing = False

    # -- outcomes -----------------------------------------------------------------
    def record_success(self) -> None:
        """A parallel dispatch completed: reset, closing a half-open breaker."""
        if self.state == "half_open":
            self._state = "closed"
            obs.emit("serve.breaker_closed")
        self._failures = 0
        self._probing = False

    def record_failure(self) -> None:
        """A parallel dispatch failed: count up, trip when the run is long enough."""
        state = self.state
        if state == "half_open":
            self._trip()
            return
        if state == "open":  # pragma: no cover - failures race the trip
            return
        self._failures += 1
        if self._failures >= self.failure_threshold:
            self._trip()

    def _trip(self) -> None:
        self._state = "open"
        self._opened_at = self._clock()
        self._failures = 0
        self._probing = False
        self.trips += 1
        obs.inc("serve.breaker_trips")
        obs.emit("serve.breaker_open", reset_timeout=self.reset_timeout)
