"""Serving-layer errors: how a job learns it will not be served.

Every terminal outcome of a :class:`~repro.serve.server.Server` job is
either its result or exactly one of these (plus ``asyncio.CancelledError``
for client cancels) — the exactly-once resolution contract the suite
property-tests. All subclass :class:`~repro.util.errors.ReproError`, so
the CLI's uniform error handling applies.
"""

from __future__ import annotations

from repro.util.errors import ReproError


class ServeError(ReproError):
    """Base class of every serving-layer error."""


class QueueFullError(ServeError):
    """Admission refused: the tenant's bounded queue is at capacity.

    Raised at submit time under ``admission="reject"`` — the overload
    answer that keeps p99 of *admitted* jobs bounded instead of letting
    the queue grow without limit (``admission="block"`` waits for space
    instead).
    """


class DeadlineExceeded(ServeError):
    """The job's deadline passed before it produced a result.

    Still-queued jobs are shed without ever executing; in-flight jobs are
    resolved with this error while their batch is cancelled cooperatively
    at the next chunk boundary.
    """


class ServerClosedError(ServeError):
    """Submission refused: the server is draining or closed."""
