"""Bounded per-tenant job queues with weighted fair dequeue.

The admission-control half of the serving layer: each tenant owns a
bounded priority queue (higher ``priority`` first, FIFO within a
priority), and the dequeue side interleaves tenants by **stride
scheduling** — each tenant advances a virtual "pass" by
``STRIDE_SCALE / weight`` per job served, and the next job always comes
from the non-empty tenant with the smallest pass. Over any busy window a
tenant with weight 2 is served twice as often as a tenant with weight 1,
whatever the arrival order, and an idle tenant accumulates no credit (its
pass is re-synchronized to the active minimum when it becomes busy again).

The structure is event-loop-confined: every method is called from the
server's asyncio loop, so there are no locks — blocking admission and
cross-thread cancellation are the :class:`~repro.serve.server.Server`'s
concern.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Callable, Iterable, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serve.server import Job

#: pass-advance numerator; weights divide it, so larger weight = smaller
#: stride = more frequent service
STRIDE_SCALE = float(1 << 16)


class FairQueue:
    """Bounded per-tenant queues drained in weighted fair order."""

    def __init__(
        self,
        depth: int,
        weights: Mapping[str, float] | None = None,
    ) -> None:
        from repro.util.errors import ValidationError
        from repro.util.validation import check_positive

        check_positive("queue depth", depth)
        self.depth = depth
        self._weights = dict(weights or {})
        for tenant, weight in self._weights.items():
            if weight <= 0:
                raise ValidationError(
                    f"tenant {tenant!r} weight must be positive, got {weight}"
                )
        #: per-tenant heaps of (-priority, seq, job)
        self._heaps: dict[str, list[tuple[float, int, "Job"]]] = {}
        self._pass: dict[str, float] = {}

    # -- admission ----------------------------------------------------------------
    def weight_of(self, tenant: str) -> float:
        """The tenant's service weight (1.0 unless configured)."""
        return self._weights.get(tenant, 1.0)

    def full(self, tenant: str) -> bool:
        """True when the tenant's queue is at capacity."""
        return len(self._heaps.get(tenant, ())) >= self.depth

    def offer(self, job: "Job") -> bool:
        """Enqueue the job unless its tenant is at capacity.

        Returns False on a full queue — the caller decides whether that is
        a reject (:class:`~repro.serve.errors.QueueFullError`) or a reason
        to wait. A tenant going from idle to busy re-synchronizes its pass
        to the smallest active pass so it cannot burst on stale credit.
        """
        heap = self._heaps.get(job.tenant)
        if heap is None:
            heap = self._heaps[job.tenant] = []
        if len(heap) >= self.depth:
            return False
        if not heap:
            floor = min(
                (self._pass[t] for t, h in self._heaps.items() if h),
                default=0.0,
            )
            self._pass[job.tenant] = max(self._pass.get(job.tenant, 0.0), floor)
        heapq.heappush(heap, (-job.priority, job.seq, job))
        return True

    # -- dequeue ------------------------------------------------------------------
    def pop(self) -> "Job | None":
        """The next job in weighted fair order (None when empty).

        Jobs already resolved while queued (client cancels) are discarded
        without consuming their tenant's turn.
        """
        while True:
            tenant = min(
                (t for t, h in self._heaps.items() if h),
                key=lambda t: (self._pass[t], t),
                default=None,
            )
            if tenant is None:
                return None
            _, _, job = heapq.heappop(self._heaps[tenant])
            if job.future.done():
                continue
            self._pass[tenant] += STRIDE_SCALE / self.weight_of(tenant)
            return job

    def shed(self, doomed: Callable[["Job"], bool]) -> list["Job"]:
        """Remove and return every queued job ``doomed`` marks.

        Already-resolved jobs are dropped silently on the way (they hold a
        slot but owe nobody an answer). Used by the server's deadline
        monitor and by non-drain close.
        """
        removed: list["Job"] = []
        for tenant, heap in self._heaps.items():
            keep: list[tuple[float, int, "Job"]] = []
            for item in heap:
                job = item[2]
                if job.future.done():
                    continue
                if doomed(job):
                    removed.append(job)
                else:
                    keep.append(item)
            if len(keep) != len(heap):
                heapq.heapify(keep)
                self._heaps[tenant] = keep
        return removed

    # -- introspection ------------------------------------------------------------
    def __len__(self) -> int:
        return sum(len(h) for h in self._heaps.values())

    def depths(self) -> dict[str, int]:
        """Queued jobs per tenant (tenants that ever enqueued)."""
        return {t: len(h) for t, h in sorted(self._heaps.items())}

    def jobs(self) -> Iterable["Job"]:
        """Every queued job, in no particular order."""
        for heap in self._heaps.values():
            for _, _, job in heap:
                yield job
