"""Mesh specification and field storage.

A :class:`MeshSpec` describes the rectangular iteration space of a
structured-mesh solver (paper Section II): spatial extents in the paper's
``(m, n[, l])`` order, the number of components per mesh element (1 for the
scalar Poisson/Jacobi solvers, 6 for the RTM vector fields) and the element
scalar type (single-precision float throughout the paper).

A :class:`Field` is a named NumPy array bound to a spec. Data is stored
C-ordered as ``arr[z, y, x, component]`` so the ``m`` dimension is contiguous,
matching both the FPGA streaming order and CPU cache behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Iterator, Sequence

import numpy as np

from repro.util.errors import ValidationError
from repro.util.validation import check_positive, check_shape


@dataclass(frozen=True)
class MeshSpec:
    """Shape and element type of a structured mesh.

    Parameters
    ----------
    shape:
        Spatial extents in paper order ``(m, n)`` or ``(m, n, l)``.
    components:
        Number of scalar components per mesh element (vector meshes).
    dtype:
        Element scalar type; the paper uses single precision throughout.
    """

    shape: tuple[int, ...]
    components: int = 1
    dtype: np.dtype = np.dtype(np.float32)

    def __post_init__(self):
        object.__setattr__(self, "shape", check_shape("shape", self.shape))
        if len(self.shape) not in (2, 3):
            raise ValidationError(
                f"only 2D and 3D meshes are supported, got shape {self.shape}"
            )
        check_positive("components", self.components)
        object.__setattr__(self, "dtype", np.dtype(self.dtype))

    # -- paper-notation accessors -------------------------------------------------
    @property
    def ndim(self) -> int:
        """Number of spatial dimensions (2 or 3)."""
        return len(self.shape)

    @property
    def m(self) -> int:
        """Innermost (contiguous, vectorized) extent."""
        return self.shape[0]

    @property
    def n(self) -> int:
        """Second extent (rows in 2D, rows-per-plane in 3D)."""
        return self.shape[1]

    @property
    def l(self) -> int:
        """Outermost extent of a 3D mesh (number of planes)."""
        if self.ndim != 3:
            raise ValidationError(f"mesh {self.shape} is not 3D; 'l' is undefined")
        return self.shape[2]

    # -- sizes --------------------------------------------------------------------
    @property
    def num_points(self) -> int:
        """Total number of mesh points."""
        count = 1
        for s in self.shape:
            count *= s
        return count

    @property
    def elem_bytes(self) -> int:
        """Size of one mesh element in bytes (``k`` in eq. (7))."""
        return self.components * self.dtype.itemsize

    @property
    def footprint_bytes(self) -> int:
        """Total bytes of one field on this mesh."""
        return self.num_points * self.elem_bytes

    @property
    def storage_shape(self) -> tuple[int, ...]:
        """NumPy storage shape ``(l, n, m, components)`` / ``(n, m, components)``."""
        return tuple(reversed(self.shape)) + (self.components,)

    @property
    def row_length(self) -> int:
        """Alias for ``m``: the length of a streamed row."""
        return self.m

    @property
    def plane_points(self) -> int:
        """Points per plane: ``m*n`` (3D) or ``m`` (2D row)."""
        return self.m * self.n if self.ndim == 3 else self.m

    def with_shape(self, shape: Sequence[int]) -> "MeshSpec":
        """Return a copy of this spec with a different spatial shape."""
        return MeshSpec(tuple(shape), self.components, self.dtype)

    def interior_slices(self, radius: Sequence[int] | int) -> tuple[slice, ...]:
        """Slices (in storage order, excluding the component axis) selecting
        the interior at the given per-axis stencil radius.

        ``radius`` is given in paper axis order ``(rm, rn[, rl])``.
        """
        if isinstance(radius, int):
            radius = (radius,) * self.ndim
        radius = tuple(int(r) for r in radius)
        if len(radius) != self.ndim:
            raise ValidationError(
                f"radius {radius} does not match mesh rank {self.ndim}"
            )
        for r, s in zip(radius, self.shape):
            if r < 0:
                raise ValidationError(f"radius must be non-negative, got {radius}")
            if 2 * r >= s:
                raise ValidationError(
                    f"radius {r} leaves no interior on extent {s} (shape {self.shape})"
                )
        # storage order is reversed paper order
        return tuple(slice(r, s - r) for r, s in zip(reversed(radius), reversed(self.shape)))

    def __str__(self) -> str:
        dims = "x".join(str(s) for s in self.shape)
        comp = f", {self.components} comp" if self.components != 1 else ""
        return f"Mesh({dims}{comp}, {self.dtype.name})"


@dataclass
class Field:
    """A named field (solution variable or coefficient mesh) on a mesh.

    The underlying array is always ``spec.storage_shape``; use
    :meth:`values` for a component-squeezed view of scalar fields.
    """

    name: str
    spec: MeshSpec
    data: np.ndarray = dc_field(repr=False, default=None)

    def __post_init__(self):
        if self.data is None:
            self.data = np.zeros(self.spec.storage_shape, dtype=self.spec.dtype)
        else:
            self.data = np.asarray(self.data, dtype=self.spec.dtype)
            if self.data.shape == self.spec.storage_shape[:-1] and self.spec.components == 1:
                self.data = self.data[..., np.newaxis]
            if self.data.shape != self.spec.storage_shape:
                raise ValidationError(
                    f"field '{self.name}' data shape {self.data.shape} does not match "
                    f"storage shape {self.spec.storage_shape}"
                )

    # -- constructors -------------------------------------------------------------
    @classmethod
    def zeros(cls, name: str, spec: MeshSpec) -> "Field":
        """A zero-initialized field."""
        return cls(name, spec)

    @classmethod
    def full(cls, name: str, spec: MeshSpec, value: float) -> "Field":
        """A constant-initialized field."""
        return cls(name, spec, np.full(spec.storage_shape, value, dtype=spec.dtype))

    @classmethod
    def random(cls, name: str, spec: MeshSpec, seed: int = 0, lo: float = 0.0, hi: float = 1.0) -> "Field":
        """A reproducibly random field (uniform in ``[lo, hi)``)."""
        rng = np.random.default_rng(seed)
        data = rng.uniform(lo, hi, size=spec.storage_shape).astype(spec.dtype)
        return cls(name, spec, data)

    @classmethod
    def from_function(cls, name: str, spec: MeshSpec, fn) -> "Field":
        """Initialize from ``fn(x, y[, z]) -> value`` evaluated on integer coordinates.

        ``fn`` receives broadcast coordinate arrays in paper order.
        """
        coords = np.meshgrid(*[np.arange(s) for s in spec.shape], indexing="ij")
        values = np.asarray(fn(*coords), dtype=spec.dtype)
        if values.shape == spec.shape:
            values = values[..., np.newaxis]
            values = np.broadcast_to(values, spec.shape + (spec.components,))
        # transpose paper order (m, n, l, c) -> storage order (l, n, m, c)
        axes = tuple(reversed(range(spec.ndim))) + (spec.ndim,)
        data = np.ascontiguousarray(values.transpose(axes))
        return cls(name, spec, data)

    # -- views & copies -----------------------------------------------------------
    def copy(self, name: str | None = None) -> "Field":
        """A deep copy, optionally renamed."""
        return Field(name or self.name, self.spec, self.data.copy())

    def values(self) -> np.ndarray:
        """The storage array, squeezing the component axis for scalar fields."""
        if self.spec.components == 1:
            return self.data[..., 0]
        return self.data

    def interior(self, radius) -> np.ndarray:
        """View of the interior region at the given stencil radius."""
        return self.data[self.spec.interior_slices(radius)]

    def at(self, *point: int, component: int = 0) -> float:
        """Value at a point given in paper coordinates ``(x, y[, z])``."""
        if len(point) != self.spec.ndim:
            raise ValidationError(
                f"point {point} does not match mesh rank {self.spec.ndim}"
            )
        return float(self.data[tuple(reversed(point)) + (component,)])

    def allclose(self, other: "Field", rtol: float = 0.0, atol: float = 0.0) -> bool:
        """Exact (default) or tolerant comparison with another field."""
        return self.spec == other.spec and np.allclose(
            self.data, other.data, rtol=rtol, atol=atol
        )

    def rows(self) -> Iterator[np.ndarray]:
        """Iterate over rows in streaming order (the order the FPGA reads them)."""
        flat = self.data.reshape(-1, self.spec.m, self.spec.components)
        yield from flat
