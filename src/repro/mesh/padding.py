"""Row padding and AXI alignment rules (paper Sections III & IV-A).

Two padding rules govern the streamed layout:

* each row is padded to a multiple of the vectorization factor ``V`` so that
  ``ceil(m/V)`` full vectors are streamed per row (eq. (2));
* memory transactions keep the 512-bit (64-byte) AXI bus alignment, which for
  tiled (strided) access forces read/write windows to 64-byte boundaries and
  adds redundant transfer at tile edges.
"""

from __future__ import annotations

import numpy as np

from repro.mesh.mesh import Field, MeshSpec
from repro.util.rounding import round_up
from repro.util.validation import check_positive

#: AXI4 data bus width used by the designs in the paper (512 bits).
AXI_ALIGN_BYTES = 64


def padded_row_length(m: int, vector_factor: int) -> int:
    """Row length after padding to a multiple of the vectorization factor."""
    check_positive("m", m)
    check_positive("vector_factor", vector_factor)
    return round_up(m, vector_factor)


def aligned_row_bytes(m: int, elem_bytes: int, align: int = AXI_ALIGN_BYTES) -> int:
    """Bytes occupied by one row after alignment to the AXI bus width."""
    check_positive("elem_bytes", elem_bytes)
    return round_up(m * elem_bytes, align)


def pad_to_vector(field: Field, vector_factor: int, fill: float = 0.0) -> Field:
    """Pad the innermost dimension of a field to a multiple of ``V``.

    Padding cells are filled with ``fill`` and are never part of the valid
    output; they exist so the streaming datapath always moves whole vectors.
    """
    m = field.spec.m
    m_pad = padded_row_length(m, vector_factor)
    if m_pad == m:
        return field.copy()
    spec = field.spec
    new_spec = spec.with_shape((m_pad,) + spec.shape[1:])
    pad_width = [(0, 0)] * field.data.ndim
    # storage order (l, n, m, c): the m axis is the second-to-last
    pad_width[-2] = (0, m_pad - m)
    data = np.pad(field.data, pad_width, constant_values=fill)
    return Field(field.name, new_spec, data)


def unpad_from_vector(field: Field, original_m: int) -> Field:
    """Strip vector padding, returning the field restricted to ``original_m``."""
    check_positive("original_m", original_m)
    if original_m > field.spec.m:
        raise ValueError(
            f"original_m {original_m} larger than padded extent {field.spec.m}"
        )
    spec = field.spec.with_shape((original_m,) + field.spec.shape[1:])
    data = field.data[..., :original_m, :].copy()
    return Field(field.name, spec, data)
