"""Structured-mesh substrate: mesh specifications, fields, batching and padding.

Conventions
-----------
Mesh shapes follow the paper's ``m x n`` / ``m x n x l`` notation:

* ``m`` — the innermost (fastest-varying, contiguous in memory) dimension;
  rows of length ``m`` are what the accelerator streams ``V`` elements at a
  time, so ``m`` is the dimension padded to a multiple of the vectorization
  factor.
* ``n`` — the second dimension (number of rows in 2D, rows per plane in 3D).
* ``l`` — the outermost dimension in 3D (number of planes); batching stacks
  independent meshes along the outermost dimension.

NumPy storage is C-ordered with axes reversed relative to the paper notation
(``arr[z, y, x, component]``), so ``m`` is contiguous.
"""

from repro.mesh.mesh import MeshSpec, Field
from repro.mesh.batch import (
    stack_fields,
    split_field,
    batched_spec,
    stack_batch_major,
    split_batch_major,
)
from repro.mesh.padding import (
    pad_to_vector,
    padded_row_length,
    aligned_row_bytes,
    AXI_ALIGN_BYTES,
)

__all__ = [
    "MeshSpec",
    "Field",
    "stack_fields",
    "split_field",
    "batched_spec",
    "stack_batch_major",
    "split_batch_major",
    "pad_to_vector",
    "padded_row_length",
    "aligned_row_bytes",
    "AXI_ALIGN_BYTES",
]
