"""Batching of independent meshes (paper Section IV-B).

Batching stacks ``B`` meshes of identical shape along the outermost dimension
(``n`` in 2D, ``l`` in 3D) so the accelerator pipeline processes them as one
long stream and the pipeline fill latency is paid once per batch instead of
once per mesh (eq. (15)).

Axis bookkeeping — why ``axis=0`` and ``shape[-1]`` agree
---------------------------------------------------------
:class:`~repro.mesh.mesh.MeshSpec` shapes are in *paper* order ``(m, n[, l])``
while field storage is C-ordered *reversed* paper order
``(l, n, m, component)`` — so the outermost paper dimension (``shape[-1]``
of the spec) is exactly **storage axis 0**. ``batched_spec`` therefore
multiplies ``spec.shape[-1]`` while ``stack_fields`` / ``split_field``
concatenate/split ``Field.data`` along ``axis=0``: the two describe the same
layout, one in paper coordinates and one in storage coordinates. The
round-trip ``stack_fields -> batched_spec -> split_field`` is asserted on an
asymmetric 3-D mesh in the test suite.

Note that a batched stream is *not* one large PDE problem: stencil updates
must not couple neighbouring meshes across the stacking seam.  The
functional simulator therefore keeps meshes isolated — the compiled engine
runs them **batch-major** (a true leading array axis; see
:func:`stack_batch_major` and
:func:`repro.stencil.compiled.run_program_stacked`) — and batching only
changes the cycle accounting. ``stack_fields`` / ``split_field`` provide the
seam-concatenated layout used by the data movers.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.mesh.mesh import Field, MeshSpec
from repro.util.errors import ValidationError
from repro.util.validation import check_positive


def batched_spec(spec: MeshSpec, batch: int) -> MeshSpec:
    """The spec of ``batch`` meshes stacked along the outermost dimension.

    ``spec.shape[-1]`` (paper order) is storage axis 0, so this is the spec
    of the array :func:`stack_fields` produces.
    """
    check_positive("batch", batch)
    shape = list(spec.shape)
    shape[-1] = shape[-1] * batch
    return spec.with_shape(shape)


def stack_fields(fields: Sequence[Field], name: str | None = None) -> Field:
    """Stack same-shaped fields along the outermost dimension.

    This is the host-side layout transformation the paper applies before a
    batched solve: meshes become contiguous segments of one long stream.
    Storage axis 0 is the outermost paper dimension, so the result's spec is
    ``batched_spec(spec, len(fields))``.
    """
    if not fields:
        raise ValidationError("stack_fields requires at least one field")
    spec = fields[0].spec
    for f in fields[1:]:
        if f.spec != spec:
            raise ValidationError(
                f"cannot stack fields with differing specs: {f.spec} vs {spec}"
            )
    out_spec = batched_spec(spec, len(fields))
    data = np.concatenate([f.data for f in fields], axis=0)
    return Field(name or fields[0].name, out_spec, data)


def split_field(field: Field, batch: int) -> list[Field]:
    """Split a stacked field back into ``batch`` independent fields."""
    check_positive("batch", batch)
    outer = field.spec.shape[-1]
    if outer % batch != 0:
        raise ValidationError(
            f"outer extent {outer} is not divisible by batch {batch}"
        )
    sub_shape = list(field.spec.shape)
    sub_shape[-1] = outer // batch
    sub_spec = field.spec.with_shape(sub_shape)
    chunks = np.split(field.data, batch, axis=0)
    return [
        Field(f"{field.name}[{i}]", sub_spec, chunk.copy())
        for i, chunk in enumerate(chunks)
    ]


def stack_batch_major(fields: Sequence[Field]) -> np.ndarray:
    """Stack same-spec fields on a **new leading batch axis**.

    Returns a ``(B, *storage_shape)`` array — the layout
    :meth:`repro.stencil.compiled.CompiledProgram.load` accepts for batched
    instances. Unlike :func:`stack_fields`, the batch axis is a real array
    dimension rather than an extended spatial extent, so no stencil shift
    can ever cross from one mesh into the next: seam isolation is
    structural, not a bookkeeping obligation.
    """
    if not fields:
        raise ValidationError("stack_batch_major requires at least one field")
    spec = fields[0].spec
    for f in fields[1:]:
        if f.spec != spec:
            raise ValidationError(
                f"cannot stack fields with differing specs: {f.spec} vs {spec}"
            )
    return np.stack([f.data for f in fields], axis=0)


def split_batch_major(
    name: str, spec: MeshSpec, stacked: np.ndarray
) -> list[Field]:
    """Split a ``(B, *storage_shape)`` batch-major stack into fields."""
    if stacked.ndim < 1 or stacked.shape[1:] != spec.storage_shape:
        raise ValidationError(
            f"stacked shape {stacked.shape} is not (B, *{spec.storage_shape})"
        )
    return [
        Field(f"{name}[{i}]", spec, stacked[i].copy())
        for i in range(stacked.shape[0])
    ]
