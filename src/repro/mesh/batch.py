"""Batching of independent meshes (paper Section IV-B).

Batching stacks ``B`` meshes of identical shape along the outermost dimension
(``n`` in 2D, ``l`` in 3D) so the accelerator pipeline processes them as one
long stream and the pipeline fill latency is paid once per batch instead of
once per mesh (eq. (15)).

Note that a batched stream is *not* one large PDE problem: stencil updates
must not couple neighbouring meshes across the stacking seam.  The functional
simulator therefore evaluates each mesh independently; batching only changes
the cycle accounting.  ``stack_fields`` / ``split_field`` provide the data
layout used by the data movers.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.mesh.mesh import Field, MeshSpec
from repro.util.errors import ValidationError
from repro.util.validation import check_positive


def batched_spec(spec: MeshSpec, batch: int) -> MeshSpec:
    """The spec of ``batch`` meshes stacked along the outermost dimension."""
    check_positive("batch", batch)
    shape = list(spec.shape)
    shape[-1] = shape[-1] * batch
    return spec.with_shape(shape)


def stack_fields(fields: Sequence[Field], name: str | None = None) -> Field:
    """Stack same-shaped fields along the outermost dimension.

    This is the host-side layout transformation the paper applies before a
    batched solve: meshes become contiguous segments of one long stream.
    """
    if not fields:
        raise ValidationError("stack_fields requires at least one field")
    spec = fields[0].spec
    for f in fields[1:]:
        if f.spec != spec:
            raise ValidationError(
                f"cannot stack fields with differing specs: {f.spec} vs {spec}"
            )
    out_spec = batched_spec(spec, len(fields))
    data = np.concatenate([f.data for f in fields], axis=0)
    return Field(name or fields[0].name, out_spec, data)


def split_field(field: Field, batch: int) -> list[Field]:
    """Split a stacked field back into ``batch`` independent fields."""
    check_positive("batch", batch)
    outer = field.spec.shape[-1]
    if outer % batch != 0:
        raise ValidationError(
            f"outer extent {outer} is not divisible by batch {batch}"
        )
    sub_shape = list(field.spec.shape)
    sub_shape[-1] = outer // batch
    sub_spec = field.spec.with_shape(sub_shape)
    chunks = np.split(field.data, batch, axis=0)
    return [
        Field(f"{field.name}[{i}]", sub_spec, chunk.copy())
        for i, chunk in enumerate(chunks)
    ]
