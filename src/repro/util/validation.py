"""Lightweight argument validation helpers.

These raise :class:`~repro.util.errors.ValidationError` with a message naming
the offending parameter, so API misuse is diagnosed at the boundary rather
than deep inside the models.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.util.errors import ValidationError


def check_positive(name: str, value: float) -> None:
    """Require ``value > 0``."""
    if not value > 0:
        raise ValidationError(f"{name} must be positive, got {value!r}")


def check_non_negative(name: str, value: float) -> None:
    """Require ``value >= 0``."""
    if value < 0:
        raise ValidationError(f"{name} must be non-negative, got {value!r}")


def check_in_range(name: str, value: float, lo: float, hi: float) -> None:
    """Require ``lo <= value <= hi``."""
    if not (lo <= value <= hi):
        raise ValidationError(f"{name} must be in [{lo}, {hi}], got {value!r}")


def check_type(name: str, value: Any, types: type | tuple[type, ...]) -> None:
    """Require ``isinstance(value, types)``."""
    if not isinstance(value, types):
        expected = (
            types.__name__
            if isinstance(types, type)
            else " | ".join(t.__name__ for t in types)
        )
        raise ValidationError(
            f"{name} must be of type {expected}, got {type(value).__name__}"
        )


def check_one_of(name: str, value: Any, allowed: Iterable[Any]) -> None:
    """Require that ``value`` is a member of ``allowed``."""
    allowed = tuple(allowed)
    if value not in allowed:
        raise ValidationError(f"{name} must be one of {allowed!r}, got {value!r}")


def check_shape(name: str, shape: Sequence[int], ndim: int | None = None) -> tuple[int, ...]:
    """Validate a mesh shape: all positive integers, optionally fixed rank."""
    shape = tuple(int(s) for s in shape)
    if ndim is not None and len(shape) != ndim:
        raise ValidationError(f"{name} must have {ndim} dimensions, got {shape!r}")
    if not shape:
        raise ValidationError(f"{name} must be non-empty")
    for s in shape:
        if s <= 0:
            raise ValidationError(f"{name} entries must be positive, got {shape!r}")
    return shape
