"""Shared utilities: error types, validation, units, rounding and table formatting."""

from repro.util.errors import (
    ReproError,
    ValidationError,
    InfeasibleDesignError,
    ResourceExceededError,
    SimulationError,
)
from repro.util.rounding import ceil_div, round_up, round_down, is_power_of_two
from repro.util.units import (
    KIB,
    MIB,
    GIB,
    KB,
    MB,
    GB,
    MHZ,
    GHZ,
    bytes_to_mib,
    bytes_to_gib,
    fmt_bytes,
    fmt_seconds,
    fmt_bandwidth,
)
from repro.util.validation import (
    check_positive,
    check_non_negative,
    check_in_range,
    check_type,
    check_one_of,
)
from repro.util.tables import TextTable

__all__ = [
    "ReproError",
    "ValidationError",
    "InfeasibleDesignError",
    "ResourceExceededError",
    "SimulationError",
    "ceil_div",
    "round_up",
    "round_down",
    "is_power_of_two",
    "KIB",
    "MIB",
    "GIB",
    "KB",
    "MB",
    "GB",
    "MHZ",
    "GHZ",
    "bytes_to_mib",
    "bytes_to_gib",
    "fmt_bytes",
    "fmt_seconds",
    "fmt_bandwidth",
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "check_type",
    "check_one_of",
    "TextTable",
]
