"""Minimal fixed-width text table formatter for benchmark / harness output.

Kept dependency-free (no tabulate) because the benchmark harness prints the
paper's tables verbatim into log files.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.util.errors import ValidationError


class TextTable:
    """A fixed-width text table with a header row.

    >>> t = TextTable(["mesh", "runtime"])
    >>> t.add_row(["200x100", 0.03])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, columns: Sequence[str], title: str | None = None):
        if not columns:
            raise ValidationError("TextTable requires at least one column")
        self.title = title
        self.columns = [str(c) for c in columns]
        self.rows: list[list[str]] = []

    def add_row(self, values: Iterable[Any]) -> None:
        """Append a data row; values are stringified with sensible float formatting."""
        row = [self._fmt(v) for v in values]
        if len(row) != len(self.columns):
            raise ValidationError(
                f"row has {len(row)} values, table has {len(self.columns)} columns"
            )
        self.rows.append(row)

    @staticmethod
    def _fmt(value: Any) -> str:
        if isinstance(value, bool) or value is None:
            return str(value)
        if isinstance(value, float):
            if value == 0:
                return "0"
            if abs(value) >= 1000 or abs(value) < 1e-3:
                return f"{value:.3g}"
            return f"{value:.4g}"
        return str(value)

    def render(self) -> str:
        """Render the table with column-aligned cells."""
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "-+-".join("-" * w for w in widths)
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(" | ".join(c.ljust(w) for c, w in zip(self.columns, widths)))
        lines.append(sep)
        for row in self.rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
