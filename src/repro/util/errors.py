"""Exception hierarchy for the repro package.

All exceptions raised deliberately by this library derive from :class:`ReproError`
so callers can catch library errors without masking programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (wrong range, type or structure)."""


class InfeasibleDesignError(ReproError):
    """A requested FPGA design point cannot be realised on the target device.

    Raised, for example, when the iterative unroll factor exceeds both the
    DSP bound (eq. 6) and the on-chip memory bound (eq. 7), or when a mesh
    row does not fit in the device's line-buffer capacity and tiling was not
    enabled.
    """


class ResourceExceededError(InfeasibleDesignError):
    """A specific device resource (DSP, BRAM, URAM, channels) was exhausted."""

    def __init__(self, resource: str, required: float, available: float):
        self.resource = resource
        self.required = required
        self.available = available
        super().__init__(
            f"resource '{resource}' exceeded: required {required:g}, "
            f"available {available:g}"
        )


class SimulationError(ReproError):
    """The dataflow simulator reached an inconsistent internal state."""
