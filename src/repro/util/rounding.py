"""Integer rounding helpers used throughout the cycle and resource models."""

from __future__ import annotations

from repro.util.errors import ValidationError


def ceil_div(a: int, b: int) -> int:
    """Return ``ceil(a / b)`` for non-negative ``a`` and positive ``b``."""
    if b <= 0:
        raise ValidationError(f"ceil_div divisor must be positive, got {b}")
    if a < 0:
        raise ValidationError(f"ceil_div numerator must be non-negative, got {a}")
    return -(-a // b)


def round_up(value: int, multiple: int) -> int:
    """Round ``value`` up to the nearest multiple of ``multiple``."""
    return ceil_div(value, multiple) * multiple


def round_down(value: int, multiple: int) -> int:
    """Round ``value`` down to the nearest multiple of ``multiple``."""
    if multiple <= 0:
        raise ValidationError(f"round_down multiple must be positive, got {multiple}")
    if value < 0:
        raise ValidationError(f"round_down value must be non-negative, got {value}")
    return (value // multiple) * multiple


def is_power_of_two(value: int) -> bool:
    """Return True if ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0
