"""Unit constants and human-readable formatting.

Memory sizes follow the usual hardware convention: datasheet capacities
(HBM/DDR4) are powers of ten, on-chip block sizes (BRAM 18/36 Kb, URAM 288 Kb)
are powers of two of *bits*.
"""

from __future__ import annotations

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

KB = 1000
MB = 1000 * KB
GB = 1000 * MB

MHZ = 1.0e6
GHZ = 1.0e9


def bytes_to_mib(nbytes: float) -> float:
    """Convert bytes to MiB."""
    return nbytes / MIB


def bytes_to_gib(nbytes: float) -> float:
    """Convert bytes to GiB."""
    return nbytes / GIB


def fmt_bytes(nbytes: float) -> str:
    """Format a byte count with a binary suffix, e.g. ``34.5 MiB``."""
    value = float(nbytes)
    for suffix in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or suffix == "TiB":
            return f"{value:.4g} {suffix}"
        value /= 1024.0
    raise AssertionError("unreachable")


def fmt_seconds(seconds: float) -> str:
    """Format a duration, choosing between s / ms / us."""
    if seconds >= 1.0:
        return f"{seconds:.3g} s"
    if seconds >= 1.0e-3:
        return f"{seconds * 1e3:.3g} ms"
    return f"{seconds * 1e6:.3g} us"


def fmt_bandwidth(bytes_per_second: float) -> str:
    """Format a bandwidth in GB/s (decimal, as in the paper's tables)."""
    return f"{bytes_per_second / GB:.1f} GB/s"
