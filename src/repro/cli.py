"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``apps``
    List the three paper applications and their validated design points.
``experiments [--id ID]``
    Run one or all registered paper experiments and print the tables.
``report [--output PATH]``
    Regenerate EXPERIMENTS.md.
``explore APP --mesh MxN[xL] [--niter N] [--tiled]``
    Rank feasible design points for an application workload.
``dse [APP] [--strategy S] [--trials N] [--study PATH] [--resume] [--top K]``
    Run a design-space exploration study with a pluggable search strategy,
    journalling every trial (resumable) and reporting the Pareto front.
    ``--workloads app:MESH:NITERxBATCH,...`` scores every configuration
    against a whole workload mix instead of a single workload
    (``--validate-mix`` then replays the winner bit-identically against
    the golden interpreter).
``mix MIX [--engine E] [--validate] [--strict] [--fault-plan P] [--trace FILE]``
    Run a workload mix through the chunked stacked engine (serial,
    parallel worker-pool, or golden interpreter) and report the dispatch
    accounting and latency percentiles per job group. Failing groups are
    isolated and reported as error rows unless ``--strict`` (which exits
    non-zero on the first failure); ``--fault-plan`` arms deterministic
    faults into parallel dispatches (see ``docs/resilience.md``).
    ``--trace FILE`` records the run's structured events and span tree
    as JSONL.
``serve MIX [--bench] [--clients N] [--requests N] [--engine E] ...``
    Stand up the async serving layer (``repro.serve``) and drive it with
    a closed-loop load generator: bounded per-tenant admission queues,
    job coalescing into stacked dispatches, per-job deadlines, circuit
    breaking with serial degradation, graceful drain. Prints the
    latency-percentile report and the server health snapshot; exits
    non-zero if any shared-memory segment leaks. ``--fail-fast`` disables
    the chunk retry ladder so injected faults (``--fault-plan`` /
    ``REPRO_FAULT_PLAN``) reach the breaker (see ``docs/serving.md``).
``metrics MIX [--engine E] [--serve] [--trace FILE]``
    Run a mix fully instrumented and dump the Prometheus-style metrics
    and the human-readable trace table. ``--serve`` routes the mix
    through the serving layer so the dump includes the serve counters,
    queue-depth gauge and end-to-end latency histogram.
``calibrate [--force]``
    Probe this host for the best stacked-dispatch byte budget and cache it.
``codegen APP [--out DIR] [--mesh MxN[xL]]``
    Emit the Vivado HLS project for an application's paper design.
"""

from __future__ import annotations

import argparse
import math
import sys
from contextlib import contextmanager
from typing import Sequence

from repro.apps.registry import all_apps, app_by_name
from repro.util.errors import ReproError


def _parse_mesh(text: str) -> tuple[int, ...]:
    try:
        shape = tuple(int(part) for part in text.lower().split("x"))
    except ValueError:
        raise ReproError(f"cannot parse mesh {text!r}; expected e.g. 400x400") from None
    if len(shape) not in (2, 3):
        raise ReproError(f"mesh must be 2D or 3D, got {text!r}")
    return shape


def _parse_batches(text: str | None) -> tuple[int, ...]:
    """A ``batch`` search axis from e.g. ``"1,4,16"`` (default: no axis)."""
    if not text:
        return (1,)
    try:
        batches = tuple(int(part) for part in text.split(","))
    except ValueError:
        raise ReproError(
            f"cannot parse batches {text!r}; expected e.g. 1,4,16"
        ) from None
    if not batches or any(b < 1 for b in batches):
        raise ReproError(f"batch sizes must be positive, got {text!r}")
    return batches


@contextmanager
def _traced_run(trace_path: str | None):
    """Enable observability around a command body when ``--trace`` is set."""
    if not trace_path:
        yield
        return
    from repro import observability

    observability.enable(trace_path=trace_path)
    try:
        yield
    finally:
        observability.disable()
        print(f"event log: {trace_path}")


def _ms(seconds: float) -> str:
    """A latency cell: milliseconds, or ``-`` when no samples exist."""
    return "-" if math.isnan(seconds) else f"{seconds * 1e3:.2f}"


def _cmd_apps(_: argparse.Namespace) -> int:
    from repro.model.resources import gdsp_program
    from repro.util.tables import TextTable

    table = TextTable(
        ["name", "mesh", "V", "p", "clock MHz", "memory", "Gdsp", "II"],
        title="Registered applications (paper Section V)",
    )
    for key, app in all_apps().items():
        table.add_row(
            [
                key,
                str(app.program.mesh),
                app.V,
                app.p,
                app.paper_clock_mhz,
                app.memory,
                gdsp_program(app.program),
                app.initiation_interval,
            ]
        )
    print(table.render())
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.harness.experiments import all_experiments, experiment_by_id

    experiments = (
        [experiment_by_id(args.id)] if args.id else list(all_experiments())
    )
    for exp in experiments:
        print(exp.run().render())
        print()
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.harness.report import write_report

    path = write_report(args.output)
    print(f"wrote {path}")
    return 0


def _explore_study(args: argparse.Namespace, objectives, tiled, constraints=()):
    """Build and run a study from common CLI arguments.

    ``--workloads`` switches the study onto a workload mix: the space is
    the union :func:`~repro.dse.space.mix_space` over the mix's programs
    and every configuration is scored against the whole mix (predicted
    runtime = weighted sum over specs). Otherwise a single workload is
    built from ``APP --mesh --niter --batch`` as before.
    """
    from repro.arch.device import device_by_name
    from repro.dse import Evaluator, Study, model_space, strategy_by_name
    from repro.dse.space import mix_space
    from repro.model.design import Workload
    from repro.workload import WorkloadMix

    device = device_by_name(args.device)
    batches = _parse_batches(getattr(args, "batches", None))
    mix_text = getattr(args, "workloads", None)
    if mix_text:
        # a mix fully specifies apps/meshes/iterations/batches: refuse the
        # single-workload flags instead of silently dropping them
        clashes = [
            flag
            for flag, value in (
                ("APP", args.app),
                ("--mesh", args.mesh),
                ("--niter", getattr(args, "niter", None)),
                ("--batch", getattr(args, "batch", None)),
            )
            if value is not None
        ]
        if clashes:
            raise ReproError(
                f"--workloads already names apps, meshes, iterations and "
                f"batches; drop {', '.join(clashes)}"
            )
        mix = WorkloadMix.parse(mix_text)
        rep = mix.heaviest()
        app = app_by_name(rep.app)
        program = app.program_on(rep.mesh.shape)
        workload, workloads = rep, mix  # rep reported, mix scored
        space = mix_space(mix, device, tiled=tiled, batches=batches)
    else:
        if not args.app:
            raise ReproError("name an APP or pass --workloads MIX")
        app = app_by_name(args.app)
        mesh = _parse_mesh(args.mesh) if args.mesh else app.program.mesh.shape
        program = app.program_on(mesh)
        # the dse parser defaults niter/batch to None so --workloads can
        # detect explicit use; the single-workload path fills them here
        niter = args.niter if getattr(args, "niter", None) is not None else 1000
        batch = args.batch if getattr(args, "batch", None) is not None else 1
        workload = Workload(program.mesh, niter, batch)
        workloads = None
        space = model_space(program, device, workload, tiled=tiled, batches=batches)
    evaluator = Evaluator(
        program,
        device,
        # workload= and workloads= are mutually exclusive on the Evaluator
        workload if workloads is None else None,
        objectives=objectives,
        constraints=constraints,
        max_workers=getattr(args, "workers", None),
        workloads=workloads,
    )
    study = Study(
        space,
        evaluator,
        path=getattr(args, "study", None),
        resume=getattr(args, "resume", False),
    )
    strategy = strategy_by_name(
        getattr(args, "strategy", "exhaustive"), seed=getattr(args, "seed", 0)
    )
    study.run(strategy, getattr(args, "trials", None))
    return app, device, workload, study


def _design_cells(trial):
    """The V/p/clock/tile/runtime/GB/W cells shared by explore and dse tables."""
    from repro.util.units import GB

    design = trial.result.design
    return [
        design.V,
        design.p,
        f"{design.clock_mhz:.0f}",
        design.tile.tile if design.tile else "-",
        trial.value("runtime"),
        trial.value("bandwidth") / GB,
        trial.value("power"),
    ]


def _cmd_explore(args: argparse.Namespace) -> int:
    from repro.dse import BANDWIDTH, POWER, RUNTIME
    from repro.util.tables import TextTable

    app, device, _, study = _explore_study(
        args, objectives=(RUNTIME, BANDWIDTH, POWER), tiled=args.tiled
    )
    mesh = _parse_mesh(args.mesh) if args.mesh else app.program.mesh.shape
    table = TextTable(
        ["V", "p", "clock MHz", "tile", "runtime (s)", "GB/s", "W"],
        title=f"{app.name} on {device.name}: {args.niter} iters, mesh {args.mesh or mesh}",
    )
    top = study.top(args.top)
    for trial in top:
        table.add_row(_design_cells(trial))
    print(table.render())
    if not top:
        print("no feasible designs found — try --tiled for large meshes")
        return 1
    return 0


def _cmd_dse(args: argparse.Namespace) -> int:
    with _traced_run(getattr(args, "trace", None)):
        return _dse_body(args)


def _dse_body(args: argparse.Namespace) -> int:
    from repro.dse import BANDWIDTH, POWER, RUNTIME, parse_objectives
    from repro.util.tables import TextTable

    if args.resume and not args.study:
        raise ReproError("--resume needs --study PATH to know which journal to replay")
    if args.validate_mix and not args.workloads:
        raise ReproError("--validate-mix needs --workloads MIX to know what to run")
    objectives = parse_objectives(args.objectives)
    # the report table always shows runtime/bandwidth/power: score them too
    extra = tuple(
        o
        for o in (RUNTIME, BANDWIDTH, POWER)
        if o.name not in {x.name for x in objectives}
    )
    app, device, workload, study = _explore_study(
        args, objectives=objectives + extra, tiled=args.tiled
    )
    mix = study.evaluator.mix
    subject = (
        f"mix {mix.describe()}" if mix is not None
        else f"{app.name}, {workload.niter} iters"
    )
    table = TextTable(
        ["rank", "memory", "V", "p", "clock MHz", "tile", "runtime (s)", "GB/s", "W"],
        title=(
            f"{subject} on {device.name}: {args.strategy} search, "
            f"primary objective '{objectives[0].name}'"
        ),
    )
    top = study.top(args.top)
    for rank, trial in enumerate(top, 1):
        table.add_row([rank, trial.result.design.memory] + _design_cells(trial))
    print(table.render())
    front = study.pareto_front(objectives)
    evaluator = study.evaluator
    print(
        f"\ntrials: {len(study.trials)} total, {study.evaluated} evaluated this run, "
        f"{study.replayed} replayed from journal, {evaluator.cache_hits} cache hits"
    )
    names = "/".join(o.name for o in objectives)
    print(f"pareto front ({names}): {len(front)} non-dominated designs")
    for member in front:
        t = member.payload
        d = t.result.design
        values = ", ".join(f"{o.name}={member.values[o.name]:.4g}" for o in objectives)
        print(f"  {d.memory} V={d.V} p={d.p} -> {values}")
    if study.path is not None:
        print(f"journal: {study.path}")
    if not top:
        print("no feasible designs found — try --tiled for large meshes")
        return 1
    if mix is not None and getattr(args, "validate_mix", False):
        best = study.best()
        run = study.evaluator.validate_mix(
            best.config,
            engine=getattr(args, "engine", "compiled"),
            max_workers=getattr(args, "max_workers", None),
        )
        print(
            f"mix validation: {run.meshes} meshes bit-identical to the golden "
            f"interpreter in {run.dispatches} chunked stacked dispatches"
        )
    return 0


def _cmd_mix(args: argparse.Namespace) -> int:
    from repro.dataflow.scheduler import MixScheduler
    from repro.util.tables import TextTable
    from repro.workload import WorkloadMix

    mix = WorkloadMix.parse(args.workloads)
    limit = args.stacked_bytes_limit
    if limit is None and args.calibrate:
        from repro.parallel.calibrate import calibrated_bytes_limit

        limit = calibrated_bytes_limit()
        print(f"calibrated stacking budget: {limit} bytes")
    from repro.resilience import FaultPlan

    fault_plan = None
    if getattr(args, "fault_plan", None):
        fault_plan = FaultPlan.parse(args.fault_plan)
    else:
        # a malformed REPRO_FAULT_PLAN is a usage error, not a group
        # failure to be isolated: surface it before running anything
        fault_plan = FaultPlan.from_env()
    scheduler = MixScheduler(
        engine=args.engine,
        stacked_bytes_limit=limit,
        seed=args.seed,
        max_workers=args.max_workers,
        strict=args.strict,
        fault_plan=fault_plan,
    )
    with _traced_run(getattr(args, "trace", None)):
        run = scheduler.run(mix, validate=args.validate)
    table = TextTable(
        ["group", "meshes", "niter", "dispatches", "chunks",
         "p50 ms", "p95 ms", "p99 ms"],
        title=f"mix {mix.describe()} ({args.engine} engine)",
    )
    for group in run.groups:
        chunk_text = ",".join(str(c) for c in group.chunks) or "-"
        lat = group.latency_percentiles()
        table.add_row(
            [group.spec.describe(), group.meshes, group.spec.niter,
             group.dispatches, chunk_text,
             _ms(lat["p50"]), _ms(lat["p95"]), _ms(lat["p99"])]
        )
    for error in run.errors:
        table.add_row(
            [f"{error.spec.describe()} FAILED", error.spec.batch,
             error.spec.niter, "-", "-", "-", "-", "-"]
        )
    table.add_row(["total", run.meshes, "", run.dispatches, "", "", "", ""])
    print(table.render())
    retries = sum(g.retries for g in run.groups)
    if retries:
        print(f"recovered: {retries} chunk retries across the mix")
    for error in run.errors:
        print(f"group failed (isolated): {error.describe()}")
    if run.validated and run.ok:
        print("validated: every mesh bit-identical to the golden interpreter")
    elif run.validated and run.groups:
        print(
            "validated: every completed group bit-identical to the golden "
            "interpreter (failed groups excluded)"
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.parallel.shm import live_segments
    from repro.resilience import FaultPlan, RetryPolicy
    from repro.serve import Server, ServerConfig, run_closed_loop
    from repro.util.tables import TextTable
    from repro.workload import WorkloadMix

    mix = WorkloadMix.parse(args.workloads)
    if getattr(args, "fault_plan", None):
        fault_plan = FaultPlan.parse(args.fault_plan)
    else:
        fault_plan = FaultPlan.from_env()
    config = ServerConfig(
        engine=args.engine,
        max_workers=args.max_workers,
        queue_depth=args.queue_depth,
        admission=args.admission,
        batch_window=args.batch_window,
        failure_threshold=args.failure_threshold,
        reset_timeout=args.reset_timeout,
        validate=args.validate,
        seed=args.seed,
        retry_policy=RetryPolicy.disabled() if args.fail_fast else None,
        fault_plan=fault_plan,
    )

    async def _bench():
        async with Server(config) as server:
            report = await run_closed_loop(
                server,
                mix.specs,
                clients=args.clients,
                requests=args.requests,
                tenants=args.tenants,
                deadline=args.deadline,
            )
            return report, server.health()

    with _traced_run(getattr(args, "trace", None)):
        report, health = asyncio.run(_bench())
    table = TextTable(
        ["spec", "ok", "rejected", "shed", "p50 ms", "p95 ms", "p99 ms"],
        title=(
            f"serve bench: {args.clients} clients x {args.requests} requests "
            f"({args.engine} engine, admission={args.admission})"
        ),
    )
    for spec_text, entry in report["per_spec"].items():
        lat = entry["latency"]
        table.add_row(
            [spec_text, entry["ok"], entry["rejected"], entry["shed"],
             _ms(lat["p50"]), _ms(lat["p95"]), _ms(lat["p99"])]
        )
    lat = report["latency"]
    table.add_row(
        ["total", report["ok"], report["rejected"], report["shed"],
         _ms(lat["p50"]), _ms(lat["p95"]), _ms(lat["p99"])]
    )
    print(table.render())
    breaker = health["breaker"]
    jobs = health["jobs"]
    print(
        f"health: state={health['state']}, breaker={breaker['state']} "
        f"({breaker['trips']} trips), degraded dispatches: "
        f"{jobs['degraded']:g}"
    )
    print(
        f"jobs: admitted {jobs['admitted']:g}, completed {jobs['completed']:g}, "
        f"rejected {jobs['rejected']:g}, shed {jobs['shed']:g}, "
        f"cancelled {jobs['cancelled']:g}, failed {jobs['failed']:g}"
    )
    if config.validate and report["ok"]:
        print(
            "validated: every served mesh bit-identical to the golden "
            "interpreter"
        )
    leaked = live_segments()
    if leaked:
        print(f"error: {len(leaked)} shared-memory segments leaked: {leaked}")
        return 1
    print("shared-memory segments: all reclaimed")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro import observability
    from repro.dataflow.scheduler import MixScheduler
    from repro.workload import WorkloadMix

    mix = WorkloadMix.parse(args.workloads)
    observability.enable(trace_path=getattr(args, "trace", None))
    try:
        if getattr(args, "serve", False):
            import asyncio

            from repro.serve import Server, ServerConfig, run_closed_loop

            async def _serve_mix():
                config = ServerConfig(
                    engine=args.engine,
                    max_workers=args.max_workers,
                    seed=args.seed,
                )
                async with Server(config) as server:
                    await run_closed_loop(
                        server, mix.specs, clients=2, requests=2
                    )

            asyncio.run(_serve_mix())
        else:
            scheduler = MixScheduler(
                engine=args.engine,
                seed=args.seed,
                max_workers=args.max_workers,
            )
            scheduler.run(mix)
    finally:
        observability.disable()
    print(observability.render_metrics(), end="")
    print()
    print(observability.render_trace(), end="")
    if getattr(args, "trace", None):
        print(f"event log: {args.trace}")
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    import os

    from repro.parallel.calibrate import (
        ENV_OVERRIDE,
        cache_path,
        cached_entry,
        calibrated_bytes_limit,
    )
    from repro.util.tables import TextTable

    if os.environ.get(ENV_OVERRIDE):
        print(
            f"stacking budget forced to {calibrated_bytes_limit()} bytes "
            f"by {ENV_OVERRIDE}; no probe run"
        )
        return 0
    resolved = calibrated_bytes_limit(force=args.force)
    entry = cached_entry()
    if entry and entry.get("timings"):
        table = TextTable(
            ["budget (bytes)", "best wall clock (ms)"],
            title="stacked-dispatch budget probe (Jacobi-3D ladder)",
        )
        for budget, seconds in entry["timings"].items():
            marker = " *" if int(budget) == resolved else ""
            table.add_row([f"{budget}{marker}", f"{seconds * 1e3:.3f}"])
        print(table.render())
    print(f"calibrated stacking budget: {resolved} bytes")
    print(f"cache: {cache_path()}")
    return 0


def _cmd_codegen(args: argparse.Namespace) -> int:
    from repro.hls.project import HLSProject

    app = app_by_name(args.app)
    mesh = _parse_mesh(args.mesh) if args.mesh else app.program.mesh.shape
    project = HLSProject(app.program_on(mesh), app.design())
    written = project.write_to(args.out)
    for path in written:
        print(f"wrote {path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FPGA stencil-accelerator workflow (IPDPS 2021 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("apps", help="list applications").set_defaults(fn=_cmd_apps)

    p_exp = sub.add_parser("experiments", help="run paper experiments")
    p_exp.add_argument("--id", help="one experiment id (e.g. fig3a)")
    p_exp.set_defaults(fn=_cmd_experiments)

    p_rep = sub.add_parser("report", help="write EXPERIMENTS.md")
    p_rep.add_argument("--output", default="EXPERIMENTS.md")
    p_rep.set_defaults(fn=_cmd_report)

    p_explore = sub.add_parser("explore", help="design-space exploration")
    p_explore.add_argument("app", help="app name (poisson2d | jacobi3d | rtm)")
    p_explore.add_argument("--mesh", help="mesh shape, e.g. 400x400")
    p_explore.add_argument("--niter", type=int, default=1000)
    p_explore.add_argument("--batch", type=int, default=1)
    p_explore.add_argument("--tiled", action="store_true")
    p_explore.add_argument("--device", default="U280")
    p_explore.add_argument("--top", type=int, default=5)
    p_explore.set_defaults(fn=_cmd_explore)

    p_dse = sub.add_parser("dse", help="design-space exploration study")
    p_dse.add_argument(
        "app", nargs="?",
        help="app name (poisson2d | jacobi3d | rtm); optional with --workloads",
    )
    p_dse.add_argument("--mesh", help="mesh shape, e.g. 400x400")
    # None defaults (filled to 1000/1 in _explore_study) let --workloads
    # reject explicitly passed single-workload flags instead of ignoring them
    p_dse.add_argument("--niter", type=int, default=None)
    p_dse.add_argument("--batch", type=int, default=None)
    p_dse.add_argument(
        "--batches",
        help="comma-separated batch sizes to add as a search axis "
        "(e.g. 1,4,16); the design must serve the whole mix. With "
        "--workloads each value is a *multiplier* on every spec's own "
        "batch count rather than a replacement",
    )
    p_dse.add_argument(
        "--workloads",
        help="workload mix to score every configuration against: "
        "comma-separated app:MESH:NITER[xBATCH][@WEIGHT] specs "
        "(e.g. jacobi3d:96x96x96:100x4,rtm:64x64x64:36x2)",
    )
    p_dse.add_argument(
        "--validate-mix",
        action="store_true",
        help="after the study, run the best design's whole mix through the "
        "chunked stacked engine and assert bit-identity to the interpreter",
    )
    p_dse.add_argument("--tiled", action="store_true")
    p_dse.add_argument("--device", default="U280")
    p_dse.add_argument(
        "--strategy",
        default="annealing",
        help="search strategy (exhaustive | random | annealing | greedy)",
    )
    p_dse.add_argument(
        "--trials", type=int, default=None, help="budget of new evaluations"
    )
    p_dse.add_argument(
        "--objectives",
        default="runtime,energy",
        help="comma-separated objectives; first is primary",
    )
    p_dse.add_argument("--study", help="JSONL journal path (enables --resume)")
    p_dse.add_argument(
        "--resume",
        action="store_true",
        help="replay the journal at --study instead of restarting it",
    )
    p_dse.add_argument("--top", type=int, default=5)
    p_dse.add_argument("--seed", type=int, default=0)
    p_dse.add_argument(
        "--workers", type=int, default=None, help="evaluation worker threads"
    )
    p_dse.add_argument(
        "--engine",
        default="compiled",
        choices=("compiled", "parallel", "native"),
        help="execution engine for --validate-mix (parallel fans chunks "
        "out over a worker pool, native runs generated steady-loop code; "
        "results stay bit-identical)",
    )
    p_dse.add_argument(
        "--max-workers", type=int, default=None,
        help="worker-pool width for --engine parallel (default: one per core)",
    )
    p_dse.add_argument(
        "--trace",
        help="record the study's structured events and span tree to this "
        "JSONL file (enables instrumentation for the run)",
    )
    p_dse.set_defaults(fn=_cmd_dse)

    p_mix = sub.add_parser(
        "mix", help="run a workload mix through the chunked stacked engine"
    )
    p_mix.add_argument(
        "workloads",
        help="comma-separated app:MESH:NITER[xBATCH][@WEIGHT] specs "
        "(e.g. jacobi3d:24x24x16:50x8,rtm:16x16x12:20x4)",
    )
    p_mix.add_argument(
        "--engine",
        default="compiled",
        choices=("compiled", "parallel", "native", "interpreter"),
        help="execution engine (parallel overlaps chunks of all groups "
        "on a worker pool, native runs generated steady-loop code)",
    )
    p_mix.add_argument(
        "--max-workers", type=int, default=None,
        help="worker-pool width for --engine parallel (default: one per core)",
    )
    p_mix.add_argument(
        "--stacked-bytes-limit", type=float, default=None,
        help="per-chunk working-set budget in bytes (default: module default)",
    )
    p_mix.add_argument(
        "--calibrate", action="store_true",
        help="use the calibrated per-host stacking budget (see `repro calibrate`)",
    )
    p_mix.add_argument(
        "--validate", action="store_true",
        help="re-derive every mesh on the golden interpreter and compare bitwise",
    )
    p_mix.add_argument(
        "--strict", action="store_true",
        help="abort (non-zero exit) on the first failing group; the default "
        "isolates failing groups, reports them as error rows and exits 0",
    )
    p_mix.add_argument(
        "--fault-plan", default=None,
        help="deterministic fault plan armed into parallel dispatches, e.g. "
        "'crash@0,slow@1:0.2' (see docs/resilience.md; REPRO_FAULT_PLAN "
        "works too)",
    )
    p_mix.add_argument("--seed", type=int, default=0)
    p_mix.add_argument(
        "--trace",
        help="record the run's structured events and span tree to this "
        "JSONL file (enables instrumentation for the run)",
    )
    p_mix.set_defaults(fn=_cmd_mix)

    p_srv = sub.add_parser(
        "serve",
        help="run the async serving layer under a closed-loop bench load",
    )
    p_srv.add_argument(
        "workloads",
        help="comma-separated app:MESH:NITER[xBATCH] specs the load "
        "generator cycles through (e.g. jacobi3d:24x24x16:50x2,"
        "poisson2d:48x32:100)",
    )
    p_srv.add_argument(
        "--bench", action="store_true",
        help="closed-loop bench mode (the default and only mode: serving "
        "without a load source has nothing to do in a CLI run)",
    )
    p_srv.add_argument(
        "--clients", type=int, default=4,
        help="concurrent closed-loop client coroutines (default 4)",
    )
    p_srv.add_argument(
        "--requests", type=int, default=8,
        help="jobs each client submits back to back (default 8)",
    )
    p_srv.add_argument(
        "--tenants", type=int, default=1,
        help="tenants the clients are spread across (default 1)",
    )
    p_srv.add_argument(
        "--engine",
        default="parallel",
        choices=("compiled", "parallel", "native", "interpreter"),
        help="engine while the breaker is closed (open degrades to compiled)",
    )
    p_srv.add_argument(
        "--max-workers", type=int, default=None,
        help="worker-pool width for --engine parallel (default: one per core)",
    )
    p_srv.add_argument(
        "--queue-depth", type=int, default=64,
        help="bounded admission queue capacity per tenant (default 64)",
    )
    p_srv.add_argument(
        "--admission", default="reject", choices=("reject", "block"),
        help="full-queue behaviour: reject raises QueueFullError, block "
        "waits for space (default reject)",
    )
    p_srv.add_argument(
        "--deadline", type=float, default=None,
        help="per-job deadline in seconds (queued work past it is shed, "
        "in-flight work is cancelled cooperatively)",
    )
    p_srv.add_argument(
        "--batch-window", type=float, default=0.005,
        help="seconds the batching loop waits to coalesce compatible jobs "
        "into one stacked dispatch (default 0.005)",
    )
    p_srv.add_argument(
        "--failure-threshold", type=int, default=3,
        help="consecutive parallel failures that trip the breaker (default 3)",
    )
    p_srv.add_argument(
        "--reset-timeout", type=float, default=1.0,
        help="seconds an open breaker waits before half-opening (default 1)",
    )
    p_srv.add_argument(
        "--fail-fast", action="store_true",
        help="disable the chunk retry ladder so parallel failures surface "
        "to the breaker instead of being recovered per chunk",
    )
    p_srv.add_argument(
        "--validate", action="store_true",
        help="re-derive every served mesh on the golden interpreter and "
        "compare bitwise",
    )
    p_srv.add_argument(
        "--fault-plan", default=None,
        help="deterministic fault plan armed into parallel dispatches "
        "(REPRO_FAULT_PLAN works too; see docs/resilience.md)",
    )
    p_srv.add_argument("--seed", type=int, default=0)
    p_srv.add_argument(
        "--trace",
        help="record the run's structured events (admissions, sheds, "
        "breaker transitions, drain) to this JSONL file",
    )
    p_srv.set_defaults(fn=_cmd_serve)

    p_met = sub.add_parser(
        "metrics",
        help="run a mix fully instrumented and dump metrics + trace table",
    )
    p_met.add_argument(
        "workloads",
        help="comma-separated app:MESH:NITER[xBATCH][@WEIGHT] specs "
        "(e.g. jacobi3d:24x24x16:50x8,rtm:16x16x12:20x4)",
    )
    p_met.add_argument(
        "--engine",
        default="compiled",
        choices=("compiled", "parallel", "native", "interpreter"),
        help="execution engine to instrument",
    )
    p_met.add_argument(
        "--max-workers", type=int, default=None,
        help="worker-pool width for --engine parallel (default: one per core)",
    )
    p_met.add_argument("--seed", type=int, default=0)
    p_met.add_argument(
        "--serve", action="store_true",
        help="route the mix through the serving layer (repro.serve) so the "
        "dump includes serve counters, queue-depth gauge and the "
        "end-to-end latency histogram",
    )
    p_met.add_argument(
        "--trace",
        help="also write the structured events and span tree to this JSONL file",
    )
    p_met.set_defaults(fn=_cmd_metrics)

    p_cal = sub.add_parser(
        "calibrate", help="measure this host's stacked-dispatch byte budget"
    )
    p_cal.add_argument(
        "--force", action="store_true",
        help="re-probe even when a cached calibration exists",
    )
    p_cal.set_defaults(fn=_cmd_calibrate)

    p_gen = sub.add_parser("codegen", help="emit the Vivado HLS project")
    p_gen.add_argument("app")
    p_gen.add_argument("--out", default="hls_out")
    p_gen.add_argument("--mesh")
    p_gen.set_defaults(fn=_cmd_codegen)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:  # e.g. `repro apps | head`
        sys.stderr.close()  # suppress the shutdown-flush warning too
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
