"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``apps``
    List the three paper applications and their validated design points.
``experiments [--id ID]``
    Run one or all registered paper experiments and print the tables.
``report [--output PATH]``
    Regenerate EXPERIMENTS.md.
``explore APP --mesh MxN[xL] [--niter N] [--tiled]``
    Rank feasible design points for an application workload.
``codegen APP [--out DIR] [--mesh MxN[xL]]``
    Emit the Vivado HLS project for an application's paper design.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.apps.registry import all_apps, app_by_name
from repro.util.errors import ReproError


def _parse_mesh(text: str) -> tuple[int, ...]:
    try:
        shape = tuple(int(part) for part in text.lower().split("x"))
    except ValueError:
        raise ReproError(f"cannot parse mesh {text!r}; expected e.g. 400x400") from None
    if len(shape) not in (2, 3):
        raise ReproError(f"mesh must be 2D or 3D, got {text!r}")
    return shape


def _cmd_apps(_: argparse.Namespace) -> int:
    from repro.model.resources import gdsp_program
    from repro.util.tables import TextTable

    table = TextTable(
        ["name", "mesh", "V", "p", "clock MHz", "memory", "Gdsp", "II"],
        title="Registered applications (paper Section V)",
    )
    for key, app in all_apps().items():
        table.add_row(
            [
                key,
                str(app.program.mesh),
                app.V,
                app.p,
                app.paper_clock_mhz,
                app.memory,
                gdsp_program(app.program),
                app.initiation_interval,
            ]
        )
    print(table.render())
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.harness.experiments import all_experiments, experiment_by_id

    experiments = (
        [experiment_by_id(args.id)] if args.id else list(all_experiments())
    )
    for exp in experiments:
        print(exp.run().render())
        print()
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.harness.report import write_report

    path = write_report(args.output)
    print(f"wrote {path}")
    return 0


def _cmd_explore(args: argparse.Namespace) -> int:
    from repro.arch.device import device_by_name
    from repro.model.design import Workload, explore_designs
    from repro.util.tables import TextTable
    from repro.util.units import GB

    app = app_by_name(args.app)
    mesh = _parse_mesh(args.mesh) if args.mesh else app.program.mesh.shape
    program = app.program_on(mesh)
    device = device_by_name(args.device)
    workload = Workload(program.mesh, args.niter, args.batch)
    ranked = explore_designs(program, device, workload, tiled=args.tiled, top_k=args.top)
    table = TextTable(
        ["V", "p", "clock MHz", "tile", "runtime (s)", "GB/s", "W"],
        title=f"{app.name} on {device.name}: {args.niter} iters, mesh {args.mesh or mesh}",
    )
    for design, metrics in ranked:
        table.add_row(
            [
                design.V,
                design.p,
                f"{design.clock_mhz:.0f}",
                design.tile.tile if design.tile else "-",
                metrics.seconds,
                metrics.logical_bandwidth / GB,
                metrics.power_w,
            ]
        )
    print(table.render())
    if not ranked:
        print("no feasible designs found — try --tiled for large meshes")
        return 1
    return 0


def _cmd_codegen(args: argparse.Namespace) -> int:
    from repro.hls.project import HLSProject

    app = app_by_name(args.app)
    mesh = _parse_mesh(args.mesh) if args.mesh else app.program.mesh.shape
    project = HLSProject(app.program_on(mesh), app.design())
    written = project.write_to(args.out)
    for path in written:
        print(f"wrote {path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FPGA stencil-accelerator workflow (IPDPS 2021 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("apps", help="list applications").set_defaults(fn=_cmd_apps)

    p_exp = sub.add_parser("experiments", help="run paper experiments")
    p_exp.add_argument("--id", help="one experiment id (e.g. fig3a)")
    p_exp.set_defaults(fn=_cmd_experiments)

    p_rep = sub.add_parser("report", help="write EXPERIMENTS.md")
    p_rep.add_argument("--output", default="EXPERIMENTS.md")
    p_rep.set_defaults(fn=_cmd_report)

    p_explore = sub.add_parser("explore", help="design-space exploration")
    p_explore.add_argument("app", help="app name (poisson2d | jacobi3d | rtm)")
    p_explore.add_argument("--mesh", help="mesh shape, e.g. 400x400")
    p_explore.add_argument("--niter", type=int, default=1000)
    p_explore.add_argument("--batch", type=int, default=1)
    p_explore.add_argument("--tiled", action="store_true")
    p_explore.add_argument("--device", default="U280")
    p_explore.add_argument("--top", type=int, default=5)
    p_explore.set_defaults(fn=_cmd_explore)

    p_gen = sub.add_parser("codegen", help="emit the Vivado HLS project")
    p_gen.add_argument("app")
    p_gen.add_argument("--out", default="hls_out")
    p_gen.add_argument("--mesh")
    p_gen.set_defaults(fn=_cmd_codegen)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
