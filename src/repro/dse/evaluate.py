"""Memoizing, parallel trial evaluation against the analytic model.

The :class:`Evaluator` turns a declarative configuration (see
:mod:`repro.dse.space`) into a concrete :class:`DesignPoint` — estimating
the achievable clock from the clock model, deriving the spatial-blocking
tile for tiled configurations and applying the feasibility checks of
eqs. (4)/(6)/(7) — then runs the runtime/energy predictor and scores the
result against the study's objectives.

Results are memoized by canonical configuration key, so a configuration is
never evaluated twice within a study (or across a resumed one: the study
seeds the cache from its journal).  Batch evaluation fans out over
``concurrent.futures`` worker threads.

With ``workloads=`` (a :class:`~repro.workload.WorkloadMix` or a list of
specs) a single configuration is scored against a whole workload
population: the design must be feasible for every spec, predicted mix
runtime is the weighted sum over specs, and
:meth:`Evaluator.validate_mix` realizes the winning configuration
functionally through the chunked stacked engine, bit-identical to the
golden interpreter.

The per-trial model path leans on program-level memoization:
``program.bytes_per_cell_pass()`` and ``G_dsp`` are cached on the program
instance, so constructing a predictor per trial no longer re-walks every
expression tree; functional validation runs launched from search results go
through the plan-compiled engine (:mod:`repro.stencil.compiled`) and reuse
its shared plan cache across trials.
"""

from __future__ import annotations

import math
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field as dc_field
from typing import Any, Mapping, Sequence

from repro import observability as obs
from repro.arch.clocking import DEFAULT_CLOCK_MODEL, ClockModel
from repro.arch.device import FPGADevice
from repro.dse.objectives import (
    Constraint,
    EvalContext,
    Objective,
    RUNTIME,
)
from repro.dse.space import Config, ConfigKey, config_key
from repro.model.bandwidth import feasible_vectorization
from repro.model.design import DesignPoint, DesignSpace, Workload, tile_for_unroll
from repro.model.multifpga import MultiFPGAConfig, spatial_scaling_seconds
from repro.model.resources import module_mem_bytes
from repro.model.runtime import RuntimePredictor
from repro.model.tiling import TileDesign
from repro.stencil.program import StencilProgram
from repro.util.errors import InfeasibleDesignError, ValidationError
from repro.util.units import MHZ
from repro.workload import MixLike, WorkloadMix, WorkloadSpec, as_mix


@dataclass(frozen=True)
class _MixBinding:
    """One mix entry resolved against the model: program, space, traffic."""

    spec: WorkloadSpec
    weight: float
    program: StencilProgram
    space: DesignSpace
    traffic: float | None


@dataclass(frozen=True)
class TrialResult:
    """The outcome of evaluating one configuration."""

    config: Config
    feasible: bool
    design: DesignPoint | None
    values: dict[str, float] = dc_field(default_factory=dict)
    #: primary objective, direction-folded; ``inf`` for infeasible trials
    score: float = math.inf
    #: why the trial is infeasible (empty for feasible trials)
    reason: str = ""
    #: True when the trial is memory-bound under the AXI/burst model
    memory_bound: bool = False

    def value(self, name: str) -> float:
        """One raw objective value (``inf`` when infeasible)."""
        return self.values.get(name, math.inf)


class Evaluator:
    """Binds configurations to the model and memoizes their evaluation."""

    def __init__(
        self,
        program: StencilProgram,
        device: FPGADevice,
        workload: Workload | None = None,
        objectives: Sequence[Objective] = (RUNTIME,),
        constraints: Sequence[Constraint] = (),
        clock_model: ClockModel = DEFAULT_CLOCK_MODEL,
        logical_bytes_per_cell_iter: float | None = None,
        max_workers: int | None = None,
        workloads: MixLike | None = None,
    ):
        if not objectives:
            raise ValidationError("an Evaluator needs at least one objective")
        if max_workers is not None and max_workers < 0:
            raise ValidationError(f"max_workers must be >= 0, got {max_workers}")
        if workload is None and workloads is None:
            raise ValidationError(
                "an Evaluator needs a workload (or a workload mix via workloads=)"
            )
        if workload is not None and workloads is not None:
            raise ValidationError(
                "pass either workload= (single) or workloads= (mix), not both"
            )
        self.program = program
        self.device = device
        self.objectives = tuple(objectives)
        self.constraints = tuple(constraints)
        self.logical_bytes_per_cell_iter = logical_bytes_per_cell_iter
        self.max_workers = max_workers
        #: the workload mix this evaluator scores configurations against
        #: (None when scoring a single workload the pre-mix way)
        self.mix: WorkloadMix | None = None
        if workloads is not None:
            self.mix = as_mix(workloads)
            self._entries = self._bind_mix(self.mix, clock_model)
            # the heaviest member stands for the mix wherever one value
            # must (clock estimation, line-buffer sizing, unroll caps) —
            # the same selection the CLI uses to pick its program
            rep_spec = self.mix.heaviest()
            rep = next(b for b in self._entries if b.spec == rep_spec)
            self.workload = rep.spec
            self._rep_program = rep.program
            self._space = rep.space
        else:
            self.workload = workload
            self._entries = ()
            self._rep_program = program
            self._space = DesignSpace(program, device, clock_model)
        self._cache: dict[ConfigKey, TrialResult] = {}
        self._lock = threading.Lock()
        #: configurations actually run through the model
        self.evaluations = 0
        #: requests answered from the memo table
        self.cache_hits = 0

    def _bind_mix(
        self, mix: WorkloadMix, clock_model: ClockModel
    ) -> tuple[_MixBinding, ...]:
        """Resolve every distinct mix spec against the model, once.

        Specs carrying an app name resolve their program (and logical
        traffic profile) through the application registry; app-less specs
        rebind this evaluator's base program to their mesh. Duplicate specs
        fold into one binding with summed weight, so scoring a mix costs
        one model walk per *distinct* spec.
        """
        from repro.apps.registry import app_by_name  # lazy: apps import dse consumers

        bindings = []
        for spec, weight in mix.group_by_spec().items():
            if spec.app is not None:
                prog = app_by_name(spec.app).program_on(spec.mesh.shape)
            else:
                prog = self.program.with_mesh(spec.mesh)
            # one traffic convention for every entry point: the explicit
            # parameter, else the predictor's program-derived default —
            # the same workload spelled as workload= or workloads= must
            # score identically (per-app GPU traffic profiles are an
            # explicit opt-in, as in the harness)
            bindings.append(
                _MixBinding(
                    spec, weight, prog, DesignSpace(prog, self.device, clock_model),
                    self.logical_bytes_per_cell_iter,
                )
            )
        return tuple(bindings)

    @property
    def primary(self) -> Objective:
        """The first (ranking) objective."""
        return self.objectives[0]

    # -- model-derived bounds (cheap: no trial evaluation) ------------------------
    def unroll_cap(self, V: int, tiled: bool = False) -> int:
        """Largest unroll that can possibly pass feasibility at width ``V``.

        Uses the *hard* DSP inventory (what :meth:`DesignSpace.check`
        enforces), not the 90% planning budget of eq. (6) — the paper's
        synthesized Jacobi landed at p=29 against a planning bound of 28,
        and the optimum regularly sits in that gap.  Baseline designs are
        additionally line-buffer bound (eq. 7); tiled designs trade buffer
        for redundant compute, leaving the DSP bound only.

        Mix-scored evaluators take the **minimum over every spec** of the
        mix: one design must be buildable for all of them, so e.g. an RTM
        member's huge ``G_dsp`` caps the whole mix's unroll axis — which is
        exactly what steers warm-started searches into the jointly feasible
        region.
        """
        caps = []
        for program, space, mesh in self._cap_bindings():
            dsp_cap = max(1, self.device.dsp_blocks // (V * space.gdsp))
            if tiled:
                caps.append(dsp_cap)
                continue
            module_bytes = module_mem_bytes(program, mesh.shape)
            caps.append(
                min(
                    dsp_cap,
                    max(1, self.device.usable_on_chip_bytes() // module_bytes),
                )
            )
        return min(caps)

    def vector_cap(self, memory: str, p: int = 1) -> int:
        """Widest vectorization that can possibly be feasible on ``memory``.

        The minimum of the bandwidth bound (eq. 4, at the device's default
        clock) and the hard DSP bound at the requested unroll depth — over
        every spec of a mix, as for :meth:`unroll_cap`.
        """
        caps = []
        for program, space, _ in self._cap_bindings():
            bw = feasible_vectorization(
                program, self.device, memory, self.device.default_clock_mhz * MHZ
            )
            dsp = max(1, self.device.dsp_blocks // (p * space.gdsp))
            caps.append(max(1, min(bw, dsp)))
        return min(caps)

    def _cap_bindings(self):
        """(program, design space, mesh) triples the model bounds range over."""
        if self.mix is None:
            return ((self._rep_program, self._space, self.workload.mesh),)
        return tuple((b.program, b.space, b.spec.mesh) for b in self._entries)

    # -- config -> workload/design -------------------------------------------------
    def workload_for(self, config: Mapping[str, Any]) -> Workload:
        """The workload a configuration denotes.

        A ``batch`` axis (see :func:`repro.dse.space.model_space`) overrides
        the study workload's batch size: the trial scores one design serving
        that many same-shaped meshes streamed back to back (eq. (15)).
        Mix-scored evaluators have no single such workload — their trials
        aggregate over every spec — so this refuses rather than silently
        answering for the representative member alone.
        """
        if self.mix is not None:
            raise ValidationError(
                "this evaluator scores a workload mix; no single workload "
                "denotes a trial — iterate mix.specs (or use validate_mix())"
            )
        batch = int(config.get("batch", self.workload.batch))
        if batch == self.workload.batch:
            return self.workload
        return Workload(self.workload.mesh, self.workload.niter, batch)

    def batch_runner(
        self,
        config: Mapping[str, Any],
        engine: str = "compiled",
        plan_cache=None,
    ):
        """A :class:`~repro.dataflow.batcher.BatchRunner` realizing a trial.

        Functional companion to the ``batch`` axis: the returned runner
        executes batches through the stacked tape (one compiled replay for
        all ``B`` meshes) on the design the configuration denotes, so
        search results can be validated — bit-identically against the
        golden interpreter — on the very batched workloads they were scored
        for. Tiled designs are rejected, mirroring
        :meth:`~repro.dataflow.accelerator.FPGAAccelerator.run_batch` (and
        the evaluator scores tiled batch>1 configurations as infeasible).
        """
        from repro.dataflow.batcher import BatchRunner

        if self.mix is not None:
            raise ValidationError(
                "this evaluator scores a workload mix; a BatchRunner would "
                "exercise only one member — use validate_mix()/mix_scheduler()"
            )
        design = self.design_for(config)
        if design.tile is not None:
            raise ValidationError(
                "batched execution is not supported on tiled designs"
            )
        return BatchRunner(self.program, design, engine, plan_cache)

    def design_for(self, config: Mapping[str, Any]) -> DesignPoint:
        """The concrete design point a configuration denotes.

        Raises :class:`InfeasibleDesignError` when the configuration cannot
        produce a buildable design (e.g. a tile fully consumed by its halo).
        """
        memory = config.get("memory", self.device.memory_targets[0])
        V = int(config["V"])
        p = int(config["p"])
        tile = self._derive_tile(p) if config.get("tiled", False) else None
        design = DesignPoint(V, p, self.device.default_clock_mhz, memory, tile)
        return self._space._with_estimated_clock(design, self.workload)

    def _derive_tile(self, p: int) -> TileDesign:
        """The largest buffer-feasible tile for unroll ``p`` (Section IV-A)."""
        tile = tile_for_unroll(self._rep_program, self.device, self.workload.mesh, p)
        if min(tile.tile) <= p * self._rep_program.order:
            raise InfeasibleDesignError(
                f"tile {tile.tile} is consumed by the "
                f"p*D={p * self._rep_program.order} halo"
            )
        return tile

    # -- evaluation ---------------------------------------------------------------
    def evaluate(self, config: Mapping[str, Any]) -> TrialResult:
        """Evaluate one configuration (memoized)."""
        key = config_key(config)
        with self._lock:
            cached = self._cache.get(key)
            if cached is not None:
                self.cache_hits += 1
                obs.inc("dse.eval_cache_hits")
                return cached
        with obs.span("dse.trial", config=str(dict(config))):
            result = self._evaluate_uncached(dict(config))
        if obs.is_enabled():
            obs.inc("dse.trials", feasible=result.feasible)
            obs.emit(
                "dse.trial",
                config=dict(config),
                feasible=result.feasible,
                score=result.score if math.isfinite(result.score) else None,
                reason=result.reason or None,
            )
        with self._lock:
            if key in self._cache:  # a racing worker got there first
                self.cache_hits += 1
                return self._cache[key]
            self._cache[key] = result
            self.evaluations += 1
        return result

    def evaluate_many(self, configs: Sequence[Mapping[str, Any]]) -> list[TrialResult]:
        """Evaluate a batch, optionally fanning out over worker threads.

        Duplicate configurations within the batch are evaluated once; the
        returned list is positionally aligned with ``configs``.  The default
        (``max_workers=None``) is serial: the analytic model is pure
        CPU-bound python, so threads only pay off when an objective or
        constraint does I/O — opt in by passing ``max_workers > 0``.
        """
        keys = [config_key(c) for c in configs]
        unique: dict[ConfigKey, Mapping[str, Any]] = {}
        for key, config in zip(keys, configs):
            unique.setdefault(key, config)
        todo = list(unique.values())
        if len(todo) <= 1 or not self.max_workers:
            for config in todo:
                self.evaluate(config)
        else:
            with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
                list(pool.map(self.evaluate, todo))
        with self._lock:
            return [self._cache[key] for key in keys]

    def seed(self, result: TrialResult) -> bool:
        """Install a persisted result into the memo table (study resume).

        Returns False (and changes nothing) when the configuration is
        already cached.
        """
        key = config_key(result.config)
        with self._lock:
            if key in self._cache:
                return False
            self._cache[key] = result
            return True

    def cached(self, config: Mapping[str, Any]) -> TrialResult | None:
        """The memoized result for a configuration, if any (no hit counted)."""
        with self._lock:
            return self._cache.get(config_key(config))

    def mix_scheduler(
        self,
        plan_cache=None,
        stacked_bytes_limit: float | None = None,
        seed: int = 0,
        fields_for=None,
        engine: str = "compiled",
        max_workers: int | None = None,
        strict: bool = True,
        retry_policy=None,
        fault_plan=None,
    ):
        """A :class:`~repro.dataflow.scheduler.MixScheduler` for this mix.

        Bound to the same per-spec programs the evaluator scores against,
        so functional validation runs exactly what the model priced —
        including app-less specs, whose programs resolve through this
        evaluator's bindings (their initial conditions are synthesized
        from the program contract unless ``fields_for`` supplies them).
        ``engine="parallel"`` fans the groups' chunks out over a worker
        pool of up to ``max_workers`` lanes; results stay bit-identical.
        ``strict=False`` isolates failing groups instead of raising, and
        ``retry_policy``/``fault_plan`` reach the parallel engine's
        resilience layer.
        """
        from repro.dataflow.scheduler import MixScheduler

        if self.mix is None:
            raise ValidationError(
                "this evaluator scores a single workload; use batch_runner()"
            )
        by_key = {b.spec.job_key: b.program for b in self._entries}

        def program_for(spec):
            prog = by_key.get(spec.job_key)  # job_key already excludes batch
            return prog if prog is not None else spec.program()

        return MixScheduler(
            engine=engine,
            plan_cache=plan_cache,
            stacked_bytes_limit=stacked_bytes_limit,
            fields_for=fields_for,
            program_for=program_for,
            seed=seed,
            max_workers=max_workers,
            strict=strict,
            retry_policy=retry_policy,
            fault_plan=fault_plan,
        )

    def validate_mix(
        self,
        config: Mapping[str, Any],
        plan_cache=None,
        stacked_bytes_limit: float | None = None,
        seed: int = 0,
        fields_for=None,
        engine: str = "compiled",
        max_workers: int | None = None,
        strict: bool = True,
        retry_policy=None,
        fault_plan=None,
    ):
        """Functionally validate a configuration against the whole mix.

        Executes every member of the mix (at the configuration's batch
        scaling) through the chunked stacked engine — serial by default,
        pool-fanned with ``engine="parallel"`` — and asserts bit-identity
        against per-mesh golden-interpreter replay; returns the
        :class:`~repro.dataflow.scheduler.MixRunResult` with its dispatch
        accounting. Tiled configurations are rejected, mirroring
        :meth:`batch_runner`. ``strict=False`` returns a result whose
        ``errors`` lists isolated group failures instead of raising on the
        first one (residuals are then reported for the groups that ran).
        """
        if self.mix is None:
            raise ValidationError(
                "this evaluator scores a single workload; use batch_runner()"
            )
        design = self.design_for(config)
        if design.tile is not None:
            raise ValidationError(
                "batched execution is not supported on tiled designs"
            )
        batch_factor = int(config.get("batch", 1))
        scheduler = self.mix_scheduler(
            plan_cache, stacked_bytes_limit, seed, fields_for,
            engine=engine, max_workers=max_workers,
            strict=strict, retry_policy=retry_policy, fault_plan=fault_plan,
        )
        with obs.span(
            "dse.validate_mix", batch_factor=batch_factor, engine=engine
        ):
            result = scheduler.run(self.mix.scaled(batch_factor), validate=True)
        if obs.is_enabled():
            # measured-vs-modeled residuals: what the chunked engine
            # actually took per group against what the analytic model
            # priced for the same workload on this design
            boards = int(config.get("boards", 1))
            for binding in self._entries:
                workload = binding.spec.with_batch(
                    binding.spec.batch * batch_factor
                )
                try:
                    _, modeled = self._score_workload(
                        binding.program, workload, design, boards,
                        binding.traffic,
                    )
                    group = result.group_for(binding.spec)
                except (InfeasibleDesignError, ValidationError):
                    continue
                measured = float(sum(group.chunk_seconds))
                obs.observe("dse.residual_seconds", abs(measured - modeled))
                obs.emit(
                    "dse.residual",
                    spec=binding.spec.describe(),
                    measured_seconds=measured,
                    modeled_seconds=modeled,
                    residual_seconds=measured - modeled,
                )
        return result

    # -- internals ----------------------------------------------------------------
    def _score_workload(
        self, program, workload, design, boards, traffic
    ) -> tuple:
        """Predict one workload on one design: ``(metrics, seconds)``.

        Shared by the single-workload and mix paths so the boards-axis
        model cannot diverge between them. For ``boards > 1`` the runtime
        comes from the multi-FPGA spatial-scaling model, floored by the
        memory model kept consistent across the boards axis: each board
        streams its slab through its own memory system, so the
        single-board memory floor shrinks with the count.
        """
        predictor = RuntimePredictor(
            program,
            self.device,
            design,
            logical_bytes_per_cell_iter=traffic,
        )
        metrics = predictor.predict(workload)
        seconds = metrics.seconds
        if boards > 1:
            scaled = spatial_scaling_seconds(
                program, design, workload, MultiFPGAConfig(boards)
            )
            floor = (
                predictor.memory_cycles(workload) / design.clock_hz / boards
            )
            seconds = max(scaled, floor)
        return metrics, seconds

    def _evaluate_uncached(self, config: Config) -> TrialResult:
        if self.mix is not None:
            return self._evaluate_mix(config)
        boards = int(config.get("boards", 1))
        try:
            workload = self.workload_for(config)
            if int(config.get("batch", 1)) > 1 and config.get("tiled", False):
                # the executable surface (FPGAAccelerator.run_batch /
                # BatchRunner) has no batched path for tiled designs; a
                # tiled batch>1 *axis* config must not win a front it
                # cannot run. A study-level batched workload (Workload
                # batch, no batch axis) keeps its pre-existing analytic
                # scoring on tiled designs.
                raise InfeasibleDesignError(
                    "batched execution is not supported on tiled designs"
                )
            design = self.design_for(config)
            self._space.check(design, workload)
            metrics, seconds = self._score_workload(
                self.program, workload, design, boards,
                self.logical_bytes_per_cell_iter,
            )
        except (InfeasibleDesignError, ValidationError) as exc:
            return TrialResult(config, False, None, reason=str(exc))
        ctx = EvalContext(
            self.program, self.device, workload, design, metrics, seconds, boards
        )
        for constraint in self.constraints:
            if not constraint.ok(ctx):
                return TrialResult(
                    config,
                    False,
                    design,
                    reason=f"violates constraint {constraint.name}",
                    memory_bound=metrics.memory_bound,
                )
        values = {o.name: o.value(ctx) for o in self.objectives}
        return TrialResult(
            config,
            True,
            design,
            values,
            score=self.primary.signed(values[self.primary.name]),
            memory_bound=metrics.memory_bound,
        )

    def _evaluate_mix(self, config: Config) -> TrialResult:
        """Score one configuration against every spec of the mix.

        The design must be feasible for **all** specs; each objective then
        aggregates per-spec values over the mix by its declared mode —
        weighted sum for extensive quantities (predicted mix runtime is the
        weighted sum over specs), weighted mean for intensive ones. A
        ``batch`` axis scales every spec's batch count; a ``boards`` axis
        applies the spatial-scaling model per spec, exactly as the
        single-workload path does.
        """
        boards = int(config.get("boards", 1))
        batch_factor = int(config.get("batch", 1))
        contexts: list[tuple[EvalContext, float]] = []
        try:
            if config.get("tiled", False):
                if batch_factor > 1:
                    # mirror the single-workload batch-axis rule: the
                    # executable surface has no batched path for tiled
                    # designs. Spec-level batches (like a study-level
                    # batched workload) keep their analytic tiled scoring.
                    raise InfeasibleDesignError(
                        "batched execution is not supported on tiled designs"
                    )
                ranks = {b.spec.mesh.ndim for b in self._entries}
                if len(ranks) > 1:
                    # one DesignPoint carries one tile; a 2D (M,) tile and a
                    # 3D (M, N) tile are different shapes, so no single tiled
                    # design can serve a mixed-rank mix
                    raise InfeasibleDesignError(
                        "tiled designs cannot serve a mixed-rank workload "
                        "mix (2D and 3D members need different tile shapes)"
                    )
            design = self.design_for(config)
            for binding in self._entries:
                workload = binding.spec.with_batch(
                    binding.spec.batch * batch_factor
                )
                binding.space.check(design, workload)
                metrics, seconds = self._score_workload(
                    binding.program, workload, design, boards, binding.traffic
                )
                contexts.append(
                    (
                        EvalContext(
                            binding.program, self.device, workload, design,
                            metrics, seconds, boards,
                        ),
                        binding.weight,
                    )
                )
        except (InfeasibleDesignError, ValidationError) as exc:
            return TrialResult(config, False, None, reason=str(exc))
        memory_bound = any(ctx.metrics.memory_bound for ctx, _ in contexts)
        for constraint in self.constraints:
            for ctx, _ in contexts:
                if not constraint.ok(ctx):
                    return TrialResult(
                        config,
                        False,
                        design,
                        reason=(
                            f"violates constraint {constraint.name} "
                            f"on {ctx.workload}"
                        ),
                        memory_bound=memory_bound,
                    )
        total_weight = sum(w for _, w in contexts)
        values = {}
        for objective in self.objectives:
            total = sum(w * objective.value(ctx) for ctx, w in contexts)
            values[objective.name] = (
                total / total_weight if objective.aggregate == "mean" else total
            )
        return TrialResult(
            config,
            True,
            design,
            values,
            score=self.primary.signed(values[self.primary.name]),
            memory_bound=memory_bound,
        )
