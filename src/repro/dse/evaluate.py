"""Memoizing, parallel trial evaluation against the analytic model.

The :class:`Evaluator` turns a declarative configuration (see
:mod:`repro.dse.space`) into a concrete :class:`DesignPoint` — estimating
the achievable clock from the clock model, deriving the spatial-blocking
tile for tiled configurations and applying the feasibility checks of
eqs. (4)/(6)/(7) — then runs the runtime/energy predictor and scores the
result against the study's objectives.

Results are memoized by canonical configuration key, so a configuration is
never evaluated twice within a study (or across a resumed one: the study
seeds the cache from its journal).  Batch evaluation fans out over
``concurrent.futures`` worker threads.

The per-trial model path leans on program-level memoization:
``program.bytes_per_cell_pass()`` and ``G_dsp`` are cached on the program
instance, so constructing a predictor per trial no longer re-walks every
expression tree; functional validation runs launched from search results go
through the plan-compiled engine (:mod:`repro.stencil.compiled`) and reuse
its shared plan cache across trials.
"""

from __future__ import annotations

import math
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field as dc_field
from typing import Any, Mapping, Sequence

from repro.arch.clocking import DEFAULT_CLOCK_MODEL, ClockModel
from repro.arch.device import FPGADevice
from repro.dse.objectives import (
    Constraint,
    EvalContext,
    Objective,
    RUNTIME,
)
from repro.dse.space import Config, ConfigKey, config_key
from repro.model.bandwidth import feasible_vectorization
from repro.model.design import DesignPoint, DesignSpace, Workload, tile_for_unroll
from repro.model.multifpga import MultiFPGAConfig, spatial_scaling_seconds
from repro.model.resources import module_mem_bytes
from repro.model.runtime import RuntimePredictor
from repro.model.tiling import TileDesign
from repro.stencil.program import StencilProgram
from repro.util.errors import InfeasibleDesignError, ValidationError
from repro.util.units import MHZ


@dataclass(frozen=True)
class TrialResult:
    """The outcome of evaluating one configuration."""

    config: Config
    feasible: bool
    design: DesignPoint | None
    values: dict[str, float] = dc_field(default_factory=dict)
    #: primary objective, direction-folded; ``inf`` for infeasible trials
    score: float = math.inf
    #: why the trial is infeasible (empty for feasible trials)
    reason: str = ""
    #: True when the trial is memory-bound under the AXI/burst model
    memory_bound: bool = False

    def value(self, name: str) -> float:
        """One raw objective value (``inf`` when infeasible)."""
        return self.values.get(name, math.inf)


class Evaluator:
    """Binds configurations to the model and memoizes their evaluation."""

    def __init__(
        self,
        program: StencilProgram,
        device: FPGADevice,
        workload: Workload,
        objectives: Sequence[Objective] = (RUNTIME,),
        constraints: Sequence[Constraint] = (),
        clock_model: ClockModel = DEFAULT_CLOCK_MODEL,
        logical_bytes_per_cell_iter: float | None = None,
        max_workers: int | None = None,
    ):
        if not objectives:
            raise ValidationError("an Evaluator needs at least one objective")
        if max_workers is not None and max_workers < 0:
            raise ValidationError(f"max_workers must be >= 0, got {max_workers}")
        self.program = program
        self.device = device
        self.workload = workload
        self.objectives = tuple(objectives)
        self.constraints = tuple(constraints)
        self.logical_bytes_per_cell_iter = logical_bytes_per_cell_iter
        self.max_workers = max_workers
        self._space = DesignSpace(program, device, clock_model)
        self._cache: dict[ConfigKey, TrialResult] = {}
        self._lock = threading.Lock()
        #: configurations actually run through the model
        self.evaluations = 0
        #: requests answered from the memo table
        self.cache_hits = 0

    @property
    def primary(self) -> Objective:
        """The first (ranking) objective."""
        return self.objectives[0]

    # -- model-derived bounds (cheap: no trial evaluation) ------------------------
    def unroll_cap(self, V: int, tiled: bool = False) -> int:
        """Largest unroll that can possibly pass feasibility at width ``V``.

        Uses the *hard* DSP inventory (what :meth:`DesignSpace.check`
        enforces), not the 90% planning budget of eq. (6) — the paper's
        synthesized Jacobi landed at p=29 against a planning bound of 28,
        and the optimum regularly sits in that gap.  Baseline designs are
        additionally line-buffer bound (eq. 7); tiled designs trade buffer
        for redundant compute, leaving the DSP bound only.
        """
        dsp_cap = max(1, self.device.dsp_blocks // (V * self._space.gdsp))
        if tiled:
            return dsp_cap
        module_bytes = module_mem_bytes(self.program, self.workload.mesh.shape)
        return min(dsp_cap, max(1, self.device.usable_on_chip_bytes() // module_bytes))

    def vector_cap(self, memory: str, p: int = 1) -> int:
        """Widest vectorization that can possibly be feasible on ``memory``.

        The minimum of the bandwidth bound (eq. 4, at the device's default
        clock) and the hard DSP bound at the requested unroll depth.
        """
        bw = feasible_vectorization(
            self.program, self.device, memory, self.device.default_clock_mhz * MHZ
        )
        dsp = max(1, self.device.dsp_blocks // (p * self._space.gdsp))
        return max(1, min(bw, dsp))

    # -- config -> workload/design -------------------------------------------------
    def workload_for(self, config: Mapping[str, Any]) -> Workload:
        """The workload a configuration denotes.

        A ``batch`` axis (see :func:`repro.dse.space.model_space`) overrides
        the study workload's batch size: the trial scores one design serving
        that many same-shaped meshes streamed back to back (eq. (15)).
        """
        batch = int(config.get("batch", self.workload.batch))
        if batch == self.workload.batch:
            return self.workload
        return Workload(self.workload.mesh, self.workload.niter, batch)

    def batch_runner(
        self,
        config: Mapping[str, Any],
        engine: str = "compiled",
        plan_cache=None,
    ):
        """A :class:`~repro.dataflow.batcher.BatchRunner` realizing a trial.

        Functional companion to the ``batch`` axis: the returned runner
        executes batches through the stacked tape (one compiled replay for
        all ``B`` meshes) on the design the configuration denotes, so
        search results can be validated — bit-identically against the
        golden interpreter — on the very batched workloads they were scored
        for. Tiled designs are rejected, mirroring
        :meth:`~repro.dataflow.accelerator.FPGAAccelerator.run_batch` (and
        the evaluator scores tiled batch>1 configurations as infeasible).
        """
        from repro.dataflow.batcher import BatchRunner

        design = self.design_for(config)
        if design.tile is not None:
            raise ValidationError(
                "batched execution is not supported on tiled designs"
            )
        return BatchRunner(self.program, design, engine, plan_cache)

    def design_for(self, config: Mapping[str, Any]) -> DesignPoint:
        """The concrete design point a configuration denotes.

        Raises :class:`InfeasibleDesignError` when the configuration cannot
        produce a buildable design (e.g. a tile fully consumed by its halo).
        """
        memory = config.get("memory", self.device.memory_targets[0])
        V = int(config["V"])
        p = int(config["p"])
        tile = self._derive_tile(p) if config.get("tiled", False) else None
        design = DesignPoint(V, p, self.device.default_clock_mhz, memory, tile)
        return self._space._with_estimated_clock(design, self.workload)

    def _derive_tile(self, p: int) -> TileDesign:
        """The largest buffer-feasible tile for unroll ``p`` (Section IV-A)."""
        tile = tile_for_unroll(self.program, self.device, self.workload.mesh, p)
        if min(tile.tile) <= p * self.program.order:
            raise InfeasibleDesignError(
                f"tile {tile.tile} is consumed by the p*D={p * self.program.order} halo"
            )
        return tile

    # -- evaluation ---------------------------------------------------------------
    def evaluate(self, config: Mapping[str, Any]) -> TrialResult:
        """Evaluate one configuration (memoized)."""
        key = config_key(config)
        with self._lock:
            cached = self._cache.get(key)
            if cached is not None:
                self.cache_hits += 1
                return cached
        result = self._evaluate_uncached(dict(config))
        with self._lock:
            if key in self._cache:  # a racing worker got there first
                self.cache_hits += 1
                return self._cache[key]
            self._cache[key] = result
            self.evaluations += 1
        return result

    def evaluate_many(self, configs: Sequence[Mapping[str, Any]]) -> list[TrialResult]:
        """Evaluate a batch, optionally fanning out over worker threads.

        Duplicate configurations within the batch are evaluated once; the
        returned list is positionally aligned with ``configs``.  The default
        (``max_workers=None``) is serial: the analytic model is pure
        CPU-bound python, so threads only pay off when an objective or
        constraint does I/O — opt in by passing ``max_workers > 0``.
        """
        keys = [config_key(c) for c in configs]
        unique: dict[ConfigKey, Mapping[str, Any]] = {}
        for key, config in zip(keys, configs):
            unique.setdefault(key, config)
        todo = list(unique.values())
        if len(todo) <= 1 or not self.max_workers:
            for config in todo:
                self.evaluate(config)
        else:
            with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
                list(pool.map(self.evaluate, todo))
        with self._lock:
            return [self._cache[key] for key in keys]

    def seed(self, result: TrialResult) -> bool:
        """Install a persisted result into the memo table (study resume).

        Returns False (and changes nothing) when the configuration is
        already cached.
        """
        key = config_key(result.config)
        with self._lock:
            if key in self._cache:
                return False
            self._cache[key] = result
            return True

    def cached(self, config: Mapping[str, Any]) -> TrialResult | None:
        """The memoized result for a configuration, if any (no hit counted)."""
        with self._lock:
            return self._cache.get(config_key(config))

    # -- internals ----------------------------------------------------------------
    def _evaluate_uncached(self, config: Config) -> TrialResult:
        boards = int(config.get("boards", 1))
        try:
            workload = self.workload_for(config)
            if int(config.get("batch", 1)) > 1 and config.get("tiled", False):
                # the executable surface (FPGAAccelerator.run_batch /
                # BatchRunner) has no batched path for tiled designs; a
                # tiled batch>1 *axis* config must not win a front it
                # cannot run. A study-level batched workload (Workload
                # batch, no batch axis) keeps its pre-existing analytic
                # scoring on tiled designs.
                raise InfeasibleDesignError(
                    "batched execution is not supported on tiled designs"
                )
            design = self.design_for(config)
            self._space.check(design, workload)
            predictor = RuntimePredictor(
                self.program,
                self.device,
                design,
                logical_bytes_per_cell_iter=self.logical_bytes_per_cell_iter,
            )
            metrics = predictor.predict(workload)
            seconds = metrics.seconds
            if boards > 1:
                scaled = spatial_scaling_seconds(
                    self.program, design, workload, MultiFPGAConfig(boards)
                )
                # keep the memory model consistent across the boards axis:
                # each board streams its slab through its own memory system,
                # so the single-board memory floor shrinks with the count
                floor = (
                    predictor.memory_cycles(workload)
                    / design.clock_hz
                    / boards
                )
                seconds = max(scaled, floor)
        except (InfeasibleDesignError, ValidationError) as exc:
            return TrialResult(config, False, None, reason=str(exc))
        ctx = EvalContext(
            self.program, self.device, workload, design, metrics, seconds, boards
        )
        for constraint in self.constraints:
            if not constraint.ok(ctx):
                return TrialResult(
                    config,
                    False,
                    design,
                    reason=f"violates constraint {constraint.name}",
                    memory_bound=metrics.memory_bound,
                )
        values = {o.name: o.value(ctx) for o in self.objectives}
        return TrialResult(
            config,
            True,
            design,
            values,
            score=self.primary.signed(values[self.primary.name]),
            memory_bound=metrics.memory_bound,
        )
