"""Pareto-front maintenance with dominance accounting.

The front works on *signed* objective vectors (every component folded so
lower is better, see :meth:`repro.dse.objectives.Objective.signed`), so a
single dominance rule serves any mix of minimized and maximized
objectives.  Invariants (property-tested in ``tests/test_properties.py``):

* members are mutually non-dominated;
* every rejected candidate is dominated by some current member;
* adding a dominating point evicts every member it dominates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Mapping, Sequence

from repro.dse.objectives import Objective
from repro.util.errors import ValidationError


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when minimization vector ``a`` Pareto-dominates ``b``.

    ``a`` dominates ``b`` when it is no worse in every component and
    strictly better in at least one.
    """
    if len(a) != len(b):
        raise ValidationError(f"vector ranks differ: {len(a)} vs {len(b)}")
    return all(x <= y for x, y in zip(a, b)) and any(x < y for x, y in zip(a, b))


@dataclass(frozen=True)
class FrontMember:
    """One non-dominated point: raw values, signed vector and a payload."""

    values: Mapping[str, float]
    vector: tuple[float, ...]
    payload: Any = None


class ParetoFront:
    """The set of mutually non-dominated points seen so far."""

    def __init__(self, objectives: Sequence[Objective]):
        if not objectives:
            raise ValidationError("a ParetoFront needs at least one objective")
        self.objectives = tuple(objectives)
        self._members: list[FrontMember] = []
        #: candidates offered via :meth:`add`
        self.considered = 0
        #: candidates rejected because a member dominated them
        self.rejected = 0
        #: members evicted by a later dominating candidate
        self.evicted = 0

    # -- queries ------------------------------------------------------------------
    @property
    def members(self) -> tuple[FrontMember, ...]:
        """Current non-dominated members, insertion-ordered."""
        return tuple(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __iter__(self) -> Iterator[FrontMember]:
        return iter(self._members)

    def vector_of(self, values: Mapping[str, float]) -> tuple[float, ...]:
        """The signed (minimization) vector of a raw value mapping."""
        try:
            return tuple(o.signed(float(values[o.name])) for o in self.objectives)
        except KeyError as exc:
            raise ValidationError(
                f"values missing objective {exc.args[0]!r}"
            ) from None

    def dominated_by_front(self, values: Mapping[str, float]) -> bool:
        """True when some current member dominates (or equals) these values."""
        vec = self.vector_of(values)
        return any(
            dominates(m.vector, vec) or m.vector == vec for m in self._members
        )

    # -- mutation -----------------------------------------------------------------
    def add(self, values: Mapping[str, float], payload: Any = None) -> bool:
        """Offer a candidate; returns True when it joins the front.

        Joining evicts every member the candidate dominates.  Duplicates of
        an existing vector are rejected (the incumbent keeps its place).
        """
        self.considered += 1
        vec = self.vector_of(values)
        for m in self._members:
            if dominates(m.vector, vec) or m.vector == vec:
                self.rejected += 1
                return False
        survivors = [m for m in self._members if not dominates(vec, m.vector)]
        self.evicted += len(self._members) - len(survivors)
        survivors.append(FrontMember(dict(values), vec, payload))
        self._members = survivors
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        names = "/".join(o.name for o in self.objectives)
        return f"ParetoFront({names}, members={len(self)})"
