"""Design-space exploration engine (paper Section V-A, productionized).

The paper's analytic model "significantly narrows the design space"; this
package turns that claim into an optimizer.  The pieces compose as::

    space     = model_space(program, device, workload)        # what to search
    evaluator = Evaluator(program, device, workload,
                          objectives=(RUNTIME, ENERGY))       # how to score
    study     = Study(space, evaluator, path="study.jsonl")   # the ledger
    study.run(strategy_by_name("annealing", seed=1), trials=50)
    best      = study.best()
    front     = study.pareto_front()

Studies journal every trial as a JSON line and resume after a kill without
re-evaluating persisted trials; evaluation is memoized and fans out over
``concurrent.futures`` workers.
"""

from repro.dse.evaluate import Evaluator, TrialResult
from repro.dse.objectives import (
    BANDWIDTH,
    DSP_HEADROOM,
    ENERGY,
    MEM_HEADROOM,
    POWER,
    RUNTIME,
    Constraint,
    EvalContext,
    Objective,
    compute_bound_only,
    max_dsp_utilization,
    max_power,
    objective_by_name,
    parse_objectives,
    weighted_sum,
)
from repro.dse.pareto import FrontMember, ParetoFront, dominates
from repro.dse.space import Parameter, ParameterSpace, config_key, model_space
from repro.dse.strategies import (
    STRATEGIES,
    ExhaustiveSearch,
    ModelGuidedGreedy,
    RandomSearch,
    SearchStrategy,
    SimulatedAnnealing,
    strategy_by_name,
)
from repro.dse.study import BudgetExhausted, Study, Trial

__all__ = [
    "BANDWIDTH",
    "BudgetExhausted",
    "Constraint",
    "DSP_HEADROOM",
    "ENERGY",
    "EvalContext",
    "Evaluator",
    "ExhaustiveSearch",
    "FrontMember",
    "MEM_HEADROOM",
    "ModelGuidedGreedy",
    "Objective",
    "POWER",
    "Parameter",
    "ParameterSpace",
    "ParetoFront",
    "RUNTIME",
    "RandomSearch",
    "STRATEGIES",
    "SearchStrategy",
    "SimulatedAnnealing",
    "Study",
    "Trial",
    "TrialResult",
    "compute_bound_only",
    "config_key",
    "dominates",
    "max_dsp_utilization",
    "max_power",
    "model_space",
    "objective_by_name",
    "parse_objectives",
    "strategy_by_name",
    "weighted_sum",
]
