"""Pluggable search strategies over a :class:`~repro.dse.study.Study`.

Every strategy proposes configurations through ``study.ask`` /
``study.ask_many`` and stops when the study's budget is exhausted (the
study raises :class:`~repro.dse.study.BudgetExhausted`, which ``Study.run``
treats as normal termination).  Strategies are deterministic given their
seed, so studies are reproducible and resumable.

Implemented strategies:

* ``exhaustive`` — the full grid, in mixed-radix order (the reference
  optimum for the convergence experiments);
* ``random`` — uniform sampling without replacement;
* ``annealing`` — simulated annealing over single-axis neighbour moves
  with a relative-delta Metropolis rule;
* ``greedy`` — model-guided descent that exploits the structure of the
  analytic model: the memory-cycle floor depends only on the unroll ``p``
  (eq. (5)), so once a deep-unroll design is memory-bound, no shallower
  unroll on that memory can beat it and the region is pruned early.
"""

from __future__ import annotations

import itertools
import math
import random
from typing import TYPE_CHECKING

from repro.util.errors import ValidationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.dse.study import Study


class SearchStrategy:
    """Base class: a named proposal policy over one study."""

    name = "base"

    def run(self, study: "Study") -> None:
        """Propose trials until done or the budget is exhausted."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class ExhaustiveSearch(SearchStrategy):
    """Every configuration on the grid, evaluated in parallel batches."""

    name = "exhaustive"

    def __init__(self, batch: int = 64):
        if batch < 1:
            raise ValidationError(f"batch must be >= 1, got {batch}")
        self.batch = batch

    def run(self, study: "Study") -> None:
        pending = []
        for config in study.space.grid():
            pending.append(config)
            if len(pending) >= self.batch:
                study.ask_many(pending)
                pending = []
                if study.exhausted:
                    return
        if pending:
            study.ask_many(pending)


class RandomSearch(SearchStrategy):
    """Uniform sampling of the grid without replacement."""

    name = "random"

    def __init__(self, seed: int = 0, batch: int = 16):
        if batch < 1:
            raise ValidationError(f"batch must be >= 1, got {batch}")
        self.seed = seed
        self.batch = batch

    def run(self, study: "Study") -> None:
        rng = random.Random(self.seed)
        indices = list(range(study.space.size))
        rng.shuffle(indices)
        for start in range(0, len(indices), self.batch):
            study.ask_many(
                [study.space.config_at(i) for i in indices[start : start + self.batch]]
            )
            if study.exhausted:
                return


def _cap_corners(study: "Study") -> list[dict]:
    """Model-guided starting points: the widest-V / deepest-p grid corners.

    Empty when the space lacks the model axes (memory, V, p) — generic
    spaces fall back to purely random seeding.
    """
    space = study.space
    evaluator = study.evaluator
    if not {"memory", "V", "p"} <= set(space.names):
        return []
    template = {
        name: space[name].values[0]
        for name in space.names
        if name not in ("memory", "V", "p")
    }
    tiled = bool(template.get("tiled", False))
    corners = []
    for memory in space["memory"].values:
        v_cap = evaluator.vector_cap(memory)
        vs = [v for v in space["V"].values if v <= v_cap]
        for V in sorted(vs, reverse=True)[:2]:
            ps = [p for p in space["p"].values if p <= evaluator.unroll_cap(V, tiled)]
            if ps:
                corners.append(dict(template, memory=memory, V=V, p=max(ps)))
    return corners


class SimulatedAnnealing(SearchStrategy):
    """Metropolis walk over single-axis neighbour moves.

    The walk starts from the best of a few random probes, accepts uphill
    moves with probability ``exp(-rel_delta / T)`` (``rel_delta`` is the
    score increase relative to the incumbent, making the schedule
    scale-free across objectives) and restarts from the best-so-far point
    whenever it wanders into an infeasible region.
    """

    name = "annealing"

    def __init__(
        self,
        seed: int = 0,
        initial_temperature: float = 0.25,
        cooling: float = 0.93,
        probes: int = 8,
        restart_after: int = 8,
        max_proposals: int | None = None,
    ):
        if not 0.0 < cooling < 1.0:
            raise ValidationError(f"cooling must be in (0, 1), got {cooling}")
        if initial_temperature <= 0.0:
            raise ValidationError(
                f"initial_temperature must be > 0, got {initial_temperature}"
            )
        if restart_after < 1:
            raise ValidationError(f"restart_after must be >= 1, got {restart_after}")
        self.seed = seed
        self.initial_temperature = initial_temperature
        self.cooling = cooling
        self.probes = probes
        self.restart_after = restart_after
        self.max_proposals = max_proposals

    def run(self, study: "Study") -> None:
        rng = random.Random(self.seed)
        space = study.space
        # duplicate proposals are budget-free, so a converged walk on an
        # unbounded study needs its own stopping rule
        proposals_left = self.max_proposals
        if proposals_left is None:
            proposals_left = 40 * (study.remaining if study.remaining is not None else 25)
        # seed the walk: every model-guided corner probe (the optimum usually
        # sits at a vectorization/unroll cap) plus `probes` random draws
        current = None
        current_score = math.inf
        probes = _cap_corners(study) + [
            space.sample(rng) for _ in range(max(1, self.probes))
        ]
        for config in probes:
            result = study.ask(config)
            if result.score < current_score:
                current, current_score = config, result.score
        if current is None:
            current = space.sample(rng)
        best, best_score = current, current_score
        temperature = self.initial_temperature
        stale = 0
        while proposals_left > 0:
            proposals_left -= 1
            if stale >= self.restart_after:
                # converged (or trapped): alternate between re-heating around
                # the best point and a fresh random probe; duplicate asks are
                # budget-free, so restarts cost only genuinely new trials
                if rng.random() < 0.5:
                    current, current_score = best, best_score
                else:
                    current = space.sample(rng)
                    result = study.ask(current)
                    current_score = result.score
                    if result.score < best_score:
                        best, best_score = current, result.score
                temperature = max(temperature, self.initial_temperature / 2)
                stale = 0
                continue
            candidate = space.neighbor(current, rng)
            result = study.ask(candidate)
            temperature *= self.cooling
            if not result.feasible:
                stale += 1
                continue
            delta = result.score - current_score
            scale = abs(current_score) if math.isfinite(current_score) else 1.0
            rel = delta / scale if scale > 0 else delta
            if delta <= 0 or rng.random() < math.exp(-rel / max(temperature, 1e-9)):
                if delta == 0:
                    stale += 1  # revisiting a plateau still counts toward restart
                else:
                    stale = 0
                current, current_score = candidate, result.score
            else:
                stale += 1
            if result.score < best_score:
                best, best_score = candidate, result.score


class ModelGuidedGreedy(SearchStrategy):
    """Descend the unroll axis, pruning memory-bound regions early.

    For each memory target the strategy walks ``p`` from the deepest unroll
    downward.  The model's memory-cycle term (seconds to stream the physical
    traffic) falls with ``p`` — deeper unrolls make fewer passes — so as
    soon as a memory-bound trial is no faster than the incumbent best, every
    shallower unroll on that memory is provably worse and the region is
    pruned.  Within one unroll depth, ``V`` is scanned from widest down and
    abandoned once a trial goes memory-bound (wider vectorization cannot
    lower the memory floor).
    """

    name = "greedy"

    def __init__(self, max_v_steps: int = 3):
        if max_v_steps < 1:
            raise ValidationError(f"max_v_steps must be >= 1, got {max_v_steps}")
        self.max_v_steps = max_v_steps

    def run(self, study: "Study") -> None:
        space = study.space
        evaluator = study.evaluator
        # the memory-floor argument below is about *runtime*; with any other
        # primary objective (e.g. energy) the pruning would be unsound, so
        # fall back to the cap-guided scan without memory-bound cuts
        prune_memory_bound = evaluator.primary.name == "runtime"
        aux_names = [n for n in space.names if n not in ("memory", "V", "p")]
        aux_grids = [[(n, v) for v in space[n].values] for n in aux_names]
        for aux in itertools.product(*aux_grids):
            template = dict(aux)
            tiled = bool(template.get("tiled", False))
            # tiled blocks re-read less halo at shallower unrolls, so the
            # "floor only rises as p shrinks" argument holds untiled only
            can_prune = prune_memory_bound and not tiled
            best_score = math.inf
            for memory in space["memory"].values:
                for p in sorted(space["p"].values, reverse=True):
                    # the model bounds V for free: skip provably infeasible combos
                    v_cap = evaluator.vector_cap(memory, p)
                    vs = [v for v in space["V"].values if v <= v_cap]
                    if not vs:
                        continue
                    prune = False
                    for V in sorted(vs, reverse=True)[: self.max_v_steps]:
                        if p > evaluator.unroll_cap(V, tiled):
                            continue
                        config = dict(template, memory=memory, V=V, p=p)
                        result = study.ask(config)
                        if not result.feasible:
                            continue
                        was_best = result.score < best_score
                        best_score = min(best_score, result.score)
                        if result.memory_bound and can_prune:
                            # this score IS the memory floor for unroll p; the
                            # floor only rises as p shrinks, so once it stops
                            # improving, every shallower unroll is ruled out
                            if not was_best:
                                prune = True
                            break  # narrower V keeps the floor, loses compute
                    if prune:
                        break


#: strategy registry: name -> factory accepting (seed=..., **options)
def _make_exhaustive(seed: int = 0, **options) -> SearchStrategy:
    return ExhaustiveSearch(**options)


def _make_random(seed: int = 0, **options) -> SearchStrategy:
    return RandomSearch(seed=seed, **options)


def _make_annealing(seed: int = 0, **options) -> SearchStrategy:
    return SimulatedAnnealing(seed=seed, **options)


def _make_greedy(seed: int = 0, **options) -> SearchStrategy:
    return ModelGuidedGreedy(**options)


STRATEGIES = {
    "exhaustive": _make_exhaustive,
    "random": _make_random,
    "annealing": _make_annealing,
    "greedy": _make_greedy,
}


def strategy_by_name(name: str, seed: int = 0, **options) -> SearchStrategy:
    """Instantiate a registered strategy (e.g. ``"annealing"``)."""
    try:
        factory = STRATEGIES[name]
    except KeyError:
        raise ValidationError(
            f"unknown strategy {name!r}; available: {sorted(STRATEGIES)}"
        ) from None
    return factory(seed=seed, **options)
