"""Persistent, resumable exploration studies.

A :class:`Study` is the ledger of one exploration: every trial a strategy
proposes is evaluated (through the study's memoizing
:class:`~repro.dse.evaluate.Evaluator`), appended to an in-memory trial
list and — when the study has a path — journalled as one JSON line.  A
killed study resumes by replaying its journal into the evaluator's memo
table, so already-persisted trials are never evaluated again; the budget of
a resumed run is spent exclusively on new configurations.

Budgets count *new model evaluations*: replayed or duplicate proposals are
free, which is what makes ``--resume`` append useful work instead of
burning the budget re-proving old trials.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.dse.evaluate import Evaluator, TrialResult
from repro.dse.pareto import ParetoFront
from repro.dse.space import ConfigKey, ParameterSpace, config_key
from repro.model.design import DesignPoint
from repro.model.tiling import TileDesign
from repro.util.errors import ReproError, ValidationError


class BudgetExhausted(ReproError):
    """Raised by :meth:`Study.ask` when the trial budget is spent."""


@dataclass(frozen=True)
class Trial:
    """One journalled evaluation."""

    number: int
    result: TrialResult
    replayed: bool = False

    @property
    def config(self) -> dict[str, Any]:
        return self.result.config

    @property
    def feasible(self) -> bool:
        return self.result.feasible

    @property
    def score(self) -> float:
        return self.result.score

    def value(self, name: str) -> float:
        """One raw objective value of this trial."""
        return self.result.value(name)


class Study:
    """A (possibly journalled) sequence of evaluated trials."""

    def __init__(
        self,
        space: ParameterSpace,
        evaluator: Evaluator,
        path: str | Path | None = None,
        resume: bool = False,
    ):
        self.space = space
        self.evaluator = evaluator
        self.path = Path(path) if path is not None else None
        self.trials: list[Trial] = []
        self._seen: dict[ConfigKey, Trial] = {}
        #: trials replayed from the journal on resume
        self.replayed = 0
        self._budget: int | None = None
        self._spent = 0
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            if resume and self.path.exists():
                self._load()
            elif self.path.exists():
                # a fresh (non-resumed) study restarts its journal, but the
                # old trials may be hours of work: rotate, don't destroy
                self.path.replace(self.path.with_name(self.path.name + ".bak"))

    # -- budget -------------------------------------------------------------------
    @property
    def remaining(self) -> int | None:
        """New evaluations left in the current run (None: unbounded)."""
        if self._budget is None:
            return None
        return max(0, self._budget - self._spent)

    @property
    def exhausted(self) -> bool:
        """True when the current run's budget is spent."""
        return self.remaining == 0

    # -- evaluation ---------------------------------------------------------------
    def ask(self, config: Mapping[str, Any]) -> TrialResult:
        """Evaluate one configuration, recording it if new.

        Already-seen configurations are answered from the ledger for free;
        a new configuration raises :class:`BudgetExhausted` once the run's
        budget is spent.
        """
        key = config_key(config)
        seen = self._seen.get(key)
        if seen is not None:
            return seen.result
        if self.exhausted:
            raise BudgetExhausted(f"trial budget of {self._budget} is spent")
        result = self.evaluator.evaluate(config)
        self._record(result)
        return result

    def ask_many(self, configs: Sequence[Mapping[str, Any]]) -> list[TrialResult]:
        """Evaluate a batch in parallel, spending budget only on new configs.

        Returns results for the configurations that were admitted (seen ones
        included); proposals beyond the remaining budget are dropped.
        """
        admitted: list[Mapping[str, Any]] = []
        fresh: dict[ConfigKey, Mapping[str, Any]] = {}
        for config in configs:
            key = config_key(config)
            if key in self._seen:
                admitted.append(config)
                continue
            if key not in fresh:
                if self.remaining is not None and len(fresh) >= self.remaining:
                    continue
                fresh[key] = config
            admitted.append(config)
        if fresh:
            for result in self.evaluator.evaluate_many(list(fresh.values())):
                if config_key(result.config) in fresh:
                    self._record(result)
                    fresh.pop(config_key(result.config))
        return [self._seen[config_key(c)].result for c in admitted]

    def run(self, strategy: "SearchStrategy", trials: int | None = None) -> "Study":
        """Drive a strategy until it finishes or the budget is spent."""
        self._budget = trials
        self._spent = 0
        try:
            strategy.run(self)
        except BudgetExhausted:
            pass
        return self

    # -- queries ------------------------------------------------------------------
    @property
    def evaluated(self) -> int:
        """Trials recorded by this process (excludes replayed ones)."""
        return len(self.trials) - self.replayed

    def feasible_trials(self) -> list[Trial]:
        """All feasible trials, in evaluation order."""
        return [t for t in self.trials if t.feasible]

    def best(self) -> Trial | None:
        """The feasible trial with the best primary-objective score."""
        feasible = self.feasible_trials()
        if not feasible:
            return None
        return min(feasible, key=lambda t: t.score)

    def top(self, n: int) -> list[Trial]:
        """The ``n`` best feasible trials by primary objective."""
        return sorted(self.feasible_trials(), key=lambda t: t.score)[: max(n, 0)]

    def pareto_front(self, objectives: Sequence | None = None) -> ParetoFront:
        """The Pareto front of all feasible trials (payload: the Trial).

        Defaults to the evaluator's full objective set; pass a subset to
        project the front onto fewer axes.
        """
        front = ParetoFront(objectives or self.evaluator.objectives)
        for trial in self.feasible_trials():
            front.add(trial.result.values, payload=trial)
        return front

    # -- journal ------------------------------------------------------------------
    def fingerprint(self) -> dict[str, Any]:
        """What this study evaluates; recorded in (and checked against) the journal.

        Replaying a journal recorded for a different program, mesh, device
        or objective set would silently rank stale numbers against fresh
        ones, so resume refuses on a mismatch.
        """
        ev = self.evaluator
        fp = {
            "program": ev.program.name,
            "mesh": list(ev.workload.mesh.shape),
            "niter": ev.workload.niter,
            "batch": ev.workload.batch,
            "device": ev.device.name,
            "objectives": [o.name for o in ev.objectives],
            "constraints": [c.name for c in ev.constraints],
            "traffic": ev.logical_bytes_per_cell_iter,
            "space": {p.name: list(p.values) for p in self.space.parameters},
        }
        # mix-scored studies additionally pin the whole workload population;
        # single-workload fingerprints are unchanged, so pre-mix journals
        # keep resuming
        if getattr(ev, "mix", None) is not None:
            fp["workloads"] = ev.mix.token()
        return fp

    def _record(self, result: TrialResult) -> Trial:
        trial = Trial(len(self.trials), result)
        self.trials.append(trial)
        self._seen[config_key(result.config)] = trial
        self._spent += 1
        if self.path is not None:
            header = ""
            if not self.path.exists() or self.path.stat().st_size == 0:
                header = json.dumps({"study": self.fingerprint()}) + "\n"
            with self.path.open("a", encoding="utf-8") as fh:
                fh.write(header + json.dumps(_trial_to_json(trial)) + "\n")
        return trial

    def _load(self) -> None:
        for line in self.path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except ValueError:
                continue  # tolerate a line truncated by a killed run
            if isinstance(obj, dict) and "study" in obj:
                ours, theirs = self.fingerprint(), obj["study"]
                if theirs != ours:
                    diff = sorted(
                        k
                        for k in set(ours) | set(theirs)
                        if ours.get(k) != theirs.get(k)
                    )
                    raise ValidationError(
                        f"journal {self.path} was recorded for a different study "
                        f"(mismatched: {', '.join(diff)}); e.g. journal has "
                        f"{diff[0]}={theirs.get(diff[0])!r}, this study has "
                        f"{diff[0]}={ours.get(diff[0])!r}. Point --study at a "
                        "fresh path or drop --resume."
                    )
                continue
            try:
                result = _result_from_json(obj)
            except (ValueError, KeyError, TypeError):
                continue
            if config_key(result.config) in self._seen:
                continue
            trial = Trial(len(self.trials), result, replayed=True)
            self.trials.append(trial)
            self._seen[config_key(result.config)] = trial
            self.replayed += 1
            self.evaluator.seed(result)


# --------------------------------------------------------------------------- #
# journal (de)serialization
# --------------------------------------------------------------------------- #
def _design_to_json(design: DesignPoint | None) -> dict | None:
    if design is None:
        return None
    return {
        "V": design.V,
        "p": design.p,
        "clock_mhz": design.clock_mhz,
        "memory": design.memory,
        "tile": list(design.tile.tile) if design.tile else None,
        "initiation_interval": design.initiation_interval,
    }


def _design_from_json(obj: dict | None) -> DesignPoint | None:
    if obj is None:
        return None
    tile = TileDesign(tuple(obj["tile"])) if obj.get("tile") else None
    return DesignPoint(
        V=obj["V"],
        p=obj["p"],
        clock_mhz=obj["clock_mhz"],
        memory=obj["memory"],
        tile=tile,
        initiation_interval=obj.get("initiation_interval", 1.0),
    )


def _trial_to_json(trial: Trial) -> dict:
    r = trial.result
    return {
        "number": trial.number,
        "config": r.config,
        "feasible": r.feasible,
        "values": r.values,
        "score": None if math.isinf(r.score) else r.score,
        "reason": r.reason,
        "memory_bound": r.memory_bound,
        "design": _design_to_json(r.design),
    }


def _result_from_json(obj: dict) -> TrialResult:
    score = obj.get("score")
    return TrialResult(
        config=dict(obj["config"]),
        feasible=bool(obj["feasible"]),
        design=_design_from_json(obj.get("design")),
        values={k: float(v) for k, v in obj.get("values", {}).items()},
        score=math.inf if score is None else float(score),
        reason=obj.get("reason", ""),
        memory_bound=bool(obj.get("memory_bound", False)),
    )
