"""Objectives and constraints for design-space exploration.

An :class:`Objective` extracts one figure of merit from an evaluated design
and knows which direction is better.  ``signed`` folds the direction away:
lower signed value == better, always, which is what the Pareto front and
the search strategies compare.  A :class:`Constraint` is a hard predicate —
designs violating one are recorded as infeasible rather than scored.

Built-in objectives cover the quantities the paper trades off in Section V:
predicted runtime, energy to solution, delivered (logical) bandwidth, power
draw, and the DSP / on-chip-memory headroom left for other logic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.arch.device import FPGADevice
from repro.model.design import DesignPoint, Workload
from repro.model.runtime import PredictedMetrics
from repro.stencil.program import StencilProgram
from repro.util.errors import ValidationError


@dataclass(frozen=True)
class EvalContext:
    """Everything an objective or constraint may inspect for one trial.

    ``seconds`` is the board-count-adjusted runtime: for ``boards > 1`` it
    comes from the multi-FPGA spatial-scaling model, otherwise it equals
    ``metrics.seconds``.
    """

    program: StencilProgram
    device: FPGADevice
    workload: Workload
    design: DesignPoint
    metrics: PredictedMetrics
    seconds: float
    boards: int = 1

    @property
    def power_w(self) -> float:
        """Predicted power draw over all boards."""
        return self.metrics.power_w * self.boards

    @property
    def energy_j(self) -> float:
        """Energy to solution over all boards."""
        return self.power_w * self.seconds


@dataclass(frozen=True)
class Objective:
    """A named figure of merit with an optimization direction.

    ``aggregate`` says how the objective combines over a workload *mix*
    (see :meth:`repro.dse.evaluate.Evaluator` with ``workloads=``):
    extensive quantities (runtime, energy) take the weighted **sum** over
    the mix's specs; intensive ones (power, bandwidth, headroom) take the
    weighted **mean**.
    """

    name: str
    direction: str  # "min" | "max"
    fn: Callable[[EvalContext], float]
    unit: str = ""
    aggregate: str = "sum"  # "sum" | "mean"

    def __post_init__(self):
        if self.direction not in ("min", "max"):
            raise ValidationError(
                f"objective direction must be 'min' or 'max', got {self.direction!r}"
            )
        if self.aggregate not in ("sum", "mean"):
            raise ValidationError(
                f"objective aggregate must be 'sum' or 'mean', got {self.aggregate!r}"
            )

    def value(self, ctx: EvalContext) -> float:
        """The raw metric value for one evaluated design."""
        return float(self.fn(ctx))

    def signed(self, value: float) -> float:
        """Direction-folded value: smaller is always better."""
        return value if self.direction == "min" else -value


@dataclass(frozen=True)
class Constraint:
    """A hard feasibility predicate over an evaluated design."""

    name: str
    predicate: Callable[[EvalContext], bool]

    def ok(self, ctx: EvalContext) -> bool:
        """True when the design satisfies the constraint."""
        return bool(self.predicate(ctx))


# --------------------------------------------------------------------------- #
# built-in objectives
# --------------------------------------------------------------------------- #
RUNTIME = Objective("runtime", "min", lambda c: c.seconds, unit="s")
ENERGY = Objective("energy", "min", lambda c: c.energy_j, unit="J")
POWER = Objective("power", "min", lambda c: c.power_w, unit="W", aggregate="mean")
BANDWIDTH = Objective(
    "bandwidth", "max", lambda c: c.metrics.logical_bandwidth, unit="B/s",
    aggregate="mean",
)
DSP_HEADROOM = Objective(
    "dsp_headroom", "max", lambda c: 1.0 - c.metrics.resources.dsp_utilization,
    aggregate="mean",
)
MEM_HEADROOM = Objective(
    "mem_headroom", "max", lambda c: 1.0 - c.metrics.resources.mem_utilization,
    aggregate="mean",
)

_BUILTIN: dict[str, Objective] = {
    o.name: o
    for o in (RUNTIME, ENERGY, POWER, BANDWIDTH, DSP_HEADROOM, MEM_HEADROOM)
}


def objective_by_name(name: str) -> Objective:
    """Look up a built-in objective (e.g. ``"runtime"``)."""
    try:
        return _BUILTIN[name]
    except KeyError:
        raise ValidationError(
            f"unknown objective {name!r}; available: {sorted(_BUILTIN)}"
        ) from None


def parse_objectives(spec: str | Sequence[str]) -> tuple[Objective, ...]:
    """Objectives from a comma-separated spec; the first one is primary."""
    names = spec.split(",") if isinstance(spec, str) else list(spec)
    objectives = tuple(objective_by_name(n.strip()) for n in names if n.strip())
    if not objectives:
        raise ValidationError(f"no objectives in spec {spec!r}")
    if len({o.name for o in objectives}) != len(objectives):
        raise ValidationError(f"duplicate objectives in spec {spec!r}")
    return objectives


# --------------------------------------------------------------------------- #
# scalarization
# --------------------------------------------------------------------------- #
def weighted_sum(
    objectives: Sequence[Objective],
    weights: Sequence[float],
    name: str | None = None,
) -> Objective:
    """Scalarize several objectives into one minimized figure of merit.

    The value is ``sum(w_i * signed_i)`` over the component objectives —
    every component direction-folded first, so mixing minimized and
    maximized objectives is well-defined and lower is always better.
    Usable anywhere an :class:`Objective` is (in particular as an
    :class:`~repro.dse.evaluate.Evaluator`'s *primary*): unlike pure Pareto
    dominance, which leaves trade-off points mutually incomparable, a
    weighted sum imposes a total order — the classic scalarization step of
    multi-objective DSE.

    Weights express the caller's exchange rate between objectives; they
    need not sum to 1. Note that raw objective magnitudes differ wildly
    (seconds vs joules vs bytes/s), so weights typically fold in a
    normalization of the caller's choosing.
    """
    objectives = tuple(objectives)
    weights = tuple(float(w) for w in weights)
    if not objectives:
        raise ValidationError("weighted_sum needs at least one objective")
    if len(objectives) != len(weights):
        raise ValidationError(
            f"{len(objectives)} objectives but {len(weights)} weights"
        )
    for w in weights:
        if not math.isfinite(w):
            raise ValidationError(f"weights must be finite, got {weights}")
    if name is None:
        name = "weighted(" + "+".join(
            f"{o.name}*{w:g}" for o, w in zip(objectives, weights)
        ) + ")"

    def fn(ctx: EvalContext) -> float:
        return sum(
            w * o.signed(o.value(ctx)) for o, w in zip(objectives, weights)
        )

    return Objective(name, "min", fn)


# --------------------------------------------------------------------------- #
# built-in constraint factories
# --------------------------------------------------------------------------- #
def max_power(watts: float) -> Constraint:
    """Reject designs predicted to draw more than ``watts`` (all boards)."""
    return Constraint(f"power<={watts:g}W", lambda c: c.power_w <= watts)


def max_dsp_utilization(fraction: float) -> Constraint:
    """Reject designs using more than ``fraction`` of the device's DSPs."""
    return Constraint(
        f"dsp<={fraction:g}",
        lambda c: c.metrics.resources.dsp_utilization <= fraction,
    )


def compute_bound_only() -> Constraint:
    """Reject memory-bound designs (the region the paper prunes first)."""
    return Constraint("compute-bound", lambda c: not c.metrics.memory_bound)
