"""Declarative parameter spaces for design-space exploration.

A :class:`ParameterSpace` is an ordered set of named, discrete axes.  A
*configuration* is a plain ``dict`` assigning one value per axis — JSON-safe
by construction, so studies can persist and replay them.  The space offers
the primitives every search strategy is built from: full-grid enumeration,
uniform sampling, single-axis neighbour moves and a mixed-radix
index <-> config bijection.

:func:`model_space` binds the generic machinery to the paper's analytic
model: axes for external memory target, vectorization factor ``V``,
iterative unroll ``p``, spatial blocking and (optionally) multi-FPGA board
count.  The ``p`` axis is densified near each per-(memory, V) feasibility
cap, where the optimum designs live (Section V-A).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Iterator, Mapping, Sequence

from repro.arch.device import FPGADevice
from repro.model.design import Workload, _p_sweep, v_sweep
from repro.model.resources import gdsp_program, max_unroll, module_mem_bytes
from repro.stencil.program import StencilProgram
from repro.util.errors import ValidationError
from repro.util.units import MHZ
from repro.util.validation import check_positive

#: a configuration: one value per axis, JSON-scalar values only
Config = dict[str, Any]
#: hashable canonical form of a configuration
ConfigKey = tuple[tuple[str, Any], ...]


def config_key(config: Mapping[str, Any]) -> ConfigKey:
    """A hashable, order-independent key for a configuration."""
    return tuple(sorted(config.items()))


@dataclass(frozen=True)
class Parameter:
    """One discrete axis of the design space."""

    name: str
    values: tuple[Any, ...]

    def __post_init__(self):
        if not self.name:
            raise ValidationError("parameter needs a name")
        if not self.values:
            raise ValidationError(f"parameter {self.name!r} has no values")
        if len(set(self.values)) != len(self.values):
            raise ValidationError(f"parameter {self.name!r} has duplicate values")

    def index_of(self, value: Any) -> int:
        """Position of ``value`` on this axis."""
        try:
            return self.values.index(value)
        except ValueError:
            raise ValidationError(
                f"{value!r} is not a value of parameter {self.name!r}"
            ) from None


class ParameterSpace:
    """An ordered collection of :class:`Parameter` axes."""

    def __init__(self, parameters: Sequence[Parameter]):
        if not parameters:
            raise ValidationError("a ParameterSpace needs at least one parameter")
        names = [p.name for p in parameters]
        if len(set(names)) != len(names):
            raise ValidationError(f"duplicate parameter names: {names}")
        self.parameters: tuple[Parameter, ...] = tuple(parameters)
        self._by_name = {p.name: p for p in self.parameters}

    # -- introspection ------------------------------------------------------------
    @property
    def names(self) -> tuple[str, ...]:
        """Axis names, in declaration order."""
        return tuple(p.name for p in self.parameters)

    def __getitem__(self, name: str) -> Parameter:
        try:
            return self._by_name[name]
        except KeyError:
            raise ValidationError(
                f"no parameter {name!r}; axes: {list(self.names)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    @property
    def size(self) -> int:
        """Number of configurations on the full grid."""
        n = 1
        for p in self.parameters:
            n *= len(p.values)
        return n

    def validate(self, config: Mapping[str, Any]) -> None:
        """Raise :class:`ValidationError` unless ``config`` lies on the grid."""
        if set(config) != set(self.names):
            raise ValidationError(
                f"config axes {sorted(config)} do not match space axes "
                f"{sorted(self.names)}"
            )
        for p in self.parameters:
            p.index_of(config[p.name])

    # -- enumeration / sampling ---------------------------------------------------
    def grid(self) -> Iterator[Config]:
        """Every configuration, last axis fastest (mixed-radix order)."""
        for i in range(self.size):
            yield self.config_at(i)

    def config_at(self, index: int) -> Config:
        """The configuration at a mixed-radix ``index`` (inverse of :meth:`index_of`)."""
        if not 0 <= index < self.size:
            raise ValidationError(f"index {index} outside grid of size {self.size}")
        config: Config = {}
        for p in reversed(self.parameters):
            index, digit = divmod(index, len(p.values))
            config[p.name] = p.values[digit]
        return {name: config[name] for name in self.names}

    def index_of(self, config: Mapping[str, Any]) -> int:
        """The mixed-radix index of a configuration."""
        self.validate(config)
        index = 0
        for p in self.parameters:
            index = index * len(p.values) + p.index_of(config[p.name])
        return index

    def sample(self, rng: random.Random) -> Config:
        """One uniformly random configuration."""
        return {p.name: rng.choice(p.values) for p in self.parameters}

    def neighbor(self, config: Mapping[str, Any], rng: random.Random) -> Config:
        """A one-axis, one-step move from ``config`` (clamped at axis ends).

        Axes with a single value never move; if every axis is singular the
        configuration is returned unchanged.
        """
        self.validate(config)
        movable = [p for p in self.parameters if len(p.values) > 1]
        if not movable:
            return dict(config)
        p = rng.choice(movable)
        i = p.index_of(config[p.name])
        step = rng.choice((-1, 1))
        j = min(len(p.values) - 1, max(0, i + step))
        if j == i:  # clamped at an end: step the other way
            j = min(len(p.values) - 1, max(0, i - step))
        out = dict(config)
        out[p.name] = p.values[j]
        return out

    # -- derived spaces -----------------------------------------------------------
    def with_parameter(self, parameter: Parameter) -> "ParameterSpace":
        """A new space with one extra axis appended."""
        return ParameterSpace(self.parameters + (parameter,))

    def fixed(self, **values: Any) -> "ParameterSpace":
        """A new space with the named axes pinned to single values."""
        out = []
        for p in self.parameters:
            if p.name in values:
                p.index_of(values[p.name])  # validates membership
                out.append(Parameter(p.name, (values[p.name],)))
            else:
                out.append(p)
        unknown = set(values) - set(self.names)
        if unknown:
            raise ValidationError(f"cannot fix unknown axes {sorted(unknown)}")
        return ParameterSpace(out)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        axes = ", ".join(f"{p.name}[{len(p.values)}]" for p in self.parameters)
        return f"ParameterSpace({axes}, size={self.size})"


# --------------------------------------------------------------------------- #
# model-bound space construction
# --------------------------------------------------------------------------- #
def model_space(
    program: StencilProgram,
    device: FPGADevice,
    workload: Workload,
    tiled: bool | Sequence[bool] = False,
    boards: Sequence[int] = (1,),
    memories: Sequence[str] | None = None,
    batches: Sequence[int] = (1,),
) -> ParameterSpace:
    """The feasibility-aware design space of the analytic model.

    Axes: ``memory`` (external memory target), ``V`` (powers of two up to
    the bandwidth bound, eq. (4)), ``p`` (densified near the per-(memory, V)
    caps from eqs. (6)/(7)), ``tiled`` (spatial blocking on/off), ``boards``
    (multi-FPGA spatial scaling) and ``batch`` (how many same-shaped meshes
    are streamed back to back per solve, eq. (15) — a *workload* axis: one
    design must serve every batch size well, and the functional path behind
    it is the stacked-tape :class:`~repro.dataflow.batcher.BatchRunner`, see
    :meth:`repro.dse.evaluate.Evaluator.batch_runner`).  The grid is
    deliberately rectangular — combinations outside a particular
    (memory, V) cap simply evaluate as infeasible, which keeps
    configurations declarative and resumable.
    """
    memories = tuple(memories or device.memory_targets)
    for memory in memories:
        device.memory(memory)  # validates the target exists
    gdsp = gdsp_program(program)
    clock_hz = device.default_clock_mhz * MHZ
    module_bytes = module_mem_bytes(program, workload.mesh.shape)

    v_values: set[int] = {1}
    for memory in memories:
        v_values.update(v_sweep(program, device, memory, clock_hz))
    p_values: set[int] = {1}
    # feasibility checks admit up to the full line-buffer budget (eq. 7)
    hard_mem_p = max(1, device.usable_on_chip_bytes() // module_bytes)
    for V in sorted(v_values):
        # planning caps: DSP at 90% (eq. 6) and line buffers (eq. 7) ...
        p_values.update(_p_sweep(max_unroll(device, V, gdsp, module_bytes)))
        # ... plus the hard-DSP caps the checks actually enforce — the paper's
        # Jacobi synthesized at p=29 against a planning bound of 28, and the
        # optimum regularly sits in that gap, so cover it contiguously
        hard_dsp_p = max(1, device.dsp_blocks // (V * gdsp))
        p_values.update(_dense_cap(min(hard_dsp_p, hard_mem_p)))
        # tiled designs trade buffer for redundancy: DSP bound only
        if _wants_tiling(tiled):
            p_values.update(_p_sweep(max(1, device.usable_dsp() // (V * gdsp))))
            p_values.update(_dense_cap(hard_dsp_p))

    tiled_axis = tuple(tiled) if isinstance(tiled, (tuple, list)) else (bool(tiled),)
    parameters = [
        Parameter("memory", memories),
        Parameter("V", tuple(sorted(v_values))),
        Parameter("p", tuple(sorted(p_values))),
        Parameter("tiled", tiled_axis),
    ]
    _append_scale_axes(parameters, boards, batches)
    return ParameterSpace(parameters)


def _append_scale_axes(
    parameters: list[Parameter], boards: Sequence[int], batches: Sequence[int]
) -> None:
    """Append the optional ``boards``/``batch`` axes (omitted when trivial)."""
    boards_axis = tuple(boards)
    if boards_axis != (1,):
        parameters.append(Parameter("boards", boards_axis))
    batches_axis = tuple(batches)
    if batches_axis != (1,):
        for batch in batches_axis:
            check_positive("batch", batch)
        parameters.append(Parameter("batch", batches_axis))


def mix_space(
    mix,
    device: FPGADevice,
    tiled: bool | Sequence[bool] = False,
    boards: Sequence[int] = (1,),
    memories: Sequence[str] | None = None,
    batches: Sequence[int] = (1,),
    program: StencilProgram | None = None,
) -> ParameterSpace:
    """The union design space of every distinct program in a workload mix.

    A mix-scored study needs one grid that covers each member's sweet spot:
    an RTM member's huge ``G_dsp`` caps feasible unrolls near the bottom of
    a Jacobi member's axis, so a space built from either program alone is
    blind to the other's optimum. This unions the per-program ``V``/``p``
    axes of :func:`model_space` across the mix's distinct specs — the grid
    stays rectangular and declarative; combinations infeasible for *any*
    member simply evaluate as infeasible (the evaluator checks every spec).

    Specs carrying app names resolve their programs through the registry;
    app-less specs rebind ``program`` to their mesh, exactly as
    :class:`~repro.dse.evaluate.Evaluator` does with ``workloads=``.
    """
    from repro.workload import as_mix  # lazy: workload layer is model-free

    mix = as_mix(mix)
    v_values: set[int] = set()
    p_values: set[int] = set()
    tiled_axis: tuple[bool, ...] | None = None
    mems: tuple[str, ...] | None = None
    for spec in mix.group_by_spec():
        if spec.app is None:
            if program is None:
                raise ValidationError(
                    f"workload {spec} names no application; pass program= "
                    f"so app-less specs can be bound"
                )
            prog = program.with_mesh(spec.mesh)
        else:
            prog = spec.program()
        space = model_space(
            prog, device, spec,
            tiled=tiled, boards=(1,), memories=memories, batches=(1,),
        )
        v_values.update(space["V"].values)
        p_values.update(space["p"].values)
        mems = space["memory"].values
        tiled_axis = space["tiled"].values
    parameters = [
        Parameter("memory", mems),
        Parameter("V", tuple(sorted(v_values))),
        Parameter("p", tuple(sorted(p_values))),
        Parameter("tiled", tiled_axis),
    ]
    _append_scale_axes(parameters, boards, batches)
    return ParameterSpace(parameters)


def _dense_cap(cap: int) -> set[int]:
    """The cap's sweep plus every unroll within 8 of it (no gaps at the top)."""
    return set(_p_sweep(cap)) | set(range(max(1, cap - 8), cap + 1))


def _wants_tiling(tiled: bool | Sequence[bool]) -> bool:
    if isinstance(tiled, (tuple, list)):
        return any(tiled)
    return bool(tiled)
