"""Compute modules: one unrolled time-iteration of the program body.

A :class:`StencilModule` chains the program's fused stages (each a
:class:`~repro.dataflow.compute.ComputeUnit` behind its window buffers) for
one iteration — the unit that iterative unrolling replicates ``p`` times
(paper Fig. 2).

Functionally the module executes through the plan-compiled engine by
default (:mod:`repro.stencil.compiled`), falling back to the tree-walking
golden interpreter when constructed with ``engine="interpreter"``. Both
paths are bit-identical; the structural accounting (fill latency, stream
cycles, DSP cost) is engine-independent.
"""

from __future__ import annotations

from typing import Mapping

from repro.dataflow.compute import ComputeUnit
from repro.mesh.mesh import Field
from repro.stencil.compiled import (
    CompiledPlanCache,
    check_engine,
    run_program_compiled,
)
from repro.stencil.program import StencilProgram
from repro.util.validation import check_positive


class StencilModule:
    """One iteration of the program body as a chained dataflow stage."""

    def __init__(
        self,
        program: StencilProgram,
        V: int,
        engine: str = "compiled",
        plan_cache: CompiledPlanCache | None = None,
    ):
        check_positive("V", V)
        self.program = program
        self.V = V
        self.engine = check_engine(engine)
        self.plan_cache = plan_cache
        self.units = [ComputeUnit(k, V) for k in program.kernels()]

    def process(
        self,
        fields: Mapping[str, Field],
        coefficients: Mapping[str, float] | None = None,
    ) -> dict[str, Field]:
        """Run one time iteration; returns the updated field environment."""
        # "parallel" differs from "compiled" only at batch granularity — a
        # single-mesh single-iteration step has nothing to fan out
        if self.engine != "interpreter":
            return run_program_compiled(
                self.program, fields, 1, coefficients, cache=self.plan_cache,
                engine=self.engine,
            )
        env: dict[str, Field] = dict(fields)
        for unit in self.units:
            env.update(unit.process(env, coefficients))
        return env

    def fill_lines(self) -> int:
        """Fill latency of the module: sum of its stages' ``D/2`` lines."""
        return sum(unit.fill_lines() for unit in self.units)

    def stream_cycles(self, mesh_shape: tuple[int, ...]) -> int:
        """Streaming cycles of the module (stages run concurrently: max, not sum)."""
        return max(unit.stream_cycles(mesh_shape) for unit in self.units)

    @property
    def dsp_cost(self) -> int:
        """DSP blocks of the module at the default operator costs."""
        from repro.model.resources import gdsp_kernel

        return self.V * sum(gdsp_kernel(u.kernel) for u in self.units)
