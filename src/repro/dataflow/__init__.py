"""Cycle-approximate dataflow simulator of the paper's accelerator template.

The simulator plays the role the Alveo U280 board plays in the paper: it
*executes* the architecture the workflow designs — window buffers feeding
compute units, ``p`` chained compute modules, overlapped spatial tiles,
batched streams — and reports structural cycle counts (fill, drain, burst
quantization, padding) that the closed-form model idealizes away.

Numerics are bit-identical (float32) to the NumPy golden model by
construction: the hardware-equivalent streaming path
(:mod:`repro.dataflow.window`) is validated against the vectorized path in
the test suite, and the vectorized path is what the top-level
:class:`~repro.dataflow.accelerator.FPGAAccelerator` runs.
"""

from repro.dataflow.window import LineBufferStream, stream_iterate_2d, stream_iterate_3d
from repro.dataflow.compute import ComputeUnit
from repro.dataflow.module import StencilModule
from repro.dataflow.pipeline import IterativePipeline
from repro.dataflow.datamover import DataMover, TransferStats
from repro.dataflow.tiler import SpatialTiler, plan_blocks, BlockPlan
from repro.dataflow.batcher import BatchRunner
from repro.dataflow.scheduler import GroupRun, MixRunResult, MixScheduler
from repro.dataflow.accelerator import FPGAAccelerator, MixReport, SimReport, HostModel

__all__ = [
    "GroupRun",
    "MixReport",
    "MixRunResult",
    "MixScheduler",
    "LineBufferStream",
    "stream_iterate_2d",
    "stream_iterate_3d",
    "ComputeUnit",
    "StencilModule",
    "IterativePipeline",
    "DataMover",
    "TransferStats",
    "SpatialTiler",
    "plan_blocks",
    "BlockPlan",
    "BatchRunner",
    "FPGAAccelerator",
    "SimReport",
    "HostModel",
]
