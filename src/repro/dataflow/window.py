"""Window buffers: literal cyclic line/plane buffer emulation (paper Fig. 1).

The FPGA template caches ``D`` rows (2D) or ``D`` planes (3D) of the input
stream in BRAM/URAM cyclic buffers so every mesh point is read from external
memory exactly once ("perfect data reuse"). This module emulates that
mechanism line by line: :class:`LineBufferStream` holds the cyclic window,
and :func:`stream_iterate_2d` / :func:`stream_iterate_3d` run a whole kernel
through it.

The streaming path produces bit-identical float32 results to the vectorized
golden evaluator — the equivalence is asserted in the test suite — and it is
the reference for what the HLS code generator emits. The top-level simulator
uses the (much faster) vectorized path.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator, Mapping

import numpy as np

from repro.mesh.mesh import Field, MeshSpec
from repro.stencil.expr import BinOp, Coef, Const, Expr, FieldAccess, Neg
from repro.stencil.kernel import StencilKernel
from repro.util.errors import SimulationError, ValidationError
from repro.util.validation import check_non_negative


class LineBufferStream:
    """A cyclic buffer over the last ``2r+1`` lines of a stream.

    Push lines (rows or planes) in streaming order; once the window is full,
    each push returns the centred window: a list of the ``2r+1`` most recent
    lines with index ``r`` holding the line the stencil output is centred on.
    """

    def __init__(self, radius: int):
        check_non_negative("radius", radius)
        self.radius = radius
        self._window: deque[np.ndarray] = deque(maxlen=2 * radius + 1)
        self.pushes = 0

    @property
    def depth(self) -> int:
        """Lines held by the buffer (the paper's ``D`` rows/planes plus one in flight)."""
        return 2 * self.radius + 1

    @property
    def full(self) -> bool:
        """True once enough lines are buffered to emit a window."""
        return len(self._window) == self.depth

    def push(self, line: np.ndarray) -> list[np.ndarray] | None:
        """Push one line; return the centred window when available."""
        self._window.append(line)
        self.pushes += 1
        if self.full:
            return list(self._window)
        return None

    def window(self) -> list[np.ndarray]:
        """The buffered lines, oldest first (centre at index ``radius`` when full)."""
        return list(self._window)

    def reset(self) -> None:
        """Clear the buffer for the next mesh/pass."""
        self._window.clear()
        self.pushes = 0


class _RowEvaluator:
    """Evaluates kernel expressions over one output row, given line windows.

    ``windows`` maps each field to its list of lines (length ``2*r_axis+1``
    along the slowest axis); a line is a row ``(m, c)`` for 2D meshes or a
    plane ``(n, m, c)`` for 3D meshes.
    """

    def __init__(
        self,
        windows: Mapping[str, list[np.ndarray]],
        coeffs: Mapping[str, float],
        radius: tuple[int, ...],
        dtype: np.dtype,
        row_within_plane: int | None = None,
    ):
        self.windows = windows
        self.coeffs = coeffs
        self.radius = radius
        self.dtype = dtype
        self.row_within_plane = row_within_plane

    def eval(self, expr: Expr) -> np.ndarray | np.floating:
        if isinstance(expr, Const):
            return self.dtype.type(expr.value)
        if isinstance(expr, Coef):
            return self.dtype.type(self.coeffs[expr.name])
        if isinstance(expr, Neg):
            return -self.eval(expr.operand)
        if isinstance(expr, BinOp):
            lhs, rhs = self.eval(expr.lhs), self.eval(expr.rhs)
            if expr.op == "+":
                return lhs + rhs
            if expr.op == "-":
                return lhs - rhs
            if expr.op == "*":
                return lhs * rhs
            return lhs / rhs
        if isinstance(expr, FieldAccess):
            return self._access(expr)
        raise SimulationError(f"unknown expression node {type(expr).__name__}")

    def _access(self, access: FieldAccess) -> np.ndarray:
        window = self.windows[access.field]
        ndim = len(access.offset)
        rx = self.radius[0]
        centre = (len(window) - 1) // 2
        if ndim == 2:
            dx, dy = access.offset
            row = window[centre + dy]
            m = row.shape[0]
            return row[rx + dx : m - rx + dx, access.component]
        dx, dy, dz = access.offset
        plane = window[centre + dz]
        ry = self.radius[1]
        y = self.row_within_plane
        m = plane.shape[1]
        return plane[y + dy, rx + dx : m - rx + dx, access.component]


def _kernel_coeffs(kernel: StencilKernel, extra: Mapping[str, float] | None) -> dict[str, float]:
    coeffs = dict(kernel.coefficients)
    if extra:
        coeffs.update(extra)
    return coeffs


def stream_iterate_2d(
    kernel: StencilKernel,
    fields: Mapping[str, Field],
    coefficients: Mapping[str, float] | None = None,
) -> dict[str, Field]:
    """Run a 2D kernel through literal row-streaming window buffers.

    Functionally identical to :func:`repro.stencil.numpy_eval.apply_kernel`;
    exists to validate the hardware mechanism (and is what the generated HLS
    code does row by row).
    """
    spec = _common_spec(kernel, fields, 2)
    rx, ry = kernel.radius
    n, m = spec.shape[1], spec.shape[0]
    read_fields = kernel.read_fields()
    buffers = {f: LineBufferStream(ry) for f in read_fields}
    outputs: dict[str, np.ndarray] = {}
    for out in kernel.outputs:
        if out.init_from is not None:
            outputs[out.field] = fields[out.init_from].data.copy()
        else:
            outputs[out.field] = np.zeros(
                (n, m, out.components), dtype=spec.dtype
            )
    coeffs = _kernel_coeffs(kernel, coefficients)

    for y in range(n + ry):
        # push the next input row into every window buffer (streaming in)
        if y < n:
            for f in read_fields:
                buffers[f].push(fields[f].data[y])
        else:
            for f in read_fields:  # drain: re-push last row, windows centred below n
                buffers[f].push(fields[f].data[n - 1])
        out_y = y - ry
        if out_y < ry or out_y >= n - ry:
            continue
        windows = {f: buffers[f].window() for f in read_fields}
        local_env = dict(windows)
        evaluator = _RowEvaluator(local_env, coeffs, (rx, ry), spec.dtype)
        for out in kernel.outputs:
            row_vals = [evaluator.eval(expr) for expr in out.exprs]
            for comp, vals in enumerate(row_vals):
                outputs[out.field][out_y, rx : m - rx, comp] = vals
            # expose the fresh centre row to later outputs of this kernel
            local_env[out.field] = [outputs[out.field][out_y]] * (2 * ry + 1)
    result: dict[str, Field] = {}
    for out in kernel.outputs:
        out_spec = MeshSpec(spec.shape, out.components, spec.dtype)
        result[out.field] = Field(out.field, out_spec, outputs[out.field])
    return result


def stream_iterate_3d(
    kernel: StencilKernel,
    fields: Mapping[str, Field],
    coefficients: Mapping[str, float] | None = None,
) -> dict[str, Field]:
    """Run a 3D kernel through literal plane-streaming window buffers."""
    spec = _common_spec(kernel, fields, 3)
    rx, ry, rz = kernel.radius
    m, n, l = spec.shape
    read_fields = kernel.read_fields()
    buffers = {f: LineBufferStream(rz) for f in read_fields}
    outputs: dict[str, np.ndarray] = {}
    for out in kernel.outputs:
        if out.init_from is not None:
            outputs[out.field] = fields[out.init_from].data.copy()
        else:
            outputs[out.field] = np.zeros((l, n, m, out.components), dtype=spec.dtype)
    coeffs = _kernel_coeffs(kernel, coefficients)

    for z in range(l + rz):
        if z < l:
            for f in read_fields:
                buffers[f].push(fields[f].data[z])
        else:
            for f in read_fields:
                buffers[f].push(fields[f].data[l - 1])
        out_z = z - rz
        if out_z < rz or out_z >= l - rz:
            continue
        windows = {f: buffers[f].window() for f in read_fields}
        for y in range(ry, n - ry):
            local_env = dict(windows)
            evaluator = _RowEvaluator(local_env, coeffs, (rx, ry, rz), spec.dtype, y)
            for out in kernel.outputs:
                row_vals = [evaluator.eval(expr) for expr in out.exprs]
                for comp, vals in enumerate(row_vals):
                    outputs[out.field][out_z, y, rx : m - rx, comp] = vals
                fresh = outputs[out.field][out_z]
                local_env[out.field] = [fresh] * (2 * rz + 1)
    result: dict[str, Field] = {}
    for out in kernel.outputs:
        out_spec = MeshSpec(spec.shape, out.components, spec.dtype)
        result[out.field] = Field(out.field, out_spec, outputs[out.field])
    return result


def _common_spec(kernel: StencilKernel, fields: Mapping[str, Field], ndim: int) -> MeshSpec:
    for f in kernel.read_fields():
        if f not in fields:
            raise ValidationError(f"kernel '{kernel.name}' needs field '{f}'")
    spec = fields[kernel.read_fields()[0]].spec
    if spec.ndim != ndim:
        raise ValidationError(
            f"kernel '{kernel.name}' expects {ndim}D fields, got {spec.ndim}D"
        )
    return spec
