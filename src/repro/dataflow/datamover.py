"""Data movers: AXI read/write units between external memory and the pipeline.

The paper's designs keep the memory interface busy with 512-bit burst
transfers; contiguous full-mesh streams reach near-peak channel bandwidth
while tiled (strided) streams pay per-run latency and alignment overhead
(Section IV-A). :class:`DataMover` converts a transfer plan into cycles and
bytes using the :mod:`repro.arch.memory` burst model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.device import FPGADevice, MemoryBank
from repro.arch.memory import AXIPort, stream_cycles
from repro.mesh.padding import aligned_row_bytes
from repro.util.rounding import ceil_div
from repro.util.validation import check_positive


@dataclass(frozen=True)
class TransferStats:
    """Outcome of one planned transfer stream."""

    bytes_useful: int
    bytes_moved: int
    cycles: int

    @property
    def efficiency(self) -> float:
        """Useful fraction of moved bytes (alignment overhead excluded)."""
        return self.bytes_useful / self.bytes_moved if self.bytes_moved else 1.0


class DataMover:
    """Plans contiguous and strided transfers for one memory channel."""

    def __init__(self, device: FPGADevice, memory: str, clock_hz: float):
        check_positive("clock_hz", clock_hz)
        self.device = device
        self.bank: MemoryBank = device.memory(memory)
        self.clock_hz = clock_hz
        self.port = AXIPort(bus_bits=device.axi_bus_bits)

    def contiguous(self, nbytes: int) -> TransferStats:
        """A single long contiguous stream (baseline/batched mesh traversal)."""
        check_positive("nbytes", nbytes)
        chunks = ceil_div(nbytes, self.port.max_burst_bytes)
        cycles = stream_cycles(self.port, self.port.max_burst_bytes, chunks)
        moved = chunks * self.port.max_burst_bytes
        # the final chunk is short; count moved bytes exactly
        moved = nbytes + (-nbytes) % self.port.bus_bytes
        return TransferStats(nbytes, moved, cycles)

    def strided_rows(self, row_bytes: int, num_rows: int) -> TransferStats:
        """``num_rows`` fixed-length runs at a stride (tiled access).

        Each run is aligned up to the 512-bit bus; runs are independent
        transactions whose latency overlaps up to the outstanding limit.
        """
        check_positive("row_bytes", row_bytes)
        check_positive("num_rows", num_rows)
        aligned = aligned_row_bytes(1, row_bytes, self.port.bus_bytes)
        cycles = stream_cycles(self.port, aligned, num_rows)
        return TransferStats(row_bytes * num_rows, aligned * num_rows, cycles)

    def channel_limited_cycles(self, nbytes: float, channels: int = 1) -> float:
        """Cycles for ``nbytes`` at the channel's peak bandwidth (no overheads)."""
        check_positive("channels", channels)
        seconds = nbytes / (self.bank.channel_bandwidth * channels)
        return seconds * self.clock_hz
