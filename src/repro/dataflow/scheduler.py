"""Workload-mix scheduling: execute a whole mix end-to-end.

The :class:`MixScheduler` is the host-side orchestrator the paper's batched
mode (Section IV-B) implies but never names: given a
:class:`~repro.workload.WorkloadMix` — many meshes of differing shapes and
iteration counts in flight at once — it

1. **groups** members by identical job shape
   (:meth:`~repro.workload.WorkloadMix.job_groups`: same app, mesh, dtype
   and ``niter``), so every group rides one compiled plan;
2. **executes** each group through the compiled engine in chunked stacked
   mode (:func:`repro.stencil.compiled.run_program_stacked`): meshes stack
   batch-major in footprint-bounded chunks, paying one tape dispatch per
   chunk instead of one per mesh;
3. **accounts** for the dispatches actually issued, so callers (harness
   experiments, benchmarks, DSE validation) can compare scheduling
   policies structurally rather than by wall clock alone.

The scheduler runs *exact* iteration counts: it orchestrates at the engine
level, where the unroll factor ``p`` is a cycle-accounting concern rather
than a functional constraint (the accelerator's cycle reports already
charge ``ceil(niter / p)`` passes). Results are bit-identical per mesh to
the golden interpreter; ``validate=True`` re-derives every mesh on the
interpreter and raises on any mismatch.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field as dc_field
from typing import Callable, Mapping

import numpy as np

from repro import observability as obs
from repro.mesh.mesh import Field, MeshSpec
from repro.observability.metrics import percentiles
from repro.resilience import (
    CancelToken,
    ExecutionCancelled,
    FaultPlan,
    RetryPolicy,
)
from repro.stencil.compiled import (
    CompiledPlanCache,
    check_engine,
    run_program_stacked,
)
from repro.stencil.program import StencilProgram
from repro.util.errors import ValidationError
from repro.workload import MixLike, WorkloadMix, WorkloadSpec, as_mix

#: makes the initial conditions of one group member: ``(spec, index) -> env``
FieldsFor = Callable[[WorkloadSpec, int], Mapping[str, Field]]
#: resolves the program a spec runs: ``spec -> StencilProgram``
ProgramFor = Callable[[WorkloadSpec], StencilProgram]


def per_mesh_stats(meshes: int) -> dict:
    """The dispatch accounting of a strictly per-mesh engine.

    One dispatch per mesh, nothing stacked — the default the scheduler
    assumes when an engine reports no accounting at all (the interpreter
    reference path fills its ``chunk_seconds`` in as it runs).
    """
    return {
        "chunks": [1] * meshes,
        "dispatches": meshes,
        "stacked_meshes": 0,
        "chunk_seconds": [],
    }


@dataclass(frozen=True)
class GroupRun:
    """Execution record of one job group of a mix."""

    #: the merged execution spec (batch = total meshes of the group)
    spec: WorkloadSpec
    #: per-mesh final field environments, in member order
    results: tuple[dict[str, Field], ...]
    #: tape dispatches issued for the group
    dispatches: int
    #: stacked chunk sizes the dispatches used (``[1]*B`` on per-mesh paths)
    chunks: tuple[int, ...]
    #: per-dispatch wall-clock seconds, in chunk order (empty when the
    #: executing engine reported no timing)
    chunk_seconds: tuple[float, ...] = ()
    #: chunk recoveries the parallel engine performed for this group
    retries: int = 0

    @property
    def meshes(self) -> int:
        """Meshes solved in this group."""
        return len(self.results)

    def latency_percentiles(self) -> dict[str, float]:
        """p50/p95/p99 of this group's per-dispatch wall times (seconds).

        Exact percentiles over the recorded :attr:`chunk_seconds` samples;
        all-NaN when the engine reported no timing.
        """
        return percentiles(self.chunk_seconds)


@dataclass(frozen=True)
class GroupError:
    """Failure record of one job group under best-effort scheduling.

    Produced by ``strict=False`` runs in place of the group's
    :class:`GroupRun`: the group's merged spec, the final error, and —
    when the parallel engine's retry ladder was involved — how many
    attempts the failing chunk made and which ladder rung it died on.
    """

    spec: WorkloadSpec
    #: repr of the exception that ended the group
    error: str
    #: total attempts of the failing chunk across every ladder rung
    attempts: int | None = None
    #: ladder rung the failing chunk ended on ("process"/"thread"/"serial")
    backend: str | None = None

    def describe(self) -> str:
        """One line for tables and logs: spec, attempts, final backend."""
        parts = [self.spec.describe()]
        if self.attempts is not None:
            parts.append(f"{self.attempts} attempts")
        if self.backend:
            parts.append(f"ended on {self.backend}")
        return f"{' · '.join(parts)}: {self.error}"


@dataclass(frozen=True)
class MixRunResult:
    """Outcome of scheduling one mix."""

    groups: tuple[GroupRun, ...]
    #: True when every mesh was re-derived on the golden interpreter
    validated: bool = False
    #: failed groups isolated by a best-effort (``strict=False``) run;
    #: always empty under strict scheduling, where the first failure raises
    errors: tuple[GroupError, ...] = ()

    @property
    def ok(self) -> bool:
        """True when every group of the mix completed."""
        return not self.errors

    @property
    def meshes(self) -> int:
        """Total meshes solved across the mix."""
        return sum(g.meshes for g in self.groups)

    @property
    def dispatches(self) -> int:
        """Total tape dispatches issued across the mix."""
        return sum(g.dispatches for g in self.groups)

    def group_for(self, spec: WorkloadSpec) -> GroupRun:
        """The group run a spec's members landed in."""
        for group in self.groups:
            if group.spec.job_key == spec.job_key:
                return group
        raise ValidationError(f"no group in this run matches {spec}")

    def latency_percentiles(self) -> dict[str, dict[str, float]]:
        """Per-group p50/p95/p99 dispatch latency, keyed by group describe."""
        return {
            group.spec.describe(): group.latency_percentiles()
            for group in self.groups
        }


@dataclass
class MixScheduler:
    """Runs workload mixes through the (chunked) stacked compiled engine.

    ``fields_for`` and ``program_for`` default to resolution through the
    application registry for specs carrying app names; app-less specs need
    a ``program_for`` (their initial conditions are then synthesized
    reproducibly from the program's field contract unless ``fields_for``
    supplies them). ``stacked_bytes_limit`` tunes the per-chunk working-set
    budget (None: the module default); ``engine="interpreter"`` runs every
    mesh on the golden path instead (per-mesh dispatch, for reference
    measurements); ``engine="parallel"`` submits *every group's* chunks to
    a worker pool before collecting any of them, so independent job groups
    — not just chunks within one group — overlap on the pool
    (``max_workers`` bounds its width). Group order, per-mesh result order
    and dispatch accounting are identical on every engine: chunks are
    scheduled deterministically at submit time and reassembled by
    position, whatever order workers finish in.

    ``strict`` picks the failure semantics: strict runs (the default)
    raise on the first failing group, exactly as before; ``strict=False``
    **isolates** a failing group — its :class:`GroupError` (spec,
    attempts, final ladder rung) lands on ``MixRunResult.errors`` while
    every other group still completes, the right contract for a live job
    population where one bad workload must not abort its neighbours.
    ``retry_policy``/``fault_plan`` pass through to the parallel engine's
    resilience layer (:mod:`repro.resilience`).
    """

    engine: str = "compiled"
    plan_cache: CompiledPlanCache | None = None
    stacked_bytes_limit: float | None = None
    fields_for: FieldsFor | None = None
    program_for: ProgramFor | None = None
    #: base seed mixed into default initial conditions per member
    seed: int = 0
    coefficients: Mapping[str, float] | None = dc_field(default=None)
    #: worker-pool width for ``engine="parallel"`` (None: one per core)
    max_workers: int | None = None
    #: raise on the first failing group (True) or isolate it (False)
    strict: bool = True
    #: recovery policy for ``engine="parallel"`` (None: the default policy)
    retry_policy: RetryPolicy | None = None
    #: deterministic faults armed into parallel dispatches (None: env plan)
    fault_plan: FaultPlan | None = None

    def __post_init__(self):
        check_engine(self.engine)

    # -- members ------------------------------------------------------------------
    def _program(self, spec: WorkloadSpec) -> StencilProgram:
        if self.program_for is not None:
            return self.program_for(spec)
        return spec.program()

    def _fields(
        self, spec: WorkloadSpec, index: int, program: StencilProgram
    ) -> Mapping[str, Field]:
        if self.fields_for is not None:
            return self.fields_for(spec, index)
        if spec.app is not None:
            return spec.fields(seed=self.seed + index)
        return self._synthesized_fields(program, spec, index)

    def _synthesized_fields(
        self, program: StencilProgram, spec: WorkloadSpec, index: int
    ) -> Mapping[str, Field]:
        """Reproducible random initial conditions from the program contract.

        App-less specs have no registered field maker; for execution and
        bit-identity validation any values serve, so synthesize them from
        what the program declares — state fields on the mesh spec itself,
        constant fields scalar (the program's external-contract convention).
        """
        from repro.stencil.plan import required_inputs

        state = set(program.state_fields)
        env: dict[str, Field] = {}
        for offset, name in enumerate(required_inputs(program)):
            fspec = (
                spec.mesh
                if name in state
                else MeshSpec(spec.mesh.shape, 1, spec.mesh.dtype)
            )
            env[name] = Field.random(
                name, fspec, seed=(self.seed + index) * 1009 + offset
            )
        return env

    # -- execution ----------------------------------------------------------------
    def run(
        self,
        mix: MixLike,
        validate: bool = False,
        cancel: CancelToken | None = None,
    ) -> MixRunResult:
        """Execute every member of the mix; returns per-group results.

        Members are grouped by job shape and each group executes in
        chunked stacked mode (one compiled tape dispatch per chunk). With
        ``validate=True`` every mesh is additionally solved on the golden
        interpreter and compared bitwise — any divergence raises.

        ``cancel`` threads a :class:`~repro.resilience.CancelToken` through
        every engine: a set token abandons the run at the next chunk
        boundary and raises :class:`~repro.resilience.ExecutionCancelled`
        (never isolated by ``strict=False`` — cancellation is a caller
        decision, not a group failure; parallel shared-memory segments are
        reclaimed before it propagates).
        """
        mix = as_mix(mix)
        specs = list(mix.job_groups().values())
        with obs.span("mix.run", groups=len(specs), engine=self.engine):
            if self.engine == "parallel":
                return self._run_parallel(specs, validate, cancel)
            groups: list[GroupRun] = []
            errors: list[GroupError] = []
            for spec in specs:
                if self.strict:
                    groups.append(self._run_group(spec, validate, cancel))
                    continue
                try:
                    groups.append(self._run_group(spec, validate, cancel))
                except ExecutionCancelled:
                    raise
                except Exception as exc:  # noqa: BLE001 - isolated below
                    errors.append(self._group_error(spec, exc))
            return MixRunResult(
                tuple(groups), validated=validate, errors=tuple(errors)
            )

    def _run_group(
        self,
        spec: WorkloadSpec,
        validate: bool,
        cancel: CancelToken | None = None,
    ) -> GroupRun:
        program = self._program(spec)
        envs = [self._fields(spec, i, program) for i in range(spec.batch)]
        stats: dict = {}
        with obs.span(
            "mix.group",
            spec=spec.describe(),
            batch=spec.batch,
            engine=self.engine,
        ):
            if self.engine in ("compiled", "native"):
                results = run_program_stacked(
                    program,
                    envs,
                    spec.niter,
                    self.coefficients,
                    cache=self.plan_cache,
                    max_stack_bytes=self.stacked_bytes_limit,
                    stats=stats,
                    cancel=cancel,
                    engine=self.engine,
                )
            else:
                stats = per_mesh_stats(len(envs))
                seconds = stats["chunk_seconds"]
                results = []
                for env in envs:
                    if cancel is not None:
                        cancel.raise_if_set(f"mix group {spec.describe()}")
                    t0 = time.perf_counter()
                    results.append(self._golden(program, env, spec.niter))
                    seconds.append(time.perf_counter() - t0)
        if validate and self.engine != "interpreter":
            self._validate_group(spec, program, envs, results)
        return self._group_run(spec, envs, results, stats)

    def _run_parallel(
        self,
        specs: list[WorkloadSpec],
        validate: bool,
        cancel: CancelToken | None = None,
    ) -> MixRunResult:
        """Fan every group's chunks out before collecting any group.

        Submission order is the mix's group order; collection blocks on
        groups in that same order, so results, accounting and error
        precedence are deterministic while the pool interleaves chunks of
        all groups freely. A failing chunk surfaces as
        :class:`~repro.parallel.ParallelExecutionError` carrying the
        originating workload spec; still-pending sibling groups are
        drained and their shared-memory segments reclaimed before it
        propagates.
        """
        from repro.parallel.executor import ParallelExecutionError, submit_stacked

        pending: list[tuple[WorkloadSpec, StencilProgram, list, dict, object]] = []
        errors: list[GroupError] = []
        try:
            for spec in specs:
                try:
                    program = self._program(spec)
                    envs = [
                        self._fields(spec, i, program) for i in range(spec.batch)
                    ]
                    stats: dict = {}
                    batch = submit_stacked(
                        program,
                        envs,
                        spec.niter,
                        self.coefficients,
                        cache=self.plan_cache,
                        max_stack_bytes=self.stacked_bytes_limit,
                        stats=stats,
                        max_workers=self.max_workers,
                        policy=self.retry_policy,
                        fault_plan=self.fault_plan,
                        cancel=cancel,
                    )
                except ExecutionCancelled:
                    raise
                except Exception as exc:  # noqa: BLE001 - isolated below
                    if self.strict:
                        raise
                    errors.append(self._group_error(spec, exc))
                    continue
                pending.append((spec, program, envs, stats, batch))
            groups = []
            for spec, program, envs, stats, batch in pending:
                try:
                    with obs.span(
                        "mix.group",
                        spec=spec.describe(),
                        batch=spec.batch,
                        engine=self.engine,
                    ):
                        try:
                            results = batch.result()
                        except ParallelExecutionError as exc:
                            raise ParallelExecutionError(
                                f"workload {spec.describe()}: {exc}",
                                backend=exc.backend,
                                elapsed=exc.elapsed,
                                attempts=exc.attempts,
                                final_backend=exc.final_backend,
                            ) from exc
                    if validate:
                        self._validate_group(spec, program, envs, results)
                except ExecutionCancelled:
                    raise
                except Exception as exc:  # noqa: BLE001 - isolated below
                    if self.strict:
                        raise
                    errors.append(self._group_error(spec, exc))
                    continue
                groups.append(self._group_run(spec, envs, results, stats))
            return MixRunResult(
                tuple(groups), validated=validate, errors=tuple(errors)
            )
        finally:
            for *_rest, batch in pending:
                batch.close()  # no-op on collected groups

    def _group_error(self, spec: WorkloadSpec, exc: Exception) -> GroupError:
        """Record — and make observable — one isolated group failure."""
        record = GroupError(
            spec,
            error=repr(exc),
            attempts=getattr(exc, "attempts", None),
            backend=getattr(exc, "final_backend", None),
        )
        obs.inc("mix.group_failures", engine=self.engine)
        obs.emit(
            "mix.group_failure",
            spec=spec.describe(),
            error=record.error,
            attempts=record.attempts,
            backend=record.backend,
        )
        return record

    def _validate_group(self, spec, program, envs, results) -> None:
        for index, (env, result) in enumerate(zip(envs, results)):
            golden = self._golden(program, env, spec.niter)
            for name, field in golden.items():
                if not np.array_equal(field.data, result[name].data):
                    raise ValidationError(
                        f"mix group {spec} member {index}: field "
                        f"'{name}' diverges from the golden interpreter"
                    )

    @staticmethod
    def _group_run(spec, envs, results, stats: dict) -> GroupRun:
        # an engine that filled nothing in gets the per-mesh default once;
        # a partially-filled dict is taken at face value — chunks are never
        # fabricated to paper over missing accounting
        if not stats:
            stats = per_mesh_stats(len(envs))
        chunks = tuple(stats.get("chunks", ()))
        return GroupRun(
            spec,
            tuple(results),
            dispatches=int(stats.get("dispatches", len(chunks))),
            chunks=chunks,
            chunk_seconds=tuple(stats.get("chunk_seconds", ())),
            retries=int(stats.get("retries", 0)),
        )

    def _golden(self, program: StencilProgram, env, niter: int):
        from repro.stencil.numpy_eval import run_program

        return run_program(
            program, env, niter, self.coefficients, engine="interpreter"
        )
