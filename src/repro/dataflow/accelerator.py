"""Top-level simulated FPGA accelerator.

:class:`FPGAAccelerator` plays the role of the synthesized bitstream plus
host runtime: configure it with a program and a design point, hand it host
data, and it returns results (bit-identical to the golden model) together
with a :class:`SimReport` of structural cycles, runtime, bandwidth, power
and energy. The report corresponds to the paper's *measured* series, while
:class:`~repro.model.runtime.RuntimePredictor` produces the *predicted*
series; the test suite asserts the two agree within the paper's +-15%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.arch.device import ALVEO_U280, FPGADevice
from repro.dataflow.batcher import BatchRunner
from repro.dataflow.datamover import DataMover
from repro.dataflow.pipeline import IterativePipeline
from repro.dataflow.tiler import SpatialTiler
from repro.mesh.mesh import Field
from repro.model.design import DesignPoint, Workload
from repro.model.energy import DEFAULT_FPGA_POWER, FPGAPowerModel
from repro.model.resources import resource_report
from repro.stencil.program import StencilProgram
from repro.util.errors import ValidationError
from repro.util.validation import check_positive


@dataclass(frozen=True)
class HostModel:
    """Host-side overheads around the kernel execution.

    ``invocation_s`` is the fixed cost of launching the accelerator kernel
    (XRT setup, ~10 ms observed on the paper's baseline runs);
    ``per_pass_s`` is the marginal control cost per pipeline pass.
    """

    invocation_s: float = 0.010
    per_pass_s: float = 1.0e-6


@dataclass(frozen=True)
class SimReport:
    """Measured-equivalent execution report of a simulated run."""

    cycles: float
    clock_hz: float
    passes: int
    kernel_seconds: float
    host_seconds: float
    logical_bytes: float
    physical_bytes: float
    power_w: float

    @property
    def seconds(self) -> float:
        """End-to-end runtime (kernel + host overheads)."""
        return self.kernel_seconds + self.host_seconds

    @property
    def energy_j(self) -> float:
        """Board energy over the run."""
        return self.power_w * self.seconds

    @property
    def logical_bandwidth(self) -> float:
        """Paper-convention bandwidth (logical bytes / runtime)."""
        return self.logical_bytes / self.seconds

    @property
    def physical_bandwidth(self) -> float:
        """External-memory traffic / runtime."""
        return self.physical_bytes / self.seconds


@dataclass(frozen=True)
class MixReport:
    """Aggregate execution report of a workload-mix run.

    Groups execute back to back on one accelerator, so extensive
    quantities (cycles, seconds, bytes, energy) sum over the per-group
    :class:`SimReport` s; ``power_w`` is the peak draw across groups (the
    board's provisioning number, not an average).
    """

    reports: tuple[SimReport, ...]

    def __post_init__(self):
        if not self.reports:
            raise ValidationError("a MixReport needs at least one group report")

    @property
    def cycles(self) -> float:
        """Total structural cycles over all groups."""
        return sum(r.cycles for r in self.reports)

    @property
    def kernel_seconds(self) -> float:
        """Total kernel runtime over all groups."""
        return sum(r.kernel_seconds for r in self.reports)

    @property
    def host_seconds(self) -> float:
        """Total host overhead over all groups."""
        return sum(r.host_seconds for r in self.reports)

    @property
    def seconds(self) -> float:
        """End-to-end mix runtime (groups run back to back)."""
        return sum(r.seconds for r in self.reports)

    @property
    def logical_bytes(self) -> float:
        """Total paper-convention logical traffic."""
        return sum(r.logical_bytes for r in self.reports)

    @property
    def physical_bytes(self) -> float:
        """Total external-memory traffic."""
        return sum(r.physical_bytes for r in self.reports)

    @property
    def power_w(self) -> float:
        """Peak board power across the groups."""
        return max(r.power_w for r in self.reports)

    @property
    def energy_j(self) -> float:
        """Board energy over the whole mix."""
        return sum(r.energy_j for r in self.reports)

    @property
    def logical_bandwidth(self) -> float:
        """Paper-convention bandwidth over the whole mix."""
        return self.logical_bytes / self.seconds


class FPGAAccelerator:
    """A configured accelerator: program + design point + device."""

    def __init__(
        self,
        program: StencilProgram,
        design: DesignPoint,
        device: FPGADevice = ALVEO_U280,
        host: HostModel = HostModel(),
        power_model: FPGAPowerModel = DEFAULT_FPGA_POWER,
        logical_bytes_per_cell_iter: float | None = None,
        engine: str = "compiled",
        plan_cache=None,
        max_workers: int | None = None,
    ):
        self.program = program
        self.design = design
        self.device = device
        self.host = host
        self.power_model = power_model
        self.logical_bytes_per_cell_iter = (
            logical_bytes_per_cell_iter
            if logical_bytes_per_cell_iter is not None
            else float(program.bytes_per_cell_pass())
        )
        if design.tile is not None:
            # tiled designs run tile-by-tile through the spatial tiler;
            # batch fan-out does not apply, so "parallel" degrades to the
            # compiled path it is built on
            self.tiler: SpatialTiler | None = SpatialTiler(
                program, design, device,
                "compiled" if engine == "parallel" else engine, plan_cache,
            )
            self.pipeline = self.tiler.pipeline
        else:
            self.tiler = None
            self.pipeline = IterativePipeline(
                program, design.V, design.p, engine, plan_cache,
                max_workers=max_workers,
            )
        self.batcher = (
            BatchRunner(
                program, design, engine, plan_cache, max_workers=max_workers
            )
            if design.tile is None
            else None
        )
        # resources and power depend only on the resource shape (and fixed
        # design/device inputs), not on niter/batch: memoize them so DSE
        # search loops hammering estimate() pay the model walk once
        self._resource_cache: dict[tuple[int, ...], tuple] = {}
        self._channels_active = self._channels()

    # -- functional entry points ----------------------------------------------
    def run(
        self,
        fields: Mapping[str, Field],
        niter: int,
        coefficients: Mapping[str, float] | None = None,
    ) -> tuple[dict[str, Field], SimReport]:
        """Solve one mesh; returns (final fields, execution report)."""
        check_positive("niter", niter)
        if self.tiler is not None:
            result = self.tiler.run(fields, niter, coefficients)
        else:
            result = self.pipeline.run(fields, niter, coefficients)
        mesh = fields[self.program.state_fields[0]].spec
        report = self._report(mesh.shape, niter, batch=1, mesh=mesh)
        return result, report

    def run_batch(
        self,
        batch_fields: Sequence[Mapping[str, Field]],
        niter: int,
        coefficients: Mapping[str, float] | None = None,
        stacked_bytes_limit: float | None = None,
    ) -> tuple[list[dict[str, Field]], SimReport]:
        """Solve a batch of independent same-shaped meshes.

        On the default compiled engine the batch executes batch-major in
        footprint-bounded stacked chunks (Section IV-B, eq. (15)),
        bit-identical per mesh to :meth:`run`; the report uses the batched
        stream's cycle accounting. ``stacked_bytes_limit`` overrides the
        per-chunk working-set budget for this call (see
        :meth:`IterativePipeline.run_batch`).
        """
        if self.batcher is None:
            raise ValidationError("batched execution is not supported on tiled designs")
        results = self.batcher.run(
            batch_fields, niter, coefficients, stacked_bytes_limit
        )
        mesh = batch_fields[0][self.program.state_fields[0]].spec
        report = self._report(mesh.shape, niter, batch=len(batch_fields), mesh=mesh)
        return results, report

    def run_mix(
        self,
        groups: Sequence[tuple[Sequence[Mapping[str, Field]], int]],
        coefficients: Mapping[str, float] | None = None,
        stacked_bytes_limit: float | None = None,
    ) -> tuple[list[list[dict[str, Field]]], MixReport]:
        """Solve a mix of independent batches back to back.

        Each ``(batch_fields, niter)`` group executes exactly like
        :meth:`run_batch` (mesh specs may differ across groups — plans are
        keyed by the bound specs); the returned :class:`MixReport`
        aggregates the per-group reports over the whole mix. Workload-level
        orchestration of a :class:`~repro.workload.WorkloadMix` lives in
        :class:`repro.dataflow.scheduler.MixScheduler`.
        """
        if self.batcher is None:
            raise ValidationError("batched execution is not supported on tiled designs")
        if not groups:
            raise ValidationError("mix must contain at least one group")
        results = []
        reports = []
        for batch_fields, niter in groups:
            group_results, report = self.run_batch(
                batch_fields, niter, coefficients, stacked_bytes_limit
            )
            results.append(group_results)
            reports.append(report)
        return results, MixReport(tuple(reports))

    # -- reporting ---------------------------------------------------------------
    def estimate(self, workload: Workload) -> SimReport:
        """Execution report without running the numerics (paper-scale runs)."""
        return self._report(workload.mesh.shape, workload.niter, workload.batch, workload.mesh)

    def _report(
        self, mesh_shape: tuple[int, ...], niter: int, batch: int, mesh
    ) -> SimReport:
        design = self.design
        passes = -(-niter // design.p)
        clock_hz = design.clock_hz
        if self.tiler is not None:
            cycles = self.tiler.total_cycles(mesh, niter, clock_hz)
        else:
            compute = self.pipeline.total_cycles(
                mesh_shape, passes * design.p, batch, design.initiation_interval
            )
            mover = DataMover(self.device, design.memory, clock_hz)
            per_pass_bytes = (
                self.program.bytes_per_cell_pass()
                * mesh.num_points
                * batch
            )
            memory = passes * mover.channel_limited_cycles(
                per_pass_bytes, channels=self._channels_active
            )
            cycles = max(compute, memory)
        kernel_seconds = cycles / clock_hz
        host_seconds = self.host.invocation_s + passes * self.host.per_pass_s
        logical = (
            self.logical_bytes_per_cell_iter * mesh.num_points * batch * niter
        )
        physical = (
            passes * self.program.bytes_per_cell_pass() * mesh.num_points * batch
        )
        shape_for_resources = mesh_shape
        if design.tile is not None:
            if len(mesh_shape) == 2:
                shape_for_resources = (design.tile.M, mesh_shape[1])
            else:
                shape_for_resources = (design.tile.M, design.tile.N, mesh_shape[2])
        resources, power = self._resources_and_power(shape_for_resources)
        return SimReport(
            cycles=cycles,
            clock_hz=clock_hz,
            passes=passes,
            kernel_seconds=kernel_seconds,
            host_seconds=host_seconds,
            logical_bytes=logical,
            physical_bytes=physical,
            power_w=power,
        )

    def _resources_and_power(self, shape: tuple[int, ...]) -> tuple:
        """Memoized (resource report, board power) for a resource shape.

        Both are shape/batch-independent beyond the resource shape itself
        and were previously recomputed — a full program walk — on every
        ``estimate()`` call inside DSE search loops.
        """
        cached = self._resource_cache.get(shape)
        if cached is not None:
            return cached
        resources = resource_report(
            self.program, self.device, self.design.V, self.design.p, shape
        )
        power = self.power_model.watts(
            self.device,
            dsp_used=resources.dsp_used,
            mem_used_bytes=resources.mem_used_bytes,
            clock_hz=self.design.clock_hz,
            channels_active=self._channels_active,
        )
        self._resource_cache[shape] = (resources, power)
        return resources, power

    def _channels(self) -> int:
        """Active memory channels: one per external stream, at least two."""
        streams = len(self.program.external_reads()) + len(
            self.program.external_writes()
        )
        return max(2, streams)
