"""Overlapped spatial blocking executor (paper Section IV-A).

Splits the mesh into blocks that overlap by ``2 * p * r`` cells per split
axis (``r`` = the program's per-iteration contamination radius), runs the
``p``-iteration pipeline on each block independently, and writes back only
the *valid* interior of each block. Boundary blocks extend their valid
region to the true mesh boundary, where the Dirichlet (carry-through)
semantics of the golden model apply identically.

Correctness argument: a block cell at depth ``d`` from a block edge is exact
after ``t`` iterations iff ``d >= t * r`` (staleness advances one stencil
radius per iteration, per fused stage). The halo ``h = p * r`` therefore
makes the retained region ``[h, M-h)`` exact after ``p`` iterations. The
property is asserted against the un-tiled golden run in the test suite.
"""

from __future__ import annotations

from typing import Mapping

from repro.dataflow.datamover import DataMover
from repro.dataflow.pipeline import IterativePipeline
from repro.mesh.mesh import Field, MeshSpec
from repro.model.design import DesignPoint
from repro.model.tiling import BlockPlan, plan_blocks
from repro.stencil.program import StencilProgram
from repro.util.errors import ValidationError
from repro.util.rounding import ceil_div


class SpatialTiler:
    """Tiled execution of an iterative program through a fixed pipeline."""

    def __init__(
        self,
        program: StencilProgram,
        design: DesignPoint,
        device=None,
        engine: str = "compiled",
        plan_cache=None,
    ):
        if design.tile is None:
            raise ValidationError("SpatialTiler requires a tiled design")
        self.program = program
        self.design = design
        self.device = device
        # blocks of the same shape share one compiled plan through the
        # pipeline's cache, so a tiled pass compiles at most a handful of
        # plans (full blocks plus the edge remainders) on its first sweep
        self.pipeline = IterativePipeline(
            program, design.V, design.p, engine, plan_cache
        )
        # per-iteration contamination radius per paper axis:
        # the sum over fused stages of each stage's radius
        ndim = program.mesh.ndim
        radii = [0] * ndim
        for kernel in program.kernels():
            kr = kernel.radius
            for axis in range(ndim):
                radii[axis] += kr[axis]
        self.iter_radius = tuple(radii)

    def halo(self, axis: int) -> int:
        """Halo per side on a split axis: ``p * r_axis``."""
        return self.design.p * self.iter_radius[axis]

    # -- functional ---------------------------------------------------------------
    def run(
        self,
        fields: Mapping[str, Field],
        niter: int,
        coefficients: Mapping[str, float] | None = None,
    ) -> dict[str, Field]:
        """Run ``niter`` iterations (multiple of ``p``) with tiled passes."""
        if niter % self.design.p:
            raise ValidationError(
                f"niter={niter} is not a multiple of p={self.design.p}"
            )
        env = {name: f.copy() for name, f in fields.items()}
        for _ in range(niter // self.design.p):
            env = self._run_pass(env, coefficients)
        return env

    def _axis_plans(self, mesh: MeshSpec) -> list[list[BlockPlan]]:
        tile = self.design.tile
        shape = mesh.shape
        plans = [plan_blocks(shape[0], min(tile.M, shape[0]), self.halo(0))]
        if mesh.ndim == 3:
            if tile.N is None:
                raise ValidationError("3D tiled designs need an (M, N) tile")
            plans.append(plan_blocks(shape[1], min(tile.N, shape[1]), self.halo(1)))
        return plans

    def _run_pass(
        self,
        env: dict[str, Field],
        coefficients: Mapping[str, float] | None,
    ) -> dict[str, Field]:
        mesh = next(iter(env.values())).spec
        axis_plans = self._axis_plans(mesh)
        state_out = {
            name: env[name].copy() for name in self.program.state_fields
        }
        if mesh.ndim == 2:
            combos = [(bm,) for bm in axis_plans[0]]
        else:
            combos = [(bm, bn) for bm in axis_plans[0] for bn in axis_plans[1]]
        for combo in combos:
            block_env = self._extract_block(env, mesh, combo)
            # copy=False: _write_back copies the valid region out before
            # the next block reuses the cached compiled instance
            result = self.pipeline.run_pass(block_env, coefficients, copy=False)
            self._write_back(state_out, result, combo)
        out = dict(env)
        out.update(state_out)
        return out

    def _extract_block(
        self,
        env: dict[str, Field],
        mesh: MeshSpec,
        combo: tuple[BlockPlan, ...],
    ) -> dict[str, Field]:
        # storage order is reversed paper order: (n, m, c) / (l, n, m, c)
        if mesh.ndim == 2:
            (bm,) = combo
            storage = (slice(None), slice(bm.start, bm.end))
            shape = (bm.extent, mesh.shape[1])
        else:
            bm, bn = combo
            storage = (slice(None), slice(bn.start, bn.end), slice(bm.start, bm.end))
            shape = (bm.extent, bn.extent, mesh.shape[2])
        block_env: dict[str, Field] = {}
        for name in self.program.external_reads():
            f = env[name]
            sub_spec = MeshSpec(shape, f.spec.components, f.spec.dtype)
            block_env[name] = Field(name, sub_spec, f.data[storage].copy())
        return block_env

    def _write_back(
        self,
        state_out: dict[str, Field],
        result: Mapping[str, Field],
        combo: tuple[BlockPlan, ...],
    ) -> None:
        if len(combo) == 1:
            (bm,) = combo
            dst = (slice(None), slice(bm.valid_start, bm.valid_end))
            src = (slice(None), slice(bm.valid_start - bm.start, bm.valid_end - bm.start))
        else:
            bm, bn = combo
            dst = (
                slice(None),
                slice(bn.valid_start, bn.valid_end),
                slice(bm.valid_start, bm.valid_end),
            )
            src = (
                slice(None),
                slice(bn.valid_start - bn.start, bn.valid_end - bn.start),
                slice(bm.valid_start - bm.start, bm.valid_end - bm.start),
            )
        for name in self.program.state_fields:
            state_out[name].data[dst] = result[name].data[src]

    # -- structural cycle accounting ------------------------------------------
    def pass_cycles(self, mesh: MeshSpec, clock_hz: float) -> float:
        """Cycles of one tiled pass: per-block max(compute, memory) + fills.

        Each block is read with strided row runs (``M`` elements), computed
        by the pipeline and written back valid-only; the dataflow overlaps
        the three, so a block costs the max of the three stages.
        """
        axis_plans = self._axis_plans(mesh)
        mover = DataMover(self.device, self.design.memory, clock_hz)
        k = mesh.elem_bytes
        # a stream feeding V cells/cycle is striped over enough channels
        bank = self.device.memory(self.design.memory)
        stream_rate = self.design.V * k * clock_hz
        channels_per_stream = max(1, ceil_div(int(stream_rate), int(bank.channel_bandwidth)))
        total = 0.0
        if mesh.ndim == 2:
            combos = [(bm,) for bm in axis_plans[0]]
        else:
            combos = [(bm, bn) for bm in axis_plans[0] for bn in axis_plans[1]]
        for combo in combos:
            if mesh.ndim == 2:
                (bm,) = combo
                shape = (bm.extent, mesh.shape[1])
                rows = mesh.shape[1]
            else:
                bm, bn = combo
                shape = (bm.extent, bn.extent, mesh.shape[2])
                rows = bn.extent * mesh.shape[2]
            compute = self.pipeline.pass_cycles(shape, ii=self.design.initiation_interval)
            # reads of all input fields proceed in parallel on separate
            # channel groups; the slowest stream gates the block
            read = mover.strided_rows(bm.extent * k, rows).cycles / channels_per_stream
            valid_m = bm.valid_end - bm.valid_start
            write = (
                mover.strided_rows(max(1, valid_m) * k, rows).cycles
                / channels_per_stream
            )
            total += max(compute, float(read), float(write))
        return total

    def total_cycles(self, mesh: MeshSpec, niter: int, clock_hz: float) -> float:
        """Cycles for the whole tiled solve."""
        if niter % self.design.p:
            raise ValidationError(
                f"niter={niter} is not a multiple of p={self.design.p}"
            )
        return (niter // self.design.p) * self.pass_cycles(mesh, clock_hz)
