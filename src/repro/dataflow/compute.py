"""Compute units: V-way replicated kernel datapaths.

A :class:`ComputeUnit` is the vectorized execution of one kernel — the
"cell-parallel" replicas of Fig. 1. Functionally it delegates to the golden
evaluator (bit-identical float32); structurally it reports how many cycles
the unit needs to stream a given mesh region at vectorization ``V``.
"""

from __future__ import annotations

from typing import Mapping

from repro.mesh.mesh import Field
from repro.stencil.kernel import StencilKernel
from repro.stencil.numpy_eval import apply_kernel
from repro.util.rounding import ceil_div
from repro.util.validation import check_positive


class ComputeUnit:
    """One kernel's datapath, replicated ``V`` ways."""

    def __init__(self, kernel: StencilKernel, V: int):
        check_positive("V", V)
        self.kernel = kernel
        self.V = V
        #: DSP-relevant op counts of a single replica
        self.ops = kernel.op_counts()

    def process(
        self,
        fields: Mapping[str, Field],
        coefficients: Mapping[str, float] | None = None,
    ) -> dict[str, Field]:
        """Apply the kernel over the mesh interior (vectorized)."""
        return apply_kernel(self.kernel, fields, coefficients)

    def stream_cycles(self, mesh_shape: tuple[int, ...]) -> int:
        """Cycles to stream the whole mesh through this unit (no fill).

        ``ceil(m/V)`` vectors per row, one vector per cycle at II=1.
        """
        vectors_per_row = ceil_div(mesh_shape[0], self.V)
        rows = 1
        for extent in mesh_shape[1:]:
            rows *= extent
        return vectors_per_row * rows

    def fill_lines(self) -> int:
        """Window-buffer fill latency of this stage, in rows/planes (``D/2``)."""
        return self.kernel.order // 2

    @property
    def flops_per_cell(self) -> int:
        """Floating-point operations per mesh-point update."""
        return self.ops.total
