"""Iterative pipeline: ``p`` chained compute modules (paper Fig. 2).

Unrolling the time loop feeds iteration ``k``'s output straight into
iteration ``k+1`` without touching external memory; one *pass* through the
pipeline advances the solution by ``p`` iterations at the cost of one mesh
traversal plus the chained fill latency ``p * sum(D_i/2)`` lines.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.dataflow.module import StencilModule
from repro.mesh.mesh import Field
from repro.stencil.compiled import (
    CompiledPlanCache,
    check_engine,
    run_program_compiled,
    run_program_stacked,
)
from repro.stencil.program import StencilProgram
from repro.util.errors import ValidationError
from repro.util.rounding import ceil_div
from repro.util.validation import check_positive


class IterativePipeline:
    """A chain of ``p`` identical compute modules.

    Functional execution defaults to the plan-compiled engine: a whole run
    (or pass) is one replay of the cached op tape, so chained passes never
    re-interpret the program. ``engine="interpreter"`` selects the golden
    tree-walking path; ``engine="parallel"`` keeps the compiled path for
    single meshes and fans batch chunks out over a worker pool of up to
    ``max_workers`` lanes (:mod:`repro.parallel`); ``engine="native"``
    replays the steady tapes as generated fused code
    (:mod:`repro.stencil.native`). Results are bit-identical on every
    engine.
    """

    def __init__(
        self,
        program: StencilProgram,
        V: int,
        p: int,
        engine: str = "compiled",
        plan_cache: CompiledPlanCache | None = None,
        max_workers: int | None = None,
    ):
        check_positive("p", p)
        self.program = program
        self.V = V
        self.p = p
        self.engine = check_engine(engine)
        self.plan_cache = plan_cache
        self.max_workers = max_workers
        # modules are identical hardware; one functional instance suffices
        self.module = StencilModule(program, V, engine, plan_cache)

    # -- functional ---------------------------------------------------------------
    def _run_iterations(
        self,
        fields: Mapping[str, Field],
        niter: int,
        coefficients: Mapping[str, float] | None,
        copy: bool = True,
    ) -> dict[str, Field]:
        if self.engine != "interpreter":
            # a single mesh has no chunks to fan out: the parallel engine
            # and the compiled engine are the same path here (the native
            # engine swaps in the generated steady-loop replay)
            return run_program_compiled(
                self.program, fields, niter, coefficients,
                cache=self.plan_cache, engine=self.engine, copy=copy,
            )
        env: dict[str, Field] = dict(fields)
        for _ in range(niter):
            env = self.module.process(env, coefficients)
        return env

    def run_pass(
        self,
        fields: Mapping[str, Field],
        coefficients: Mapping[str, float] | None = None,
        copy: bool = True,
    ) -> dict[str, Field]:
        """One pass = ``p`` chained iterations.

        ``copy=False`` lets compiled-engine callers that immediately copy
        the produced arrays themselves (the tiler's write-back) skip the
        per-field result copies; the returned arrays then alias the cached
        instance's buffers until its next run.
        """
        return self._run_iterations(fields, self.p, coefficients, copy=copy)

    def run(
        self,
        fields: Mapping[str, Field],
        niter: int,
        coefficients: Mapping[str, float] | None = None,
    ) -> dict[str, Field]:
        """Run ``niter`` iterations (must be a multiple of ``p``).

        The hardware pipeline always advances ``p`` iterations per pass; a
        remainder would require a bypass datapath the paper's designs do not
        implement.
        """
        check_positive("niter", niter)
        if niter % self.p:
            raise ValidationError(
                f"niter={niter} is not a multiple of the unroll factor p={self.p}"
            )
        return self._run_iterations(fields, niter, coefficients)

    def run_batch(
        self,
        batch_fields: Sequence[Mapping[str, Field]],
        niter: int,
        coefficients: Mapping[str, float] | None = None,
        stacked_bytes_limit: float | None = None,
    ) -> list[dict[str, Field]]:
        """Run a batch of independent same-spec meshes (paper Section IV-B).

        On the compiled engine the batch is stacked batch-major and
        advances through one replay of the op tape per footprint-bounded
        chunk — the software analogue of streaming the meshes back to back
        through one pipeline (eq. (15)); per-mesh results are bit-identical
        to ``B`` independent :meth:`run` calls. The parallel engine keeps
        the same chunk schedule but dispatches the chunks across a worker
        pool (:func:`repro.parallel.run_program_parallel`). The
        interpreter engine replays the golden path per mesh. ``niter``
        must be a multiple of ``p`` exactly as for :meth:`run`.

        ``stacked_bytes_limit`` overrides the per-chunk working-set budget
        (default :data:`repro.stencil.compiled.STACKED_BYTES_LIMIT`) so
        DSE sweeps and benchmarks can tune the chunking instead of
        monkeypatching the module constant.
        """
        if not batch_fields:
            raise ValidationError("batch must contain at least one mesh")
        check_positive("niter", niter)
        if niter % self.p:
            raise ValidationError(
                f"niter={niter} is not a multiple of the unroll factor p={self.p}"
            )
        if self.engine == "parallel":
            from repro.parallel.executor import run_program_parallel

            return run_program_parallel(
                self.program, batch_fields, niter, coefficients,
                cache=self.plan_cache, max_stack_bytes=stacked_bytes_limit,
                max_workers=self.max_workers,
            )
        if self.engine in ("compiled", "native"):
            return run_program_stacked(
                self.program, batch_fields, niter, coefficients,
                cache=self.plan_cache, max_stack_bytes=stacked_bytes_limit,
                engine=self.engine,
            )
        return [
            dict(self._run_iterations(env, niter, coefficients))
            for env in batch_fields
        ]

    def run_mix(
        self,
        groups: Sequence[tuple[Sequence[Mapping[str, Field]], int]],
        coefficients: Mapping[str, float] | None = None,
        stacked_bytes_limit: float | None = None,
    ) -> list[list[dict[str, Field]]]:
        """Run a mix of independent batches back to back.

        Each group is a ``(batch_fields, niter)`` pair; meshes within a
        group must share one spec (they ride one chunked stacked dispatch,
        see :meth:`run_batch`), while specs and iteration counts may differ
        freely across groups — the compiled engine keys plans by the bound
        field specs, so one pipeline serves every mesh shape in the mix.
        Higher-level mix orchestration (grouping a
        :class:`~repro.workload.WorkloadMix`, dispatch accounting) lives in
        :class:`repro.dataflow.scheduler.MixScheduler`.
        """
        if not groups:
            raise ValidationError("mix must contain at least one group")
        return [
            self.run_batch(batch_fields, niter, coefficients, stacked_bytes_limit)
            for batch_fields, niter in groups
        ]

    # -- structural cycle accounting ------------------------------------------
    def pass_cycles(self, mesh_shape: tuple[int, ...], batch: int = 1, ii: float = 1.0) -> float:
        """Cycles of one pass over a (possibly batched) mesh.

        ``ceil(m/V)`` vectors per row; the stream is ``rows * batch`` rows
        long plus the chained fill latency in rows/planes.
        """
        check_positive("batch", batch)
        vectors_per_row = ceil_div(mesh_shape[0], self.V)
        if len(mesh_shape) == 2:
            stream_rows = mesh_shape[1] * batch
            fill_rows = self.p * self.module.fill_lines()
            return vectors_per_row * (stream_rows * ii + fill_rows)
        rows_per_plane = mesh_shape[1]
        stream_planes = mesh_shape[2] * batch
        fill_planes = self.p * self.module.fill_lines()
        return vectors_per_row * rows_per_plane * (stream_planes * ii + fill_planes)

    def total_cycles(
        self, mesh_shape: tuple[int, ...], niter: int, batch: int = 1, ii: float = 1.0
    ) -> float:
        """Cycles for the whole solve (``niter`` a multiple of ``p``)."""
        passes = niter // self.p
        if niter % self.p:
            raise ValidationError(
                f"niter={niter} is not a multiple of the unroll factor p={self.p}"
            )
        return passes * self.pass_cycles(mesh_shape, batch, ii)
