"""Batched execution of many small independent meshes (paper Section IV-B).

The host stacks ``B`` same-shaped meshes and the pipeline streams them back
to back, paying the fill latency once per pass instead of once per mesh.
Stencil updates must not couple neighbouring meshes across the stacking
boundary, so the functional path keeps the meshes isolated **structurally**:
the compiled engine stacks the batch batch-major — a true leading array
axis, not a concatenation seam — and advances all ``B`` meshes through one
replay of the plan's op tape (see
:func:`repro.stencil.compiled.run_program_stacked`), while the cycle
accounting uses the stacked stream length (eq. (15) behaviour). Per-mesh
results are bit-identical to ``B`` independent solves; the
``engine="interpreter"`` golden path still evaluates each mesh on its own.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.dataflow.pipeline import IterativePipeline
from repro.mesh.mesh import Field
from repro.model.design import DesignPoint
from repro.stencil.program import StencilProgram
from repro.util.errors import ValidationError
from repro.util.validation import check_positive


class BatchRunner:
    """Runs a batch of independent meshes through one pipeline."""

    def __init__(
        self,
        program: StencilProgram,
        design: DesignPoint,
        engine: str = "compiled",
        plan_cache=None,
        stacked_bytes_limit: float | None = None,
        max_workers: int | None = None,
    ):
        self.program = program
        self.design = design
        #: per-chunk working-set budget for stacked dispatch (None: the
        #: module default, :data:`repro.stencil.compiled.STACKED_BYTES_LIMIT`)
        self.stacked_bytes_limit = stacked_bytes_limit
        # every mesh in a batch shares the same spec, so the whole batch
        # rides one compiled plan — stacked batch-major (in footprint-
        # bounded chunks) on the compiled engine, fanned out across a
        # worker pool on the parallel engine, replayed per mesh on the
        # interpreter
        self.pipeline = IterativePipeline(
            program, design.V, design.p, engine, plan_cache,
            max_workers=max_workers,
        )

    @property
    def engine(self) -> str:
        """The execution engine of the underlying pipeline."""
        return self.pipeline.engine

    def run(
        self,
        batch_fields: Sequence[Mapping[str, Field]],
        niter: int,
        coefficients: Mapping[str, float] | None = None,
        stacked_bytes_limit: float | None = None,
    ) -> list[dict[str, Field]]:
        """Solve every mesh in the batch for ``niter`` iterations.

        ``stacked_bytes_limit`` overrides the runner's per-chunk budget for
        this call only.
        """
        if not batch_fields:
            raise ValidationError("batch must contain at least one mesh")
        spec = None
        for env in batch_fields:
            for name in self.program.external_reads():
                if name not in env:
                    raise ValidationError(f"batch mesh missing field '{name}'")
            s = env[self.program.state_fields[0]].spec
            if spec is None:
                spec = s
            elif s != spec:
                raise ValidationError(
                    "all meshes in a batch must share the same spec "
                    f"({s} != {spec})"
                )
        limit = (
            stacked_bytes_limit
            if stacked_bytes_limit is not None
            else self.stacked_bytes_limit
        )
        return self.pipeline.run_batch(batch_fields, niter, coefficients, limit)

    def run_mix(
        self,
        groups: Sequence[tuple[Sequence[Mapping[str, Field]], int]],
        coefficients: Mapping[str, float] | None = None,
        stacked_bytes_limit: float | None = None,
    ) -> list[list[dict[str, Field]]]:
        """Solve a mix of batches: each ``(batch_fields, niter)`` group in turn.

        Specs must agree within a group but may differ across groups
        (differing mesh shapes and iteration counts ride separate compiled
        plans). See :class:`repro.dataflow.scheduler.MixScheduler` for
        workload-level mix orchestration.
        """
        if not groups:
            raise ValidationError("mix must contain at least one group")
        return [
            self.run(batch_fields, niter, coefficients, stacked_bytes_limit)
            for batch_fields, niter in groups
        ]

    def total_cycles(self, niter: int, batch: int, mesh_shape: tuple[int, ...]) -> float:
        """Structural cycles for the batched solve (stacked stream)."""
        check_positive("batch", batch)
        return self.pipeline.total_cycles(
            mesh_shape, niter, batch, self.design.initiation_interval
        )
