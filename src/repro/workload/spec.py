"""Workload specifications: what a solver run *is*, as a value.

A :class:`WorkloadSpec` pins down one job shape — which application, on what
mesh, for how many iterations, how many independent meshes per solve — as a
frozen, hashable, JSON-serializable value. It subsumes the original
``repro.model.design.Workload`` scalar-parameter bag (that name remains as a
compatibility alias) and adds what every higher layer needs to *describe*
work rather than merely parameterize it: a stable string grammar
(``app:MESH:NITERxBATCH``), dict/JSON round-trips for journals and studies,
and lazy resolution of the concrete :class:`~repro.stencil.program.StencilProgram`
through the application registry.

The spec string grammar (also accepted by ``repro dse --workloads``)::

    jacobi3d:96x96x96:100x4      # app jacobi3d, 96^3 mesh, 100 iters, batch 4
    rtm:64x64x64:36x2            # app rtm, 64^3 mesh, 36 iters, batch 2
    poisson2d:200x100:500        # batch defaults to 1

Mesh components and dtype are resolved from the application's element type;
specs without an app name bind those from an explicit :class:`MeshSpec`
instead (the pre-existing ``Workload(mesh, niter, batch)`` construction).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Mapping, Sequence

import numpy as np

from repro.mesh.mesh import MeshSpec
from repro.util.errors import ValidationError
from repro.util.validation import check_positive


@dataclass(frozen=True)
class WorkloadSpec:
    """One job shape: a mesh (possibly batched) solved for ``niter`` iterations.

    ``app`` optionally names the registered application this workload runs
    (resolving its program via :meth:`program`); specs constructed without
    one carry all execution-relevant information in ``mesh`` alone and are
    exactly the original ``model.design.Workload``.
    """

    mesh: MeshSpec
    niter: int
    batch: int = 1
    app: str | None = None

    def __post_init__(self):
        check_positive("niter", self.niter)
        check_positive("batch", self.batch)
        if self.app is not None and (not self.app or ":" in self.app or "," in self.app):
            raise ValidationError(f"invalid app name {self.app!r}")

    # -- construction -----------------------------------------------------------
    @classmethod
    def of(
        cls,
        app: str,
        shape: Sequence[int],
        niter: int,
        batch: int = 1,
    ) -> "WorkloadSpec":
        """A spec for a registered application on a concrete mesh shape.

        Components and dtype come from the application's element type, so
        the spec is fully determined by ``(app, shape, niter, batch)``.
        """
        from repro.apps.registry import app_by_name  # lazy: apps import us

        template = app_by_name(app).program.mesh
        mesh = MeshSpec(tuple(shape), template.components, template.dtype)
        return cls(mesh, niter, batch, app)

    @classmethod
    def parse(cls, text: str) -> "WorkloadSpec":
        """Parse the ``app:MESH:NITER[xBATCH]`` spec grammar."""
        parts = text.strip().split(":")
        if len(parts) != 3:
            raise ValidationError(
                f"cannot parse workload {text!r}; expected app:MESH:NITER[xBATCH] "
                f"(e.g. jacobi3d:96x96x96:100x4)"
            )
        app, mesh_text, iters_text = (p.strip() for p in parts)
        try:
            shape = tuple(int(p) for p in mesh_text.lower().split("x"))
        except ValueError:
            raise ValidationError(
                f"cannot parse mesh {mesh_text!r} in workload {text!r}"
            ) from None
        if len(shape) not in (2, 3):
            raise ValidationError(
                f"workload mesh must be 2D or 3D, got {mesh_text!r}"
            )
        iter_parts = iters_text.lower().split("x")
        if len(iter_parts) not in (1, 2):
            raise ValidationError(
                f"cannot parse iterations {iters_text!r} in workload {text!r}; "
                f"expected NITER or NITERxBATCH"
            )
        try:
            niter = int(iter_parts[0])
            batch = int(iter_parts[1]) if len(iter_parts) == 2 else 1
        except ValueError:
            raise ValidationError(
                f"cannot parse iterations {iters_text!r} in workload {text!r}"
            ) from None
        return cls.of(app, shape, niter, batch)

    # -- identity ----------------------------------------------------------------
    @property
    def job_key(self) -> tuple:
        """Execution-grouping identity: everything but the batch count.

        Two specs with equal job keys solve the *same problem shape* — same
        app, mesh, dtype and iteration count — so their meshes can ride one
        compiled plan in one (chunked) stacked dispatch group.
        """
        return (self.app, self.mesh, self.niter)

    def solo(self) -> "WorkloadSpec":
        """This spec for a single mesh (``batch=1``)."""
        return replace(self, batch=1) if self.batch != 1 else self

    def with_batch(self, batch: int) -> "WorkloadSpec":
        """This spec with a different batch count."""
        return replace(self, batch=batch)

    # -- sizes --------------------------------------------------------------------
    @property
    def dtype(self) -> np.dtype:
        """Element scalar type of the workload's meshes."""
        return self.mesh.dtype

    @property
    def total_points(self) -> int:
        """Mesh points over the whole batch."""
        return self.mesh.num_points * self.batch

    @property
    def footprint_bytes(self) -> int:
        """Bytes of one state field over the whole batch."""
        return self.mesh.footprint_bytes * self.batch

    @property
    def cells(self) -> int:
        """Alias of :attr:`total_points`: mesh cells in flight."""
        return self.total_points

    @property
    def cell_iterations(self) -> int:
        """Total cell updates of the solve: ``points * batch * niter``."""
        return self.total_points * self.niter

    # -- resolution / serialization ------------------------------------------------
    def program(self):
        """The concrete :class:`StencilProgram` this spec runs (via the registry)."""
        from repro.apps.registry import app_by_name  # lazy: apps import us

        if self.app is None:
            raise ValidationError(
                f"workload {self} names no application; bind a program explicitly"
            )
        return app_by_name(self.app).program_on(self.mesh.shape)

    def fields(self, seed: int = 0):
        """Reproducible initial conditions for one mesh of this spec."""
        from repro.apps.registry import app_by_name  # lazy: apps import us

        if self.app is None:
            raise ValidationError(
                f"workload {self} names no application; supply fields explicitly"
            )
        return app_by_name(self.app).fields(self.mesh.shape, seed=seed)

    def describe(self) -> str:
        """The canonical spec string (inverse of :meth:`parse` for app specs)."""
        mesh = "x".join(str(s) for s in self.mesh.shape)
        iters = f"{self.niter}x{self.batch}" if self.batch != 1 else str(self.niter)
        return f"{self.app or '?'}:{mesh}:{iters}"

    def to_dict(self) -> dict[str, Any]:
        """A JSON-safe dict representation (see :meth:`from_dict`)."""
        return {
            "app": self.app,
            "mesh": list(self.mesh.shape),
            "components": self.mesh.components,
            "dtype": self.mesh.dtype.name,
            "niter": self.niter,
            "batch": self.batch,
        }

    @classmethod
    def from_dict(cls, obj: Mapping[str, Any]) -> "WorkloadSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        try:
            mesh = MeshSpec(
                tuple(int(s) for s in obj["mesh"]),
                int(obj.get("components", 1)),
                np.dtype(obj.get("dtype", "float32")),
            )
            return cls(
                mesh,
                int(obj["niter"]),
                int(obj.get("batch", 1)),
                obj.get("app"),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValidationError(f"invalid workload dict {obj!r}: {exc}") from None

    def __str__(self) -> str:
        if self.app is not None:
            return self.describe()
        return f"Workload({self.mesh}, niter={self.niter}, batch={self.batch})"
