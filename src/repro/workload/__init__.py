"""Workloads as a first-class layer.

What a deployment *serves* — job shapes and their populations — lives here,
decoupled from how any single layer executes or scores them:

* :class:`WorkloadSpec` — one job shape (app, mesh, iterations, batch),
  frozen and hashable, with a string grammar and JSON round-trips. It
  subsumes the original ``repro.model.design.Workload`` (that name remains
  a compatibility alias of this class).
* :class:`WorkloadMix` — a weighted list of specs: the population a design
  must serve. Weights scale scoring; execution groups are derived with
  :meth:`WorkloadMix.job_groups`.

Consumers: :class:`repro.dataflow.scheduler.MixScheduler` executes a mix
end-to-end through the chunked stacked compiled engine;
:class:`repro.dse.evaluate.Evaluator` scores one design configuration
against a whole mix (``workloads=``); the CLI parses mixes for
``repro dse --workloads``.
"""

from repro.workload.mix import MixEntry, MixLike, WorkloadMix, as_mix
from repro.workload.spec import WorkloadSpec

__all__ = [
    "MixEntry",
    "MixLike",
    "WorkloadMix",
    "WorkloadSpec",
    "as_mix",
]
