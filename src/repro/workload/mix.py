"""Workload mixes: weighted populations of job shapes.

A :class:`WorkloadMix` is a weighted list of :class:`~repro.workload.spec.WorkloadSpec`
entries — the object a production deployment actually serves (the paper's
financial-computing and RTM use cases: many meshes of differing shapes and
iteration counts in flight at once). Weights express how often each job
shape occurs in the served population and scale *scoring* (a DSE config's
predicted mix runtime is the weighted sum over specs); *execution* solves
each entry's ``spec.batch`` meshes exactly once (see
:class:`repro.dataflow.scheduler.MixScheduler`).

Mixes are values: dict/JSON round-trip (:meth:`to_dict`/:meth:`from_dict`),
a stable content hash (:meth:`token`) for DSE memo keys and study
fingerprints, and lossless grouping helpers (:meth:`group_by_spec`,
:meth:`job_groups`) the scheduler and evaluator build on.

CLI grammar: comma-separated spec strings, each optionally ``@weight``::

    jacobi3d:96x96x96:100x4,rtm:64x64x64:36x2
    poisson2d:200x100:500@3,poisson2d:100x50:500@1
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass
from typing import Any, Iterator, Mapping, Sequence, Union

from repro.util.errors import ValidationError
from repro.workload.spec import WorkloadSpec


@dataclass(frozen=True)
class MixEntry:
    """One weighted member of a mix."""

    spec: WorkloadSpec
    weight: float = 1.0

    def __post_init__(self):
        if not isinstance(self.spec, WorkloadSpec):
            raise ValidationError(
                f"mix entry spec must be a WorkloadSpec, got {self.spec!r}"
            )
        try:
            w = float(self.weight)
        except (TypeError, ValueError):
            raise ValidationError(
                f"mix weight must be a number, got {self.weight!r}"
            ) from None
        if not math.isfinite(w) or w <= 0:
            raise ValidationError(
                f"mix weight must be positive and finite, got {self.weight!r}"
            )
        object.__setattr__(self, "weight", w)


#: anything :func:`as_mix` can coerce into a mix
MixLike = Union["WorkloadMix", WorkloadSpec, Sequence]


@dataclass(frozen=True)
class WorkloadMix:
    """A weighted list of workload specs."""

    entries: tuple[MixEntry, ...]

    def __post_init__(self):
        if not self.entries:
            raise ValidationError("a WorkloadMix needs at least one entry")
        normalized = []
        for entry in self.entries:
            if isinstance(entry, MixEntry):
                normalized.append(entry)
            elif isinstance(entry, WorkloadSpec):
                normalized.append(MixEntry(entry))
            else:
                try:
                    spec, weight = entry
                except (TypeError, ValueError):
                    raise ValidationError(
                        f"mix entries must be WorkloadSpec, MixEntry or "
                        f"(spec, weight) pairs, got {entry!r}"
                    ) from None
                normalized.append(MixEntry(spec, weight))
        object.__setattr__(self, "entries", tuple(normalized))

    # -- construction -----------------------------------------------------------
    @classmethod
    def of(cls, *items) -> "WorkloadMix":
        """A mix from specs and/or ``(spec, weight)`` pairs."""
        return cls(tuple(items))

    @classmethod
    def parse(cls, text: str) -> "WorkloadMix":
        """Parse the comma-separated ``spec[@weight]`` CLI grammar."""
        entries = []
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            spec_text, sep, weight_text = part.partition("@")
            weight = 1.0
            if sep:
                try:
                    weight = float(weight_text)
                except ValueError:
                    raise ValidationError(
                        f"cannot parse mix weight {weight_text!r} in {part!r}"
                    ) from None
            entries.append(MixEntry(WorkloadSpec.parse(spec_text), weight))
        if not entries:
            raise ValidationError(f"no workload specs in {text!r}")
        return cls(tuple(entries))

    # -- queries ----------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[MixEntry]:
        return iter(self.entries)

    @property
    def specs(self) -> tuple[WorkloadSpec, ...]:
        """The member specs, in entry order."""
        return tuple(e.spec for e in self.entries)

    @property
    def total_weight(self) -> float:
        """Sum of entry weights."""
        return sum(e.weight for e in self.entries)

    @property
    def total_cells(self) -> float:
        """Weighted mesh cells in flight: ``sum(w * points * batch)``."""
        return sum(e.weight * e.spec.total_points for e in self.entries)

    @property
    def total_cell_iterations(self) -> float:
        """Weighted total cell updates: ``sum(w * points * batch * niter)``."""
        return sum(e.weight * e.spec.cell_iterations for e in self.entries)

    def heaviest(self) -> WorkloadSpec:
        """The spec with the largest **per-mesh** memory footprint.

        Used as the representative workload where one value must stand for
        the mix (clock estimation, line-buffer sizing): buffer demands
        scale with mesh shape — not batch count — so the biggest single
        mesh bounds the design.
        """
        return max(
            self.specs,
            key=lambda s: (s.mesh.footprint_bytes, s.mesh.num_points),
        )

    # -- grouping ----------------------------------------------------------------
    def group_by_spec(self) -> dict[WorkloadSpec, float]:
        """Merge entries with *identical* specs, summing their weights.

        The partition is lossless: per-spec total weight, ``total_cells``
        and ``total_cell_iterations`` are all preserved (property-tested in
        the suite), and :meth:`from_groups` rebuilds an equivalent mix.
        """
        groups: dict[WorkloadSpec, float] = {}
        for entry in self.entries:
            groups[entry.spec] = groups.get(entry.spec, 0.0) + entry.weight
        return groups

    @classmethod
    def from_groups(cls, groups: Mapping[WorkloadSpec, float]) -> "WorkloadMix":
        """Rebuild a mix from a :meth:`group_by_spec` mapping."""
        return cls(tuple(MixEntry(spec, w) for spec, w in groups.items()))

    def job_groups(self) -> dict[tuple, WorkloadSpec]:
        """Execution groups: one merged spec per :attr:`WorkloadSpec.job_key`.

        Entries solving the same problem shape (same app, mesh, dtype and
        ``niter`` — batch counts aside) merge into one spec whose batch is
        the total mesh count; weights do not scale execution, so a weighted
        entry still contributes exactly ``spec.batch`` meshes. Each group
        can ride one compiled plan in one chunked stacked dispatch.
        """
        groups: dict[tuple, WorkloadSpec] = {}
        for entry in self.entries:
            key = entry.spec.job_key
            incumbent = groups.get(key)
            if incumbent is None:
                groups[key] = entry.spec
            else:
                groups[key] = incumbent.with_batch(
                    incumbent.batch + entry.spec.batch
                )
        return groups

    def scaled(self, batch_factor: int) -> "WorkloadMix":
        """The mix with every entry's batch count multiplied.

        Realizes a DSE ``batch`` axis on top of a mix: the same population
        of job shapes, each arriving ``batch_factor`` times as many meshes
        per solve.
        """
        if batch_factor == 1:
            return self
        return WorkloadMix(
            tuple(
                MixEntry(e.spec.with_batch(e.spec.batch * batch_factor), e.weight)
                for e in self.entries
            )
        )

    # -- serialization ------------------------------------------------------------
    def describe(self) -> str:
        """The canonical CLI string for this mix."""
        parts = []
        for e in self.entries:
            text = e.spec.describe()
            if e.weight != 1.0:
                text += f"@{e.weight:g}"
            parts.append(text)
        return ",".join(parts)

    def to_dict(self) -> dict[str, Any]:
        """A JSON-safe dict representation (see :meth:`from_dict`)."""
        return {
            "entries": [
                {**e.spec.to_dict(), "weight": e.weight} for e in self.entries
            ]
        }

    @classmethod
    def from_dict(cls, obj: Mapping[str, Any]) -> "WorkloadMix":
        """Rebuild a mix from :meth:`to_dict` output."""
        try:
            raw = obj["entries"]
        except (KeyError, TypeError):
            raise ValidationError(f"invalid mix dict {obj!r}") from None
        return cls(
            tuple(
                MixEntry(WorkloadSpec.from_dict(e), float(e.get("weight", 1.0)))
                for e in raw
            )
        )

    def token(self) -> str:
        """A stable content hash, usable as a DSE memo / fingerprint key.

        Entry order is irrelevant: the hash is computed over the canonical
        grouped form, sorted by spec identity — two mixes describing the
        same weighted population hash identically across processes.
        """
        groups = sorted(
            (json.dumps(spec.to_dict(), sort_keys=True), weight)
            for spec, weight in self.group_by_spec().items()
        )
        payload = json.dumps(groups, sort_keys=True).encode()
        return hashlib.sha256(payload).hexdigest()

    def __str__(self) -> str:
        return f"Mix[{self.describe()}]"


def as_mix(value: MixLike) -> WorkloadMix:
    """Coerce a mix, one spec, or a sequence of specs/pairs into a mix."""
    if isinstance(value, WorkloadMix):
        return value
    if isinstance(value, WorkloadSpec):
        return WorkloadMix.of(value)
    if isinstance(value, Sequence) and not isinstance(value, (str, bytes)):
        # a bare (spec, weight) pair reads as one weighted entry, not as a
        # two-entry sequence whose second member is a number
        if (
            len(value) == 2
            and isinstance(value[0], WorkloadSpec)
            and isinstance(value[1], (int, float))
        ):
            return WorkloadMix.of(tuple(value))
        return WorkloadMix.of(*value)
    raise ValidationError(
        f"cannot build a WorkloadMix from {value!r}; expected a mix, a "
        f"WorkloadSpec, or a sequence of specs / (spec, weight) pairs"
    )
