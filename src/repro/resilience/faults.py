"""Deterministic fault injection for the parallel execution stack.

Real failures — an OOM-killed worker, a hung chunk, an exhausted
``/dev/shm``, a bit-flipped result — arrive on unlucky hosts at unlucky
times; a recovery path that is only exercised there is a recovery path
that is never exercised. A :class:`FaultPlan` makes every failure class
**injectable and deterministic**: the plan names which chunk of which
dispatch fails, how, and how many times, and the executor arms the
matching :class:`Fault` into the worker's task message at submit time, so
the full production path (pool, transport, retry ladder) runs under the
fault — nothing is monkeypatched.

Fault kinds
-----------
``crash``
    The worker dies on task entry — ``os._exit`` on the process backend
    (breaking the pool, exactly like an OOM kill), a raised exception on
    threads.
``slow``
    The worker sleeps ``seconds`` before executing; with a policy
    ``chunk_timeout`` below it, this is the deterministic hung-worker.
``shm``
    :meth:`SharedStack.attach` fails in the worker (an ``OSError``), as
    when the segment vanished or the worker's ``/dev/shm`` is exhausted.
``corrupt``
    The worker computes its result and per-field checksums, then flips a
    byte of the produced data *after* checksumming — transport-level
    corruption a checksum-verifying parent detects and retries.

Grammar
-------
A plan is a comma-separated list of faults::

    KIND@CHUNK            crash@0        (chunk 0, once)
    KIND@*                shm@*          (any chunk, once)
    KIND@CHUNKxTIMES      crash@0x3      (first three submits of chunk 0)
    KIND@CHUNK:ARG        slow@1:0.5     (chunk 1 sleeps 0.5 s)
    KIND@PLAN/CHUNK       crash@plan-7/0 (only dispatches of plan token)

Activated through the ``REPRO_FAULT_PLAN`` environment variable (plans
parsed from it share one process-wide draw counter per distinct string)
or an explicit ``fault_plan=`` argument to :func:`~repro.parallel.executor.
submit_stacked` / :class:`~repro.dataflow.scheduler.MixScheduler`.
"""

from __future__ import annotations

import os
import threading
import zlib
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.util.errors import ReproError, ValidationError

#: injectable fault classes, in documentation order
FAULT_KINDS = ("crash", "slow", "shm", "corrupt")

#: environment variable holding a fault-plan string (CI chaos jobs set it)
ENV_PLAN = "REPRO_FAULT_PLAN"

#: default sleep of a ``slow`` fault with no explicit ``:SECONDS``
_DEFAULT_SLOW_SECONDS = 0.05


class CorruptResultError(ReproError):
    """A worker's returned data does not match its own checksums."""


@dataclass(frozen=True)
class Fault:
    """One armed fault, shipped inside a worker task message (picklable)."""

    kind: str
    seconds: float = 0.0


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault: what fails, where, and how many times."""

    kind: str
    #: chunk index the fault targets; None matches any chunk
    chunk: int | None = None
    #: plan-token filter; None matches any dispatch
    plan: str | None = None
    #: how many matching submits draw this fault before it is spent
    times: int = 1
    #: kind-specific argument (sleep seconds for ``slow``)
    seconds: float = _DEFAULT_SLOW_SECONDS

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValidationError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.times < 1:
            raise ValidationError(f"fault times must be >= 1, got {self.times}")
        if self.seconds < 0:
            raise ValidationError(
                f"fault seconds must be >= 0, got {self.seconds}"
            )

    def describe(self) -> str:
        """The spec in plan-grammar form."""
        sel = "*" if self.chunk is None else str(self.chunk)
        if self.plan is not None:
            sel = f"{self.plan}/{sel}"
        text = f"{self.kind}@{sel}"
        if self.times != 1:
            text += f"x{self.times}"
        if self.kind == "slow" and self.seconds != _DEFAULT_SLOW_SECONDS:
            text += f":{self.seconds:g}"
        return text


def _parse_spec(token: str) -> FaultSpec:
    kind, at, selector = token.strip().partition("@")
    if not at or not selector:
        raise ValidationError(
            f"cannot parse fault {token!r}; expected KIND@CHUNK "
            f"(e.g. crash@0, slow@*x2:0.5)"
        )
    seconds = _DEFAULT_SLOW_SECONDS
    if ":" in selector:
        selector, _, arg = selector.partition(":")
        try:
            seconds = float(arg)
        except ValueError:
            raise ValidationError(
                f"fault {token!r}: argument {arg!r} is not a number"
            ) from None
    times = 1
    if "x" in selector:
        selector, _, count = selector.rpartition("x")
        try:
            times = int(count)
        except ValueError:
            raise ValidationError(
                f"fault {token!r}: repeat count {count!r} is not an integer"
            ) from None
    plan = None
    if "/" in selector:
        plan, _, selector = selector.rpartition("/")
    if selector == "*":
        chunk: int | None = None
    else:
        try:
            chunk = int(selector)
        except ValueError:
            raise ValidationError(
                f"fault {token!r}: chunk selector {selector!r} is neither an "
                f"index nor '*'"
            ) from None
    return FaultSpec(kind, chunk=chunk, plan=plan, times=times, seconds=seconds)


class FaultPlan:
    """An ordered set of planned faults with thread-safe draw accounting.

    The executor calls :meth:`draw` once per chunk submit; the first
    unspent spec matching ``(chunk index, plan token)`` fires (its
    remaining count decrements) and ships as a :class:`Fault`. Exhausted
    plans draw nothing — a retried chunk whose faults are spent runs
    clean, which is what makes every recovery test terminate.
    """

    def __init__(self, specs: list[FaultSpec] | tuple[FaultSpec, ...]):
        self.specs = tuple(specs)
        self._remaining = [spec.times for spec in self.specs]
        self._lock = threading.Lock()

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the comma-separated plan grammar (see module docstring)."""
        tokens = [t for t in text.split(",") if t.strip()]
        if not tokens:
            raise ValidationError(f"empty fault plan {text!r}")
        return cls([_parse_spec(t) for t in tokens])

    @classmethod
    def from_env(cls) -> "FaultPlan | None":
        """The plan named by :data:`ENV_PLAN`, or None when unset.

        Plans parsed from the environment are memoized per distinct
        string, so every dispatch in the process shares one draw counter —
        ``crash@0`` fired from the environment fires once overall, not
        once per batch.
        """
        text = os.environ.get(ENV_PLAN)
        if not text:
            return None
        with _ENV_LOCK:
            plan = _ENV_PLANS.get(text)
            if plan is None:
                plan = _ENV_PLANS[text] = cls.parse(text)
        return plan

    def draw(self, chunk: int, token: str | None = None) -> Fault | None:
        """The fault (if any) armed for this submit of ``chunk``."""
        with self._lock:
            for i, spec in enumerate(self.specs):
                if self._remaining[i] <= 0:
                    continue
                if spec.chunk is not None and spec.chunk != chunk:
                    continue
                if spec.plan is not None and spec.plan != token:
                    continue
                self._remaining[i] -= 1
                # seconds only means anything to a ``slow`` fault
                return Fault(
                    spec.kind, spec.seconds if spec.kind == "slow" else 0.0
                )
        return None

    def remaining(self) -> int:
        """Undrawn fault count across every spec."""
        with self._lock:
            return sum(self._remaining)

    def describe(self) -> str:
        """The plan in grammar form (round-trips through :meth:`parse`)."""
        return ",".join(spec.describe() for spec in self.specs)


#: process-wide plans parsed from the environment, keyed by plan string
_ENV_PLANS: dict[str, FaultPlan] = {}
_ENV_LOCK = threading.Lock()


def forget_env_plans() -> None:
    """Drop memoized environment plans (tests re-point the variable)."""
    with _ENV_LOCK:
        _ENV_PLANS.clear()


# -- checksums and corruption --------------------------------------------------
def checksum_arrays(arrays: Mapping[str, np.ndarray]) -> dict[str, int]:
    """CRC32 per named array, over its raw bytes.

    Computed worker-side over the produced fields and re-computed
    parent-side over the received data; a mismatch means the result was
    corrupted between computation and receipt.
    """
    return {
        name: zlib.crc32(np.ascontiguousarray(arr).tobytes())
        for name, arr in arrays.items()
    }


def corrupt_first_value(arrays: Mapping[str, np.ndarray]) -> None:
    """Flip the bytes of the first element of the first array, in place.

    The injection body of the ``corrupt`` fault: a byte-level flip (not an
    arithmetic perturbation), so it diverges for any dtype and any value,
    NaN included.
    """
    for arr in arrays.values():
        view = arr.reshape(-1).view(np.uint8)
        view[: arr.dtype.itemsize] ^= 0xFF
        return
