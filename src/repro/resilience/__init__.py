"""``repro.resilience`` — retry policy, fault injection, degradation ladder.

The robustness layer of the parallel execution stack
(:mod:`repro.parallel`): a :class:`RetryPolicy` describes how a failed,
hung or corrupt chunk is retried (exponential backoff with deterministic
seeded jitter, per-chunk soft timeouts) and degraded through the
process → thread → serial ladder until results — always bit-identical to
the serial compiled engine — are produced; a :class:`FaultPlan` injects
worker crashes, slow chunks, shared-memory attach failures and corrupt
results deterministically (``REPRO_FAULT_PLAN`` or an explicit argument)
so every recovery path is exercisable in tests and CI.

Recovery is observable: retries, degradations, timeouts and injected
faults all emit :mod:`repro.observability` counters and events
(``resilience.retries``, ``resilience.degraded``, ``resilience.timeouts``,
``exec.fault_injected``). See ``docs/resilience.md``.
"""

from repro.resilience.cancel import CancelToken, ExecutionCancelled
from repro.resilience.faults import (
    ENV_PLAN,
    FAULT_KINDS,
    CorruptResultError,
    Fault,
    FaultPlan,
    FaultSpec,
    checksum_arrays,
    corrupt_first_value,
    forget_env_plans,
)
from repro.resilience.policy import (
    DEFAULT_POLICY,
    FULL_LADDER,
    RetryPolicy,
    classify_failure,
)

__all__ = [
    "CancelToken",
    "CorruptResultError",
    "DEFAULT_POLICY",
    "ENV_PLAN",
    "ExecutionCancelled",
    "FAULT_KINDS",
    "FULL_LADDER",
    "Fault",
    "FaultPlan",
    "FaultSpec",
    "RetryPolicy",
    "checksum_arrays",
    "classify_failure",
    "corrupt_first_value",
    "forget_env_plans",
]
