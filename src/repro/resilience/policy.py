"""Retry, timeout and backoff policy for the parallel execution stack.

A :class:`RetryPolicy` describes how the chunk fan-out recovers from a
failed dispatch: how many times a chunk is retried on its current worker
backend (``max_attempts``), how long to wait between attempts
(exponential backoff with **deterministic seeded jitter** — two runs with
the same policy, plan token and chunk index sleep exactly the same
schedule, so recovery behaviour is reproducible in tests and CI), how
long a single attempt may run before it is declared hung
(``chunk_timeout``, enforced through future deadlines; a timed-out
process worker is killed and its pool replaced), and the
**graceful-degradation ladder** — the ordered backends a chunk falls
through once its attempts on a rung are exhausted.

The terminal rung ``"serial"`` replays the chunk in-process on the very
same lowered plan the workers run, so a chunk's final results are
bit-identical to the serial compiled engine no matter how many backends
broke on the way: degradation changes *where* the tape replays, never
what it computes.

Policies are frozen and cheap; the parallel executor consults one per
dispatch (:data:`DEFAULT_POLICY` unless the caller passes its own). The
no-fault fast path adds only a branch per chunk — the overhead contract
is tracked by ``benchmarks/bench_parallel_sim.py``.
"""

from __future__ import annotations

import zlib
from concurrent.futures import BrokenExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from dataclasses import dataclass

from repro.util.errors import ValidationError

#: the full degradation ladder, fastest transport first; a chunk enters at
#: its dispatch backend and only ever moves right
FULL_LADDER = ("process", "thread", "serial")


@dataclass(frozen=True)
class RetryPolicy:
    """How the parallel engine retries, times out and degrades a chunk.

    ``max_attempts`` bounds the tries *per ladder rung*; ``backoff_*``
    shape the exponential delay between same-rung retries; ``jitter`` is
    the maximum fractional widening of each delay, drawn deterministically
    from ``seed``/plan token/chunk index/attempt so recovery schedules are
    reproducible. ``chunk_timeout`` (seconds, ``None`` = no deadline) is a
    soft per-attempt deadline enforced while collecting the chunk's
    future; a deadline miss counts as a failure (and kills a hung process
    pool). ``verify_checksums`` makes workers return a CRC per produced
    field and the parent re-verify it on receipt, so corrupt results are
    detected and retried instead of silently returned. ``ladder`` is the
    ordered degradation sequence; an empty ladder means "fail where you
    are" (no degradation).
    """

    max_attempts: int = 2
    backoff_base: float = 0.02
    backoff_factor: float = 2.0
    backoff_max: float = 1.0
    jitter: float = 0.25
    seed: int = 0
    chunk_timeout: float | None = None
    verify_checksums: bool = False
    ladder: tuple[str, ...] = FULL_LADDER

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValidationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_base < 0 or self.backoff_factor < 1:
            raise ValidationError(
                "backoff_base must be >= 0 and backoff_factor >= 1, got "
                f"{self.backoff_base}/{self.backoff_factor}"
            )
        if not 0 <= self.jitter <= 1:
            raise ValidationError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.chunk_timeout is not None and self.chunk_timeout <= 0:
            raise ValidationError(
                f"chunk_timeout must be positive, got {self.chunk_timeout}"
            )
        unknown = set(self.ladder) - set(FULL_LADDER)
        if unknown:
            raise ValidationError(
                f"unknown ladder rungs {sorted(unknown)}; "
                f"expected a subsequence of {FULL_LADDER}"
            )

    @classmethod
    def disabled(cls) -> "RetryPolicy":
        """The bare-dispatch policy: one attempt, no ladder, no checksums.

        The first failure surfaces immediately — pre-resilience behaviour,
        kept for the overhead benchmark and for callers that implement
        their own recovery.
        """
        return cls(max_attempts=1, ladder=())

    def rungs_from(self, backend: str) -> tuple[str, ...]:
        """The degradation sequence for a chunk dispatched on ``backend``.

        The chunk enters the ladder at its own backend (a thread dispatch
        never "degrades" upward to processes) and falls rightward; a
        backend absent from the ladder gets itself plus every rung below
        its natural position.
        """
        if backend in self.ladder:
            idx = self.ladder.index(backend)
            return self.ladder[idx:]
        below = (
            FULL_LADDER.index(backend) if backend in FULL_LADDER else -1
        )
        tail = tuple(
            r for r in self.ladder
            if FULL_LADDER.index(r) > below
        )
        return (backend,) + tail

    def backoff_delay(
        self, attempt: int, token: str = "", chunk: int = 0
    ) -> float:
        """Seconds to wait before retry number ``attempt`` (1-based).

        Exponential in the attempt number, capped at ``backoff_max``, then
        widened by up to ``jitter`` — the jitter fraction is a pure
        function of ``(seed, token, chunk, attempt)``, so identical runs
        back off identically while distinct chunks de-synchronize.
        """
        if attempt < 1 or self.backoff_base == 0:
            return 0.0
        delay = min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** (attempt - 1),
        )
        if self.jitter:
            key = f"{self.seed}:{token}:{chunk}:{attempt}".encode()
            fraction = zlib.crc32(key) / 0xFFFFFFFF
            delay *= 1.0 + self.jitter * fraction
        return delay

    def deadline_remaining(self, submitted_at: float, now: float) -> float | None:
        """Seconds left before this attempt's deadline, or None (no limit)."""
        if self.chunk_timeout is None:
            return None
        return max(0.0, submitted_at + self.chunk_timeout - now)


#: the policy every parallel dispatch uses unless the caller overrides it
DEFAULT_POLICY = RetryPolicy()


def classify_failure(exc: BaseException) -> str:
    """A short label for a chunk failure, used in metrics/event labels."""
    from repro.resilience.faults import CorruptResultError

    if isinstance(exc, FuturesTimeout):
        return "timeout"
    if isinstance(exc, BrokenExecutor):
        return "crash"
    if isinstance(exc, CorruptResultError):
        return "corrupt"
    if isinstance(exc, OSError):
        return "shm"
    return "error"
