"""Cooperative cancellation: a thread-safe token checked at safe points.

A :class:`CancelToken` is the one-way flag a caller hands down the
execution stack — serving layer → :class:`~repro.dataflow.scheduler.
MixScheduler` → chunked stacked dispatch / parallel fan-out — so that
long-running work can be abandoned *between* chunks without tearing down
pools or corrupting shared state. Cancellation is cooperative: the
executing side polls the token at its dispatch boundaries (never inside a
tape replay, which is always allowed to finish) and raises
:class:`ExecutionCancelled` after releasing whatever transport the
abandoned work held — shared-memory segments included, so a cancelled
dispatch is leak-free by construction (asserted via
:func:`repro.parallel.shm.live_segments` in the suite).

Tokens are set-once and never reset; a new unit of work takes a new
token. ``set()`` may be called from any thread (the serving layer cancels
from the event loop while the batch executes in a worker thread).
"""

from __future__ import annotations

import threading

from repro.util.errors import ReproError


class ExecutionCancelled(ReproError):
    """Work was abandoned at a safe point after its token was set.

    Deliberately *not* a subclass of the failure classes the retry ladder
    recovers from: cancellation is a caller decision, so it propagates
    through retry policies and best-effort mix scheduling untouched.
    """


class CancelToken:
    """A set-once, thread-safe cancellation flag.

    ``reason`` (optional, recorded by the first ``set()`` call) travels
    into the :class:`ExecutionCancelled` raised at the next safe point, so
    logs can tell a client cancel from a deadline shed from a drain.
    """

    __slots__ = ("_event", "_reason")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._reason: str | None = None

    def set(self, reason: str | None = None) -> None:
        """Request cancellation (idempotent; first reason wins)."""
        if not self._event.is_set():
            self._reason = self._reason or reason
            self._event.set()

    def is_set(self) -> bool:
        """True once cancellation has been requested."""
        return self._event.is_set()

    @property
    def reason(self) -> str | None:
        """The first recorded cancellation reason, if any."""
        return self._reason

    def raise_if_set(self, where: str = "execution") -> None:
        """Raise :class:`ExecutionCancelled` when the token is set.

        The poll the executing side plants at each safe point; ``where``
        names the boundary for the error message.
        """
        if self._event.is_set():
            suffix = f": {self._reason}" if self._reason else ""
            raise ExecutionCancelled(f"{where} cancelled{suffix}")

    def __bool__(self) -> bool:  # pragma: no cover - convenience alias
        return self.is_set()
