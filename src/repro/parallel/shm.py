"""Shared-memory batch buffers: zero-copy chunk transport.

A :class:`SharedStack` is one ``multiprocessing.shared_memory`` segment
holding a set of named batch-major arrays — the stacked input fields of a
chunk on the way out, the produced fields on the way back. The parent
writes each mesh's initial conditions straight into the segment and the
worker binds its compiled-plan buffers from views of the very same pages,
so chunk data crosses the process boundary **without being pickled**: the
only copies are the load/store copies the serial engine performs anyway.

Lifecycle: the creating side owns the segment and must :meth:`unlink` it
(``close`` alone only drops this process's mapping); workers attach by
:attr:`handle` and ``close`` when done. The context-manager form closes
*and* unlinks owned segments, and a destructor backstop keeps an abandoned
segment (e.g. after a worker crash) from outliving the parent silently.

Attaching registers the segment with Python's ``resource_tracker`` in
*every* process on POSIX (the tracker has no idea the parent already owns
it), which would both double-unlink and spew spurious leak warnings at
exit; :func:`_attach` therefore de-registers non-owning attachments, the
standard workaround until the ``track=`` parameter (3.13) is available.
"""

from __future__ import annotations

import multiprocessing
import threading
from multiprocessing import resource_tracker, shared_memory
from typing import Mapping, Sequence

import numpy as np

from repro.util.errors import ValidationError

#: names of owned (parent-allocated) segments not yet unlinked — the
#: ground truth leak tests assert against after exercising error paths
_LIVE: set[str] = set()
_LIVE_LOCK = threading.Lock()


def live_segments() -> tuple[str, ...]:
    """Names of owned segments still awaiting :meth:`SharedStack.unlink`.

    Empty whenever no dispatch is in flight; anything left here after a
    batch — successful, failed, or recovered — is a ``/dev/shm`` leak.
    """
    with _LIVE_LOCK:
        return tuple(sorted(_LIVE))

#: slot alignment: keeps every array cache-line aligned within the segment
_ALIGN = 64

#: one named array's placement: (name, shape, dtype string, byte offset)
SlotSpec = tuple[str, tuple[int, ...], str, int]

#: everything a peer process needs to attach: (segment name, slots)
StackHandle = tuple[str, tuple[SlotSpec, ...]]


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without tracker double-registration.

    Pre-3.13 ``SharedMemory`` registers with the resource tracker on every
    attach, not just on create. What that requires depends on how the
    worker was started: ``fork`` workers share the parent's tracker (whose
    name cache is a set, so the extra register coalesces with the parent's
    and the parent's unlink balances it — unregistering here would make
    that unlink a double-remove); ``spawn`` workers run their *own*
    tracker, which would destroy the parent's live segment at worker exit
    unless the attach registration is taken back.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)  # 3.13+
    except TypeError:
        pass
    shm = shared_memory.SharedMemory(name=name)
    if multiprocessing.get_start_method(allow_none=True) != "fork":
        try:  # pragma: no cover - tracker internals vary across versions
            resource_tracker.unregister(shm._name, "shared_memory")  # noqa: SLF001
        except Exception:
            pass
    return shm


class SharedStack:
    """Named batch-major arrays in one shared-memory segment."""

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        slots: tuple[SlotSpec, ...],
        owner: bool,
    ):
        self._shm = shm
        self._slots = slots
        self._owner = owner
        self._closed = False
        self._arrays: dict[str, np.ndarray] = {}
        try:
            for sname, shape, dtype, offset in slots:
                self._arrays[sname] = np.ndarray(
                    shape, dtype=np.dtype(dtype), buffer=shm.buf, offset=offset
                )
        except Exception:
            # a bad slot spec (stale handle, truncated segment) must not
            # leak the mapping we already hold
            self._arrays.clear()
            self._closed = True
            shm.close()
            raise

    # -- construction ---------------------------------------------------------
    @classmethod
    def allocate(
        cls, layout: Mapping[str, tuple[Sequence[int], np.dtype]]
    ) -> "SharedStack":
        """Create a segment holding one array per ``name: (shape, dtype)``."""
        if not layout:
            raise ValidationError("a SharedStack needs at least one array")
        slots: list[SlotSpec] = []
        offset = 0
        for name, (shape, dtype) in layout.items():
            dt = np.dtype(dtype)
            shape = tuple(int(s) for s in shape)
            offset = -(-offset // _ALIGN) * _ALIGN
            slots.append((name, shape, dt.str, offset))
            offset += int(np.prod(shape)) * dt.itemsize
        shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
        try:
            stack = cls(shm, tuple(slots), owner=True)
        except Exception:
            # construction failure on a segment we just created: destroy it
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            raise
        with _LIVE_LOCK:
            _LIVE.add(shm.name)
        return stack

    @classmethod
    def attach(cls, handle: StackHandle, fail: bool = False) -> "SharedStack":
        """Map a peer's segment from its :attr:`handle` (non-owning).

        ``fail=True`` raises the same ``OSError`` a vanished segment or an
        exhausted ``/dev/shm`` produces — the injection point of the
        ``shm`` fault class, placed here so the failure originates exactly
        where the real one would.
        """
        if fail:
            raise OSError("injected shm attach failure")
        name, slots = handle
        return cls(
            _attach(name),
            tuple((s, tuple(shape), dtype, off) for s, shape, dtype, off in slots),
            owner=False,
        )

    @property
    def handle(self) -> StackHandle:
        """A picklable token a peer process attaches with."""
        return (self._shm.name, self._slots)

    @property
    def nbytes(self) -> int:
        """Size of the underlying segment."""
        return self._shm.size

    # -- access ---------------------------------------------------------------
    def array(self, name: str) -> np.ndarray:
        """The named array, viewing the shared pages directly."""
        try:
            return self._arrays[name]
        except KeyError:
            raise ValidationError(
                f"shared stack has no array {name!r}; "
                f"known: {sorted(self._arrays)}"
            ) from None

    def names(self) -> tuple[str, ...]:
        """The array names, in layout order."""
        return tuple(s[0] for s in self._slots)

    # -- lifecycle -------------------------------------------------------------
    def close(self) -> None:
        """Drop this process's mapping (the segment itself survives)."""
        if self._closed:
            return
        self._closed = True
        # the ndarrays hold exported pointers into shm.buf; release them
        # first or SharedMemory.close() raises BufferError
        self._arrays.clear()
        self._shm.close()

    def unlink(self) -> None:
        """Destroy the segment (owner's duty, exactly once)."""
        self.close()
        if self._owner:
            self._owner = False
            with _LIVE_LOCK:
                _LIVE.discard(self._shm.name)
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __enter__(self) -> "SharedStack":
        return self

    def __exit__(self, *exc) -> None:
        self.unlink() if self._owner else self.close()

    def __del__(self):  # pragma: no cover - GC-order dependent backstop
        try:
            self.unlink() if self._owner else self.close()
        except Exception:
            pass
